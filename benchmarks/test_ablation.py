"""Ablation benchmarks for the design choices DESIGN.md calls out.

These do not correspond to a paper table; they isolate the mechanisms
the paper's analysis attributes its results to, by toggling one model
knob at a time:

* chunk-serialisation (warp/block load imbalance) — without it the
  work-efficient method would not lose on scale-free graphs at all;
* the hybrid thresholds alpha/beta — degenerate settings collapse the
  hybrid to one of the fixed strategies;
* the asymmetric mispick costs that justify starting work-efficient;
* GPU-FAN's device-wide synchronisation penalty.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.graph.generators import kronecker_graph, road_network, watts_strogatz
from repro.gpusim.cost import CostModel
from repro.gpusim.device import Device
from repro.gpusim.spec import GTX_TITAN
from repro.harness.runner import pick_roots


def _run_seconds(device, g, strategy, roots, **kw):
    return device.run_bc(g, strategy=strategy, roots=roots, **kw).seconds


def test_ablation_imbalance_model(benchmark):
    """Disable chunk serialisation: the work-efficient penalty on the
    Kronecker graph largely disappears, confirming load imbalance (not
    asymptotic work) is what hurts WE on scale-free inputs."""
    g = kronecker_graph(13, edge_factor=16, seed=0)
    roots = pick_roots(g, 8, seed=0)

    def measure():
        with_imb = Device(GTX_TITAN, CostModel())
        without = Device(GTX_TITAN, CostModel().without_imbalance())
        return (
            _run_seconds(with_imb, g, "work-efficient", roots),
            _run_seconds(without, g, "work-efficient", roots),
            _run_seconds(with_imb, g, "edge-parallel", roots),
        )

    we_imb, we_flat, ep = run_once(benchmark, measure)
    assert we_imb > 2 * we_flat          # imbalance dominates WE's cost
    assert we_imb > ep                   # WE loses with imbalance...
    assert we_flat < 2.0 * ep            # ...and is competitive without


def test_ablation_hybrid_thresholds(benchmark):
    """Degenerate alpha/beta collapse the hybrid into a fixed strategy;
    sane scaled settings land at-or-better than the best fixed one."""
    g = watts_strogatz(12_000, k=10, p=0.1, seed=0)
    roots = pick_roots(g, 8, seed=0)
    dev = Device(GTX_TITAN)

    def measure():
        we = _run_seconds(dev, g, "work-efficient", roots)
        ep = _run_seconds(dev, g, "edge-parallel", roots)
        # alpha = infinity: never reconsider => stays work-efficient.
        never = _run_seconds(dev, g, "hybrid", roots,
                             alpha=10**9, beta=64)
        # alpha = 0, beta = 0: any change selects edge-parallel.
        always_ep = _run_seconds(dev, g, "hybrid", roots, alpha=0, beta=0)
        tuned = _run_seconds(dev, g, "hybrid", roots, alpha=96, beta=64)
        return we, ep, never, always_ep, tuned

    we, ep, never, always_ep, tuned = run_once(benchmark, measure)
    assert never == pytest.approx(we, rel=1e-6)
    assert always_ep <= ep * 1.1  # EP everywhere except the first level
    assert tuned <= min(we, ep) * 1.1


def test_ablation_mispick_asymmetry(benchmark):
    """Section IV-B: wrongly using WE costs ~2.2x worst case; wrongly
    using EP can cost >10x — hence the work-efficient default."""
    kron = kronecker_graph(13, edge_factor=16, seed=0)
    road = road_network(25_000, seed=0)
    dev = Device(GTX_TITAN)

    def measure():
        kron_roots = pick_roots(kron, 8, seed=0)
        road_roots = pick_roots(road, 8, seed=0)
        we_wrong = (_run_seconds(dev, kron, "work-efficient", kron_roots)
                    / _run_seconds(dev, kron, "edge-parallel", kron_roots))
        ep_wrong = (_run_seconds(dev, road, "edge-parallel", road_roots)
                    / _run_seconds(dev, road, "work-efficient", road_roots))
        return we_wrong, ep_wrong

    we_wrong, ep_wrong = run_once(benchmark, measure)
    assert ep_wrong > we_wrong       # the asymmetry itself
    assert ep_wrong > 3.0            # EP mispick is expensive...
    assert we_wrong < 6.0            # ...WE mispick is bounded


def test_ablation_gpu_fan_sync(benchmark):
    """GPU-FAN's fine-grained-only layout needs a device-wide barrier
    per iteration; removing that penalty (sync multiplier 1) closes
    most of its gap on a small high-diameter graph."""
    g = road_network(8_000, seed=0)
    roots = pick_roots(g, 6, seed=0)

    def measure():
        dev = Device(GTX_TITAN, CostModel())
        cheap_sync = Device(
            GTX_TITAN, CostModel(gpu_fan_sync_multiplier=1.0)
        )
        return (
            _run_seconds(dev, g, "gpu-fan", roots),
            _run_seconds(cheap_sync, g, "gpu-fan", roots),
        )

    expensive, cheap = run_once(benchmark, measure)
    assert expensive > 3 * cheap


def test_ablation_streaming_cap(benchmark):
    """The long-row streaming cap: without it a single hub serialises
    at the scattered per-edge cost and the work-efficient method is
    absurdly penalised on hubs (the Table I footnote)."""
    g = kronecker_graph(12, edge_factor=16, seed=0)
    roots = pick_roots(g, 6, seed=0)

    def measure():
        capped = Device(GTX_TITAN, CostModel())
        uncapped = Device(
            GTX_TITAN, CostModel(stream_threshold=10**9)
        )
        return (
            _run_seconds(capped, g, "work-efficient", roots),
            _run_seconds(uncapped, g, "work-efficient", roots),
        )

    capped, uncapped = run_once(benchmark, measure)
    assert uncapped > 1.5 * capped


def test_ablation_cas_vs_prefix_sum_enqueue(benchmark):
    """Section IV-A: Merrill et al.'s prefix-sum enqueue wins when all
    SMs cooperate on one traversal, but at the paper's per-SM
    granularity every SM scans its whole candidate set alone — the CAS
    enqueue wins."""
    g = watts_strogatz(12_000, k=10, p=0.1, seed=0)
    roots = pick_roots(g, 8, seed=0)

    def measure():
        cas = Device(GTX_TITAN, CostModel(enqueue="cas"))
        scan = Device(GTX_TITAN, CostModel(enqueue="prefix-sum"))
        return (
            _run_seconds(cas, g, "work-efficient", roots),
            _run_seconds(scan, g, "work-efficient", roots),
        )

    cas_s, scan_s = run_once(benchmark, measure)
    assert scan_s > 1.2 * cas_s
