"""Benchmark: regenerate Figure 4 (WE / hybrid / sampling vs EP).

Paper shape: on road networks and meshes all three methods beat the
edge-parallel baseline by about an order of magnitude with pure
work-efficient fastest (the adaptive methods pay "the cost of
generality"); on scale-free/small-world graphs work-efficient alone is
slower than edge-parallel while hybrid and sampling sit at parity or
slightly better.
"""

from conftest import run_once

from repro.harness.experiments import figure4

HIGH_DIAMETER = ("af_shell9", "delaunay_n20", "luxembourg.osm")
LOW_DIAMETER = ("caidaRouterLevel", "cnr-2000", "loc-gowalla", "smallworld")


def test_figure4_strategy_comparison(benchmark, cfg):
    result = run_once(benchmark, figure4.run, cfg)
    benchmark.extra_info["rendered"] = figure4.render(result)

    for name in ("af_shell9", "delaunay_n20"):
        row = result.row(name)
        assert row.speedup("work-efficient") > 4.0
        assert row.speedup("sampling") > 4.0
        # WE >= the adaptive methods on graphs where it is always right.
        assert row.speedup("work-efficient") >= 0.95 * row.speedup("sampling")

    for name in LOW_DIAMETER:
        row = result.row(name)
        # Pure WE pays the imbalance penalty...
        assert row.speedup("work-efficient") < 1.3
        # ...the adaptive methods do not collapse.
        assert row.speedup("hybrid") > 0.5
        assert row.speedup("sampling") > 0.5

    # Asymmetric mispick costs (Section IV-B): choosing WE when EP is
    # right loses at most ~2-3x; choosing EP when WE is right loses 10x+.
    worst_we_on_lowdiam = min(result.row(n).speedup("work-efficient")
                              for n in LOW_DIAMETER)
    best_we_on_highdiam = max(result.row(n).speedup("work-efficient")
                              for n in HIGH_DIAMETER)
    assert best_we_on_highdiam > 1.0 / worst_we_on_lowdiam
