"""Benchmark: regenerate Table IV (multi-node GTEPS, 192 GPUs).

Paper shape: kron posts the highest TEPS (24.13 GTEPS raw at the
paper's scale) — inflated by its isolated vertices, adjusted ~18 GTEPS
but still above rgg (8.25) and delaunay (9.37); all three families show
large speedup over one node that grows with problem scale.
"""

from conftest import BENCH_SCALE_FACTOR, run_once

from repro.harness.experiments import table4
from repro.harness.runner import ExperimentConfig


def test_table4_multi_node(benchmark):
    cfg = ExperimentConfig(scale_factor=1, root_sample=12, seed=0)
    scale = 15 if BENCH_SCALE_FACTOR <= 32 else 13
    result = run_once(benchmark, table4.run, cfg, scale=scale)
    benchmark.extra_info["rendered"] = table4.render(result)

    kron = result.row("kron")
    rgg = result.row("rgg")
    delaunay = result.row("delaunay")

    # kron highest TEPS, partly from isolated-vertex inflation.
    assert kron.gteps_64 > rgg.gteps_64
    assert kron.gteps_64 > delaunay.gteps_64
    assert kron.isolated_vertices > 0
    assert kron.adjusted_gteps_64 < kron.gteps_64
    # Adjusted kron still at or above the mesh families (paper: 18 vs
    # 8-9 GTEPS, "because the Kronecker graph ... utilizes the
    # edge-parallel method").
    assert kron.adjusted_gteps_64 > 0.8 * max(rgg.gteps_64,
                                              delaunay.gteps_64)
    # Meaningful multi-node speedup for every family at this scale.
    for row in result.rows:
        assert row.speedup_over_1 > 1.5
