"""Wall-clock micro-benchmarks of the engine primitives.

Unlike the experiment benchmarks (which time a whole table/figure
regeneration once), these measure the real Python/NumPy throughput of
the hot kernels over repeated rounds — the numbers a contributor
watches when optimising the engine.
"""

import numpy as np
import pytest

from repro.bc.api import bc_single_source_dependencies
from repro.bc.frontier import forward_sweep
from repro.graph.generators import delaunay_graph, kronecker_graph, watts_strogatz
from repro.graph.traversal import bfs
from repro.parallel.partition import block_partition


@pytest.fixture(scope="module")
def mesh():
    return delaunay_graph(50_000, seed=0)


@pytest.fixture(scope="module")
def sw():
    return watts_strogatz(50_000, k=10, p=0.1, seed=0)


@pytest.fixture(scope="module")
def kron():
    return kronecker_graph(15, edge_factor=16, seed=0)


def test_bfs_mesh(benchmark, mesh):
    out = benchmark(bfs, mesh, 7)
    assert out.num_reached == mesh.num_vertices


def test_bfs_smallworld(benchmark, sw):
    out = benchmark(bfs, sw, 7)
    assert out.max_depth < 12


def test_forward_sweep_kron(benchmark, kron):
    root = int(np.argmax(kron.degrees))
    out = benchmark(forward_sweep, kron, root)
    assert out.sigma[root] == 1.0


def test_single_source_bc_mesh(benchmark, mesh):
    delta = benchmark(bc_single_source_dependencies, mesh, 7)
    assert delta[7] == 0.0
    assert np.all(np.isfinite(delta))


def test_single_source_bc_smallworld(benchmark, sw):
    delta = benchmark(bc_single_source_dependencies, sw, 7)
    assert np.all(delta >= 0)


def test_partitioning_throughput(benchmark):
    roots = np.arange(1_000_000)
    parts = benchmark(block_partition, roots, 192)
    assert sum(p.size for p in parts) == roots.size
