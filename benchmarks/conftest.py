"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures at
``BENCH_SCALE_FACTOR`` of paper size (override with the
``REPRO_BENCH_SCALE_FACTOR`` environment variable; ``1`` reproduces the
paper-sized instances if you have the patience), asserts the paper's
qualitative shape on the result, and attaches the rendered table to the
benchmark's ``extra_info`` so ``--benchmark-verbose`` output doubles as
the experiment log.
"""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))

from repro.harness.runner import ExperimentConfig

BENCH_SCALE_FACTOR = int(os.environ.get("REPRO_BENCH_SCALE_FACTOR", "32"))
BENCH_ROOTS = int(os.environ.get("REPRO_BENCH_ROOTS", "12"))


@pytest.fixture(scope="session")
def cfg() -> ExperimentConfig:
    """The experiment configuration shared by all benchmarks."""
    return ExperimentConfig(scale_factor=BENCH_SCALE_FACTOR,
                            root_sample=BENCH_ROOTS, seed=0)


def run_once(benchmark, fn, *args, **kwargs):
    """Execute an experiment exactly once under the benchmark timer
    (the experiments are deterministic; repetition adds nothing)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
