"""Benchmarks for the beyond-the-paper extensions (DESIGN.md §7).

* incremental BC vs full recompute after an edge insertion;
* the adaptive single-vertex estimator vs an exact column;
* process-pool parallel BC vs the serial engine (real wall clock).
"""

import numpy as np
from conftest import run_once

from repro.bc.api import betweenness_centrality
from repro.bc.approx import adaptive_vertex_bc
from repro.bc.brandes import brandes_reference
from repro.bc.dynamic import insert_edge
from repro.graph.generators import watts_strogatz
from repro.parallel import parallel_betweenness_centrality


def test_extension_incremental_update(benchmark):
    """An incremental insert must equal the full recompute and touch at
    most n roots (usually fewer)."""
    g = watts_strogatz(900, k=4, p=0.02, seed=5)
    bc = betweenness_centrality(g)

    def update():
        return insert_edge(g, bc, 10, 14)  # a local shortcut

    g2, bc2, stats = run_once(benchmark, update)
    benchmark.extra_info["affected_fraction"] = stats.affected_fraction
    assert np.allclose(bc2, betweenness_centrality(g2))
    assert stats.num_affected <= g.num_vertices
    assert stats.num_affected < g.num_vertices  # some roots filtered


def test_extension_adaptive_estimator(benchmark):
    """The adaptive estimator converges on a central vertex long before
    sampling every root, within a constant factor."""
    g = watts_strogatz(500, k=6, p=0.05, seed=2)
    exact = brandes_reference(g)
    hub = int(np.argmax(exact))

    est = run_once(benchmark, adaptive_vertex_bc, g, hub, c=2.0, seed=0)
    benchmark.extra_info["samples_used"] = est.samples_used
    assert est.converged
    assert est.samples_used < g.num_vertices // 2
    assert 0.4 * exact[hub] < est.estimate < 2.5 * exact[hub]


def test_extension_process_pool(benchmark):
    """The pool decomposition returns identical values; wall-clock
    speedup is environment-dependent, so only correctness and
    completion are asserted while the benchmark records the time."""
    g = watts_strogatz(2500, k=8, p=0.1, seed=1)
    roots = np.arange(300)

    out = run_once(benchmark, parallel_betweenness_centrality, g,
                   sources=roots, num_workers=2)
    expect = betweenness_centrality(g, sources=roots)
    assert np.allclose(out, expect)


def test_extension_batched_engine(benchmark):
    """The batched (sparse-matmul) engine matches the queue engine
    exactly on a small-diameter graph — its intended regime."""
    from repro.bc.batched import batched_betweenness_centrality

    g = watts_strogatz(15_000, k=10, p=0.1, seed=0)
    roots = np.arange(96)

    out = run_once(benchmark, batched_betweenness_centrality, g,
                   sources=roots, batch_size=48)
    assert np.allclose(out, betweenness_centrality(g, sources=roots))
