"""Benchmark: regenerate Figure 6 (multi-GPU scaling by node count).

Paper shape: speedup over one node approaches linear as the problem
grows ("linear speedup is easily achievable if the problem size is
sufficiently large"); at a fixed scale the denser families (kron, rgg)
scale better than delaunay, whose small edge/vertex ratio gives each
GPU the least work (paper: 50x / 40x / 35x at scale 16 on 64 nodes).
"""

from conftest import run_once

from repro.harness.experiments import figure6
from repro.harness.runner import ExperimentConfig


def test_figure6_multi_gpu_scaling(benchmark):
    cfg = ExperimentConfig(scale_factor=1, root_sample=12, seed=0)
    result = run_once(benchmark, figure6.run, cfg,
                      scales=(12, 14, 16), node_counts=(1, 4, 16, 64))
    benchmark.extra_info["rendered"] = figure6.render(result)

    for fam in ("delaunay", "rgg", "kron"):
        # Speedup at 64 nodes grows monotonically with problem scale.
        s64 = [result.curve(fam, sc).speedups()[-1] for sc in (12, 14, 16)]
        assert s64[0] <= s64[1] <= s64[2]
        # And never exceeds the node ratio.
        for c in (result.curve(fam, sc) for sc in (12, 14, 16)):
            for nodes, sp in zip(c.node_counts, c.speedups()):
                assert sp <= nodes + 1e-9

    # Density ordering at the largest scale: delaunay scales worst.
    kron64 = result.curve("kron", 16).speedups()[-1]
    rgg64 = result.curve("rgg", 16).speedups()[-1]
    del64 = result.curve("delaunay", 16).speedups()[-1]
    assert kron64 > del64
    assert rgg64 > del64
    # The big instances show a genuinely multi-node win.
    assert kron64 > 4.0
