"""Benchmark: regenerate Figure 5 (scaling by problem size).

Paper shape: sampling beats GPU-FAN by an order of magnitude on rgg at
every scale and the gap grows with scale on delaunay; the Jia et al.
reader rejects rgg/kron instances with isolated vertices; GPU-FAN's
O(n^2) predecessors exhaust the 6 GB device at large scale while
sampling keeps going; on small delaunay instances edge-parallel beats
sampling (crossover near 10^4 vertices).
"""

from conftest import run_once

from repro.harness.experiments import figure5
from repro.harness.runner import ExperimentConfig


def test_figure5_problem_size_scaling(benchmark):
    cfg = ExperimentConfig(scale_factor=1, root_sample=8, seed=0)
    result = run_once(benchmark, figure5.run, cfg, scales=range(10, 16))
    benchmark.extra_info["rendered"] = figure5.render(result)

    for fam in ("rgg", "delaunay", "kron"):
        pts = result.family(fam)
        assert len(pts) == 6
        # Time grows with scale for the sampling method.
        times = [p.sampling_seconds for p in pts]
        assert times == sorted(times)

    # Sampling vs GPU-FAN: "over 12x for all scales of rgg" (Fig 5a).
    for p in result.family("rgg"):
        assert isinstance(p.gpu_fan_seconds, float)
        assert p.gpu_fan_seconds > 8 * p.sampling_seconds

    # The edge-parallel gap grows with scale on delaunay (Fig 5b: "the
    # speedup it achieves grows with the scale of the graph").
    del_pts = result.family("delaunay")
    ep_ratios = [p.edge_parallel_seconds / p.sampling_seconds
                 for p in del_pts]
    assert ep_ratios[-1] > ep_ratios[0]
    assert ep_ratios[-1] > 2.0

    # Jia reader limitation: kron has isolated vertices at every scale.
    for p in result.family("kron"):
        assert p.edge_parallel_seconds == figure5.READER_REJECTS

    # Edge-parallel/sampling crossover on small delaunay instances.
    small = del_pts[0]
    big = del_pts[-1]
    assert small.edge_parallel_seconds < small.sampling_seconds
    assert big.edge_parallel_seconds > big.sampling_seconds


def test_figure5_gpu_fan_oom_cliff(benchmark):
    """GPU-FAN's missing data points: its predecessor matrix no longer
    fits at scale 17 while the paper's O(n) method runs on."""
    from repro.bc.gpu_fan import supports_graph
    from repro.graph.generators import rgg_n_2
    from repro.gpusim.memory import strategy_footprint
    from repro.gpusim.spec import GTX_TITAN

    def check():
        g = rgg_n_2(17, seed=0)
        fan_fits = supports_graph(g, GTX_TITAN.memory_bytes)
        ours = sum(strategy_footprint(g, "work-efficient",
                                      GTX_TITAN.num_sms).values())
        return fan_fits, ours

    fan_fits, ours_bytes = run_once(benchmark, check)
    assert not fan_fits
    assert ours_bytes < GTX_TITAN.memory_bytes // 10
