"""Benchmark: regenerate Figure 1 (+ Figure 2 work counts).

Paper shape: vertex 4 carries the highest score; vertices 8 and 9 score
zero; iteration 2 of the BFS from vertex 4 needs only 4 threads under
the work-efficient mapping versus one per vertex (9) or per directed
edge (22) for the baselines.
"""

import pytest
from conftest import run_once

from repro.harness.experiments import figure1


def test_figure1_example_scores(benchmark):
    result = run_once(benchmark, figure1.run)
    benchmark.extra_info["rendered"] = figure1.render(result)

    assert result.argmax_paper_label == 4
    assert result.bc[7] == pytest.approx(0.0)
    assert result.bc[8] == pytest.approx(0.0)
    # Scores are symmetric for the symmetric pair 1/3.
    assert result.bc[0] == pytest.approx(result.bc[2])

    assert result.threads_vertex_parallel == 9
    assert result.threads_edge_parallel == 22
    assert result.threads_work_efficient == 4
    assert result.edges_needing_traversal < result.threads_edge_parallel
