"""Benchmark: regenerate Table III (edge-parallel vs sampling MTEPS).

Paper shape (values at the paper's hardware/scale in parentheses):

* sampling wins by roughly an order of magnitude on the high-diameter
  rows — af_shell9 (13.31x), delaunay_n20 (10.23x), luxembourg (8.31x);
* near-parity on the scale-free/small-world rows — caida (1.01x),
  gowalla (1.05x), amazon (1.16x), smallworld (1.34x), cnr (1.56x);
* geometric-mean speedup in the low single digits (2.71x).
"""

from conftest import run_once

from repro.harness.experiments import table3


def test_table3_sampling_vs_edge_parallel(benchmark, cfg):
    result = run_once(benchmark, table3.run, cfg)
    benchmark.extra_info["rendered"] = table3.render(result)
    benchmark.extra_info["geomean_speedup"] = result.geomean_speedup

    assert len(result.rows) == 8

    # Order-of-magnitude wins on the high-diameter graphs.
    assert result.row("af_shell9").speedup > 4.0
    assert result.row("delaunay_n20").speedup > 4.0
    assert result.row("luxembourg.osm").speedup > 1.0

    # Parity band on the scale-free / small-world graphs.
    for name in ("caidaRouterLevel", "cnr-2000", "com-amazon",
                 "loc-gowalla", "smallworld"):
        assert 0.6 < result.row(name).speedup < 3.0, name

    # The headline number: geometric mean in the low single digits.
    assert 1.5 < result.geomean_speedup < 6.0

    # High-diameter rows beat every parity row (who-wins ordering).
    parity_max = max(result.row(n).speedup
                     for n in ("caidaRouterLevel", "loc-gowalla",
                               "smallworld"))
    assert result.row("af_shell9").speedup > parity_max
    assert result.row("delaunay_n20").speedup > parity_max
