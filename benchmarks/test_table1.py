"""Benchmark: regenerate Table I (frontier-size/time correlations).

Paper shape: rho_{v,t} is positive on every graph and root; on the
uniform-degree families (rgg, delaunay, smallworld) both correlations
are strong.  Known divergence (recorded in EXPERIMENTS.md): on kron our
cost model keeps rho_{e,t} high where the paper measures ~0.1, because
real hardware hides hub-edge streaming even better than the model's
streaming cap.
"""

from conftest import run_once

from repro.harness.experiments import table1


def test_table1_correlations(benchmark, cfg):
    result = run_once(benchmark, table1.run, cfg, roots_per_graph=3)
    benchmark.extra_info["rendered"] = table1.render(result)

    assert len(result.rows) == 15  # 3 roots x 5 graphs
    # Headline: vertex-frontier size correlates with time everywhere.
    assert result.min_vertex_corr() > 0.0
    for name in ("delaunay_n20", "smallworld"):
        for row in result.by_graph(name):
            assert row.rho_vertex_time > 0.8
            assert row.rho_edge_time > 0.8
    for row in result.by_graph("rgg_n_2_20"):
        assert row.rho_vertex_time > 0.6
