"""Baseline benchmark harness: the first point on the repo's perf trajectory.

Runs every device strategy over a sample of Table II datasets (shrunk
by ``--scale-factor``) and writes ``BENCH_baseline.json``.  The body of
the document is *simulated* and therefore deterministic — makespan
cycles, simulated seconds, MTEPS, per-level totals — so future PRs that
claim a perf win (sharding, batching, caching) can diff against it
exactly; real wall-clock measurements of the Python harness itself are
segregated under the single ``timing`` key, following the
``repro.observability`` export convention.

Usage::

    PYTHONPATH=src python benchmarks/baseline.py --out BENCH_baseline.json

Regenerate (same flags, same seed) whenever the cost model or the
engine changes behaviour on purpose; CI's profile-smoke job and the
observability tests keep the schema honest.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.graph.generators import make_dataset
from repro.gpusim import GTX_TITAN, Device
from repro.observability import MetricsRegistry

BENCH_SCHEMA = "repro.bench/v1"

#: One dataset per structural class, small enough for laptop CI.
DATASET_NAMES = (
    "caidaRouterLevel",   # scale-free
    "delaunay_n20",       # mesh
    "kron_g500-logn20",   # scale-free, isolated vertices
    "luxembourg.osm",     # road, high diameter
    "smallworld",         # small world
)

#: Strategies benchmarked (gpu-fan excluded: its O(n^2) predecessor
#: matrix is the Figure 5 failure mode, not a baseline to track).
STRATEGY_NAMES = (
    "work-efficient",
    "edge-parallel",
    "vertex-parallel",
    "hybrid",
    "sampling",
)


def run_baseline(scale_factor: int = 1024, roots: int = 16, seed: int = 0):
    """Return ``(document, wall_per_run)`` for the baseline sweep."""
    device = Device(GTX_TITAN)
    results = []
    wall_per_run = {}
    for name in DATASET_NAMES:
        g = make_dataset(name, scale_factor=scale_factor, seed=seed)
        rng = np.random.default_rng(seed)
        sample = np.sort(rng.choice(g.num_vertices,
                                    size=min(roots, g.num_vertices),
                                    replace=False))
        for strategy in STRATEGY_NAMES:
            metrics = MetricsRegistry()
            t0 = time.perf_counter()
            run = device.run_bc(g, strategy=strategy, roots=sample,
                                metrics=metrics)
            wall = time.perf_counter() - t0
            wall_per_run[f"{name}/{strategy}"] = wall
            levels = sum(len(rt.levels) for rt in run.trace.roots)
            results.append({
                "dataset": name,
                "strategy": strategy,
                "num_vertices": int(g.num_vertices),
                "num_edges": int(g.num_edges),
                "num_roots": int(run.num_roots),
                "makespan_cycles": float(run.cycles),
                "sim_seconds": float(run.seconds),
                "mteps": float(run.mteps()),
                "extrapolated_mteps": float(run.extrapolated_mteps()),
                "levels_traced": int(levels),
                "bytes_allocated": int(sum(run.memory_report.values())),
                "sampling_chose_edge_parallel":
                    run.sampling_chose_edge_parallel,
            })
    doc = {
        "schema": BENCH_SCHEMA,
        "config": {
            "device": GTX_TITAN.name,
            "scale_factor": int(scale_factor),
            "roots": int(roots),
            "seed": int(seed),
        },
        "results": results,
    }
    return doc, wall_per_run


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_baseline.json")
    parser.add_argument("--scale-factor", type=int, default=1024)
    parser.add_argument("--roots", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    doc, wall_per_run = run_baseline(scale_factor=args.scale_factor,
                                     roots=args.roots, seed=args.seed)
    doc["timing"] = {
        "wall_seconds": time.perf_counter() - t0,
        "per_run": wall_per_run,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(doc, sort_keys=True, indent=2,
                            separators=(",", ": ")) + "\n")
    for row in doc["results"]:
        print(f"{row['dataset']:>20s} {row['strategy']:>15s} "
              f"{row['makespan_cycles']:>14.0f} cycles "
              f"{row['mteps']:>8.1f} MTEPS")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
