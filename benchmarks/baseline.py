"""Baseline benchmark harness: the first point on the repo's perf trajectory.

Thin wrapper over :func:`repro.bench.run_bench_grid` — the same grid the
``repro bench run`` CLI executes — that writes ``BENCH_baseline.json``.
The body of the document is *simulated* and therefore deterministic —
makespan cycles, simulated seconds, MTEPS, per-level totals — so future
PRs that claim a perf win (sharding, batching, caching) diff against it
exactly via ``repro bench diff --against BENCH_baseline.json``; real
wall-clock measurements of the Python harness itself are segregated
under the single ``timing`` key, following the ``repro.observability``
export convention.

Usage::

    PYTHONPATH=src python benchmarks/baseline.py --out BENCH_baseline.json

Regenerate (same flags, same seed) whenever the cost model or the
engine changes behaviour on purpose; CI's ``perf-regression`` job diffs
every push against the committed file and fails on regression.

``--n-samps`` sizes the sampling strategy's classification phase and
defaults to half of ``--roots`` (see :func:`repro.bench.default_n_samps`)
so Algorithm 5's chosen method actually executes a non-empty phase 2 —
with the historical 512-sample default every root was consumed by
classification and ``sampling_chose_edge_parallel`` described a choice
that never ran.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench import BENCH_SCHEMA, DATASET_NAMES, STRATEGY_NAMES, run_bench_grid

__all__ = ["BENCH_SCHEMA", "DATASET_NAMES", "STRATEGY_NAMES",
           "run_baseline", "main"]


def run_baseline(scale_factor: int = 1024, roots: int = 16, seed: int = 0,
                 n_samps: int | None = None, fold: bool = True):
    """Return ``(document, wall_per_run)`` for the baseline sweep."""
    return run_bench_grid(scale_factor=scale_factor, roots=roots, seed=seed,
                          n_samps=n_samps, fold=fold)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_baseline.json")
    parser.add_argument("--scale-factor", type=int, default=1024)
    parser.add_argument("--roots", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--n-samps", type=int, default=None,
                        help="sampling-phase size (default: half of --roots)")
    parser.add_argument("--no-fold", action="store_true",
                        help="skip the degree-1 folding preprocess "
                             "(regenerates the pre-fold comparison baseline, "
                             "benchmarks/BENCH_prefold.json)")
    args = parser.parse_args(argv)

    t0 = time.perf_counter()
    doc, wall_per_run = run_baseline(scale_factor=args.scale_factor,
                                     roots=args.roots, seed=args.seed,
                                     n_samps=args.n_samps,
                                     fold=not args.no_fold)
    doc["timing"] = {
        "wall_seconds": time.perf_counter() - t0,
        "per_run": wall_per_run,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(doc, sort_keys=True, indent=2,
                            separators=(",", ": ")) + "\n")
    for row in doc["results"]:
        if "mteps" in row:
            tail = f"{row['mteps']:>8.1f} MTEPS"
        else:  # service-load rows report latency, not traversal rate
            tail = (f"p99 {row['p99_latency']:.2e}s "
                    f"shed {row['shed_rate']:.0%}")
        print(f"{row['dataset']:>20s} {row['strategy']:>15s} "
              f"{row['makespan_cycles']:>14.0f} cycles {tail}")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
