"""Benchmark: regenerate Figure 3 (vertex-frontier evolution).

Paper shape: rgg / delaunay / luxembourg frontiers stay small (a few
percent of n at peak) and evolve over many iterations; kron and
smallworld balloon past ~40% of the graph within a handful of
iterations — the split that motivates per-iteration strategy selection.
"""

from conftest import run_once

from repro.harness.experiments import figure3
from repro.metrics.frontier import classify_frontier_shape


def test_figure3_frontier_evolution(benchmark, cfg):
    result = run_once(benchmark, figure3.run, cfg, roots_per_graph=3)
    benchmark.extra_info["rendered"] = figure3.render(result)

    assert len(result.series) == 15

    for name in ("kron_g500-logn20", "smallworld"):
        for evo in result.by_graph(name):
            assert classify_frontier_shape(evo) == "ballooning"
            assert evo.peak_percentage > 25.0
            assert evo.num_levels < 15

    for name in ("rgg_n_2_20", "delaunay_n20", "luxembourg.osm"):
        for evo in result.by_graph(name):
            assert classify_frontier_shape(evo) == "gradual"
            assert evo.peak_percentage < 10.0
            assert evo.num_levels > 20
