"""Benchmark: regenerate Table II (dataset structural statistics).

Paper shape: the suite spans the structural classes the strategies
discriminate on — road/mesh rows with near-uniform degree and large
diameter, scale-free rows with extreme hubs and tiny diameter, and
kron's isolated vertices.
"""

from conftest import run_once

from repro.harness.experiments import table2


def test_table2_dataset_suite(benchmark, cfg):
    result = run_once(benchmark, table2.run, cfg)
    benchmark.extra_info["rendered"] = table2.render(result, cfg)

    assert len(result.rows) == 10

    lux = result.stats("luxembourg.osm")
    assert lux.max_degree <= 6            # paper: 6
    assert lux.num_edges < 1.3 * lux.num_vertices

    kron = result.stats("kron_g500-logn20")
    assert kron.max_degree > 0.02 * kron.num_vertices  # hub regime
    assert kron.diameter <= 10            # paper: 6

    af = result.stats("af_shell9")
    assert 15 < af.num_edges / af.num_vertices < 30  # wide-stencil mesh

    # Diameter split drives everything else in the paper.
    high = min(result.stats(n).diameter
               for n in ("af_shell9", "delaunay_n20", "luxembourg.osm",
                         "rgg_n_2_20"))
    low = max(result.stats(n).diameter
              for n in ("kron_g500-logn20", "smallworld", "loc-gowalla"))
    assert high > 2 * low
