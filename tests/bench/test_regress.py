"""Performance-regression gate: classification rules, grid, and CLI."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    DATASET_NAMES,
    STRATEGY_NAMES,
    default_n_samps,
    diff_bench,
    load_bench,
    run_bench_grid,
)
from repro.cli import main
from repro.errors import BenchFormatError
from repro.gpusim import GTX_TITAN, Device
from repro.observability import dumps, write_json

# Kernel-only grid (the service load rows have their own tests in
# tests/service/test_loadgen.py and are scenario-keyed, not dataset-keyed).
GRID_KW = dict(scale_factor=8192, roots=4, seed=0,
               datasets=("smallworld", "kron_g500-logn20"),
               include_service=False)


def _doc(rows, **config):
    return {"schema": BENCH_SCHEMA, "config": config,
            "results": [
                {"dataset": d, "strategy": s, "makespan_cycles": v}
                for d, s, v in rows
            ]}


class TestClassification:
    def test_identical_docs_all_unchanged(self):
        doc = _doc([("a", "hybrid", 1e6), ("b", "sampling", 2e6)])
        diff = diff_bench(doc, doc)
        assert [r.status for r in diff.rows] == ["unchanged", "unchanged"]
        assert not diff.has_regressions and diff.exit_code == 0

    def test_slowdown_above_both_tolerances_regresses(self):
        base = _doc([("a", "hybrid", 1e6)])
        curr = _doc([("a", "hybrid", 1.2e6)])
        diff = diff_bench(base, curr)
        (row,) = diff.rows
        assert row.status == "regressed"
        assert row.delta == pytest.approx(0.2e6)
        assert row.ratio == pytest.approx(1.2)
        assert diff.exit_code == 1

    def test_speedup_is_improved_not_regressed(self):
        diff = diff_bench(_doc([("a", "hybrid", 1e6)]),
                          _doc([("a", "hybrid", 0.5e6)]))
        assert diff.rows[0].status == "improved"
        assert diff.exit_code == 0

    def test_min_effect_floor_suppresses_tiny_absolute_changes(self):
        """A 10% swing on a 40-cycle run is under the default 1000-cycle
        floor: unchanged, even though it clears the relative threshold."""
        diff = diff_bench(_doc([("a", "hybrid", 40.0)]),
                          _doc([("a", "hybrid", 44.0)]))
        assert diff.rows[0].status == "unchanged"

    def test_rel_tol_suppresses_small_relative_changes(self):
        """+2000 cycles on 1M clears the floor but is 0.2%: unchanged."""
        diff = diff_bench(_doc([("a", "hybrid", 1e6)]),
                          _doc([("a", "hybrid", 1.002e6)]))
        assert diff.rows[0].status == "unchanged"

    def test_higher_is_better_flips_direction_for_mteps(self):
        base = _doc([("a", "hybrid", 0)])
        base["results"][0]["mteps"] = 100.0
        curr = _doc([("a", "hybrid", 0)])
        curr["results"][0]["mteps"] = 50.0
        diff = diff_bench(base, curr, metric="mteps")
        assert diff.higher_is_better
        assert diff.rows[0].status == "regressed"

    def test_missing_and_new_pairs(self):
        base = _doc([("a", "hybrid", 1e6), ("a", "sampling", 2e6)])
        curr = _doc([("a", "hybrid", 1e6), ("b", "hybrid", 3e6)])
        diff = diff_bench(base, curr)
        by = {r.pair: r.status for r in diff.rows}
        assert by == {"a/hybrid": "unchanged", "a/sampling": "missing",
                      "b/hybrid": "new"}
        assert not diff.has_regressions  # lost coverage warns, gate is perf

    def test_config_mismatch_warns(self):
        base = _doc([("a", "hybrid", 1e6)], seed=0, roots=16)
        curr = _doc([("a", "hybrid", 1e6)], seed=1, roots=16)
        diff = diff_bench(base, curr)
        assert any("seed" in w for w in diff.config_warnings)
        assert "warning:" in diff.render_table()

    def test_verdict_document_shape(self):
        diff = diff_bench(_doc([("a", "hybrid", 1e6)]),
                          _doc([("a", "hybrid", 2e6)]))
        doc = diff.to_dict()
        assert doc["schema"] == "repro.bench.diff/v1"
        assert doc["verdict"] == "regressed"
        assert doc["regressions"] == ["a/hybrid"]
        assert doc["summary"]["regressed"] == 1
        # Canonically serialisable (the report file CI uploads).
        json.loads(dumps(doc))

    def test_duplicate_pair_rejected(self):
        dup = _doc([("a", "hybrid", 1.0), ("a", "hybrid", 2.0)])
        with pytest.raises(BenchFormatError, match="duplicate"):
            diff_bench(dup, dup)


class TestGrid:
    def test_grid_is_deterministic_and_complete(self):
        a, _ = run_bench_grid(**GRID_KW)
        b, _ = run_bench_grid(**GRID_KW)
        assert dumps(a).encode() == dumps(b).encode()
        assert len(a["results"]) == 2 * len(STRATEGY_NAMES)
        pairs = {(r["dataset"], r["strategy"]) for r in a["results"]}
        assert len(pairs) == len(a["results"])

    def test_sampling_rows_carry_the_decision_audit(self):
        """The satellite fix: sampling rows must expose the Algorithm 5
        classification, and n_samps must leave a non-empty phase 2 so
        the chosen method actually ran."""
        doc, _ = run_bench_grid(**GRID_KW)
        assert doc["config"]["n_samps"] == default_n_samps(4) == 2
        for row in doc["results"]:
            if row["strategy"] in ("sampling", "batched"):
                # batched classifies through the same Algorithm 5 depth
                # rule and must expose the same audit fields.
                assert row["sampling_chose_edge_parallel"] in (True, False)
                assert row["sampling_median_depth"] is not None
                assert row["sampling_depth_cutoff"] is not None
            else:
                assert row["sampling_chose_edge_parallel"] is None
                assert row["sampling_median_depth"] is None

    def test_committed_baseline_has_populated_sampling_fields(self):
        """Regression guard for the satellite: the checked-in baseline
        must never go back to decision-free sampling rows."""
        from pathlib import Path
        doc = load_bench(Path(__file__).resolve().parents[2]
                         / "BENCH_baseline.json")
        sampling = [r for r in doc["results"] if r["strategy"] == "sampling"]
        assert sampling
        assert all(r["sampling_chose_edge_parallel"] is not None
                   for r in sampling)
        assert doc["config"]["n_samps"] < doc["config"]["roots"]
        # Table II datasets plus the service load-generator rows.
        assert set(DATASET_NAMES) | {"service-load"} == \
            {r["dataset"] for r in doc["results"]}
        service = [r for r in doc["results"]
                   if r["dataset"] == "service-load"]
        assert {r["strategy"] for r in service} >= {"steady", "overload"}
        assert all(r["makespan_cycles"] > 0 for r in service)

    def test_straggler_device_regresses_every_pair(self):
        """Acceptance: a deliberately slowed device must trip the gate,
        naming the regressed (dataset, strategy) pairs."""
        base, _ = run_bench_grid(**GRID_KW)
        slow = Device(GTX_TITAN)
        slow.straggler_factor = 2.0
        curr, _ = run_bench_grid(device=slow, **GRID_KW)
        diff = diff_bench(base, curr)
        assert diff.has_regressions and diff.exit_code == 1
        assert {r.pair for r in diff.regressed} == {
            f"{d}/{s}" for d in GRID_KW["datasets"] for s in STRATEGY_NAMES}
        table = diff.render_table()
        assert "REGRESSED: " in table and "smallworld/hybrid" in table


class TestBenchCLI:
    def _write(self, tmp_path, name, doc):
        path = tmp_path / name
        write_json(path, doc)
        return str(path)

    def test_run_diff_self_is_all_unchanged(self, tmp_path, capsys):
        """Acceptance: an identical-seed rerun diffs clean, exit 0."""
        out = str(tmp_path / "cur.json")
        rc = main(["bench", "run", "--out", out, "--scale-factor", "8192",
                   "--roots", "4"])
        assert rc == 0
        assert json.loads(open(out).read())["schema"] == BENCH_SCHEMA
        rc = main(["bench", "diff", out, "--against", out,
                   "--fail-on-regression"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "no regressions" in text
        assert "regressed" not in text.replace("0 regressed", "")

    def test_diff_slowed_run_exits_nonzero_and_names_pairs(
            self, tmp_path, capsys):
        base, _ = run_bench_grid(**GRID_KW)
        slow = Device(GTX_TITAN)
        slow.straggler_factor = 2.0
        curr, _ = run_bench_grid(device=slow, **GRID_KW)
        base_p = self._write(tmp_path, "base.json", base)
        curr_p = self._write(tmp_path, "curr.json", curr)
        report = tmp_path / "diff.json"

        rc = main(["bench", "diff", curr_p, "--against", base_p,
                   "--fail-on-regression", "--report", str(report)])
        assert rc == 1
        text = capsys.readouterr().out
        assert "REGRESSED: " in text and "smallworld/sampling" in text

        saved = json.loads(report.read_text())
        assert saved["schema"] == "repro.bench.diff/v1"
        assert saved["verdict"] == "regressed"
        assert "kron_g500-logn20/edge-parallel" in saved["regressions"]

        # Without --fail-on-regression the diff is informational.
        assert main(["bench", "diff", curr_p, "--against", base_p]) == 0
        capsys.readouterr()

        # bench report re-renders the saved verdict.
        assert main(["bench", "report", str(report)]) == 0
        assert "REGRESSED: " in capsys.readouterr().out

    def test_diff_rejects_non_bench_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        rc = main(["bench", "diff", str(bad), "--against", str(bad)])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_load_bench_validates(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"schema": BENCH_SCHEMA, "results": [{}]}))
        with pytest.raises(BenchFormatError, match="dataset"):
            load_bench(path)
        path.write_text("nope")
        with pytest.raises(BenchFormatError, match="not valid JSON"):
            load_bench(path)

    def test_baseline_script_matches_bench_run(self, tmp_path, capsys):
        """benchmarks/baseline.py and `repro bench run` are the same
        grid: identical flags produce identical bodies."""
        import importlib.util
        from pathlib import Path
        spec = importlib.util.spec_from_file_location(
            "baseline", Path(__file__).resolve().parents[2]
            / "benchmarks" / "baseline.py")
        baseline = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(baseline)

        script_out = tmp_path / "script.json"
        cli_out = tmp_path / "cli.json"
        assert baseline.main(["--out", str(script_out),
                              "--scale-factor", "8192", "--roots", "4"]) == 0
        assert main(["bench", "run", "--out", str(cli_out),
                     "--scale-factor", "8192", "--roots", "4"]) == 0
        capsys.readouterr()
        a = json.loads(script_out.read_text())
        b = json.loads(cli_out.read_text())
        a.pop("timing"), b.pop("timing")
        assert dumps(a) == dumps(b)
