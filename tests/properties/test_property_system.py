"""Property-based tests across the simulator, cluster and metrics."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro._util import chunk_max_sum
from repro.bc.brandes import brandes_reference
from repro.cluster.distributed import distributed_bc_values, partition_roots
from repro.cluster.mpi_sim import SimComm
from repro.graph.build import from_edges
from repro.gpusim.cost import CostModel
from repro.gpusim.device import Device, _list_schedule
from repro.metrics.correlation import pearson


@st.composite
def graphs(draw, max_n=14, max_m=30):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m, max_size=m,
        )
    )
    return from_edges(edges, num_vertices=n)


# ----------------------------------------------------------------------
# chunk serialisation model
# ----------------------------------------------------------------------
@given(st.lists(st.integers(0, 1000), min_size=1, max_size=200),
       st.integers(1, 64))
@settings(max_examples=60, deadline=None)
def test_chunk_max_sum_bounds(weights, chunk):
    w = np.asarray(weights)
    out = chunk_max_sum(w, chunk)
    # Bounded below by both the max element and the perfect-throughput
    # division; bounded above by full serialisation.
    assert out >= w.max()
    assert out * chunk >= w.sum()
    assert out <= w.sum()


@given(st.lists(st.integers(0, 100), min_size=1, max_size=100))
@settings(max_examples=40, deadline=None)
def test_imbalance_never_cheaper_than_mean(weights):
    c = CostModel(cycle_scale=1.0)
    w = np.asarray(weights, dtype=np.int64)
    with_imb = c.we_forward(w, 16)
    without = c.without_imbalance().we_forward(w, 16)
    assert with_imb >= without - 1e-9


# ----------------------------------------------------------------------
# scheduling
# ----------------------------------------------------------------------
@given(st.lists(st.floats(0.0, 1e6, allow_nan=False), min_size=0,
                max_size=100),
       st.integers(1, 16))
@settings(max_examples=60, deadline=None)
def test_list_schedule_bounds(costs, workers):
    makespan, per = _list_schedule(costs, workers)
    total = sum(costs)
    assert makespan >= total / workers - 1e-6
    assert makespan <= total + 1e-6
    assert np.isclose(per.sum(), total)
    if costs:
        assert makespan >= max(costs) - 1e-9


# ----------------------------------------------------------------------
# device strategies all compute the same values
# ----------------------------------------------------------------------
@given(graphs(max_n=10, max_m=20),
       st.sampled_from(["work-efficient", "edge-parallel", "hybrid",
                        "sampling", "gpu-fan"]))
@settings(max_examples=25, deadline=None)
def test_device_strategies_exact(g, strategy):
    run = Device().run_bc(g, strategy=strategy)
    assert np.allclose(run.bc, brandes_reference(g), rtol=1e-9, atol=1e-9)


# ----------------------------------------------------------------------
# cluster decomposition
# ----------------------------------------------------------------------
@given(graphs(max_n=12, max_m=24), st.integers(1, 6))
@settings(max_examples=20, deadline=None)
def test_distributed_equals_serial(g, ranks):
    assert np.allclose(distributed_bc_values(g, ranks),
                       brandes_reference(g), rtol=1e-9, atol=1e-9)


@given(st.integers(0, 500), st.integers(1, 32))
@settings(max_examples=60, deadline=None)
def test_partition_roots_exact_cover(n, parts):
    out = partition_roots(n, parts)
    assert len(out) == parts
    allr = np.concatenate(out) if out else np.empty(0)
    assert np.array_equal(allr, np.arange(n))
    sizes = [p.size for p in out]
    assert max(sizes) - min(sizes) <= 1


@given(st.lists(st.integers(-100, 100), min_size=1, max_size=10),
       st.integers(2, 6))
@settings(max_examples=40, deadline=None)
def test_simcomm_reduce_is_sum(values, size):
    arrays = [np.asarray(values, dtype=float) * (r + 1) for r in range(size)]
    out = SimComm(size).reduce(arrays)
    factor = size * (size + 1) / 2
    assert np.allclose(out, np.asarray(values, dtype=float) * factor)


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
@given(st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=3,
                max_size=50),
       st.floats(0.1, 10.0), st.floats(-100.0, 100.0))
@settings(max_examples=50, deadline=None)
def test_pearson_affine_invariance(xs, a, b):
    x = np.asarray(xs)
    y = a * x + b
    # Skip numerically degenerate series (constant up to rounding, or
    # whose spread underflows in the variance computation).
    if x.std() <= 1e-9 * (np.abs(x).max() + 1.0) or y.std() == 0.0:
        return
    assert abs(pearson(x, y) - 1.0) < 1e-6


# ----------------------------------------------------------------------
# resilience: recovery is exact for arbitrary single fail-stop points
# ----------------------------------------------------------------------
@given(graphs(max_n=10, max_m=20),
       st.integers(2, 5),                 # ranks
       st.integers(0, 4),                 # victim rank (mod ranks)
       st.sampled_from(["compute", "bcast", "reduce", "barrier"]),
       st.integers(0, 3))                 # roots completed before dying
@settings(max_examples=30, deadline=None)
def test_resilient_bc_survives_any_single_fail_stop(g, ranks, victim,
                                                    where, after):
    from repro.resilience import FaultPlan, resilient_distributed_bc

    plan = FaultPlan.fail_stop(victim % ranks, where=where,
                               after_roots=after)
    run = resilient_distributed_bc(g, ranks, fault_plan=plan)
    assert run.exact
    assert np.allclose(run.values, brandes_reference(g))
