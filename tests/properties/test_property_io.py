"""Property-based round-trip tests for the graph file formats."""

import io

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.build import from_edges
from repro.graph.io import (
    read_dimacs_metis,
    read_matrix_market,
    read_snap_edgelist,
    write_dimacs_metis,
    write_matrix_market,
    write_snap_edgelist,
)


@st.composite
def graphs(draw, max_n=20, max_m=50):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m, max_size=m,
        )
    )
    return from_edges(edges, num_vertices=n)


def _roundtrip(g, writer, reader):
    buf = io.StringIO()
    writer(g, buf)
    buf.seek(0)
    return reader(buf)


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_snap_roundtrip(g):
    g2 = _roundtrip(g, write_snap_edgelist, read_snap_edgelist)
    # SNAP drops trailing isolated vertices (no edge mentions them);
    # edge structure must survive exactly.
    assert g2.num_edges == g.num_edges
    src, src2 = g.edge_sources(), g2.edge_sources()
    assert set(zip(src.tolist(), g.adj.tolist())) >= \
        set(zip(src2.tolist(), g2.adj.tolist()))


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_metis_roundtrip_exact(g):
    g2 = _roundtrip(g, write_dimacs_metis, read_dimacs_metis)
    # METIS enumerates every vertex, so the round trip is exact —
    # including isolated vertices.
    assert g2.num_vertices == g.num_vertices
    assert np.array_equal(g2.indptr, g.indptr)
    assert np.array_equal(g2.adj, g.adj)


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_matrix_market_roundtrip(g):
    g2 = _roundtrip(g, write_matrix_market, read_matrix_market)
    assert g2.num_vertices == g.num_vertices
    assert np.array_equal(g2.indptr, g.indptr)
    assert np.array_equal(g2.adj, g.adj)
