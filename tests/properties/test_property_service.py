"""Property tests for the service's determinism contract.

The ISSUE's reproducibility clause: with the same seed and the same
FaultPlan, a job's retry delays and the scheduler's decision sequence
are **byte-identical** across runs.  That property is what makes the
crash grid meaningful (recovered runs converge on the reference run)
and chaos failures replayable from their journal alone.

The decision-trace harness (``run_decision_trace``) is shared with the
scheduler unit suite so both layers exercise the identical artefact.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import backoff_delay
from tests.service.test_scheduler import run_decision_trace

seeds = st.integers(min_value=0, max_value=2**31 - 1)
attempts = st.integers(min_value=1, max_value=12)
tokens = st.text(min_size=0, max_size=16)

#: Small pool of fault plans covering every retryable kind plus the
#: clean path; hypothesis picks the (seed, plan) combination.
FAULT_PLANS = ("", "fail:0@compute+1", "oom:0x1", "sdc:0@delta",
               "fail:0@compute+1;oom:0x1", "oom:0x5")


@given(seed=seeds, attempt=attempts, token=tokens)
def test_backoff_is_a_pure_function_of_its_inputs(seed, attempt, token):
    a = backoff_delay(attempt, seed=seed, token=token)
    b = backoff_delay(attempt, seed=seed, token=token)
    assert a == b  # bitwise: float equality, no tolerance


@given(seed=seeds, attempt=attempts, token=tokens)
def test_backoff_stays_in_the_jitter_window(seed, attempt, token):
    raw = min(2.0, 0.05 * 2 ** (attempt - 1))
    d = backoff_delay(attempt, seed=seed, token=token)
    assert raw / 2 <= d < raw


@given(seed=seeds, attempt=attempts)
def test_backoff_decorrelates_jobs(seed, attempt):
    """Different job ids must not share a jitter stream (thundering
    herd); equal draws are possible but not for these two tokens under
    any seed hypothesis finds."""
    assert backoff_delay(attempt, seed=seed, token="job-a") != \
        backoff_delay(attempt, seed=seed, token="job-b")


@settings(deadline=None, max_examples=12)
@given(seed=st.integers(min_value=0, max_value=1000),
       plan=st.sampled_from(FAULT_PLANS))
def test_same_seed_same_faultplan_is_byte_identical(seed, plan):
    """The headline property: decision log and delay sequence replay
    exactly — JSON-serialised decisions compare as bytes."""
    trace_a, delays_a, out_a = run_decision_trace(seed, plan)
    trace_b, delays_b, out_b = run_decision_trace(seed, plan)
    assert trace_a == trace_b
    assert delays_a == delays_b
    assert out_a.attempts == out_b.attempts
    assert out_a.ok == out_b.ok
    if out_a.ok:
        assert (out_a.values == out_b.values).all()


@settings(deadline=None, max_examples=8)
@given(seed=st.integers(min_value=0, max_value=1000))
def test_different_faultplan_changes_the_trace(seed):
    trace_clean, delays_clean, _ = run_decision_trace(seed, "")
    trace_chaos, delays_chaos, _ = run_decision_trace(
        seed, "fail:0@compute+1")
    assert trace_clean != trace_chaos
    assert delays_clean == [] and len(delays_chaos) >= 1
