"""Property-based invariants of the decision-trace audit.

For random graphs and random α/β thresholds, the strategy sequence the
engine actually executed (``RootTrace.strategy_by_depth``) must be
reproducible two independent ways: from the recorded decision events,
and by replaying Algorithm 4 (:func:`select_strategy`) over the level
timeline's frontier sizes.  And a trace document must survive the
canonical-JSON round trip unchanged — the byte-determinism contract
``repro.trace/v1`` promises.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bc.hybrid import select_strategy
from repro.graph.build import from_edges
from repro.gpusim import Device
from repro.observability import (
    MetricsRegistry,
    dumps,
    trace_document,
    verify_decisions,
)
from repro.observability.trace import decided_strategy_by_depth


@st.composite
def graphs(draw, max_n=16, max_m=40):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m, max_size=m,
        )
    )
    return from_edges(edges, num_vertices=n)


def _hybrid_trace(g, alpha, beta):
    metrics = MetricsRegistry()
    run = Device().run_bc(g, strategy="hybrid", alpha=alpha, beta=beta,
                          check_memory=False, metrics=metrics)
    return trace_document(metrics, run=run, graph=g), run


@given(graphs(), st.integers(0, 12), st.integers(0, 12))
@settings(max_examples=30, deadline=None)
def test_recorded_decisions_replay_algorithm4(g, alpha, beta):
    """With α/β small enough to actually trip on tiny graphs, every
    executed level's strategy must equal both the recorded decision and
    a fresh select_strategy() replay of the frontier sequence."""
    doc, run = _hybrid_trace(g, alpha, beta)
    assert verify_decisions(doc) == []
    for rt in run.trace.roots:
        executed = rt.strategy_by_depth()
        decided = decided_strategy_by_depth(doc, int(rt.root))
        forward = sorted((lv for lv in rt.levels if lv.stage == "forward"),
                         key=lambda lv: lv.depth)
        replayed = executed.get(0)
        for prev, nxt in zip(forward, forward[1:]):
            replayed = select_strategy(replayed, prev.frontier_size,
                                       nxt.frontier_size,
                                       alpha=alpha, beta=beta)
            assert executed[nxt.depth] == replayed
            assert decided[nxt.depth] == replayed


@given(graphs(), st.integers(0, 12), st.integers(0, 12))
@settings(max_examples=30, deadline=None)
def test_decision_inputs_justify_the_rule(g, alpha, beta):
    """Each decision.step event's inputs must arithmetically entail its
    outcome: the α/β comparison in the rule is the recorded numbers."""
    doc, _ = _hybrid_trace(g, alpha, beta)
    for ev in doc["decisions"]:
        if ev["event"] != "decision.step":
            continue
        assert ev["alpha"] == alpha and ev["beta"] == beta
        delta = ev["delta_frontier"]
        assert delta == abs(ev["q_next"] - ev["q_curr"])
        if delta <= alpha:
            assert ev["strategy"] == ev["previous"]
            assert f"<= alpha={alpha}" in ev["rule"]
        elif ev["q_next"] > beta:
            assert ev["strategy"] == "edge-parallel"
            assert f"> beta={beta}" in ev["rule"]
        else:
            assert ev["strategy"] == "work-efficient"
            assert f"<= beta={beta}" in ev["rule"]


@given(graphs(max_n=12, max_m=24), st.integers(0, 12), st.integers(0, 12))
@settings(max_examples=20, deadline=None)
def test_trace_round_trips_through_canonical_json(g, alpha, beta):
    doc, _ = _hybrid_trace(g, alpha, beta)
    blob = dumps(doc)
    assert dumps(json.loads(blob)) == blob  # serialisation is a fixpoint
    assert verify_decisions(json.loads(blob)) == []
