"""Property-based tests for CSR construction and transforms."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.build import from_edges, relabel, symmetrize_edges
from repro.graph.csr import CSRGraph


@st.composite
def edge_lists(draw, max_n=24, max_m=60):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m, max_size=m,
        )
    )
    return n, edges


@given(edge_lists())
@settings(max_examples=60, deadline=None)
def test_csr_invariants(case):
    n, edges = case
    g = from_edges(edges, num_vertices=n)
    assert g.indptr.size == n + 1
    assert g.indptr[0] == 0
    assert g.indptr[-1] == g.adj.size
    assert np.all(np.diff(g.indptr) >= 0)
    if g.adj.size:
        assert 0 <= g.adj.min() and g.adj.max() < n
    # Undirected storage: adjacency is symmetric.
    src = g.edge_sources()
    fwd = set(zip(src.tolist(), g.adj.tolist()))
    assert all((b, a) in fwd for a, b in fwd)
    # No self loops, no duplicates.
    assert all(a != b for a, b in fwd)
    assert len(fwd) == g.adj.size


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_degree_sum_equals_adjacency(case):
    n, edges = case
    g = from_edges(edges, num_vertices=n)
    assert int(g.degrees.sum()) == g.num_directed_edges
    assert g.num_directed_edges == 2 * g.num_edges


@given(edge_lists(), st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_relabel_preserves_structure(case, rnd):
    n, edges = case
    g = from_edges(edges, num_vertices=n)
    perm = list(range(n))
    rnd.shuffle(perm)
    g2 = relabel(g, np.asarray(perm))
    assert g2.num_edges == g.num_edges
    assert sorted(g2.degrees.tolist()) == sorted(g.degrees.tolist())
    # Adjacency is conjugated by the permutation.
    perm_arr = np.asarray(perm)
    for v in range(n):
        expect = sorted(perm_arr[g.neighbors(v)].tolist())
        assert sorted(g2.neighbors(int(perm_arr[v])).tolist()) == expect


@given(edge_lists())
@settings(max_examples=40, deadline=None)
def test_symmetrize_idempotent_on_build(case):
    n, edges = case
    g1 = from_edges(edges, num_vertices=n)
    sym = symmetrize_edges(np.asarray(edges, dtype=np.int64).reshape(-1, 2))
    g2 = from_edges(sym, num_vertices=n, already_symmetric=True)
    assert np.array_equal(g1.adj, g2.adj)
    assert np.array_equal(g1.indptr, g2.indptr)
