"""Property-based tests for the BC algorithms and their invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bc.api import betweenness_centrality
from repro.bc.brandes import brandes_reference
from repro.bc.edge_parallel import bc_edge_parallel
from repro.bc.frontier import forward_sweep
from repro.bc.vertex_parallel import bc_vertex_parallel
from repro.bc.work_efficient import bc_work_efficient
from repro.graph.build import from_edges, relabel


@st.composite
def graphs(draw, max_n=16, max_m=40):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m, max_size=m,
        )
    )
    return from_edges(edges, num_vertices=n)


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_engine_matches_serial_reference(g):
    assert np.allclose(betweenness_centrality(g), brandes_reference(g),
                       rtol=1e-9, atol=1e-9)


@given(graphs(max_n=12, max_m=24))
@settings(max_examples=25, deadline=None)
def test_all_kernels_agree(g):
    ref = brandes_reference(g)
    for fn in (bc_work_efficient, bc_edge_parallel, bc_vertex_parallel):
        assert np.allclose(fn(g), ref, rtol=1e-9, atol=1e-9)


@given(graphs())
@settings(max_examples=30, deadline=None)
def test_bc_nonnegative_and_bounded(g):
    bc = betweenness_centrality(g)
    n = g.num_vertices
    assert np.all(bc >= -1e-9)
    # Maximum possible: (n-1)(n-2)/2 pairs for undirected.
    assert np.all(bc <= (n - 1) * (n - 2) / 2 + 1e-9)


@given(graphs())
@settings(max_examples=30, deadline=None)
def test_bc_total_mass_identity(g):
    """Sum over v of BC(v) equals the total interior length of all
    shortest paths: sum over pairs (dist - 1) for connected pairs."""
    bc = betweenness_centrality(g)
    total = 0.0
    for s in range(g.num_vertices):
        d = forward_sweep(g, s).distances
        reach = d[d > 0]
        total += float((reach - 1).sum())
    assert bc.sum() * 2.0 == np.float64(total).item() or np.isclose(
        bc.sum(), total / 2.0, rtol=1e-9, atol=1e-9
    )


@given(graphs(), st.randoms(use_true_random=False))
@settings(max_examples=25, deadline=None)
def test_bc_equivariant_under_relabeling(g, rnd):
    n = g.num_vertices
    perm = list(range(n))
    rnd.shuffle(perm)
    perm_arr = np.asarray(perm)
    bc = betweenness_centrality(g)
    bc2 = betweenness_centrality(relabel(g, perm_arr))
    # bc2[perm[v]] == bc[v].
    assert np.allclose(bc2[perm_arr], bc, rtol=1e-9, atol=1e-9)


@given(graphs())
@settings(max_examples=25, deadline=None)
def test_leaf_vertices_score_zero(g):
    bc = betweenness_centrality(g)
    for v in np.flatnonzero(g.degrees <= 1):
        assert bc[v] == 0.0


@given(graphs())
@settings(max_examples=25, deadline=None)
def test_sigma_counts_are_path_counts(g):
    """Cross-check sigma against brute-force shortest-path enumeration
    via powers of the adjacency relation (BFS layering)."""
    import itertools

    n = g.num_vertices
    s = 0
    fwd = forward_sweep(g, s)
    # Brute force: count shortest paths by DP over BFS levels.
    d = fwd.distances
    count = np.zeros(n)
    count[s] = 1
    order = np.argsort(d)
    for v in order:
        if d[v] <= 0:
            continue
        total = 0.0
        for u in g.neighbors(v):
            if d[u] == d[v] - 1:
                total += count[u]
        count[v] = total
    assert np.allclose(fwd.sigma, count)


@given(graphs(), st.integers(0, 1_000_000))
@settings(max_examples=25, deadline=None)
def test_source_partition_additivity(g, seed):
    """BC over any partition of the sources sums to the full BC."""
    n = g.num_vertices
    rng = np.random.default_rng(seed)
    mask = rng.random(n) < 0.5
    a = betweenness_centrality(g, sources=np.flatnonzero(mask))
    b = betweenness_centrality(g, sources=np.flatnonzero(~mask))
    assert np.allclose(a + b, betweenness_centrality(g), rtol=1e-9, atol=1e-9)


@given(graphs(max_n=14, max_m=30))
@settings(max_examples=20, deadline=None)
def test_forward_sweep_levels_partition(g):
    fwd = forward_sweep(g, 0)
    s_arr = fwd.s_array()
    assert np.unique(s_arr).size == s_arr.size
    assert s_arr.size == int((fwd.distances >= 0).sum())
    ends = fwd.ends()
    assert np.all(np.diff(ends) > 0)  # every level non-empty
