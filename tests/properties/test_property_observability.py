"""Property-based invariants of the observability layer.

Random graphs in, structural guarantees out: frontier sizes partition
the reached vertex set, ``ends`` offsets are strictly increasing over
non-empty levels, every exported counter/cycle value is non-negative
and finite, and span trees nest without overlap.
"""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bc.frontier import forward_sweep
from repro.graph.build import from_edges
from repro.gpusim import Device
from repro.observability import MetricsRegistry, SpanClock, registry_to_dict


@st.composite
def graphs(draw, max_n=16, max_m=40):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m, max_size=m,
        )
    )
    return from_edges(edges, num_vertices=n)


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_frontier_sizes_sum_to_reached_vertices(g):
    metrics = MetricsRegistry()
    res = forward_sweep(g, 0, metrics=metrics)
    reached = int(np.sum(res.distances >= 0))
    assert sum(lv.size for lv in res.levels) == reached
    # The counters tell the same story as the returned levels.
    assert metrics.counter("frontier.discovered").value == reached - 1
    assert metrics.counter("frontier.frontier_vertices").value == reached


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_ends_offsets_strictly_increasing(g):
    res = forward_sweep(g, 0)
    ends = res.ends()
    assert ends[0] == 0
    assert ends[-1] == res.s_array().size
    # Levels are non-empty by construction => strict monotonicity.
    assert np.all(np.diff(ends) > 0)


@given(graphs(max_n=12, max_m=24), st.sampled_from(["hybrid", "sampling"]))
@settings(max_examples=20, deadline=None)
def test_exported_metrics_nonnegative_finite(g, strategy):
    metrics = MetricsRegistry(clock=SpanClock(wall=lambda: 0.0))
    run = Device().run_bc(g, strategy=strategy, check_memory=False,
                          metrics=metrics)
    assert run.cycles >= 0 and math.isfinite(run.cycles)
    for rt in run.trace.roots:
        assert rt.cycles >= 0
        for lv in rt.levels:
            assert lv.cycles >= 0 and math.isfinite(lv.cycles)
            assert lv.frontier_size >= 0 and lv.edge_frontier >= 0
    doc = registry_to_dict(metrics)
    for inst in doc["counters"] + doc["gauges"]:
        assert math.isfinite(inst["value"])
        assert inst["value"] >= 0
    for h in doc["histograms"]:
        assert all(c >= 0 for c in h["counts"])
        assert math.isfinite(h["sum"])


def _check_span(span, parent_start, parent_end):
    assert span.end is not None
    assert span.start <= span.end
    assert parent_start <= span.start and span.end <= parent_end
    # Children are appended in open order; siblings must not overlap.
    for a, b in zip(span.children, span.children[1:]):
        assert a.end <= b.start
    for child in span.children:
        _check_span(child, span.start, span.end)


@given(graphs(max_n=10, max_m=20))
@settings(max_examples=20, deadline=None)
def test_span_trees_nest_without_overlap(g):
    metrics = MetricsRegistry()
    with metrics.span("outer"):
        Device().run_bc(g, strategy="hybrid", check_memory=False,
                        metrics=metrics)
    assert len(metrics.root_spans) == 1
    _check_span(metrics.root_spans[0], -math.inf, math.inf)
