"""Property tests for the fault-plan spec grammar.

``FaultPlan.__str__`` emits the CLI spec grammar and
``FaultPlan.parse`` inverts it; the docstring promises
``parse(str(plan)) == plan`` for every valid plan.  Hypothesis builds
arbitrary plans over all four fault kinds (including every sdc
site/root-index/bit combination) and checks the round trip.
"""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.errors import FaultSpecError
from repro.resilience import (
    COLLECTIVES,
    FAIL_STOP,
    OOM,
    SDC,
    SDC_SITES,
    STRAGGLER,
    FaultEvent,
    FaultPlan,
)

ranks = st.integers(min_value=0, max_value=63)

fail_stop_events = st.builds(
    FaultEvent,
    kind=st.just(FAIL_STOP),
    rank=ranks,
    where=st.sampled_from(("compute",) + COLLECTIVES),
    after_roots=st.integers(min_value=0, max_value=16),
)

oom_events = st.builds(
    FaultEvent,
    kind=st.just(OOM),
    rank=ranks,
    times=st.integers(min_value=1, max_value=9),
)

# Factors round-trip through repr(), so any finite float >= 1 works.
straggler_events = st.builds(
    FaultEvent,
    kind=st.just(STRAGGLER),
    rank=ranks,
    factor=st.floats(min_value=1.0, max_value=64.0,
                     allow_nan=False, allow_infinity=False),
)

sdc_events = st.builds(
    FaultEvent,
    kind=st.just(SDC),
    rank=ranks,
    site=st.sampled_from(SDC_SITES),
    root_index=st.integers(min_value=0, max_value=16),
    bit=st.integers(min_value=0, max_value=63),
)

events = st.one_of(fail_stop_events, oom_events, straggler_events,
                   sdc_events)
plans = st.lists(events, max_size=8).map(lambda evs: FaultPlan(tuple(evs)))


@given(plans)
@settings(max_examples=200, deadline=None)
def test_parse_inverts_str(plan):
    assert FaultPlan.parse(str(plan)) == plan


@given(events)
@settings(max_examples=100, deadline=None)
def test_event_spec_round_trips_alone(ev):
    plan = FaultPlan((ev,))
    (back,) = FaultPlan.parse(str(plan)).events
    assert back == ev


@pytest.mark.parametrize("spec", [
    "meteor:0",                 # unknown kind
    "sdc:0@firmware",           # unknown sdc site
    "sdc:0#64",                 # bit out of range
    "sdc:-1",                   # negative rank
    "sdc:0+nope",               # non-integer root index
    "oom:0@reduce",             # oom only fires at compute
])
def test_bad_specs_raise(spec):
    with pytest.raises(FaultSpecError):
        FaultPlan.parse(spec)


def test_sdc_site_error_lists_known_sites():
    with pytest.raises(FaultSpecError) as err:
        FaultPlan.parse("sdc:0@firmware")
    for site in SDC_SITES:
        assert site in str(err.value)
