"""Property-based tests for the degree-1 folding preprocess."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bc.api import betweenness_centrality
from repro.bc.brandes import brandes_reference
from repro.bc.preprocess import fold_degree_one, per_root_correction
from repro.graph.build import from_edges

pytestmark = pytest.mark.fold


@st.composite
def graphs(draw, max_n=20, max_m=48):
    n = draw(st.integers(min_value=1, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            min_size=m, max_size=m,
        )
    )
    return from_edges(edges, num_vertices=n)


@st.composite
def trees(draw, max_n=24):
    """Uniform-ish random tree: each vertex i >= 1 attaches to a
    uniformly drawn earlier vertex."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    parents = [draw(st.integers(0, i - 1)) for i in range(1, n)]
    return from_edges([(i + 1, p) for i, p in enumerate(parents)],
                      num_vertices=n)


def _edge_multiset(g):
    """Undirected edge multiset as a sorted list of (min, max) pairs."""
    src = g.edge_sources()
    return sorted(zip(np.minimum(src, g.adj).tolist(),
                      np.maximum(src, g.adj).tolist()))


@given(graphs())
@settings(max_examples=50, deadline=None)
def test_fold_partitions_vertices_and_induces_the_core(g):
    """Round-trip structure: every vertex is either folded or residual,
    and the core is exactly the induced subgraph on the residual set —
    same vertex count, same edge multiset after relabelling."""
    fold = fold_degree_one(g)
    n = g.num_vertices
    assert fold.core_vertices.size + fold.num_folded == n
    assert fold.core.num_vertices == fold.core_vertices.size
    # core_index inverts core_vertices; folded vertices map to -1.
    assert np.array_equal(fold.core_index[fold.core_vertices],
                          np.arange(fold.core_vertices.size))
    folded_mask = np.ones(n, dtype=bool)
    folded_mask[fold.core_vertices] = False
    assert np.all(fold.core_index[folded_mask] == -1)
    assert np.all(fold.parent[fold.core_vertices] == -1)
    assert np.all(fold.parent[folded_mask] >= 0)
    # Edge multiset of the residual core == original edges with both
    # endpoints residual, relabelled through core_index.
    keep = set(fold.core_vertices.tolist())
    src = g.edge_sources()
    expect = sorted(
        (min(int(fold.core_index[u]), int(fold.core_index[v])),
         max(int(fold.core_index[u]), int(fold.core_index[v])))
        for u, v in zip(src.tolist(), g.adj.tolist())
        if u in keep and v in keep)
    assert _edge_multiset(fold.core) == expect
    # Weight conservation: residual weights account for every vertex.
    assert float(fold.weights[fold.core_vertices].sum()) == float(n)


@given(graphs())
@settings(max_examples=50, deadline=None)
def test_fold_is_idempotent(g):
    """The core has no pendant vertices left: folding it again is the
    identity fold."""
    fold = fold_degree_one(g)
    again = fold_degree_one(fold.core)
    assert again.is_identity
    assert again.core is fold.core


@given(trees())
@settings(max_examples=50, deadline=None)
def test_random_tree_folds_flat_and_stays_exact(g):
    """A tree is all pendant fringe: the peel must collapse it to a
    single residual vertex (two only transiently, resolved by the K2
    rule), and the folded engine must still equal Brandes."""
    fold = fold_degree_one(g)
    assert fold.core.num_vertices <= 2
    assert np.allclose(betweenness_centrality(g, fold=True),
                       brandes_reference(g), rtol=1e-9, atol=1e-9)


@given(graphs())
@settings(max_examples=40, deadline=None)
def test_folded_engine_matches_brandes(g):
    assert np.allclose(betweenness_centrality(g, fold=True),
                       brandes_reference(g), rtol=1e-9, atol=1e-9)


@given(graphs(max_n=14, max_m=30))
@settings(max_examples=40, deadline=None)
def test_digest_is_byte_deterministic(g):
    """Re-folding the same graph yields the same digest; the digest
    changes when the graph does (vertex appended)."""
    a = fold_degree_one(g)
    b = fold_degree_one(g)
    assert a.digest() == b.digest()
    assert len(a.digest()) == 64
    src = g.edge_sources()
    g2 = from_edges(list(zip(src.tolist(), g.adj.tolist()))[::2],
                    num_vertices=g.num_vertices + 1)
    if g2.digest() != g.digest():
        assert fold_degree_one(g2).digest() != a.digest()


@given(graphs(max_n=12, max_m=24), st.data())
@settings(max_examples=40, deadline=None)
def test_per_root_correction_reproduces_single_root(g, data):
    """One weighted core traversal plus the closed-form correction
    equals the original root's unfolded dependency vector."""
    from repro.bc.accumulation import dependency_accumulation
    from repro.bc.frontier import forward_sweep

    fold = fold_degree_one(g)
    root = data.draw(st.integers(0, g.num_vertices - 1), label="root")
    core_root, corr = per_root_correction(fold, root)
    tw = fold.core_weights
    fwd = forward_sweep(fold.core, core_root)
    delta = dependency_accumulation(fold.core, fwd, target_weights=tw)
    got = fold.expand(delta) + corr
    expect = dependency_accumulation(g, forward_sweep(g, root))
    assert np.allclose(got, expect, rtol=1e-9, atol=1e-9)
