"""Unit tests for the per-root ABFT invariant checkers.

Two directions: clean Brandes state passes every invariant on every
graph class (including directed and disconnected ones), and each
invariant fires on the targeted corruption it exists to catch.
"""

import numpy as np
import pytest

from repro.bc.accumulation import dependency_accumulation
from repro.bc.frontier import forward_sweep
from repro.graph.build import from_edges
from repro.graph.generators import figure1_graph, watts_strogatz
from repro.observability import MetricsRegistry
from repro.verify import (
    RootChecker,
    VerificationPolicy,
    expected_delta_checksum,
)

pytestmark = pytest.mark.sdc

GRAPHS = {
    "fig1": figure1_graph,
    "path5": lambda: from_edges([(0, 1), (1, 2), (2, 3), (3, 4)]),
    "star7": lambda: from_edges([(0, i) for i in range(1, 7)]),
    "two_components": lambda: from_edges(
        [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)], num_vertices=7),
    "single_vertex": lambda: from_edges([], num_vertices=1),
    "directed_dag": lambda: from_edges(
        [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (1, 4)], undirected=False),
    "smallworld": lambda: watts_strogatz(48, k=4, p=0.1, seed=3),
}


def _root_state(g, root):
    fwd = forward_sweep(g, root)
    return fwd, dependency_accumulation(g, fwd)


@pytest.mark.parametrize("mode", ["sampled", "paranoid"])
@pytest.mark.parametrize("name", sorted(GRAPHS))
def test_clean_state_passes(name, mode):
    g = GRAPHS[name]()
    checker = RootChecker(VerificationPolicy(mode))
    for root in range(g.num_vertices):
        fwd, delta = _root_state(g, root)
        assert checker.check_root(g, fwd, delta) == [], (name, root)


def test_checksum_identity_matches_delta_sum():
    for name in sorted(GRAPHS):
        g = GRAPHS[name]()
        for root in range(g.num_vertices):
            fwd, delta = _root_state(g, root)
            assert np.isclose(float(delta.sum()),
                              expected_delta_checksum(fwd.distances)), \
                (name, root)


class TestDetection:
    """Each invariant fires on the corruption it exists to catch."""

    def _checker(self, mode="paranoid"):
        return RootChecker(VerificationPolicy(mode))

    def test_delta_scale_trips_checksum(self, fig1):
        fwd, delta = _root_state(fig1, 0)
        delta[4] *= 2.0
        invs = [v.invariant for v in self._checker().check_root(fig1, fwd, delta)]
        assert "checksum" in invs

    def test_negative_delta_trips_range(self, fig1):
        fwd, delta = _root_state(fig1, 0)
        delta[4] = -1.0
        invs = [v.invariant for v in self._checker().check_root(fig1, fwd, delta)]
        assert "range" in invs

    def test_nonfinite_sigma_trips_range(self, fig1):
        fwd, delta = _root_state(fig1, 0)
        fwd.sigma[3] = np.inf
        invs = [v.invariant for v in self._checker().check_root(fig1, fwd, delta)]
        assert "range" in invs

    def test_sigma_count_trips_multiplicativity(self, fig1):
        fwd, delta = _root_state(fig1, 0)
        victim = int(np.flatnonzero(fwd.distances >= 1)[0])
        fwd.sigma[victim] *= 3.0
        invs = [v.invariant for v in self._checker().check_root(fig1, fwd, delta)]
        assert "sigma" in invs or "checksum" in invs

    def test_depth_jump_trips_level(self, fig1):
        fwd, delta = _root_state(fig1, 0)
        victim = int(np.flatnonzero(fwd.distances >= 1)[0])
        fwd.distances[victim] = fwd.distances.max() + 4
        found = self._checker().check_root(fig1, fwd, delta)
        assert found, "corrupted depth must trip at least one invariant"

    def test_out_of_range_distance_trips_range(self, fig1):
        fwd, delta = _root_state(fig1, 0)
        fwd.distances[2] = fig1.num_vertices + 10
        invs = [v.invariant for v in self._checker().check_root(fig1, fwd, delta)]
        assert "range" in invs

    def test_violation_carries_context(self, fig1):
        fwd, delta = _root_state(fig1, 3)
        delta[4] *= 2.0
        (v,) = [x for x in self._checker().check_root(fig1, fwd, delta)
                if x.invariant == "checksum"]
        assert v.root == 3
        assert "sum(delta)" in v.detail
        assert "checksum" in str(v)


class TestUnitAndReduceChecks:
    def test_partial_clean(self):
        checker = RootChecker(VerificationPolicy("paranoid"))
        partial = np.array([1.0, 2.0, 3.0])
        assert checker.check_partial(partial, 6.0, rank=1) == []

    def test_partial_mismatch(self):
        checker = RootChecker(VerificationPolicy("paranoid"))
        partial = np.array([1.0, 2.0, 3.0])
        (v,) = checker.check_partial(partial, 42.0, rank=1)
        assert v.invariant == "partial"
        assert v.root == 1

    def test_partial_nonfinite(self):
        checker = RootChecker(VerificationPolicy("paranoid"))
        partial = np.array([1.0, np.nan])
        (v,) = checker.check_partial(partial, 1.0)
        assert v.invariant == "partial"

    def test_reduce_ok(self):
        checker = RootChecker(VerificationPolicy("paranoid"))
        total = np.array([2.0, 4.0])
        assert checker.reduce_ok(total, 6.0)
        assert not checker.reduce_ok(total, 60.0)
        assert not checker.reduce_ok(np.array([np.inf, 0.0]), 6.0)


def test_metrics_counters_flow(fig1):
    metrics = MetricsRegistry()
    checker = RootChecker(VerificationPolicy("paranoid"), metrics)
    fwd, delta = _root_state(fig1, 0)
    checker.check_root(fig1, fwd, delta)
    delta[4] *= 2.0
    checker.check_root(fig1, fwd, delta)
    counters = metrics.export()["counters"]
    checks = [c for c in counters if c["name"] == "verify.checks"]
    violations = [c for c in counters if c["name"] == "verify.violations"]
    assert checks and violations
