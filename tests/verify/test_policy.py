"""Unit tests for the verification policy (mode/sampling knobs)."""

import pytest

from repro.errors import FaultSpecError
from repro.verify import MODES, OFF, PARANOID, SAMPLED, VerificationPolicy

pytestmark = pytest.mark.sdc


class TestConstruction:
    def test_defaults_off(self):
        p = VerificationPolicy()
        assert p.mode == OFF
        assert not p.enabled
        assert not p.paranoid

    @pytest.mark.parametrize("mode", MODES)
    def test_modes(self, mode):
        p = VerificationPolicy(mode)
        assert p.enabled == (mode != OFF)
        assert p.paranoid == (mode == PARANOID)

    @pytest.mark.parametrize("kwargs", [
        dict(mode="meticulous"),
        dict(mode=SAMPLED, root_period=0),
        dict(mode=SAMPLED, sample_vertices=0),
        dict(mode=PARANOID, rtol=-1.0),
        dict(mode=PARANOID, atol=-1.0),
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(FaultSpecError):
            VerificationPolicy(**kwargs)


class TestCoerce:
    def test_none_is_off(self):
        assert VerificationPolicy.coerce(None).mode == OFF

    def test_string(self):
        assert VerificationPolicy.coerce(" Paranoid ").mode == PARANOID

    def test_passthrough(self):
        p = VerificationPolicy(SAMPLED, root_period=2)
        assert VerificationPolicy.coerce(p) is p

    def test_bad_type(self):
        with pytest.raises(FaultSpecError):
            VerificationPolicy.coerce(42)

    def test_bad_string(self):
        with pytest.raises(FaultSpecError):
            VerificationPolicy.coerce("everything")


class TestChecksRoot:
    def test_off_checks_nothing(self):
        p = VerificationPolicy(OFF)
        assert not any(p.checks_root(r) for r in range(100))

    def test_paranoid_checks_everything(self):
        p = VerificationPolicy(PARANOID)
        assert all(p.checks_root(r) for r in range(100))

    def test_sampled_is_deterministic(self):
        p = VerificationPolicy(SAMPLED, root_period=4, seed=3)
        first = [p.checks_root(r) for r in range(256)]
        assert first == [p.checks_root(r) for r in range(256)]

    def test_sampled_hits_roughly_one_in_period(self):
        p = VerificationPolicy(SAMPLED, root_period=4)
        hits = sum(p.checks_root(r) for r in range(4096))
        assert 0.15 < hits / 4096 < 0.35

    def test_seed_changes_selection(self):
        a = VerificationPolicy(SAMPLED, root_period=4, seed=0)
        b = VerificationPolicy(SAMPLED, root_period=4, seed=1)
        sel_a = [a.checks_root(r) for r in range(256)]
        sel_b = [b.checks_root(r) for r in range(256)]
        assert sel_a != sel_b
