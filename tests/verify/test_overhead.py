"""Guard: ``--verify=sampled`` must stay cheap enough to leave on.

The acceptance bar from the verification-layer design: over the full
BENCH_baseline grid (every Table II dataset x every strategy, at the
benchmark scale), running with sampled verification costs at most 15%
more wall time than running with verification off.  The sampled
invariant suite is O(n) per checked root plus a vectorised structure
spot-check, so in practice the ratio is far below the bar; the test
exists to catch a regression that sneaks per-edge or per-vertex Python
loops back into the hot path.
"""

import time

import numpy as np
import pytest

from repro.gpusim import Device
from repro.graph.generators.suite import make_dataset

pytestmark = pytest.mark.sdc

DATASETS = [
    "caidaRouterLevel",
    "delaunay_n20",
    "kron_g500-logn20",
    "luxembourg.osm",
    "smallworld",
]
STRATEGIES = [
    "edge-parallel",
    "hybrid",
    "sampling",
    "vertex-parallel",
    "work-efficient",
]


def _grid_seconds(graphs, verify):
    roots = np.arange(16)
    t0 = time.perf_counter()
    for g in graphs:
        for strategy in STRATEGIES:
            Device().run_bc(g, strategy=strategy, roots=roots,
                            check_memory=False, verify=verify)
    return time.perf_counter() - t0


def test_sampled_verification_overhead_within_15_percent():
    graphs = [make_dataset(name, scale_factor=1024, seed=0)
              for name in DATASETS]
    _grid_seconds(graphs, "off")  # warm caches before timing
    off = min(_grid_seconds(graphs, "off") for _ in range(3))
    sampled = min(_grid_seconds(graphs, "sampled") for _ in range(3))
    ratio = sampled / off
    assert ratio <= 1.15, (
        f"sampled verification costs {100 * (ratio - 1):.1f}% over "
        f"verify=off across the BENCH grid "
        f"({sampled * 1e3:.0f} ms vs {off * 1e3:.0f} ms); budget is 15%"
    )
