"""Service-layer fold semantics: cache identity and crash recovery.

A folded job and its unfolded twin compute the *same values* but are
*distinct cache artifacts*: the result key mixes in the fold digest, so
a change to the preprocess can never serve bytes computed under a
different reduction.  And a folded job's journal replay must land on
values that verify against a from-scratch unfolded recompute.
"""

from __future__ import annotations

import json
import os
import shutil

import numpy as np
import pytest

from repro.graph.generators import make_dataset
from repro.gpusim import Device
from repro.observability import MetricsRegistry
from repro.service import DONE, BCService, JobSpec, result_key

pytestmark = pytest.mark.fold


def spec(i, fold=True, **kw):
    kw.setdefault("graph", "luxembourg.osm")   # road: pendant-heavy
    kw.setdefault("scale_factor", 512)
    kw.setdefault("strategy", "sampling")
    kw.setdefault("roots", 4)
    kw.setdefault("seed", 7)
    return JobSpec(job_id=f"j{i:06d}", fold=fold, **kw)


def test_result_key_mixes_in_fold_digest():
    base = result_key("g" * 64, "sampling", [0, 1], 0)
    folded = result_key("g" * 64, "sampling", [0, 1], 0,
                        fold_digest="f" * 64)
    assert base != folded
    assert folded == result_key("g" * 64, "sampling", [0, 1], 0,
                                fold_digest="f" * 64)
    assert folded != result_key("g" * 64, "sampling", [0, 1], 0,
                                fold_digest="e" * 64)


def test_fold_toggle_distinct_keys_identical_values(tmp_path):
    """Same query twice — folded and unfolded: two cache entries, one
    answer."""
    with BCService(tmp_path / "svc") as svc:
        svc.submit(spec(1, fold=True))
        svc.submit(spec(2, fold=False))
        svc.run_pending()
        rec_f, rec_u = svc.jobs["j000001"], svc.jobs["j000002"]
        assert rec_f.state == DONE and rec_u.state == DONE
        assert rec_f.result_key != rec_u.result_key
        assert os.path.exists(svc.cache.path(rec_f.result_key))
        assert os.path.exists(svc.cache.path(rec_u.result_key))
        vals_f, meta_f = svc.result("j000001")
        vals_u, meta_u = svc.result("j000002")
        assert meta_f["exact"] and meta_u["exact"]
        np.testing.assert_allclose(vals_f, vals_u, rtol=1e-9, atol=1e-9)


def test_identity_fold_still_keys_separately(tmp_path):
    """Even when folding removes nothing the digest is part of the
    query identity — toggling the flag must never alias cache keys."""
    with BCService(tmp_path / "svc") as svc:
        svc.submit(spec(1, fold=True, graph="smallworld"))
        svc.submit(spec(2, fold=False, graph="smallworld"))
        svc.run_pending()
        assert (svc.jobs["j000001"].result_key
                != svc.jobs["j000002"].result_key)


def test_folded_job_kill_and_recover_verifies_against_unfolded(tmp_path):
    """Crash after the folded job ran but before `done` was durable:
    the restarted service must reconverge on the same key and bytes,
    and the replayed values must equal an independent *unfolded*
    recompute of the same query."""
    ref_root = tmp_path / "ref"
    with BCService(ref_root) as svc:
        job = svc.submit(spec(1, fold=True))
        svc.run_pending()
        key = svc.jobs[job.job_id].result_key
        blob = open(svc.cache.path(key), "rb").read()
        submits = [body for ln in open(ref_root / "journal.jsonl",
                                       encoding="utf-8")
                   if (body := json.loads(ln.split(" ", 1)[1]))["kind"]
                   == "submit"]
        assert submits and submits[0]["job"]["fold"] is True

    crash_root = tmp_path / "crash"
    os.makedirs(crash_root)
    lines = open(ref_root / "journal.jsonl", encoding="utf-8").readlines()
    kept = [ln for ln in lines
            if json.loads(ln.split(" ", 1)[1])["kind"] != "done"]
    open(crash_root / "journal.jsonl", "w", encoding="utf-8").writelines(kept)
    shutil.copytree(ref_root / "results", crash_root / "results")

    metrics = MetricsRegistry()
    with BCService(crash_root, metrics=metrics) as svc:
        assert svc.recovered_ids == ["j000001"]
        svc.run_pending()
        rec = svc.jobs["j000001"]
        assert rec.state == DONE and rec.result_key == key
        assert open(svc.cache.path(key), "rb").read() == blob
        values, meta = svc.result("j000001")
        assert meta["exact"]

    # Independent ground truth: rebuild the graph and roots exactly as
    # the daemon does, run unfolded, compare.
    s = spec(1)
    g = make_dataset(s.graph, scale_factor=s.scale_factor,
                     seed=s.graph_seed)
    rng = np.random.default_rng(s.seed)
    roots = np.sort(rng.choice(g.num_vertices,
                               size=min(s.roots, g.num_vertices),
                               replace=False))
    run = Device().run_bc(g, strategy=s.strategy, roots=roots, fold=False)
    np.testing.assert_allclose(values, run.bc, rtol=1e-9, atol=1e-9)
