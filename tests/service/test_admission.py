"""Admission policy: bounded queue, overload mode, tenant quotas."""

from __future__ import annotations

import pytest

from repro.errors import JobSpecError, ServiceOverloadError
from repro.service import AdmissionController, AdmissionPolicy, JobSpec


def spec(**kw):
    kw.setdefault("job_id", "j000001")
    kw.setdefault("scale_factor", 64)
    return JobSpec(**kw)


def test_policy_defaults_and_validation():
    pol = AdmissionPolicy(max_queue=10)
    assert pol.degrade_threshold == 5
    with pytest.raises(JobSpecError):
        AdmissionPolicy(max_queue=0)
    with pytest.raises(JobSpecError):
        AdmissionPolicy(max_queue=4, degrade_threshold=9)
    with pytest.raises(JobSpecError):
        AdmissionPolicy(tenant_quota=0)


def test_admit_below_threshold():
    ctl = AdmissionController(AdmissionPolicy(max_queue=8))
    assert ctl.decide(spec(), queue_depth=0, tenant_live=0) == "admit"


def test_degrade_in_overload_mode_only_when_allowed():
    ctl = AdmissionController(AdmissionPolicy(max_queue=8,
                                              degrade_threshold=2))
    assert ctl.decide(spec(), queue_depth=3, tenant_live=0) == "degrade"
    # a job that forbids degradation still gets an exact slot
    strict = spec(allow_degrade=False)
    assert ctl.decide(strict, queue_depth=3, tenant_live=0) == "admit"


def test_full_queue_sheds_with_typed_error():
    ctl = AdmissionController(AdmissionPolicy(max_queue=4))
    with pytest.raises(ServiceOverloadError) as exc:
        ctl.decide(spec(), queue_depth=4, tenant_live=0)
    assert exc.value.limit == 4
    assert "queue full" in str(exc.value)


def test_tenant_quota_sheds():
    ctl = AdmissionController(AdmissionPolicy(max_queue=64, tenant_quota=2))
    with pytest.raises(ServiceOverloadError) as exc:
        ctl.decide(spec(tenant="acme"), queue_depth=0, tenant_live=2)
    assert exc.value.tenant == "acme"
    assert "quota" in str(exc.value)


def test_disable_overload_mode():
    pol = AdmissionPolicy(max_queue=4, degrade_threshold=4)
    ctl = AdmissionController(pol)
    assert ctl.decide(spec(), queue_depth=3, tenant_live=0) == "admit"
