"""ServiceStorage: each fault kind's durable-write semantics, and the
crash_after op counter the storage crash grid walks."""

from __future__ import annotations

import pytest

from repro.resilience import ActiveFaults, FaultPlan
from repro.service.storage import ServiceStorage, SimulatedCrash

pytestmark = pytest.mark.service


def _read(path):
    with open(path, "rb") as fh:
        return fh.read()


def storage_for(spec: str) -> ServiceStorage:
    return ServiceStorage(faults=ActiveFaults(FaultPlan.parse(spec), seed=0))


def test_append_line_plain(tmp_path):
    st = ServiceStorage()
    p = tmp_path / "j.jsonl"
    assert st.append_line(str(p), "a\n", "journal") == 1
    st.append_line(str(p), "b\n", "journal")
    assert _read(p) == b"a\nb\n"


def test_enospc_raises_untouched(tmp_path):
    import errno

    st = storage_for("enospc:0@journal")
    p = tmp_path / "j.jsonl"
    st_plain = ServiceStorage()
    st_plain.append_line(str(p), "a\n", "journal")
    with pytest.raises(OSError) as exc:
        st.append_line(str(p), "b\n", "journal")
    assert exc.value.errno == errno.ENOSPC
    assert _read(p) == b"a\n"            # nothing half-written


def test_torn_write_truncates_back_and_retries(tmp_path):
    st = storage_for("torn:0@journal")
    p = tmp_path / "j.jsonl"
    attempts = st.append_line(str(p), "hello-world\n", "journal")
    assert attempts == 2                 # torn, then clean retry
    assert _read(p) == b"hello-world\n"


def test_fsync_lie_detected_by_readback(tmp_path):
    st = storage_for("fsync-lie:0@journal")
    p = tmp_path / "j.jsonl"
    attempts = st.append_line(str(p), "line\n", "journal")
    assert attempts == 2
    assert _read(p) == b"line\n"


def test_rot_flips_one_bit_in_place(tmp_path):
    st = storage_for("rot:0@cache")
    p = tmp_path / "blob"
    st.append_line(str(p), "AAAAAAAA\n", "cache")
    data = _read(p)
    clean = b"AAAAAAAA\n"
    assert len(data) == len(clean)
    diff = [i for i in range(len(data)) if data[i] != clean[i]]
    assert len(diff) == 1
    assert bin(data[diff[0]] ^ clean[diff[0]]).count("1") == 1


def test_replace_atomic_plain_and_enospc(tmp_path):
    import errno

    st = ServiceStorage()
    p = tmp_path / "f.json"
    st.replace_atomic(str(p), "v1", "cache")
    assert _read(p) == b"v1"
    bad = storage_for("enospc:0@cache")
    with pytest.raises(OSError) as exc:
        bad.replace_atomic(str(p), "v2", "cache")
    assert exc.value.errno == errno.ENOSPC
    assert _read(p) == b"v1"             # old value intact


def test_wrong_target_faults_never_fire(tmp_path):
    st = storage_for("enospc:0@cache")
    p = tmp_path / "j.jsonl"
    assert st.append_line(str(p), "x\n", "journal") == 1


def test_crash_after_walks_ops(tmp_path):
    st = ServiceStorage(crash_after=1)
    p = tmp_path / "j.jsonl"
    st.append_line(str(p), "a\n", "journal")
    assert st.ops == 1
    with pytest.raises(SimulatedCrash) as exc:
        st.append_line(str(p), "b\n", "journal")
    assert exc.value.op_index == 1
    assert _read(p) == b"a\n"           # the crashed op never executed
    # a crash is a BaseException: `except Exception` cannot swallow it
    assert not isinstance(exc.value, Exception)


def test_bad_target_rejected(tmp_path):
    st = storage_for("enospc:0")
    with pytest.raises(ValueError):
        st.append_line(str(tmp_path / "x"), "a\n", "floppy")
