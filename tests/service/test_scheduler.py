"""Fault-hardened scheduler: retries, breaker, deadlines, stragglers."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.graph.generators import make_dataset
from repro.observability import MetricsRegistry
from repro.service import (
    CircuitBreaker,
    JobSpec,
    Scheduler,
    SimDevice,
    backoff_delay,
    sample_roots,
)

GRAPH = make_dataset("smallworld", scale_factor=512, seed=0)


def spec(i=1, **kw):
    kw.setdefault("graph", "smallworld")
    kw.setdefault("scale_factor", 512)
    kw.setdefault("strategy", "sampling")
    kw.setdefault("roots", 4)
    return JobSpec(job_id=f"j{i:06d}", **kw)


def run_decision_trace(seed: int, faults: str, *, max_retries: int = 3):
    """One scheduler execution's (decision log, backoff delays) — the
    determinism artefact the property suite replays byte-for-byte."""
    sched = Scheduler(seed=seed, max_retries=max_retries)
    outcome = sched.execute(spec(seed=seed, faults=faults), GRAPH)
    return (json.dumps(sched.decisions, sort_keys=True),
            list(outcome.backoff_delays), outcome)


# -- backoff ----------------------------------------------------------
def test_backoff_is_deterministic_and_jittered():
    a = [backoff_delay(k, seed=1, token="j1") for k in (1, 2, 3, 4)]
    b = [backoff_delay(k, seed=1, token="j1") for k in (1, 2, 3, 4)]
    assert a == b
    assert a != [backoff_delay(k, seed=2, token="j1") for k in (1, 2, 3, 4)]
    assert a != [backoff_delay(k, seed=1, token="j2") for k in (1, 2, 3, 4)]
    for k, d in enumerate(a, start=1):
        raw = min(2.0, 0.05 * 2 ** (k - 1))
        assert raw / 2 <= d < raw
    with pytest.raises(ValueError):
        backoff_delay(0)


# -- retries and chaos ------------------------------------------------
def test_clean_job_runs_exactly_once():
    sched = Scheduler()
    out = sched.execute(spec(), GRAPH)
    assert out.ok and out.exact and out.attempts == 1
    assert out.degraded_reason is None and not out.backoff_delays
    assert out.values.shape == (GRAPH.num_vertices,)


def test_transient_faults_retry_to_success():
    sched = Scheduler(max_retries=3)
    out = sched.execute(spec(faults="fail:0@compute+1;oom:0x1"), GRAPH)
    assert out.ok and out.exact
    assert out.attempts == 3  # fail-stop, oom, then clean
    assert len(out.backoff_delays) == 2
    clean = Scheduler().execute(spec(), GRAPH)
    np.testing.assert_allclose(out.values, clean.values)


def test_retries_exhausted_fails_with_typed_kind():
    sched = Scheduler(max_retries=1)
    out = sched.execute(spec(faults="oom:0x5"), GRAPH)
    assert not out.ok
    assert out.error_kind == "retries-exhausted"
    assert out.attempts == 2


def test_sdc_detected_and_retried():
    sched = Scheduler(max_retries=2)
    out = sched.execute(spec(faults="sdc:0@delta"), GRAPH)
    assert out.ok and out.exact
    assert out.attempts == 2  # corrupt attempt detected, clean retry
    clean = Scheduler().execute(spec(), GRAPH)
    np.testing.assert_allclose(out.values, clean.values)


# -- circuit breaker --------------------------------------------------
def test_breaker_opens_after_threshold_and_half_opens():
    brk = CircuitBreaker(threshold=2, cooldown=2)
    key = ("g", "sampling")
    assert brk.allow(key)
    brk.failure(key)
    assert brk.state(key) == "closed"
    brk.failure(key)
    assert brk.state(key) == "open"
    assert not brk.allow(key)       # shed 1
    assert brk.allow(key)           # shed 2 -> half-open probe
    assert brk.state(key) == "half-open"
    brk.failure(key)                # probe failed -> reopen
    assert brk.state(key) == "open"
    assert not brk.allow(key)
    assert brk.allow(key)
    brk.success(key)
    assert brk.state(key) == "closed"


def test_scheduler_quarantines_failing_pair():
    sched = Scheduler(max_retries=0,
                      breaker=CircuitBreaker(threshold=2, cooldown=3))
    for i in (1, 2):
        out = sched.execute(spec(i, seed=i, faults="oom:0x5"), GRAPH)
        assert out.error_kind == "retries-exhausted"
    # pair now open: next job fails fast without burning an attempt
    out = sched.execute(spec(3, seed=3), GRAPH)
    assert not out.ok and out.error_kind == "circuit-open"
    assert out.attempts == 0
    # a different strategy on the same graph is unaffected
    ok = sched.execute(spec(4, seed=4, strategy="hybrid"), GRAPH)
    assert ok.ok


def test_breaker_snapshot_restore_roundtrip():
    brk = CircuitBreaker(threshold=1)
    brk.failure(("g", "s"))
    snap = brk.snapshot()
    brk2 = CircuitBreaker(threshold=1)
    brk2.restore(snap)
    assert not brk2.allow(("g", "s"))


# -- deadlines --------------------------------------------------------
def test_deadline_degrades_to_flagged_estimate():
    sched = Scheduler()
    out = sched.execute(spec(roots=8, deadline_seconds=1e-9), GRAPH)
    assert out.ok
    assert out.exact is False
    assert out.degraded_reason == "deadline"
    assert out.values.shape == (GRAPH.num_vertices,)
    assert any(d["decision"] == "deadline-degrade" for d in sched.decisions)


def test_deadline_without_degrade_fails_typed():
    sched = Scheduler()
    out = sched.execute(spec(roots=8, deadline_seconds=1e-9,
                             allow_degrade=False), GRAPH)
    assert not out.ok and out.error_kind == "deadline"
    assert "deadline" in out.error


def test_generous_deadline_stays_exact():
    out = Scheduler().execute(spec(deadline_seconds=1e6), GRAPH)
    assert out.ok and out.exact and out.degraded_reason is None


# -- stragglers -------------------------------------------------------
def test_straggler_run_redispatches_to_healthy_device():
    slow, fast = SimDevice("dev0"), SimDevice("dev1")
    slow.device.straggler_factor = 8.0
    sched = Scheduler([slow, fast], redispatch_factor=4.0)
    out = sched.execute(spec(), GRAPH)
    assert out.ok and out.redispatched
    assert out.device == "dev1"
    kinds = [d["decision"] for d in sched.decisions]
    assert "redispatch" in kinds
    # the slow device's sunk speculative work is still charged
    assert slow.busy_until > 0


def test_no_redispatch_when_every_device_straggles():
    a, b = SimDevice("dev0"), SimDevice("dev1")
    a.device.straggler_factor = 8.0
    b.device.straggler_factor = 8.0
    sched = Scheduler([a, b], redispatch_factor=4.0)
    out = sched.execute(spec(), GRAPH)
    assert out.ok and not out.redispatched


def test_straggler_fault_triggers_redispatch():
    sched = Scheduler(redispatch_factor=4.0)
    out = sched.execute(spec(faults="straggler:0x8"), GRAPH)
    assert out.ok and out.redispatched


# -- overload degradation --------------------------------------------
def test_overload_degrade_runs_sampled_estimate():
    metrics = MetricsRegistry()
    sched = Scheduler(metrics=metrics, overload_sample_fraction=0.5)
    s = spec(roots=8)
    out = sched.execute(s, GRAPH, degrade_reason="overload")
    assert out.ok
    assert out.exact is False and out.degraded_reason == "overload"
    # flagged estimate approximates the exact run (same scale)
    exact = Scheduler().execute(s, GRAPH)
    assert out.values.sum() == pytest.approx(exact.values.sum(), rel=1.0)
    assert any(d["decision"] == "overload-degrade"
               for d in sched.decisions)


# -- placement and determinism ---------------------------------------
def test_jobs_spread_across_devices():
    sched = Scheduler([SimDevice("dev0"), SimDevice("dev1")])
    d1 = sched.execute(spec(1, seed=1), GRAPH).device
    d2 = sched.execute(spec(2, seed=2), GRAPH).device
    assert {d1, d2} == {"dev0", "dev1"}


def test_decision_log_is_byte_deterministic():
    for faults in ("", "fail:0@compute+1", "oom:0x2", "sdc:0@sigma"):
        trace_a, delays_a, out_a = run_decision_trace(7, faults)
        trace_b, delays_b, out_b = run_decision_trace(7, faults)
        assert trace_a == trace_b
        assert delays_a == delays_b
        if out_a.ok:
            np.testing.assert_array_equal(out_a.values, out_b.values)


def test_prior_attempts_resume_retry_budget():
    # 2 prior attempts + max_retries=2 leaves exactly one more try
    sched = Scheduler(max_retries=2)
    out = sched.execute(spec(faults="oom:0x5"), GRAPH, prior_attempts=2)
    assert not out.ok and out.attempts == 3


def test_sample_roots_deterministic_and_capped():
    s = spec(roots=10 ** 6)
    roots = sample_roots(GRAPH, s)
    assert roots.size == GRAPH.num_vertices
    small = sample_roots(GRAPH, spec(roots=4, seed=9))
    np.testing.assert_array_equal(small,
                                  sample_roots(GRAPH, spec(roots=4, seed=9)))
