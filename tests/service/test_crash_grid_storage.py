"""Storage-level crash grid: SIGKILL walked across *every* durable
write of a run with journal rotation, compaction, and cache eviction
live — so crashes land mid-evict, mid-compact, and mid-rename, not just
between journal lines.

Unlike the journal-truncation grid in ``test_daemon.py`` (which replays
progressively shorter copies of a finished journal), this grid runs the
service itself against a :class:`ServiceStorage` whose ``crash_after``
counter kills it at op ``k``, then reopens the same root healthy and
drives it to completion.  For every ``k``: same terminal states, same
result bytes, and evicted entries recomputed — never resurrected
corrupt."""

from __future__ import annotations

import pytest

from repro.service import (
    BCService,
    DONE,
    JobSpec,
    TERMINAL_STATES,
    verify_journal,
)
from repro.service.storage import ServiceStorage, SimulatedCrash
from repro.telemetry import verify_events

pytestmark = pytest.mark.service

# Small budgets so the short workload crosses several rotation,
# compaction, and eviction boundaries — the interesting crash sites.
SEGMENT_BYTES = 900
KEEP_TERMINAL = 1
CACHE_BYTES = 6_000


def specs():
    return [JobSpec(job_id=f"j{i:06d}", graph="smallworld",
                    scale_factor=512, strategy="sampling", roots=4,
                    seed=i) for i in range(1, 5)]


def open_service(root, storage=None):
    return BCService(root, storage=storage,
                     journal_max_segment_bytes=SEGMENT_BYTES,
                     journal_keep_terminal=KEEP_TERMINAL,
                     cache_max_bytes=CACHE_BYTES)


def drive(svc):
    for sp in specs():
        svc.submit(sp)
    svc.run_pending()


def harvest(svc):
    states = {j: r.state for j, r in svc.jobs.items()}
    blobs = {}
    for job_id, rec in svc.jobs.items():
        if rec.state == DONE:
            values, meta = svc.result(job_id)
            blobs[job_id] = (rec.result_key, values.tolist(),
                             meta["exact"])
    return states, blobs


def test_crash_grid_over_every_storage_op(tmp_path):
    # Crash-free reference: terminal states, result bytes, and the op
    # count that bounds the grid.
    ref_storage = ServiceStorage()
    with open_service(tmp_path / "ref", ref_storage) as svc:
        drive(svc)
        ref_states, ref_blobs = harvest(svc)
    total_ops = ref_storage.ops
    assert total_ops > 20, "budgets too loose: no boundaries crossed"
    assert all(s in TERMINAL_STATES for s in ref_states.values())
    assert sum(1 for s in ref_states.values() if s == DONE) == 4

    for k in range(1, total_ops + 1):
        root = tmp_path / f"crash{k}"
        crashed = False
        svc = None
        try:
            # The telemetry reconcile writes events during open, so the
            # crash can land inside the constructor itself.
            svc = open_service(root, ServiceStorage(crash_after=k))
            drive(svc)
            harvest(svc)            # result() reads may recompute/write
            svc.close()
        except SimulatedCrash:
            crashed = True
            if svc is not None:
                svc.abandon()
        # A healthy reopen replays whatever survived; resubmitting the
        # full workload is idempotent (content dedupe) and restores any
        # spec whose submit never reached the disk.
        with open_service(root) as svc2:
            drive(svc2)
            states, blobs = harvest(svc2)
            assert states == ref_states, (k, crashed)
            assert blobs == ref_blobs, (k, crashed)
            # Telemetry exactly-once: after the healthy reopen, every
            # journal record has exactly one event (reconcile filled
            # any hole the crash tore; nothing is mirrored twice).
            tele = verify_events(str(root / "events.jsonl"),
                                 journal_records=svc2.journal.records)
            assert tele["ok"], (k, crashed, tele["problems"])
        report = verify_journal(str(root / "journal.jsonl"))
        assert report["ok"], (k, report["problems"])
    # the grid must actually have crashed somewhere in the middle
    assert total_ops >= 2


def test_crash_mid_eviction_never_resurrects_corrupt(tmp_path):
    """Kill the process during LRU eviction, then ask for every result:
    each read either hits an intact checksummed blob or recomputes.
    Nothing half-deleted or stale is ever served."""
    root = tmp_path / "svc"
    with open_service(root) as svc:
        drive(svc)
        ref = harvest(svc)[1]
        ops_before = svc.storage.ops

    # Reopen with a storage that dies on its first op, then force an
    # eviction pass: the crash lands inside evict_lru's delete loop.
    svc = open_service(root, ServiceStorage(crash_after=ops_before + 1))
    try:
        drive(svc)                       # replays; may write a little
        svc.cache.evict_lru(want_free=10 ** 9)
        svc.close()
    except SimulatedCrash:
        svc.abandon()

    with open_service(root) as svc2:
        drive(svc2)
        for job_id, (key, values, exact) in ref.items():
            got, meta = svc2.result(job_id)
            assert got.tolist() == values, job_id
            assert meta["exact"] == exact
            assert svc2.cache.verify(key), job_id
