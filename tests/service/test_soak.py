"""The seeded chaos-soak harness holds its invariants across ≥5 seeds
(the PR's acceptance bar) and its schedule is deterministic per seed."""

from __future__ import annotations

import pytest

from repro.observability import MetricsRegistry
from repro.service import SoakConfig, run_soak

pytestmark = [pytest.mark.service, pytest.mark.soak]

CFG = SoakConfig(rounds=3, jobs_per_round=5, clients=2)


@pytest.mark.parametrize("seed", [1, 2, 3, 5, 7])
def test_soak_invariants_hold(tmp_path, seed):
    report = run_soak(tmp_path / f"s{seed}", seed=seed, config=CFG)
    assert report["ok"], report["violations"]
    assert not report["violations"]
    assert len(report["rounds"]) == CFG.rounds
    assert report["journal"]["ok"]


def test_soak_schedule_is_deterministic(tmp_path):
    a = run_soak(tmp_path / "a", seed=11, config=CFG)
    b = run_soak(tmp_path / "b", seed=11, config=CFG)
    assert a["ok"] and b["ok"]
    # the injected chaos is a pure function of the seed
    assert a["faults_injected"] == b["faults_injected"]
    assert a["kills"] == b["kills"]
    assert [r["faults"] for r in a["rounds"]] == \
           [r["faults"] for r in b["rounds"]]


def test_soak_survives_forced_kill_every_round(tmp_path):
    cfg = SoakConfig(rounds=2, jobs_per_round=4, clients=2,
                     kill_every_round=True)
    metrics = MetricsRegistry()
    report = run_soak(tmp_path / "k", seed=7, config=cfg,
                      metrics=metrics)
    assert report["ok"], report["violations"]
    # a kill is *armed* every round; it fires only if the round performs
    # enough storage ops to reach the trigger, so >=1 is the guarantee
    assert report["kills"] >= 1
