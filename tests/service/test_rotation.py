"""Journal segment rotation, compaction, terminal-job GC, bounded disk,
and the `journal verify` scan."""

from __future__ import annotations

import os

import pytest

from repro.errors import JournalCorruptionError, StorageFullError
from repro.resilience import ActiveFaults, FaultPlan
from repro.service import (
    DONE,
    JobJournal,
    JobSpec,
    journal_inventory,
    read_journal_chain,
    replay_state,
    verify_journal,
)
from repro.service.storage import ServiceStorage

pytestmark = pytest.mark.service


def spec_dict(i: int) -> dict:
    return JobSpec(job_id=f"j{i:06d}", graph="smallworld",
                   scale_factor=512, roots=4, seed=i).to_dict()


def finish(j: JobJournal, i: int) -> None:
    j.append("submit", job=spec_dict(i))
    j.append("start", job_id=f"j{i:06d}", attempt=1, device="dev0")
    j.append("done", job_id=f"j{i:06d}", result_key="k" * 64, exact=True)


def test_rotation_seals_segments(tmp_path):
    p = str(tmp_path / "journal.jsonl")
    j = JobJournal(p, max_segment_bytes=600, keep_terminal=100)
    for i in range(8):
        finish(j, i)
    inv = journal_inventory(p)
    assert inv["segments"] or inv["compacts"]
    # replay across the chain sees every job, in order, terminal
    records, torn = read_journal_chain(p)
    assert not torn
    state = replay_state(records, p)
    assert len(state.jobs) == 8
    assert all(job.state == DONE for job in state.jobs.values())
    assert not state.illegal_transitions


def test_reopen_across_boundaries_continues_seq(tmp_path):
    p = str(tmp_path / "journal.jsonl")
    j = JobJournal(p, max_segment_bytes=400, keep_terminal=100)
    for i in range(5):
        finish(j, i)
    last = j._seq
    j.close()
    j2 = JobJournal(p, max_segment_bytes=400, keep_terminal=100)
    assert j2._seq >= last
    assert len({r["seq"] for r in j2.records}) == len(j2.records)
    finish(j2, 99)
    state = replay_state(j2.records, p)
    assert state.jobs["j000099"].state == DONE


def test_gc_drops_old_terminal_jobs_and_bounds_disk(tmp_path):
    p = str(tmp_path / "journal.jsonl")
    j = JobJournal(p, max_segment_bytes=1500, keep_terminal=2)
    sizes = []
    for i in range(40):
        finish(j, i)
        sizes.append(j.total_bytes())
    j.close()
    # the on-disk chain (what the next open replays) has dropped old
    # terminal jobs; the in-memory view keeps this process's history
    records, _ = read_journal_chain(p)
    state = replay_state(records, p)
    assert "j000039" in state.jobs
    assert "j000000" not in state.jobs
    # disk is bounded: the high-water mark stops growing
    assert max(sizes[20:]) <= max(sizes[:20]) + 1500


def test_live_job_survives_every_compaction(tmp_path):
    p = str(tmp_path / "journal.jsonl")
    j = JobJournal(p, max_segment_bytes=800, keep_terminal=0)
    j.append("submit", job=spec_dict(7777))
    j.append("start", job_id="j007777", attempt=1, device="dev0")
    for i in range(30):
        finish(j, i)
    j.compact(keep_terminal=0)
    state = replay_state(j.records, p)
    assert state.jobs["j007777"].state in ("running", "pending")
    assert not state.illegal_transitions


def test_compaction_slims_to_minimal_legal_chain(tmp_path):
    p = str(tmp_path / "journal.jsonl")
    j = JobJournal(p, max_segment_bytes=None, keep_terminal=100)
    # a noisy job: two requeues before done
    j.append("submit", job=spec_dict(1))
    j.append("start", job_id="j000001", attempt=1, device="dev0")
    j.append("requeue", job_id="j000001", reason="fault", delay=0.1)
    j.append("start", job_id="j000001", attempt=2, device="dev1")
    j.append("requeue", job_id="j000001", reason="fault", delay=0.2)
    j.append("start", job_id="j000001", attempt=3, device="dev0")
    j.append("done", job_id="j000001", result_key="k" * 64, exact=True)
    j.rotate()
    stats = j.compact()
    assert stats["dropped"] > 0
    j.close()
    records, _ = read_journal_chain(p)
    kinds = [r["kind"] for r in records if r.get("kind") != "open"]
    assert kinds == ["submit", "start", "done"]
    state = replay_state(records, p)
    assert state.jobs["j000001"].state == DONE
    assert state.jobs["j000001"].attempt == 3
    assert not state.illegal_transitions


def test_resubmitted_shed_job_compacts_to_latest_admission(tmp_path):
    p = str(tmp_path / "journal.jsonl")
    j = JobJournal(p, max_segment_bytes=None, keep_terminal=100)
    j.append("shed", job=spec_dict(1), reason="queue full")
    j.append("submit", job=spec_dict(1))
    j.append("start", job_id="j000001", attempt=1, device="dev0")
    j.append("done", job_id="j000001", result_key="k" * 64, exact=True)
    j.rotate()
    j.compact()
    j.close()
    records, _ = read_journal_chain(p)
    state = replay_state(records, p)
    assert state.jobs["j000001"].state == DONE
    assert not state.illegal_transitions


def test_enospc_on_append_reclaims_then_raises_typed(tmp_path):
    p = str(tmp_path / "journal.jsonl")
    st = ServiceStorage(
        faults=ActiveFaults(FaultPlan.parse("enospc:2@journalx9"), seed=0))
    j = JobJournal(p, storage=st, max_segment_bytes=None, keep_terminal=0)
    j.append("submit", job=spec_dict(1))
    with pytest.raises(StorageFullError) as exc:
        j.append("submit", job=spec_dict(2))
    assert exc.value.attempts == 2
    # the failed append left no half-record behind
    records, torn = read_journal_chain(p)
    assert not torn
    assert [r["kind"] for r in records if r["kind"] != "open"] == ["submit"]


def test_sealed_segment_torn_is_fatal(tmp_path):
    p = str(tmp_path / "journal.jsonl")
    j = JobJournal(p, max_segment_bytes=400, keep_terminal=100)
    for i in range(5):
        finish(j, i)
    j.close()
    inv = journal_inventory(p)
    victim = (inv["compacts"][-1][1] if inv["compacts"]
              else inv["segments"][0][1])
    with open(victim, "ab") as fh:
        fh.write(b'deadbeef {"kind":"done","job_')
    with pytest.raises(JournalCorruptionError):
        JobJournal(p, max_segment_bytes=400, keep_terminal=100)
    report = verify_journal(p)
    assert not report["ok"]
    assert any(r["path"] == victim and r["status"] in ("corrupt",
                                                       "torn-tail")
               for r in report["files"])


def test_active_torn_tail_is_benign_and_classified(tmp_path):
    p = str(tmp_path / "journal.jsonl")
    j = JobJournal(p)
    finish(j, 1)
    j.close()
    with open(p, "ab") as fh:
        fh.write(b'deadbeef {"kind":"done","job_')
    report = verify_journal(p)
    assert report["ok"]             # torn active tail is legal
    active = next(r for r in report["files"] if r["role"] == "active")
    assert active["status"] == "torn-tail"
    j2 = JobJournal(p)
    assert j2.torn_tail_truncated


def test_interior_rot_is_fatal_and_classified(tmp_path):
    p = str(tmp_path / "journal.jsonl")
    j = JobJournal(p)
    for i in range(3):
        finish(j, i)
    j.close()
    lines = open(p, "rb").read().splitlines(keepends=True)
    lines[2] = lines[2].replace(b'"kind"', b'"kinX"', 1)
    open(p, "wb").writelines(lines)
    report = verify_journal(p)
    assert not report["ok"]
    active = next(r for r in report["files"] if r["role"] == "active")
    assert active["status"] == "corrupt"   # interior, not a torn tail
    with pytest.raises(JournalCorruptionError):
        JobJournal(p)


def test_verify_clean_chain(tmp_path):
    p = str(tmp_path / "journal.jsonl")
    j = JobJournal(p, max_segment_bytes=500, keep_terminal=3)
    for i in range(12):
        finish(j, i)
    j.close()
    report = verify_journal(p)
    assert report["ok"] and not report["problems"]
    assert report["total_records"] == sum(r["records"]
                                          for r in report["files"])
