"""Out-of-process kill-and-recover smoke (the CI `service` job's body).

Drives the real CLI in a subprocess: spool three jobs (one with an
injected fault), let the daemon finish at least one, ``SIGKILL`` it
mid-run, restart, and assert every job reaches the correct terminal
state with a verifiable cached result.  Marked ``service`` so CI can
select exactly this with ``-m service``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service import DONE, read_journal, replay_state, ResultCache

pytestmark = pytest.mark.service

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def cli(*argv, **kw):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    return subprocess.run([sys.executable, "-m", "repro", *argv],
                          cwd=REPO, env=env, capture_output=True,
                          text=True, timeout=120, **kw)


def wait_for(predicate, timeout=60, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def journal_kinds(root):
    records, _ = read_journal(os.path.join(root, "journal.jsonl"))
    return [r["kind"] for r in records]


def test_kill_and_recover_end_to_end(tmp_path):
    root = str(tmp_path / "svc")

    # 1. Spool three jobs before any daemon exists (tickets are the
    #    cross-process submission path; no daemon required).
    for i, extra in ((1, []), (2, ["--strategy", "hybrid"]),
                     (3, ["--faults", "fail:0@compute+1"])):
        r = cli("service", "submit", "--root", root,
                "--job-id", f"smoke{i}", "--scale-factor", "256",
                "--roots", "4", "--seed", str(i), *extra)
        assert r.returncode == 0, r.stderr
        assert f"smoke{i}" in r.stdout

    # 2. Start the daemon throttled so the SIGKILL window is wide.
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro", "service", "serve",
         "--root", root, "--throttle", "1.5", "--poll-interval", "0.05"],
        cwd=REPO, env=env,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    try:
        # 3. Wait for the first result, then SIGKILL mid-run: at least
        #    one job is done, at least one is not.
        assert wait_for(lambda: "done" in journal_kinds(root)), \
            "daemon never finished a job"
        daemon.send_signal(signal.SIGKILL)
        daemon.wait(timeout=30)
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait(timeout=30)

    kinds = journal_kinds(root)
    assert kinds.count("done") < 3, "SIGKILL landed after all jobs done"

    # 4. Restart; --idle-exit drains the recovered queue then exits 0.
    r = cli("service", "serve", "--root", root, "--idle-exit", "1",
            "--poll-interval", "0.05")
    assert r.returncode == 0, r.stderr

    # 5. Every job is terminal DONE with the chaos job retried, and the
    #    journal replays cleanly (it is the artifact CI uploads).
    records, torn = read_journal(os.path.join(root, "journal.jsonl"))
    assert not torn
    state = replay_state(records)
    assert sorted(state.jobs) == ["smoke1", "smoke2", "smoke3"]
    for job_id, job in state.jobs.items():
        assert job.state == DONE, (job_id, job.state)
    assert state.jobs["smoke3"].attempt >= 2  # injected fault retried

    # 6. Results are in the cache and checksum-verify; the CLI agrees.
    cache = ResultCache(os.path.join(root, "results"))
    for job_id, job in state.jobs.items():
        assert cache.verify(job.result_key), job_id
        r = cli("service", "results", "--root", root, job_id)
        assert r.returncode == 0, r.stderr
    r = cli("service", "status", "--root", root)
    assert r.returncode == 0
    assert r.stdout.count('"done"') >= 3 or r.stdout.count("done") >= 3
