"""Result-cache LRU eviction under a byte budget: pins, recency,
ENOSPC reclaim, restart rebuild, and recompute-not-resurrect."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import StorageFullError
from repro.observability import MetricsRegistry
from repro.resilience import ActiveFaults, FaultPlan
from repro.service import BCService, JobSpec, ResultCache
from repro.service.storage import ServiceStorage

pytestmark = pytest.mark.service


def put(cache, key_char, n=200):
    key = key_char * 64
    cache.put(key, np.arange(n, dtype=np.float64), {"job_id": key_char})
    return key


def entry_bytes(tmp_path) -> int:
    """Measured size of one standard test entry (sizes the budgets)."""
    probe = ResultCache(tmp_path / "probe")
    path = probe.path(put(probe, "p"))
    return os.path.getsize(path)


def test_budget_evicts_lru_only(tmp_path):
    budget = int(entry_bytes(tmp_path) * 3.5)    # room for 3 entries
    cache = ResultCache(tmp_path / "c", max_bytes=budget)
    keys = [put(cache, c) for c in "abcdef"]
    assert 0 < cache.total_bytes <= budget
    # the newest entries survive, the oldest are gone
    assert keys[-1] in cache and keys[-2] in cache
    assert keys[0] not in cache
    assert not os.path.exists(cache.path(keys[0]))


def test_get_refreshes_recency(tmp_path):
    budget = int(entry_bytes(tmp_path) * 4.5)    # room for 4 entries
    cache = ResultCache(tmp_path / "c", max_bytes=budget)
    a = put(cache, "a")
    for c in "bcd":
        put(cache, c)
    assert cache.get(a) is not None      # a becomes most-recent
    for c in "efg":
        put(cache, c)
    assert a in cache                    # survived: it was touched
    assert "b" * 64 not in cache         # b was the stale one


def test_pinned_entries_never_evicted(tmp_path):
    budget = int(entry_bytes(tmp_path) * 3.5)
    cache = ResultCache(tmp_path / "c", max_bytes=budget)
    a = put(cache, "a")
    cache.pin(a)
    for c in "bcdefgh":
        put(cache, c)
    assert a in cache
    assert cache.get(a) is not None
    cache.unpin(a)
    for c in "ijkl":
        put(cache, c)
    assert a not in cache                # unpinned → fair game


def test_enospc_put_evicts_and_retries(tmp_path):
    st = ServiceStorage(
        faults=ActiveFaults(FaultPlan.parse("enospc:3@cache"), seed=0))
    metrics = MetricsRegistry()
    cache = ResultCache(tmp_path / "c", metrics=metrics, storage=st,
                        max_bytes=None)
    for c in "abc":
        put(cache, c)
    d = put(cache, "d")                  # hits injected ENOSPC, reclaims
    assert cache.get(d) is not None
    evicted = [c for c in metrics.counters()
               if c.name == "service.cache.evicted"]
    assert evicted and evicted[0].value >= 1


def test_enospc_put_exhausted_raises_typed(tmp_path):
    st = ServiceStorage(
        faults=ActiveFaults(FaultPlan.parse("enospc:0@cachex9"), seed=0))
    cache = ResultCache(tmp_path / "c", storage=st)
    with pytest.raises(StorageFullError) as exc:
        put(cache, "a")
    assert exc.value.attempts == 2


def test_restart_rebuilds_sizes_and_recency(tmp_path):
    cache = ResultCache(tmp_path / "c", max_bytes=50_000)
    for c in "abc":
        put(cache, c)
    sizes = dict(cache._sizes)
    again = ResultCache(tmp_path / "c", max_bytes=50_000)
    assert dict(again._sizes) == sizes
    assert again.total_bytes == cache.total_bytes


def test_evicted_result_is_recomputed_not_resurrected(tmp_path):
    """End-to-end: evict a DONE job's blob under budget pressure, then
    `result()` — the daemon must recompute identical values from the
    journal, never serve (or trust) stale/corrupt bytes."""
    with BCService(tmp_path / "svc", cache_max_bytes=None) as svc:
        job = svc.submit(JobSpec(graph="smallworld", scale_factor=512,
                                 strategy="sampling", roots=4, seed=1))
        svc.run_pending()
        key = svc.jobs[job.job_id].result_key
        ref_values, ref_meta = svc.result(job.job_id)
        # simulate budget eviction: the blob is deleted, not corrupted
        svc.cache.evict_lru(want_free=10 ** 9)
        assert key not in svc.cache
        values, meta = svc.result(job.job_id)
        np.testing.assert_array_equal(values, ref_values)
        assert meta["exact"] == ref_meta["exact"]
        assert svc.cache.verify(key)     # re-materialised and intact


def test_service_respects_cache_budget(tmp_path):
    with BCService(tmp_path / "svc", cache_max_bytes=30_000) as svc:
        for i in range(6):
            svc.submit(JobSpec(graph="smallworld", scale_factor=512,
                               strategy="sampling", roots=4, seed=i))
            svc.run_pending()
        assert svc.cache.total_bytes <= 30_000
        # every DONE job still answers result() (recompute on miss)
        for job_id, rec in svc.jobs.items():
            values, _ = svc.result(job_id)
            assert values.size > 0
