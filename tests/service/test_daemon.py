"""BCService end-to-end: crash grid, exactly-once, overload, cancel."""

from __future__ import annotations

import json
import os
import shutil

import numpy as np
import pytest

from repro.errors import (
    JobNotFoundError,
    JobSpecError,
    ServiceOverloadError,
)
from repro.observability import MetricsRegistry
from repro.service import (
    DONE,
    FAILED,
    SHED,
    TERMINAL_STATES,
    AdmissionPolicy,
    BCService,
    JobSpec,
    ResultCache,
    Scheduler,
    read_journal,
)


def spec(i=None, **kw):
    kw.setdefault("graph", "smallworld")
    kw.setdefault("scale_factor", 512)
    kw.setdefault("strategy", "sampling")
    kw.setdefault("roots", 4)
    if i is not None:
        kw.setdefault("job_id", f"j{i:06d}")
        kw.setdefault("seed", i)
    return JobSpec(**kw)


def reference_run(root):
    """A crash-free service run over a mixed workload; returns
    ``(terminal states, result bytes per job)``."""
    with BCService(root) as svc:
        svc.submit(spec(1))
        svc.submit(spec(2, strategy="hybrid"))
        svc.submit(spec(3, faults="fail:0@compute+1"))   # retried chaos
        svc.submit(spec(4, deadline_seconds=1e-9))       # degrades
        svc.run_pending()
        states = {j: r.state for j, r in svc.jobs.items()}
        blobs = {}
        for job_id, rec in svc.jobs.items():
            if rec.result_key:
                values, meta = svc.result(job_id)
                blobs[job_id] = (rec.result_key, values.tolist(),
                                 meta["exact"], meta["degraded_reason"])
    return states, blobs


def test_submit_process_result_roundtrip(tmp_path):
    with BCService(tmp_path / "svc") as svc:
        job = svc.submit(spec(1))
        assert job.job_id == "j000001"
        svc.run_pending()
        assert svc.jobs[job.job_id].state == DONE
        values, meta = svc.result(job.job_id)
        assert meta["exact"] is True
        assert values.shape[0] > 0
        with pytest.raises(JobNotFoundError):
            svc.status("ghost")
        # Identical content resubmitted (same id or no id): folded into
        # the existing job — submit idempotency, no second execution.
        again = svc.submit(spec(1))
        assert again is job
        # Same id for *different* content is still an error.
        with pytest.raises(JobSpecError):
            svc.submit(spec(1, seed=999))


def test_crash_recovery_grid_every_truncation_point(tmp_path):
    """SIGKILL at any journal boundary: restart converges to the same
    terminal states, with no job lost, duplicated, or left mid-flight."""
    ref_root = tmp_path / "ref"
    ref_states, ref_blobs = reference_run(ref_root)
    assert ref_states["j000001"] == DONE
    assert ref_states["j000003"] == DONE     # chaos retried to success
    assert ref_states["j000004"] == DONE     # deadline-degraded

    journal_lines = open(ref_root / "journal.jsonl",
                         encoding="utf-8").readlines()
    submit_line = {}
    for n, line in enumerate(journal_lines, start=1):
        body = json.loads(line.split(" ", 1)[1])
        if body["kind"] == "submit":
            submit_line[body["job"]["job_id"]] = n

    for cut in range(1, len(journal_lines) + 1):
        crash_root = tmp_path / f"crash{cut}"
        os.makedirs(crash_root)
        with open(crash_root / "journal.jsonl", "w",
                  encoding="utf-8") as fh:
            fh.writelines(journal_lines[:cut])
        with BCService(crash_root) as svc:
            svc.run_pending()
            for job_id, line_no in submit_line.items():
                if cut < line_no:
                    assert job_id not in svc.jobs
                    continue
                rec = svc.jobs[job_id]
                assert rec.state in TERMINAL_STATES, (cut, job_id)
                assert rec.state == ref_states[job_id], (cut, job_id)
                if rec.state == DONE:
                    # exactly-once materialisation: the recovered run
                    # lands on the same content-addressed key with the
                    # same values and the same exactness flags (attempt
                    # counts may differ — that's execution history, not
                    # the result).  Read through svc.result(): a `done`
                    # record whose blob is missing at rest must self-heal
                    # to the identical result.
                    values, meta = svc.result(job_id)
                    got = (rec.result_key, values.tolist(),
                           meta["exact"], meta["degraded_reason"])
                    assert got == ref_blobs[job_id], (cut, job_id)


def test_crash_recovery_with_torn_tail(tmp_path):
    ref_root = tmp_path / "ref"
    ref_states, _ = reference_run(ref_root)
    lines = open(ref_root / "journal.jsonl", encoding="utf-8").readlines()
    crash_root = tmp_path / "crash"
    os.makedirs(crash_root)
    # torn write: half a record after a mid-run boundary
    with open(crash_root / "journal.jsonl", "w", encoding="utf-8") as fh:
        fh.writelines(lines[: len(lines) // 2])
        fh.write('abcd1234 {"kind":"done","job_')
    with BCService(crash_root) as svc:
        assert svc.journal.torn_tail_truncated
        svc.run_pending()
        for job_id, rec in svc.jobs.items():
            assert rec.state in TERMINAL_STATES
            assert rec.state == ref_states[job_id]


def test_crash_between_cache_write_and_done_replays_from_cache(tmp_path):
    """The exactly-once window: result materialised, `done` not yet
    durable.  Recovery must acknowledge the cached result, not
    recompute it."""
    ref_root = tmp_path / "ref"
    with BCService(ref_root) as svc:
        svc.submit(spec(1))
        svc.run_pending()
        key = svc.jobs["j000001"].result_key
        ref_blob = open(svc.cache.path(key), "rb").read()

    crash_root = tmp_path / "crash"
    os.makedirs(crash_root)
    lines = open(ref_root / "journal.jsonl", encoding="utf-8").readlines()
    kept = [ln for ln in lines
            if json.loads(ln.split(" ", 1)[1])["kind"] != "done"]
    open(crash_root / "journal.jsonl", "w", encoding="utf-8").writelines(kept)
    shutil.copytree(ref_root / "results", crash_root / "results")

    metrics = MetricsRegistry()
    with BCService(crash_root, metrics=metrics) as svc:
        assert svc.recovered_ids == ["j000001"]
        svc.run_pending()
        rec = svc.jobs["j000001"]
        assert rec.state == DONE and rec.result_key == key
        assert open(svc.cache.path(key), "rb").read() == ref_blob
        replayed = [c for c in metrics.counters()
                    if c.name == "service.cache.replayed"]
        assert replayed and replayed[0].value == 1
        # the scheduler never ran the job again
        assert svc.scheduler.decisions == []


def test_result_self_heals_corrupt_cache_entry(tmp_path):
    with BCService(tmp_path / "svc") as svc:
        job = svc.submit(spec(1))
        svc.run_pending()
        ref_values, _ = svc.result(job.job_id)
        path = svc.cache.path(svc.jobs[job.job_id].result_key)
        doc = json.loads(open(path, encoding="utf-8").read())
        doc["values"][0] = 1e9
        open(path, "w", encoding="utf-8").write(json.dumps(doc))
        healed, meta = svc.result(job.job_id)
        np.testing.assert_array_equal(healed, ref_values)
        assert svc.cache.verify(svc.jobs[job.job_id].result_key)


def test_overload_sheds_typed_and_degrades_flagged(tmp_path):
    policy = AdmissionPolicy(max_queue=3, degrade_threshold=1,
                             tenant_quota=10)
    with BCService(tmp_path / "svc", policy=policy) as svc:
        first = svc.submit(spec(1))           # depth 0 -> exact
        assert not first.admit_degraded
        second = svc.submit(spec(2))          # depth 1 -> overload mode
        third = svc.submit(spec(3))
        assert second.admit_degraded and third.admit_degraded
        with pytest.raises(ServiceOverloadError) as exc:
            svc.submit(spec(4))               # depth 3 == max_queue
        assert exc.value.limit == 3
        assert svc.jobs["j000004"].state == SHED

        svc.run_pending()
        assert svc.jobs["j000001"].exact is True
        for j in ("j000002", "j000003"):
            rec = svc.jobs[j]
            assert rec.state == DONE
            assert rec.exact is False            # never silently exact
            assert rec.degraded_reason == "overload"
        # shed state survives restart
    with BCService(tmp_path / "svc", policy=policy) as svc2:
        assert svc2.jobs["j000004"].state == SHED


def test_tenant_quota_shed(tmp_path):
    policy = AdmissionPolicy(max_queue=50, tenant_quota=2)
    with BCService(tmp_path / "svc", policy=policy) as svc:
        svc.submit(spec(1, tenant="acme"))
        svc.submit(spec(2, tenant="acme"))
        with pytest.raises(ServiceOverloadError):
            svc.submit(spec(3, tenant="acme"))
        # other tenants are unaffected
        svc.submit(spec(4, tenant="other"))


def test_cancel_pending_only(tmp_path):
    with BCService(tmp_path / "svc") as svc:
        job = svc.submit(spec(1))
        assert svc.cancel(job.job_id) is True
        assert svc.jobs[job.job_id].state == "cancelled"
        svc.run_pending()
        assert svc.jobs[job.job_id].state == "cancelled"
        done = svc.submit(spec(2))
        svc.run_pending()
        assert svc.cancel(done.job_id) is False  # already terminal


def test_deadline_strict_job_fails_typed(tmp_path):
    with BCService(tmp_path / "svc") as svc:
        job = svc.submit(spec(1, deadline_seconds=1e-9,
                              allow_degrade=False))
        svc.run_pending()
        rec = svc.jobs[job.job_id]
        assert rec.state == FAILED
        assert "deadline" in rec.error


def test_breaker_quarantine_survives_restart(tmp_path):
    sched = lambda m=None: Scheduler(max_retries=0, metrics=m)  # noqa: E731
    from repro.service import CircuitBreaker

    def mk(metrics=None):
        s = Scheduler(max_retries=0,
                      breaker=CircuitBreaker(threshold=2, cooldown=100))
        return s

    root = tmp_path / "svc"
    with BCService(root, scheduler=mk()) as svc:
        for i in (1, 2):
            svc.submit(spec(i, faults="oom:0x5"))
        svc.run_pending()
        assert all(svc.jobs[f"j{i:06d}"].state == FAILED for i in (1, 2))
    with BCService(root, scheduler=mk()) as svc2:
        job = svc2.submit(spec(3))
        svc2.run_pending()
        rec = svc2.jobs[job.job_id]
        assert rec.state == FAILED and "circuit open" in rec.error


def test_spool_submit_and_cancel(tmp_path):
    root = tmp_path / "svc"
    with BCService(root) as svc:
        ticket = {"op": "submit", "job": spec(job_id="sp1").to_dict()}
        with open(os.path.join(svc.spool_dir, "a.json"), "w") as fh:
            json.dump(ticket, fh)
        assert svc.poll_spool() == 1
        assert "sp1" in svc.jobs
        with open(os.path.join(svc.spool_dir, "b.json"), "w") as fh:
            json.dump({"op": "cancel", "job_id": "sp1"}, fh)
        svc.poll_spool()
        assert svc.jobs["sp1"].state == "cancelled"
        assert os.listdir(svc.spool_dir) == []


def test_journal_is_single_source_of_truth_for_status(tmp_path):
    root = tmp_path / "svc"
    with BCService(root) as svc:
        svc.submit(spec(1))
        svc.run_pending()
        rows = svc.status()
    # offline read of the same journal reconstructs the same view
    from repro.service import replay_state

    records, torn = read_journal(root / "journal.jsonl")
    assert not torn
    offline = replay_state(records, str(root / "journal.jsonl"))
    assert offline.jobs["j000001"].status_dict() == rows[0]
