"""Journal format, torn-tail semantics, and the crash-replay grid."""

from __future__ import annotations

import os

import pytest

from repro.errors import JournalCorruptionError
from repro.service import (
    DONE,
    PENDING,
    JobJournal,
    JobSpec,
    decode_line,
    encode_record,
    read_journal,
    replay_state,
)


def spec(i=1, **kw):
    kw.setdefault("graph", "smallworld")
    kw.setdefault("scale_factor", 64)
    kw.setdefault("roots", 2)
    return JobSpec(job_id=f"j{i:06d}", **kw)


def test_encode_decode_roundtrip():
    rec = {"kind": "submit", "seq": 3, "job": spec().to_dict()}
    assert decode_line(encode_record(rec)) == rec


def test_decode_rejects_bad_checksum_framing_and_json():
    line = encode_record({"kind": "open", "seq": 1})
    flipped = ("0" if line[0] != "0" else "1") + line[1:]
    with pytest.raises(ValueError, match="checksum"):
        decode_line(flipped)
    with pytest.raises(ValueError, match="torn"):
        decode_line(line[:-1])  # no trailing newline
    with pytest.raises(ValueError, match="framing"):
        decode_line("zz\n")


def test_append_is_durable_and_seq_monotonic(tmp_path):
    path = tmp_path / "j.jsonl"
    with JobJournal(path) as j:
        j.append("submit", job=spec().to_dict())
        j.append("start", job_id="j000001", attempt=1, device="dev0")
    records, torn = read_journal(path)
    assert not torn
    kinds = [r["kind"] for r in records]
    assert kinds == ["open", "submit", "start"]
    seqs = [r["seq"] for r in records]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


def test_reopen_continues_sequence(tmp_path):
    path = tmp_path / "j.jsonl"
    with JobJournal(path) as j:
        j.append("submit", job=spec().to_dict())
        last = j.records[-1]["seq"]
    with JobJournal(path) as j2:
        assert j2.records[-1]["kind"] == "open"
        assert j2.records[-1]["seq"] > last


def test_torn_tail_is_dropped_and_truncated(tmp_path):
    path = tmp_path / "j.jsonl"
    with JobJournal(path) as j:
        j.append("submit", job=spec().to_dict())
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('deadbeef {"kind":"done","seq"')  # SIGKILL mid-write
    records, torn = read_journal(path)
    assert torn and [r["kind"] for r in records] == ["open", "submit"]
    # Reopening truncates the torn line and keeps appending cleanly.
    with JobJournal(path) as j2:
        assert j2.torn_tail_truncated
    records2, torn2 = read_journal(path)
    assert not torn2
    assert [r["kind"] for r in records2] == ["open", "submit", "open"]


def test_interior_corruption_raises(tmp_path):
    path = tmp_path / "j.jsonl"
    with JobJournal(path) as j:
        j.append("submit", job=spec().to_dict())
        j.append("start", job_id="j000001", attempt=1, device="dev0")
    lines = open(path, encoding="utf-8").readlines()
    lines[1] = "00000000 " + lines[1][9:]  # corrupt a non-tail record
    open(path, "w", encoding="utf-8").writelines(lines)
    with pytest.raises(JournalCorruptionError) as exc:
        read_journal(path)
    assert exc.value.line_no == 2


def test_replay_requeues_running_jobs_with_attempts():
    s = spec()
    records = [
        {"kind": "open", "seq": 1},
        {"kind": "submit", "seq": 2, "job": s.to_dict()},
        {"kind": "start", "seq": 3, "job_id": s.job_id, "attempt": 1,
         "device": "dev0"},
        {"kind": "requeue", "seq": 4, "job_id": s.job_id, "attempt": 1,
         "delay": 0.03, "reason": "RankFailure"},
        {"kind": "start", "seq": 5, "job_id": s.job_id, "attempt": 2,
         "device": "dev1"},
    ]
    state = replay_state(records)
    job = state.jobs[s.job_id]
    assert job.state == PENDING and job.recovered
    assert job.attempt == 2  # retry budget is resumed, not reset
    assert state.interrupted == [s.job_id]
    assert state.pending_ids() == [s.job_id]
    assert job.backoff_delays == [0.03]


def test_replay_every_truncation_point_never_loses_or_duplicates(tmp_path):
    """The crash grid: replaying any journal prefix yields a state from
    which every submitted job is either recoverable (pending/running->
    pending) or already terminal — never absent, never duplicated."""
    s1, s2 = spec(1), spec(2, seed=5)
    full = [
        {"kind": "open", "seq": 1},
        {"kind": "submit", "seq": 2, "job": s1.to_dict()},
        {"kind": "submit", "seq": 3, "job": s2.to_dict()},
        {"kind": "start", "seq": 4, "job_id": s1.job_id, "attempt": 1,
         "device": "dev0"},
        {"kind": "done", "seq": 5, "job_id": s1.job_id, "result_key": "k1",
         "exact": True, "sim_seconds": 0.1, "device": "dev0"},
        {"kind": "start", "seq": 6, "job_id": s2.job_id, "attempt": 1,
         "device": "dev1"},
        {"kind": "requeue", "seq": 7, "job_id": s2.job_id, "attempt": 1,
         "delay": 0.05, "reason": "oom"},
        {"kind": "start", "seq": 8, "job_id": s2.job_id, "attempt": 2,
         "device": "dev1"},
        {"kind": "done", "seq": 9, "job_id": s2.job_id, "result_key": "k2",
         "exact": True, "sim_seconds": 0.2, "device": "dev1"},
    ]
    submitted_at = {s1.job_id: 2, s2.job_id: 3}
    for cut in range(len(full) + 1):
        state = replay_state(full[:cut])
        seen = set()
        for job_id, at in submitted_at.items():
            if cut >= at:
                assert job_id in state.jobs, (cut, job_id)
                assert job_id not in seen
                seen.add(job_id)
                job = state.jobs[job_id]
                # never an un-runnable limbo state
                assert job.state in (PENDING, DONE)
            else:
                assert job_id not in state.jobs
        assert not state.illegal_transitions


def test_replay_rejects_record_for_unknown_job():
    records = [{"kind": "start", "seq": 1, "job_id": "ghost", "attempt": 1,
                "device": "dev0"}]
    with pytest.raises(JournalCorruptionError):
        replay_state(records)


def test_breaker_records_survive_replay():
    records = [
        {"kind": "breaker", "seq": 1, "graph_key": "abc", "strategy":
         "sampling", "state": "open", "failures": 3},
        {"kind": "breaker", "seq": 2, "graph_key": "abc", "strategy":
         "sampling", "state": "half-open", "failures": 3},
    ]
    state = replay_state(records)
    assert state.breakers[("abc", "sampling")]["state"] == "half-open"


def test_torn_tail_after_every_record_boundary(tmp_path):
    """Appending garbage after any durable prefix still reads back the
    full prefix (torn tail drops exactly the unacknowledged bytes)."""
    path = tmp_path / "j.jsonl"
    s = spec()
    with JobJournal(path) as j:
        j.append("submit", job=s.to_dict())
        j.append("start", job_id=s.job_id, attempt=1, device="dev0")
        j.append("done", job_id=s.job_id, result_key="k", exact=True,
                 sim_seconds=0.1, device="dev0")
    whole = open(path, "rb").read()
    lines = whole.decode("utf-8").splitlines(keepends=True)
    for n in range(1, len(lines) + 1):
        prefix = "".join(lines[:n])
        for garbage in ("", '1234 {"kind":', "xx"):
            p = tmp_path / f"cut{n}_{len(garbage)}.jsonl"
            p.write_text(prefix + garbage, encoding="utf-8")
            records, torn = read_journal(p)
            assert len(records) == n
            assert torn == bool(garbage)
            replay_state(records)  # never raises on a clean prefix
