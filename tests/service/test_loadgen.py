"""Load generator: determinism, scenario shapes, bench-grid citizenship."""

from __future__ import annotations

from repro.bench import run_bench_grid, diff_bench
from repro.observability import MetricsRegistry, dumps
from repro.service import SCENARIOS, LoadScenario, run_load_scenario, \
    service_bench_rows


def test_scenarios_are_deterministic():
    for scenario in SCENARIOS:
        a = run_load_scenario(scenario, seed=0)
        b = run_load_scenario(scenario, seed=0)
        assert dumps(a) == dumps(b)
    assert dumps(run_load_scenario(SCENARIOS[0], seed=1)) != \
        dumps(run_load_scenario(SCENARIOS[0], seed=0))


def test_steady_scenario_admits_everything_exactly():
    row = run_load_scenario(SCENARIOS[0], seed=0)
    assert row["strategy"] == "steady"
    assert row["jobs_completed"] == row["jobs_offered"]
    assert row["shed_rate"] == 0.0
    assert row["degraded_rate"] == 0.0
    assert row["p50_latency"] > 0 and row["p99_latency"] >= row["p50_latency"]


def test_overload_scenario_sheds_and_degrades():
    """Saturation must be visible: load is shed (bounded queue) and a
    share of admitted jobs is downgraded to flagged estimates, which is
    what keeps p99 bounded instead of growing with the backlog."""
    row = run_load_scenario(SCENARIOS[1], seed=0)
    assert row["strategy"] == "overload"
    assert row["shed_rate"] > 0
    assert row["degraded_rate"] > 0
    assert row["jobs_completed"] < row["jobs_offered"]
    steady = run_load_scenario(SCENARIOS[0], seed=0)
    assert row["p99_latency"] < 100 * steady["p99_latency"]


def test_rows_are_bench_grid_citizens():
    rows = service_bench_rows(seed=0)
    assert [(r["dataset"], r["strategy"]) for r in rows] == \
        [("service-load", s.name) for s in SCENARIOS]
    for row in rows:
        assert row["makespan_cycles"] > 0
        assert row["sim_seconds"] > 0
        assert row["jobs_per_sec"] > 0


def test_grid_appends_service_rows_and_diffs_clean():
    kw = dict(scale_factor=2048, roots=4, seed=0, datasets=("smallworld",))
    doc, wall = run_bench_grid(include_service=True, **kw)
    service = [r for r in doc["results"] if r["dataset"] == "service-load"]
    assert {r["strategy"] for r in service} == {s.name for s in SCENARIOS}
    assert "service-load" in wall
    bare, _ = run_bench_grid(include_service=False, **kw)
    assert not [r for r in bare["results"]
                if r["dataset"] == "service-load"]
    # Same-seed rerun ratchets clean through the default diff metric.
    again, _ = run_bench_grid(include_service=True, **kw)
    diff = diff_bench(doc, again)
    assert not diff.has_regressions
    assert {r.status for r in diff.rows} == {"unchanged"}


def test_loadgen_records_metrics():
    metrics = MetricsRegistry()
    scenario = LoadScenario("tiny", jobs=4, arrival_rate=1.0,
                            scale_factor=128)
    run_load_scenario(scenario, seed=0, metrics=metrics)
    names = {c.name for c in metrics.counters()}
    assert "service.admitted" in names
