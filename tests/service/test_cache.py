"""Content-addressed result cache: verified reads, evict-and-recompute."""

from __future__ import annotations

import json

import numpy as np

from repro.observability import MetricsRegistry
from repro.service import ResultCache, result_key


def test_key_is_deterministic_and_sensitive():
    roots = np.array([1, 3, 5])
    k = result_key("g" * 64, "sampling", roots, 0)
    assert k == result_key("g" * 64, "sampling", roots, 0)
    assert k != result_key("h" * 64, "sampling", roots, 0)
    assert k != result_key("g" * 64, "hybrid", roots, 0)
    assert k != result_key("g" * 64, "sampling", roots[:-1], 0)
    assert k != result_key("g" * 64, "sampling", roots, 1)
    # a degraded estimate is a different artifact, never a collision
    assert k != result_key("g" * 64, "sampling", roots, 0,
                           degraded="overload")


def test_put_get_roundtrip(tmp_path):
    cache = ResultCache(tmp_path / "results")
    values = np.array([0.0, 1.5, 2.25])
    key = result_key("g" * 64, "sampling", [0, 1], 0)
    cache.put(key, values, {"exact": True, "job_id": "j1"})
    got, meta = cache.get(key)
    np.testing.assert_array_equal(got, values)
    assert meta["exact"] is True
    assert cache.verify(key)


def test_put_is_idempotent_bytes(tmp_path):
    cache = ResultCache(tmp_path)
    key = result_key("g" * 64, "sampling", [2], 7)
    p = cache.put(key, np.array([1.0]), {"exact": True})
    first = open(p, "rb").read()
    cache.put(key, np.array([1.0]), {"exact": True})
    assert open(p, "rb").read() == first


def test_corrupt_entry_is_evicted_not_served(tmp_path):
    metrics = MetricsRegistry()
    cache = ResultCache(tmp_path, metrics=metrics)
    key = result_key("g" * 64, "sampling", [0], 0)
    path = cache.put(key, np.array([3.0, 4.0]), {"exact": True})

    doc = json.loads(open(path, encoding="utf-8").read())
    doc["values"][0] = 99.0  # rot at rest, checksum now stale
    open(path, "w", encoding="utf-8").write(json.dumps(doc))

    assert cache.get(key) is None  # never served
    assert not (tmp_path / path).exists() or not cache.verify(key)
    evicted = [c for c in metrics.counters()
               if c.name == "service.cache.corrupt_evicted"]
    assert evicted and evicted[0].value == 1

    # recompute heals: same key, same content, verifies again
    cache.put(key, np.array([3.0, 4.0]), {"exact": True})
    got, _ = cache.get(key)
    np.testing.assert_array_equal(got, [3.0, 4.0])


def test_unreadable_entry_is_evicted(tmp_path):
    cache = ResultCache(tmp_path)
    key = result_key("g" * 64, "sampling", [0], 0)
    path = cache.put(key, np.array([1.0]), {"exact": True})
    open(path, "w").write("not json{")
    assert cache.get(key) is None
    assert cache.get(key) is None  # second read is a plain miss


def test_wrong_key_in_body_rejected(tmp_path):
    cache = ResultCache(tmp_path)
    k1 = result_key("g" * 64, "sampling", [0], 0)
    k2 = result_key("g" * 64, "sampling", [1], 0)
    path1 = cache.put(k1, np.array([1.0]), {"exact": True})
    import os
    import shutil
    os.makedirs(os.path.dirname(cache.path(k2)), exist_ok=True)
    shutil.copy(path1, cache.path(k2))  # entry claims to be k1
    assert cache.get(k2) is None
