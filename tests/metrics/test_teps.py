"""Unit tests for TEPS accounting (Eq. 4)."""

import pytest

from repro.metrics.teps import TEPSReport, format_teps, gteps, mteps, teps


class TestTeps:
    def test_formula(self):
        # Eq. 4: TEPS = m*n/t.
        assert teps(1000, 50, 2.0) == 25_000

    def test_units(self):
        assert mteps(10**6, 10, 1.0) == pytest.approx(10.0)
        assert gteps(10**9, 10, 1.0) == pytest.approx(10.0)

    def test_zero_time(self):
        assert teps(10, 10, 0.0) == float("inf")

    def test_negative_time(self):
        with pytest.raises(ValueError):
            teps(10, 10, -1.0)

    def test_format(self):
        assert format_teps(2.5e9) == "2.50 GTEPS"
        assert format_teps(2.5e6) == "2.50 MTEPS"
        assert format_teps(2.5e3) == "2.50 KTEPS"
        assert format_teps(12.0) == "12.00 TEPS"


class TestReport:
    def test_properties(self):
        r = TEPSReport("g", "sampling", 100, 500, 100, 2.0)
        assert r.teps == 500 * 100 / 2.0
        assert r.mteps == r.teps / 1e6

    def test_speedup(self):
        slow = TEPSReport("g", "edge-parallel", 100, 500, 100, 10.0)
        fast = TEPSReport("g", "sampling", 100, 500, 100, 2.0)
        assert fast.speedup_over(slow) == pytest.approx(5.0)

    def test_speedup_zero_time(self):
        fast = TEPSReport("g", "s", 1, 1, 1, 0.0)
        slow = TEPSReport("g", "e", 1, 1, 1, 1.0)
        assert fast.speedup_over(slow) == float("inf")
