"""Unit tests for frontier-evolution metrics (Figure 3 helpers)."""

import numpy as np
import pytest

from repro.metrics.frontier import classify_frontier_shape, frontier_evolution


class TestFrontierEvolution:
    def test_path(self, path5):
        evo = frontier_evolution(path5, 0)
        assert evo.sizes.tolist() == [1, 1, 1, 1, 1]
        assert evo.peak_percentage == pytest.approx(20.0)
        assert evo.num_levels == 5

    def test_star_balloons(self, star):
        evo = frontier_evolution(star, 0)
        assert evo.peak_percentage == pytest.approx(6 / 7 * 100)

    def test_percentages_sum_to_reached(self, small_sw):
        evo = frontier_evolution(small_sw, 3)
        reached_pct = evo.percentages.sum()
        assert reached_pct <= 100.0 + 1e-9

    def test_graph_name_carried(self, small_sw):
        assert frontier_evolution(small_sw, 0).graph == small_sw.name


class TestClassification:
    def test_ballooning_smallworld(self, small_sw):
        evo = frontier_evolution(small_sw, 0)
        assert classify_frontier_shape(evo) == "ballooning"

    def test_gradual_road(self, small_road):
        evo = frontier_evolution(small_road, 0)
        assert classify_frontier_shape(evo) == "gradual"

    def test_threshold_knob(self, path5):
        evo = frontier_evolution(path5, 0)
        assert classify_frontier_shape(evo, large_threshold_pct=50.0) == "gradual"
        assert classify_frontier_shape(evo, large_threshold_pct=10.0) == "ballooning"
