"""Unit tests for Pearson correlation and Table I helpers."""

import math

import numpy as np
import pytest

from repro.gpusim.trace import LevelTrace, RootTrace
from repro.metrics.correlation import frontier_time_correlations, pearson


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_uncorrelated_orthogonal(self):
        # Constructed zero-correlation series.
        assert pearson([1, 2, 3, 4], [1, -1, -1, 1]) == pytest.approx(0.0)

    def test_matches_numpy(self):
        rng = np.random.default_rng(0)
        x, y = rng.random(50), rng.random(50)
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_degenerate_constant(self):
        assert math.isnan(pearson([1, 1, 1], [1, 2, 3]))

    def test_too_short(self):
        assert math.isnan(pearson([1], [2]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])


class TestFrontierTimeCorrelations:
    def _trace(self):
        rt = RootTrace(root=7)
        for depth, (f, ef) in enumerate([(1, 4), (4, 12), (12, 30), (3, 8)]):
            rt.add(LevelTrace(depth=depth, stage="forward",
                              strategy="work-efficient", frontier_size=f,
                              edge_frontier=ef, cycles=float(10 * f)))
            rt.add(LevelTrace(depth=depth, stage="backward",
                              strategy="work-efficient", frontier_size=f,
                              edge_frontier=ef, cycles=1.0))
        return rt

    def test_row(self):
        row = frontier_time_correlations(self._trace(), graph_name="g")
        assert row.graph == "g" and row.root == 7
        assert row.num_levels == 4
        # Cycles were built as 10*frontier: perfect vertex correlation.
        assert row.rho_vertex_time == pytest.approx(1.0)
        assert row.rho_edge_time < 1.0

    def test_backward_levels_excluded(self):
        row = frontier_time_correlations(self._trace())
        assert row.num_levels == 4  # not 8
