"""CSV export: round-trip against registry_to_dict, label escaping."""

from __future__ import annotations

import csv

from repro.observability import MetricsRegistry, registry_to_dict, write_csv


def read_rows(path):
    with open(path, "r", encoding="utf-8", newline="") as fh:
        return list(csv.reader(fh))


def test_csv_round_trips_against_json_export(tmp_path):
    r = MetricsRegistry()
    r.inc("jobs", 2.0, strategy="sampling")
    r.inc("jobs", 1.0, strategy="edge-parallel")
    r.set_gauge("queue.depth", 5.0)
    r.observe("latency", 0.5, buckets=(0.25, 1.0), tenant="acme")
    r.observe("latency", 3.0, buckets=(0.25, 1.0), tenant="acme")
    out = tmp_path / "metrics.csv"
    write_csv(str(out), r)
    rows = read_rows(str(out))
    assert rows[0] == ["kind", "name", "labels", "field", "value"]
    body = rows[1:]

    doc = registry_to_dict(r)
    # Every counter/gauge value in the JSON export appears as a CSV row
    # with identical labels, and vice versa (value cells are strings).
    csv_counters = {(n, labels): v for kind, n, labels, field, v in body
                    if kind == "counter"}
    for c in doc["counters"]:
        labels = ";".join(f"{k}={v}"
                          for k, v in sorted(c["labels"].items()))
        assert csv_counters[(c["name"], labels)] == str(c["value"])
    assert len(csv_counters) == len(doc["counters"]) == 2
    gauge = [r_ for r_ in body if r_[0] == "gauge"]
    assert gauge == [["gauge", "queue.depth", "", "value", "5.0"]]

    # Histogram: one bucket<= row per bound plus the +inf tail, then
    # count and sum — matching the JSON histogram's counts exactly.
    h = doc["histograms"][0]
    hrows = [r_ for r_ in body if r_[0] == "histogram"]
    bucket_rows = [r_ for r_ in hrows if r_[3].startswith("bucket<=")]
    assert [int(float(r_[4])) for r_ in bucket_rows] == h["counts"]
    assert len(bucket_rows) == len(h["buckets"]) + 1
    assert bucket_rows[-1][3] == "bucket<=inf"
    assert [r_ for r_ in hrows if r_[3] == "count"][0][4] == "2"
    assert float([r_ for r_ in hrows
                  if r_[3] == "sum"][0][4]) == 3.5

    # Row order is deterministic: two identical registries, same bytes.
    r2 = MetricsRegistry()
    r2.inc("jobs", 2.0, strategy="sampling")
    r2.inc("jobs", 1.0, strategy="edge-parallel")
    r2.set_gauge("queue.depth", 5.0)
    r2.observe("latency", 0.5, buckets=(0.25, 1.0), tenant="acme")
    r2.observe("latency", 3.0, buckets=(0.25, 1.0), tenant="acme")
    out2 = tmp_path / "metrics2.csv"
    write_csv(str(out2), r2)
    assert out.read_bytes() == out2.read_bytes()


def test_csv_escapes_awkward_label_values(tmp_path):
    r = MetricsRegistry()
    r.inc("n", 1.0, graph='com,ma"quote', note="semi;colon")
    out = tmp_path / "metrics.csv"
    write_csv(str(out), r)
    rows = read_rows(str(out))
    # csv.reader undoes the quoting: the labels cell survives commas,
    # quotes, and the ;-joiner collisions intact.
    labels = rows[1][2]
    assert 'graph=com,ma"quote' in labels
    assert "note=semi;colon" in labels
    assert rows[1][0] == "counter" and rows[1][4] == "1.0"


def test_csv_empty_registry_is_header_only(tmp_path):
    out = tmp_path / "empty.csv"
    write_csv(str(out), MetricsRegistry())
    rows = read_rows(str(out))
    assert rows == [["kind", "name", "labels", "field", "value"]]
