"""Guard: observability must be near-free when nobody is observing.

Instrumented code defaults its ``metrics`` argument to the shared
:data:`NULL_REGISTRY`, so the cost of disabled observability is exactly
the cost of the no-op calls the hot paths make.  This test counts how
many instrument calls one engine run actually issues, times that many
no-op calls directly, and asserts they amount to under 5% of the run's
wall time.
"""

import time

import numpy as np

from repro.gpusim import Device
from repro.observability import NULL_REGISTRY, MetricsRegistry


class CallCountingRegistry(MetricsRegistry):
    """Counts every instrument invocation an instrumented run makes."""

    def __init__(self):
        super().__init__()
        self.calls = 0

    def inc(self, name, value=1.0, /, **labels):
        self.calls += 1
        super().inc(name, value, **labels)

    def set_gauge(self, name, value, /, **labels):
        self.calls += 1
        super().set_gauge(name, value, **labels)

    def observe(self, name, value, /, **labels):
        self.calls += 1
        super().observe(name, value, **labels)

    def span(self, name, /, **labels):
        self.calls += 1
        return super().span(name, **labels)

    def record(self, kind, /, **fields):
        self.calls += 1
        super().record(kind, **fields)


def _median_runtime(fn, repeats=5):
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return sorted(samples)[repeats // 2]


def test_disabled_registry_overhead_under_5_percent(small_sw):
    device = Device()
    roots = np.arange(16)

    counting = CallCountingRegistry()
    device.run_bc(small_sw, strategy="hybrid", roots=roots, metrics=counting)
    n_calls = counting.calls
    assert n_calls > 0  # the run really is instrumented

    runtime = _median_runtime(
        lambda: device.run_bc(small_sw, strategy="hybrid", roots=roots))

    def noop_burst():
        inc = NULL_REGISTRY.inc
        observe = NULL_REGISTRY.observe
        span = NULL_REGISTRY.span
        record = NULL_REGISTRY.record
        # Same call mix shape as the hot paths: mostly counters, some
        # histograms and decision events, a few spans.
        for _ in range(n_calls):
            inc("engine.levels", 1.0, stage="forward", strategy="we")
        for _ in range(n_calls // 4):
            observe("engine.frontier_size", 17.0)
        for _ in range(n_calls // 4):
            record("decision.step", root=0, depth=3, applies_to_depth=4,
                   previous="work-efficient", strategy="work-efficient",
                   policy="hybrid", rule="|Δfrontier|=17 <= alpha=768",
                   q_curr=17, q_next=34, delta_frontier=17,
                   alpha=768, beta=512)
        for _ in range(4):
            with span("device.run_bc", strategy="hybrid"):
                pass

    noop_cost = _median_runtime(noop_burst)
    assert noop_cost < 0.05 * runtime, (
        f"{n_calls} no-op instrument calls cost {noop_cost * 1e3:.2f} ms "
        f"against a {runtime * 1e3:.2f} ms engine run "
        f"({100 * noop_cost / runtime:.1f}% > 5%)"
    )
