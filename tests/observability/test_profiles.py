"""Kernel-profile export: trace fidelity, CLI, and byte-determinism."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.gpusim import Device
from repro.observability import MetricsRegistry, dumps, run_profile


@pytest.fixture
def device_run(small_sw):
    metrics = MetricsRegistry()
    run = Device().run_bc(small_sw, strategy="hybrid",
                          roots=np.arange(12), metrics=metrics)
    return small_sw, run, metrics


class TestRunProfile:
    def test_levels_match_trace_exactly(self, device_run):
        """Acceptance: every exported level row equals the in-memory
        RunTrace — frontier sizes, stages, strategies, cycles."""
        _, run, _ = device_run
        doc = run_profile(run)
        assert len(doc["trace"]["kernels"]) == len(run.trace.roots)
        for kernel, rt in zip(doc["trace"]["kernels"], run.trace.roots):
            assert kernel["root"] == rt.root
            assert kernel["cycles"] == rt.cycles
            assert len(kernel["levels"]) == len(rt.levels)
            for row, lv in zip(kernel["levels"], rt.levels):
                assert row["depth"] == lv.depth
                assert row["stage"] == lv.stage
                assert row["strategy"] == lv.strategy
                assert row["frontier"] == lv.frontier_size
                assert row["edge_frontier"] == lv.edge_frontier
                assert row["cycles"] == lv.cycles

    def test_forward_frontiers_match_metrics_counters(self, device_run):
        """The engine.* counters and the trace describe the same sweep."""
        _, run, metrics = device_run
        fwd = [lv for rt in run.trace.roots for lv in rt.levels
               if lv.stage == "forward"]
        levels = sum(c.value for c in metrics.counters()
                     if c.name == "engine.levels"
                     and c.labels.get("stage") == "forward")
        vertices = sum(c.value for c in metrics.counters()
                       if c.name == "engine.frontier_vertices"
                       and c.labels.get("stage") == "forward")
        assert levels == len(fwd)
        assert vertices == sum(lv.frontier_size for lv in fwd)

    def test_run_and_device_sections(self, device_run):
        g, run, _ = device_run
        doc = run_profile(run, graph=g)
        assert doc["schema"] == "repro.profile/v1"
        assert doc["run"]["strategy"] == "hybrid"
        assert doc["run"]["roots"] == list(range(12))
        assert doc["device"]["name"] == run.spec.name
        assert doc["graph"]["num_vertices"] == g.num_vertices
        assert doc["trace"]["makespan_cycles"] == run.cycles

    def test_profile_body_is_json_stable(self, device_run):
        g, run, _ = device_run
        a = dumps(run_profile(run, graph=g))
        b = dumps(run_profile(run, graph=g))
        assert a == b


class TestProfileCommand:
    ARGS = ["profile", "--graph", "kron_g500-logn20",
            "--scale-factor", "8192", "--roots", "4"]

    def test_writes_profile_and_metrics(self, tmp_path, capsys):
        out = tmp_path / "profile.json"
        mout = tmp_path / "metrics.json"
        rc = main(self.ARGS + ["--out", str(out),
                               "--metrics-out", str(mout)])
        assert rc == 0
        assert "makespan cycles" in capsys.readouterr().out
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.profile/v1"
        assert doc["run"]["num_roots"] == 4
        assert doc["trace"]["kernels"]
        metrics = json.loads(mout.read_text())
        assert metrics["schema"] == "repro.observability/v1"
        names = {c["name"] for c in metrics["counters"]}
        assert {"device.runs", "device.roots", "engine.levels",
                "engine.frontier_vertices"} <= names

    def test_rerun_is_byte_identical_outside_timing(self, tmp_path, capsys):
        """Determinism: two profile runs differ only under "timing"."""
        docs = []
        for tag in ("a", "b"):
            out = tmp_path / f"{tag}.json"
            assert main(self.ARGS + ["--out", str(out)]) == 0
            docs.append(json.loads(out.read_text()))
        capsys.readouterr()
        assert docs[0] != docs[1] or docs[0]["timing"] == docs[1]["timing"]
        for doc in docs:
            doc.pop("timing")
        assert dumps(docs[0]).encode() == dumps(docs[1]).encode()

    def test_metrics_out_on_experiment_command(self, tmp_path, capsys):
        mout = tmp_path / "m.json"
        assert main(["figure1", "--metrics-out", str(mout)]) == 0
        capsys.readouterr()
        doc = json.loads(mout.read_text())
        assert {"name": "cli.experiments_rendered",
                "labels": {"name": "figure1"}, "value": 1.0} \
            in doc["counters"]
        assert doc["timing"]["spans"][0]["name"] == "experiment"
