"""Unit tests for the metrics registry, span clock and exporters."""

import json

import pytest

from repro.observability import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    SpanClock,
    dumps,
    registry_to_dict,
    write_csv,
    write_json,
)


class ManualWall:
    """Injectable wall source: tests control time explicitly."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestSpanClock:
    def test_elapsed_is_wall_plus_sim(self):
        wall = ManualWall()
        clock = SpanClock(wall=wall)
        wall.t = 2.0
        clock.advance(3.0, "compute")
        assert clock.wall_seconds() == 2.0
        assert clock.sim_seconds == 3.0
        assert clock.elapsed() == 5.0
        assert clock.now() == 5.0

    def test_components_accumulate_separately(self):
        clock = SpanClock(wall=lambda: 0.0)
        clock.advance(1.0, "compute")
        clock.advance(0.5, "compute")
        clock.advance(0.25, "backoff")
        assert clock.component_seconds("compute") == 1.5
        assert clock.component_seconds("backoff") == 0.25
        assert clock.component_seconds("missing") == 0.0
        assert clock.components() == {"compute": 1.5, "backoff": 0.25}
        assert clock.sim_seconds == 1.75

    def test_rejects_negative_and_nan(self):
        clock = SpanClock(wall=lambda: 0.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.advance(float("nan"))


class TestCounters:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 2.5)
        assert reg.counter("a").value == 3.5

    def test_labels_are_distinct_series(self):
        reg = MetricsRegistry()
        reg.inc("comm.bytes", 10, op="bcast")
        reg.inc("comm.bytes", 20, op="reduce")
        assert reg.counter("comm.bytes", op="bcast").value == 10
        assert reg.counter("comm.bytes", op="reduce").value == 20
        assert len(reg.counters()) == 2

    def test_labels_may_shadow_parameter_names(self):
        # Metric names are positional-only, so "name"/"value" are legal
        # label keys (the CLI labels its experiment spans name=...).
        reg = MetricsRegistry()
        reg.inc("c", 2, name="x", value="y")
        assert reg.counter("c", name="x", value="y").value == 2
        with reg.span("s", name="x"):
            pass
        assert reg.root_spans[0].labels == {"name": "x"}

    def test_monotonic(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.inc("a", -1)
        with pytest.raises(ValueError):
            reg.inc("a", float("nan"))


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("pool.workers", 4)
        reg.set_gauge("pool.workers", 8)
        assert reg.gauge("pool.workers").value == 8


class TestHistograms:
    def test_bucket_placement_and_inf_tail(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 10.0))
        h.observe(0.5)   # <= 1
        h.observe(10.0)  # <= 10 (upper bound inclusive)
        h.observe(99.0)  # +inf tail
        assert h.counts == [1, 1, 1]
        assert h.count == 3
        assert h.total == pytest.approx(109.5)

    def test_default_buckets_ascending(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_bad_buckets_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("h", buckets=())
        with pytest.raises(ValueError):
            reg.histogram("h2", buckets=(4.0, 2.0))

    def test_nan_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.observe("h", float("nan"))

    def test_wall_flag_sticky_per_series(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.1, wall=True)
        assert reg.histogram("lat").wall is True


class TestSpans:
    def test_nesting_builds_a_tree(self):
        wall = ManualWall()
        reg = MetricsRegistry(clock=SpanClock(wall=wall))
        with reg.span("outer", run="x"):
            wall.t = 1.0
            with reg.span("inner"):
                wall.t = 3.0
            wall.t = 4.0
        assert len(reg.root_spans) == 1
        outer = reg.root_spans[0]
        assert outer.name == "outer" and outer.labels == {"run": "x"}
        assert outer.duration == pytest.approx(4.0)
        (inner,) = outer.children
        assert inner.start == pytest.approx(1.0)
        assert inner.end == pytest.approx(3.0)
        assert not inner.children

    def test_span_timeline_includes_sim_time(self):
        reg = MetricsRegistry(clock=SpanClock(wall=lambda: 0.0))
        with reg.span("s"):
            reg.clock.advance(2.0, "compute")
        assert reg.root_spans[0].duration == pytest.approx(2.0)

    def test_span_closed_on_exception(self):
        reg = MetricsRegistry(clock=SpanClock(wall=lambda: 0.0))
        with pytest.raises(RuntimeError):
            with reg.span("s"):
                raise RuntimeError("boom")
        assert reg.root_spans[0].end is not None
        assert not reg._span_stack


class TestNullRegistry:
    def test_everything_is_a_noop(self):
        reg = NullRegistry()
        reg.inc("a", 5)
        reg.set_gauge("g", 1)
        reg.observe("h", 2)
        with reg.span("s") as s:
            assert s.duration == 0.0
        assert reg.counters() == []
        assert reg.gauges() == []
        assert reg.histograms() == []
        assert reg.root_spans == []

    def test_shared_singleton_flags(self):
        assert NULL_REGISTRY.enabled is False
        assert MetricsRegistry().enabled is True

    def test_null_span_reusable(self):
        with NULL_REGISTRY.span("a") as s1:
            pass
        with NULL_REGISTRY.span("b") as s2:
            pass
        assert s1 is s2


class TestExport:
    def _populated(self):
        reg = MetricsRegistry(clock=SpanClock(wall=lambda: 0.0))
        reg.inc("c", 2, kind="x")
        reg.set_gauge("g", 7)
        reg.observe("sim_h", 3.0, buckets=(1.0, 4.0))
        reg.observe("wall_h", 0.2, buckets=(1.0,), wall=True)
        with reg.span("top"):
            reg.clock.advance(1.0, "compute")
        return reg

    def test_schema_and_sections(self):
        doc = registry_to_dict(self._populated())
        assert doc["schema"] == "repro.observability/v1"
        assert [c["name"] for c in doc["counters"]] == ["c"]
        assert doc["counters"][0]["labels"] == {"kind": "x"}
        assert [h["name"] for h in doc["histograms"]] == ["sim_h"]
        # Wall-derived data lives only under "timing".
        assert [h["name"] for h in doc["timing"]["histograms"]] == ["wall_h"]
        assert doc["timing"]["sim_components"] == {"compute": 1.0}
        assert doc["timing"]["spans"][0]["name"] == "top"

    def test_export_method_matches_function(self):
        reg = self._populated()
        assert reg.export() == registry_to_dict(reg)

    def test_dumps_is_canonical(self):
        doc = registry_to_dict(self._populated())
        assert dumps(doc) == dumps(json.loads(dumps(doc)))

    def test_write_json_accepts_registry_and_dict(self, tmp_path):
        reg = self._populated()
        p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
        write_json(p1, reg)
        write_json(p2, registry_to_dict(reg))
        assert p1.read_bytes() == p2.read_bytes()
        assert json.loads(p1.read_text())["schema"] == "repro.observability/v1"

    def test_write_csv_rows(self, tmp_path):
        path = tmp_path / "m.csv"
        write_csv(path, self._populated())
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "kind,name,labels,field,value"
        kinds = {ln.split(",")[0] for ln in lines[1:]}
        assert kinds == {"counter", "gauge", "histogram", "wall_histogram"}
        # One row per bucket + inf tail + count + sum for sim_h.
        sim_rows = [ln for ln in lines if ln.startswith("histogram,sim_h")]
        assert len(sim_rows) == 2 + 1 + 2
