"""Decision traces: audit fidelity, byte-determinism, explain, CLI."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.errors import TraceFormatError
from repro.graph.build import from_edges
from repro.gpusim import Device
from repro.observability import (
    MetricsRegistry,
    dumps,
    explain_lines,
    load_trace,
    trace_document,
    verify_decisions,
    write_trace,
)
from repro.observability.trace import decided_strategy_by_depth

STRATEGIES = ("work-efficient", "edge-parallel", "vertex-parallel",
              "hybrid", "sampling")


def _traced_run(g, strategy, roots=12, **kwargs):
    metrics = MetricsRegistry()
    run = Device().run_bc(g, strategy=strategy,
                          roots=np.arange(min(roots, g.num_vertices)),
                          metrics=metrics, **kwargs)
    return trace_document(metrics, run=run, graph=g), run


@pytest.fixture
def star_burst():
    """A star with 1000 leaves: the depth-0 -> depth-1 frontier jump
    (|delta| = 999 > alpha = 768, q_next = 1000 > beta = 512) forces the
    hybrid policy to switch to edge-parallel."""
    return from_edges([(0, i) for i in range(1, 1001)], name="star1000")


class TestDecisionAudit:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_decisions_match_executed_levels(self, small_sw, strategy):
        """Acceptance: for every strategy, the recorded decision at each
        depth equals what the level actually ran under — checked both by
        verify_decisions and directly against RootTrace.strategy_by_depth."""
        kwargs = {"n_samps": 4} if strategy == "sampling" else {}
        doc, run = _traced_run(small_sw, strategy, **kwargs)
        assert verify_decisions(doc) == []
        for rt in run.trace.roots:
            decided = decided_strategy_by_depth(doc, int(rt.root))
            executed = rt.strategy_by_depth()
            for depth, strat in executed.items():
                assert decided[depth] == strat, (
                    f"{strategy}: root {rt.root} depth {depth}")

    def test_every_decision_carries_its_inputs(self, small_sw):
        doc, _ = _traced_run(small_sw, "hybrid")
        steps = [e for e in doc["decisions"] if e["event"] == "decision.step"]
        assert steps
        for ev in steps:
            assert ev["policy"] == "hybrid"
            assert {"q_curr", "q_next", "delta_frontier",
                    "alpha", "beta"} <= set(ev)
            assert ev["delta_frontier"] == abs(ev["q_next"] - ev["q_curr"])
            assert f"alpha={ev['alpha']}" in ev["rule"]

    def test_mismatch_is_reported(self, small_sw):
        doc, _ = _traced_run(small_sw, "work-efficient")
        doc["levels"][0]["strategy"] = "edge-parallel"
        problems = verify_decisions(doc)
        assert problems and "edge-parallel" in problems[0]

    def test_sampling_decision_recorded_once_with_cutoff(self, small_sw):
        doc, run = _traced_run(small_sw, "sampling", n_samps=4)
        samp = [e for e in doc["decisions"]
                if e["event"] == "decision.sampling"]
        assert len(samp) == 1
        ev = samp[0]
        assert ev["n_samps"] == 4 and len(ev["depths"]) == 4
        assert ev["chose_edge_parallel"] == run.sampling_chose_edge_parallel
        assert "gamma*log2(n)" in ev["rule"]
        # The recorded comparison really is median vs gamma*log2(n).
        went_under = ev["median_depth"] < ev["depth_cutoff"]
        assert ev["chose_edge_parallel"] == went_under


class TestDeterminismAndIO:
    def test_identical_seed_reruns_are_byte_identical(self, small_sw):
        a, _ = _traced_run(small_sw, "hybrid")
        b, _ = _traced_run(small_sw, "hybrid")
        assert dumps(a).encode() == dumps(b).encode()

    def test_write_load_round_trip(self, tmp_path, small_sw):
        doc, _ = _traced_run(small_sw, "sampling", n_samps=4)
        path = tmp_path / "trace.json"
        write_trace(path, doc)
        assert load_trace(path) == doc
        # Round-tripped decisions replay to the same audit.
        assert explain_lines(load_trace(path)) == explain_lines(doc)

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro.profile/v1"}))
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_load_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TraceFormatError):
            load_trace(path)

    def test_load_rejects_missing_sections(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(
            {"schema": "repro.trace/v1", "decisions": [], "events": []}))
        with pytest.raises(TraceFormatError, match="levels"):
            load_trace(path)


class TestExplain:
    def test_hybrid_switch_shows_exact_alpha_beta_comparison(
            self, star_burst):
        # fold=False: the star's hybrid switch is exactly what this
        # probes, and degree-1 folding would reduce it to one vertex.
        doc, _ = _traced_run(star_burst, "hybrid", roots=1, fold=False)
        text = "\n".join(explain_lines(doc))
        assert ("|Δfrontier|=999 > alpha=768 and q_next=1000 > beta=512: "
                "edge-parallel") in text
        assert "** switch **" in text
        assert "audit: every executed level matches" in text

    def test_keep_decisions_show_alpha_comparison(self, small_sw):
        doc, _ = _traced_run(small_sw, "hybrid")
        text = "\n".join(explain_lines(doc))
        assert "<= alpha=768: keep" in text
        assert "** switch **" not in text  # 150 vertices never clear alpha

    def test_sampling_explain_shows_gamma_cutoff_and_guard(self, small_sw):
        doc, _ = _traced_run(small_sw, "sampling", n_samps=4)
        text = "\n".join(explain_lines(doc))
        assert "sampling classification over 4 sampled root(s)" in text
        assert "gamma*log2(n)=4*log2(150)" in text
        if doc["run"]["sampling_chose_edge_parallel"]:
            assert "guarded per iteration by frontier >= 512" in text

    def test_identical_roots_are_grouped(self, star_burst):
        doc, _ = _traced_run(star_burst, "hybrid", roots=4, fold=False)
        text = "\n".join(explain_lines(doc, root=None))
        # Leaf roots 1..3 share a decision signature; root 0 differs.
        assert "roots 1, 2, 3" in text

    def test_root_filter(self, small_sw):
        doc, _ = _traced_run(small_sw, "hybrid")
        text = "\n".join(explain_lines(doc, root=3))
        assert "root 3" in text and "root 5" not in text

    def test_frontier_evolution_table_rendered(self, small_sw):
        doc, _ = _traced_run(small_sw, "work-efficient")
        text = "\n".join(explain_lines(doc))
        assert "frontier evolution (forward sweep, all roots):" in text


class TestTraceCLI:
    PROFILE = ["profile", "--graph", "kron_g500-logn20",
               "--scale-factor", "8192", "--roots", "4",
               "--strategy", "hybrid"]

    def test_profile_trace_out_then_explain(self, tmp_path, capsys):
        """One run produces both artifacts; explain replays the trace."""
        out = tmp_path / "profile.json"
        tout = tmp_path / "trace.json"
        rc = main(self.PROFILE + ["--out", str(out),
                                  "--trace-out", str(tout)])
        assert rc == 0
        assert "decision trace" in capsys.readouterr().out
        doc = json.loads(tout.read_text())
        assert doc["schema"] == "repro.trace/v1"
        assert doc["decisions"] and doc["levels"]

        assert main(["trace", "explain", str(tout)]) == 0
        text = capsys.readouterr().out
        assert "alpha=768" in text
        assert "audit: every executed level matches" in text

    def test_trace_out_is_deterministic(self, tmp_path, capsys):
        """Same seed => byte-identical trace files."""
        blobs = []
        for tag in ("a", "b"):
            tout = tmp_path / f"{tag}.json"
            assert main(self.PROFILE + ["--out", str(tmp_path / "p.json"),
                                        "--trace-out", str(tout)]) == 0
            blobs.append(tout.read_bytes())
        capsys.readouterr()
        assert blobs[0] == blobs[1]

    def test_explain_rejects_non_trace(self, tmp_path, capsys):
        path = tmp_path / "x.json"
        path.write_text("{}")
        assert main(["trace", "explain", str(path)]) == 2
        assert "error:" in capsys.readouterr().err
