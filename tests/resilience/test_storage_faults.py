"""Storage fault grammar (`enospc`/`torn`/`fsync-lie`/`rot`) and the
one-fault-per-write runtime semantics of ``ActiveFaults.storage_fire``."""

from __future__ import annotations

import pytest

from repro.errors import FaultSpecError
from repro.resilience import (
    ENOSPC,
    FSYNC_LIE,
    ROT,
    STORAGE_KINDS,
    STORAGE_TARGETS,
    TORN,
    ActiveFaults,
    FaultEvent,
    FaultPlan,
)

pytestmark = pytest.mark.faults


class TestGrammar:
    @pytest.mark.parametrize("spec", [
        "enospc:0",
        "enospc:3@journal",
        "enospc:2@journalx3",
        "torn:1@journal",
        "fsync-lie:4",
        "fsync-lie:0@spool",
        "rot:2@cache",
        "rot:5@cache#3",
        "enospc:1@any",
        "rot:0#7",
    ])
    def test_roundtrip(self, spec):
        plan = FaultPlan.parse(spec)
        assert FaultPlan.parse(str(plan)) == plan

    def test_mixes_with_compute_kinds(self):
        plan = FaultPlan.parse("fail:0@compute+1;enospc:2@journal;oom:1x2")
        kinds = [ev.kind for ev in plan.events]
        assert ENOSPC in kinds
        assert FaultPlan.parse(str(plan)) == plan

    def test_storage_classmethod(self):
        plan = FaultPlan.storage(TORN, target="journal", after_writes=2)
        (ev,) = plan.events
        assert ev.kind == TORN and ev.target == "journal"
        assert ev.after_writes == 2 and ev.is_storage

    @pytest.mark.parametrize("bad", [
        "enospc:0@floppy",       # unknown target
        "torn:0x2",              # xTIMES only for enospc
        "rot:-1",                # negative write count
        "fsync-lie:0#3",         # #BIT only for rot
        "enospc:abc",
    ])
    def test_rejects(self, bad):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(bad)

    def test_event_validation(self):
        with pytest.raises(FaultSpecError):
            FaultEvent(ENOSPC, target="nowhere")
        with pytest.raises(FaultSpecError):
            FaultEvent(TORN, times=2)
        with pytest.raises(FaultSpecError):
            # non-storage kinds take no storage fields
            FaultEvent("oom", 0, target="journal")

    def test_constants(self):
        assert set(STORAGE_KINDS) == {ENOSPC, TORN, FSYNC_LIE, ROT}
        assert "any" in STORAGE_TARGETS


class TestStorageFire:
    def test_after_counts_only_unharmed_matching_writes(self):
        af = ActiveFaults(FaultPlan.parse("enospc:2@journal"), seed=0)
        # wrong-target writes never advance the count
        for _ in range(5):
            assert af.storage_fire("cache") is None
        assert af.storage_fire("journal") is None   # unharmed #1
        assert af.storage_fire("journal") is None   # unharmed #2
        ev = af.storage_fire("journal")
        assert ev is not None and ev.kind == ENOSPC
        # consumed: the retry sees a healthy disk
        assert af.storage_fire("journal") is None

    def test_enospc_times_refires(self):
        af = ActiveFaults(FaultPlan.parse("enospc:0@cachex3"), seed=0)
        fired = sum(1 for _ in range(10)
                    if af.storage_fire("cache") is not None)
        assert fired == 3

    def test_any_target_matches_every_site(self):
        af = ActiveFaults(FaultPlan.parse("fsync-lie:0"), seed=0)
        assert af.storage_fire("spool").kind == FSYNC_LIE

    def test_one_fault_per_attempt(self):
        af = ActiveFaults(FaultPlan.parse("enospc:0@journal;torn:0@journal"),
                          seed=0)
        first = af.storage_fire("journal")
        second = af.storage_fire("journal")
        assert first.kind == ENOSPC
        assert second.kind == TORN     # next attempt, next fault
        assert af.storage_fire("journal") is None

    def test_harmed_attempts_do_not_count_as_unharmed(self):
        # the torn event needs 1 unharmed write; the enospc firing on
        # the first attempt must not advance torn's count
        af = ActiveFaults(FaultPlan.parse("enospc:0@journal;torn:1@journal"),
                          seed=0)
        assert af.storage_fire("journal").kind == ENOSPC   # harmed
        assert af.storage_fire("journal") is None          # unharmed #1
        assert af.storage_fire("journal").kind == TORN

    def test_pending_property(self):
        af = ActiveFaults(FaultPlan.parse("enospc:0@journalx2;rot:0@cache"),
                          seed=0)
        assert af.storage_events_pending == 3
        af.storage_fire("journal")
        assert af.storage_events_pending == 2
