"""Unit tests for the deterministic fault injector."""

import numpy as np
import pytest

from repro.errors import (
    DeviceOutOfMemoryError,
    FaultSpecError,
    RankFailure,
)
from repro.gpusim.device import Device
from repro.resilience import (
    FAIL_STOP,
    OOM,
    STRAGGLER,
    FaultEvent,
    FaultPlan,
    FaultyComm,
    FaultyDevice,
)

pytestmark = pytest.mark.faults


class TestFaultEvent:
    def test_defaults(self):
        ev = FaultEvent(FAIL_STOP, 1)
        assert ev.where == "compute"
        assert ev.times == 1

    @pytest.mark.parametrize("kwargs", [
        dict(kind="meteor", rank=0),
        dict(kind=FAIL_STOP, rank=-1),
        dict(kind=FAIL_STOP, rank=0, where="teleport"),
        dict(kind=OOM, rank=0, where="reduce"),       # OOM only at compute
        dict(kind=STRAGGLER, rank=0, where="bcast"),
        dict(kind=FAIL_STOP, rank=0, after_roots=-1),
        dict(kind=OOM, rank=0, times=0),
        dict(kind=STRAGGLER, rank=0, factor=0.5),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(FaultSpecError):
            FaultEvent(**kwargs)


class TestFaultPlan:
    def test_constructors(self):
        assert FaultPlan.fail_stop(2, where="reduce").events[0].where == "reduce"
        assert FaultPlan.transient_oom(0, times=3).events[0].times == 3
        assert FaultPlan.straggler(1, 2.5).events[0].factor == 2.5

    def test_rejects_non_events(self):
        with pytest.raises(FaultSpecError):
            FaultPlan(("not an event",))

    def test_random_deterministic(self):
        a = FaultPlan.random(8, seed=42, num_faults=5)
        b = FaultPlan.random(8, seed=42, num_faults=5)
        assert a.events == b.events
        assert len(a.events) == 5
        assert all(0 <= ev.rank < 8 for ev in a.events)

    def test_parse(self):
        plan = FaultPlan.parse("fail:1@reduce; oom:0x2; straggler:2x3.5")
        kinds = [ev.kind for ev in plan.events]
        assert kinds == [FAIL_STOP, OOM, STRAGGLER]
        assert plan.events[0].where == "reduce"
        assert plan.events[1].times == 2
        assert plan.events[2].factor == 3.5

    def test_parse_after_roots(self):
        plan = FaultPlan.parse("fail:2+3")
        assert plan.events[0].after_roots == 3
        assert plan.events[0].where == "compute"

    @pytest.mark.parametrize("spec", [
        "fail", "explode:1", "fail:x", "straggler:1", "oom:0xq",
        "fail:0@warp",
    ])
    def test_parse_errors(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(spec)

    def test_parse_empty_is_faultless(self):
        assert FaultPlan.parse("").events == ()


class TestActiveFaults:
    def test_collective_crash_consumed(self):
        state = FaultPlan.fail_stop(1, where="reduce").start()
        assert state.crash_at(1, "reduce")
        assert not state.crash_at(1, "reduce")  # one-shot
        assert not state.crash_at(0, "reduce")

    def test_oom_counts_down(self):
        state = FaultPlan.transient_oom(0, times=2).start()
        assert state.oom_fires(0)
        assert state.oom_fires(0)
        assert not state.oom_fires(0)

    def test_straggler_persistent(self):
        state = FaultPlan.straggler(2, 4.0).start()
        assert state.straggler_factor(2) == 4.0
        assert state.straggler_factor(2) == 4.0
        assert state.straggler_factor(0) == 1.0

    def test_plan_replayable(self):
        plan = FaultPlan.fail_stop(0, where="bcast")
        assert plan.start().crash_at(0, "bcast")
        assert plan.start().crash_at(0, "bcast")  # fresh state each run


class TestFaultyComm:
    def test_kills_planned_rank(self):
        comm = FaultyComm(3, faults=FaultPlan.fail_stop(1, where="bcast").start())
        with pytest.raises(RankFailure) as exc:
            comm.bcast(42)
        assert exc.value.rank == 1
        assert exc.value.where == "bcast"

    def test_retry_after_mark_dead_succeeds(self):
        comm = FaultyComm(3, faults=FaultPlan.fail_stop(2, where="reduce").start())
        vals = [np.ones(4)] * 3
        with pytest.raises(RankFailure) as exc:
            comm.reduce(vals)
        comm.mark_dead(exc.value.rank)
        assert comm.num_live == 2
        out = comm.reduce(vals)
        assert np.allclose(out, 3.0)

    def test_dead_rank_does_not_fire(self):
        comm = FaultyComm(2, faults=FaultPlan.fail_stop(0, where="barrier").start())
        comm.mark_dead(0)
        comm.barrier()  # no raise: the victim is already gone

    def test_faultless_comm_behaves_like_simcomm(self):
        comm = FaultyComm(2)
        assert comm.bcast("x") == ["x", "x"]


class TestFaultyDevice:
    def test_oom_injection(self, fig1):
        dev = FaultyDevice(0, FaultPlan.transient_oom(0).start())
        with pytest.raises(DeviceOutOfMemoryError):
            dev.run_bc(fig1, strategy="work-efficient")
        # transient: the retry succeeds and matches a healthy device
        run = dev.run_bc(fig1, strategy="work-efficient")
        ref = Device().run_bc(fig1, strategy="work-efficient")
        assert np.allclose(run.bc, ref.bc)

    def test_fail_stop_injection(self, fig1):
        dev = FaultyDevice(1, FaultPlan.fail_stop(1, after_roots=2).start())
        with pytest.raises(RankFailure) as exc:
            dev.run_bc(fig1, strategy="work-efficient")
        assert exc.value.rank == 1
        assert exc.value.roots_done == 2

    def test_other_ranks_unaffected(self, fig1):
        state = FaultPlan.transient_oom(0).start()
        healthy = FaultyDevice(1, state)
        run = healthy.run_bc(fig1, strategy="work-efficient")
        assert run.bc.size == fig1.num_vertices

    def test_straggler_scales_time_not_values(self, fig1):
        state = FaultPlan.straggler(0, 3.0).start()
        slow = FaultyDevice(0, state).run_bc(fig1, strategy="work-efficient")
        fast = Device().run_bc(fig1, strategy="work-efficient")
        assert np.allclose(slow.bc, fast.bc)
        assert slow.seconds == pytest.approx(3.0 * fast.seconds)
        assert slow.cycles == pytest.approx(3.0 * fast.cycles)
