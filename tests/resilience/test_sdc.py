"""Acceptance grid for the silent-data-corruption layer.

The contract under ``verify=paranoid``: for every single injected
bit-flip — any site, any victim rank, any root position — the run is
either detected-and-repaired (``exact`` and bitwise-close to fault-free
Brandes) or explicitly degraded (``exact`` is False and the corruption
is surfaced in the report).  Never silently wrong.
"""

import numpy as np
import pytest

from repro.bc.brandes import brandes_reference
from repro.errors import SilentCorruptionError
from repro.graph.generators import watts_strogatz
from repro.gpusim import Device
from repro.observability import MetricsRegistry
from repro.resilience import (
    SDC,
    FaultEvent,
    FaultPlan,
    FaultyDevice,
    resilient_distributed_bc,
)

pytestmark = pytest.mark.sdc

NUM_RANKS = 3
PER_ROOT_SITES = ("sigma", "delta", "dist")


@pytest.fixture(scope="module")
def graph():
    return watts_strogatz(32, k=4, p=0.1, seed=3)


@pytest.fixture(scope="module")
def reference(graph):
    return brandes_reference(graph)


def _run(graph, plan, verify="paranoid", **kwargs):
    return resilient_distributed_bc(
        graph, NUM_RANKS, fault_plan=plan, verify=verify, seed=0, **kwargs)


def _assert_repaired_or_surfaced(run, reference):
    if run.exact:
        assert run.corruption_detected > 0, (
            "fault injected but nothing detected and result claims exact")
        np.testing.assert_allclose(run.values, reference, rtol=1e-6, atol=1e-9)
    else:
        assert run.degraded_roots > 0 or run.corrupted_reduce, (
            "inexact result without a surfaced degradation cause")


class TestExhaustiveSingleCorruption:
    """Every fault site x victim rank x root position, default bit."""

    @pytest.mark.parametrize("rank", range(NUM_RANKS))
    @pytest.mark.parametrize("root_index", range(3))
    @pytest.mark.parametrize("site", PER_ROOT_SITES)
    def test_per_root_sites(self, graph, reference, site, rank, root_index):
        plan = FaultPlan.sdc(rank, site=site, root_index=root_index)
        run = _run(graph, plan)
        _assert_repaired_or_surfaced(run, reference)
        assert run.corruption_detected >= 1
        assert run.roots_requarantined >= 1
        assert any(i.kind == SDC for i in run.incidents)

    @pytest.mark.parametrize("rank", range(NUM_RANKS))
    def test_partial_site(self, graph, reference, rank):
        run = _run(graph, FaultPlan.sdc(rank, site="partial"))
        _assert_repaired_or_surfaced(run, reference)
        # A corrupted unit partial cannot be attributed to one root, so
        # the whole unit is quarantined and recomputed.
        assert run.roots_requarantined >= 1

    @pytest.mark.parametrize("rank", range(NUM_RANKS))
    def test_reduce_site(self, graph, reference, rank):
        run = _run(graph, FaultPlan.sdc(rank, site="reduce"))
        _assert_repaired_or_surfaced(run, reference)
        assert run.reduce_retries >= 1
        assert not run.corrupted_reduce

    # A flip can zero sigma outright (e.g. bit 62 of 2.0), making the
    # corrupted accumulation divide by zero before detection kicks in.
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    @pytest.mark.parametrize("bit", [40, 55, 62])
    @pytest.mark.parametrize("site", PER_ROOT_SITES)
    def test_bit_positions(self, graph, reference, site, bit):
        plan = FaultPlan.sdc(1, site=site, root_index=1, bit=bit)
        run = _run(graph, plan)
        _assert_repaired_or_surfaced(run, reference)


class TestVerifyOffIsSilentlyWrong:
    """The vulnerability the layer exists to close: without
    verification the same flip passes through and the run still claims
    to be exact."""

    def test_delta_flip_undetected(self, graph, reference):
        run = _run(graph, FaultPlan.sdc(0, site="delta"), verify="off")
        assert run.exact
        assert run.corruption_detected == 0
        assert not np.allclose(run.values, reference)

    def test_reduce_flip_undetected(self, graph, reference):
        run = _run(graph, FaultPlan.sdc(0, site="reduce"), verify="off")
        assert run.exact
        assert not np.allclose(run.values, reference)


class TestDegradationSurfaced:
    def test_exhausted_reduce_budget_is_flagged(self, graph, reference):
        # Every reduce attempt is corrupted and the retry budget is
        # zero: the run must refuse to claim exactness.
        plan = FaultPlan((FaultEvent(SDC, 0, site="reduce", times=5),))
        run = _run(graph, plan, max_retries=0)
        assert run.corrupted_reduce
        assert not run.exact
        assert "corruption" in run.summary()

    def test_summary_mentions_verification(self, graph):
        run = _run(graph, FaultPlan.sdc(0, site="delta"))
        assert "paranoid" in run.summary()
        assert run.verification == "paranoid"


class TestDevicePath:
    """The simulated device detects the same corruptions in-kernel."""

    @pytest.mark.parametrize("site", PER_ROOT_SITES + ("partial",))
    def test_faulty_device_raises(self, graph, site):
        plan = FaultPlan.sdc(0, site=site)
        device = FaultyDevice(rank=0, faults=plan.start(seed=0))
        with pytest.raises(SilentCorruptionError) as err:
            device.run_bc(graph, roots=np.arange(8), check_memory=False,
                          verify="paranoid")
        assert err.value.violations

    def test_clean_device_paranoid_matches_reference(self, graph, reference):
        got = Device().run_bc(graph, roots=np.arange(graph.num_vertices),
                              check_memory=False, verify="paranoid").bc
        np.testing.assert_allclose(got, reference)

    def test_faulty_device_verify_off_is_silently_wrong(self, graph,
                                                        reference):
        plan = FaultPlan.sdc(0, site="delta")
        device = FaultyDevice(rank=0, faults=plan.start(seed=0))
        got = device.run_bc(graph, roots=np.arange(graph.num_vertices),
                            check_memory=False).bc
        assert not np.allclose(got, reference)


def test_metrics_counters_threaded(graph):
    metrics = MetricsRegistry()
    run = resilient_distributed_bc(
        graph, NUM_RANKS, fault_plan=FaultPlan.sdc(1, site="sigma"),
        verify="paranoid", seed=0, metrics=metrics)
    assert run.exact
    counters = {c["name"] for c in metrics.export()["counters"]}
    assert "verify.faults_injected" in counters
    assert "verify.corruption_detected" in counters
    assert "resilience.roots_requarantined" in counters
    assert "verify.overhead_seconds" in counters
