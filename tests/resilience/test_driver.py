"""Unit + property tests for the fault-tolerant distributed driver."""

import numpy as np
import pytest

from repro.bc.api import betweenness_centrality
from repro.errors import ClusterConfigurationError, RetryExhaustedError
from repro.resilience import (
    CheckpointStore,
    FaultEvent,
    FaultPlan,
    FaultyComm,
    resilient_distributed_bc,
)

pytestmark = pytest.mark.faults


class TestFaultFree:
    @pytest.mark.parametrize("ranks", [1, 2, 5])
    def test_matches_serial(self, fig1, ranks):
        run = resilient_distributed_bc(fig1, ranks)
        assert run.exact
        assert not run.degraded
        assert run.retries == 0
        assert run.incidents == []
        assert np.allclose(run.values, betweenness_centrality(fig1))

    def test_more_ranks_than_roots(self, fig1):
        # Zero-root ranks contribute zero vectors, not corruption.
        run = resilient_distributed_bc(fig1, 13)
        assert run.exact
        assert np.allclose(run.values, betweenness_centrality(fig1))

    def test_validation(self, fig1):
        with pytest.raises(ClusterConfigurationError):
            resilient_distributed_bc(fig1, 0)
        with pytest.raises(ClusterConfigurationError):
            resilient_distributed_bc(fig1, 2, max_retries=-1)
        with pytest.raises(ClusterConfigurationError):
            resilient_distributed_bc(fig1, 3, comm=FaultyComm(2))


class TestSingleFailurePoints:
    """The acceptance property: for EVERY single fail-stop point —
    any rank, at any collective or mid-compute — the recovered result
    is allclose to serial BC and the report records the recovery."""

    def test_every_single_rank_failure_point(self, small_sw):
        g = small_sw
        ref = betweenness_centrality(g)
        ranks = 4
        sites = ([("bcast", 0), ("reduce", 0)]
                 + [("compute", after) for after in (0, 1, 5)])
        for rank in range(ranks):
            for where, after in sites:
                plan = FaultPlan.fail_stop(rank, where=where, after_roots=after)
                run = resilient_distributed_bc(g, ranks, fault_plan=plan)
                label = f"rank {rank} at {where}+{after}"
                assert run.exact, label
                assert np.allclose(run.values, ref), label
                assert len(run.incidents) == 1, label
                assert run.incidents[0].rank == rank
                assert run.survivors == ranks - 1, label

    def test_compute_failure_triggers_retry_accounting(self, fig1):
        plan = FaultPlan.fail_stop(0, where="compute", after_roots=1)
        run = resilient_distributed_bc(fig1, 3, fault_plan=plan)
        assert run.retries >= 1
        assert run.recomputed_roots > 0
        assert run.backoff_seconds > 0

    def test_reduce_failure_keeps_checkpointed_partial(self, fig1):
        # A rank dying at the reduce loses nothing: no recompute needed.
        plan = FaultPlan.fail_stop(2, where="reduce")
        run = resilient_distributed_bc(fig1, 3, fault_plan=plan)
        assert run.exact
        assert run.retries == 0
        assert run.recomputed_roots == 0
        assert np.allclose(run.values, betweenness_centrality(fig1))


class TestTransientAndMultiFault:
    def test_transient_oom_recovers(self, small_sw):
        plan = FaultPlan.transient_oom(0, times=2)
        run = resilient_distributed_bc(small_sw, 3, fault_plan=plan)
        assert run.exact
        assert run.retries == 2
        assert [i.kind for i in run.incidents] == ["oom", "oom"]
        assert np.allclose(run.values, betweenness_centrality(small_sw))

    def test_two_rank_deaths(self, small_sw):
        plan = FaultPlan((
            FaultEvent("fail-stop", 0, where="compute", after_roots=2),
            FaultEvent("fail-stop", 3, where="reduce"),
        ))
        run = resilient_distributed_bc(small_sw, 4, fault_plan=plan)
        assert run.exact
        assert run.survivors == 2
        assert np.allclose(run.values, betweenness_centrality(small_sw))

    def test_straggler_exact_but_slower(self, fig1):
        plan = FaultPlan.straggler(1, factor=8.0)
        slow = resilient_distributed_bc(fig1, 3, fault_plan=plan,
                                        per_root_seconds=1e-3)
        fast = resilient_distributed_bc(fig1, 3, per_root_seconds=1e-3)
        assert slow.exact
        assert np.allclose(slow.values, fast.values)
        assert slow.compute_seconds > fast.compute_seconds

    def test_random_plans_recover_or_flag(self, fig1):
        ref = betweenness_centrality(fig1)
        for seed in range(6):
            plan = FaultPlan.random(3, seed=seed, num_faults=2)
            run = resilient_distributed_bc(fig1, 3, fault_plan=plan,
                                           max_retries=4)
            assert np.all(np.isfinite(run.values))
            if run.exact:
                assert np.allclose(run.values, ref), f"seed {seed}"
            else:
                assert run.degraded_roots > 0


class TestGracefulDegradation:
    def test_retries_exhausted_degrades_not_raises(self, small_sw):
        plan = FaultPlan.transient_oom(0, times=10)
        run = resilient_distributed_bc(small_sw, 1, fault_plan=plan,
                                       max_retries=2, seed=5)
        assert not run.exact
        assert run.degraded
        assert run.degraded_roots == small_sw.num_vertices
        assert run.degrade_samples_used > 0
        assert np.all(np.isfinite(run.values))
        assert np.all(run.values >= 0)

    def test_strict_mode_raises(self, fig1):
        plan = FaultPlan.transient_oom(0, times=10)
        with pytest.raises(RetryExhaustedError):
            resilient_distributed_bc(fig1, 1, fault_plan=plan,
                                     max_retries=1, degrade=False)

    def test_all_ranks_dead_degrades(self, fig1):
        plan = FaultPlan(tuple(
            FaultEvent("fail-stop", r, where="compute") for r in range(2)
        ))
        run = resilient_distributed_bc(fig1, 2, fault_plan=plan,
                                       max_retries=5)
        assert run.survivors == 0
        assert not run.exact
        assert run.degraded_roots == fig1.num_vertices

    def test_zero_budget_degrades_immediately(self, fig1):
        run = resilient_distributed_bc(fig1, 2, wall_clock_budget=0.0)
        assert run.degraded
        assert run.completed_roots == 0

    def test_degraded_estimate_tracks_truth(self, small_sw):
        # With a generous sample the degraded estimate should correlate
        # strongly with the exact scores (Brandes-Pich estimator).
        plan = FaultPlan.transient_oom(0, times=10)
        run = resilient_distributed_bc(small_sw, 1, fault_plan=plan,
                                       max_retries=0, degrade_samples=60,
                                       seed=2)
        ref = betweenness_centrality(small_sw)
        corr = np.corrcoef(run.values, ref)[0, 1]
        assert corr > 0.8

    def test_exhausted_keeps_completed_work(self, small_sw):
        # Rank 1 OOMs on every attempt; rank 0 keeps absorbing half of
        # the orphans each round.  When retries run out, everything
        # rank 0 completed must survive in the result and only rank 1's
        # final share is degraded.
        plan = FaultPlan((FaultEvent("oom", 1, times=10),))
        run = resilient_distributed_bc(small_sw, 2, fault_plan=plan,
                                       max_retries=2)
        assert not run.exact
        assert run.completed_roots > 0
        assert run.degraded_roots > 0
        assert run.completed_roots + run.degraded_roots == small_sw.num_vertices


class TestReportAndCosting:
    def test_backoff_grows_exponentially(self, fig1):
        plan = FaultPlan.transient_oom(0, times=3)
        run = resilient_distributed_bc(fig1, 2, fault_plan=plan,
                                       backoff_base=0.1)
        # 0.1 + 0.2 + 0.4
        assert run.backoff_seconds == pytest.approx(0.7)

    def test_recovery_seconds_charged(self, fig1):
        plan = FaultPlan.fail_stop(0, where="compute")
        run = resilient_distributed_bc(fig1, 2, fault_plan=plan,
                                       per_root_seconds=0.01)
        assert run.recovery_seconds > run.backoff_seconds

    def test_summary_mentions_incidents(self, fig1):
        plan = FaultPlan.fail_stop(1, where="reduce")
        run = resilient_distributed_bc(fig1, 3, fault_plan=plan)
        text = run.summary()
        assert "fail-stop" in text
        assert "EXACT" in text

    def test_estimate_per_root_seconds(self, small_sw):
        from repro.cluster.topology import kids
        from repro.resilience import estimate_per_root_seconds

        s = estimate_per_root_seconds(small_sw, kids(1), sample_roots=4)
        assert s > 0


class TestUnifiedClock:
    """Regression: the budget check and the report read one SpanClock.

    The old driver kept a bespoke ``sim_clock`` and a separately summed
    ``recovery_seconds``; recomputed work and backoff pauses were
    charged into both, so the summary's components exceeded the elapsed
    time the budget check saw.  These invariants pin the fix.
    """

    def test_components_sum_to_sim_and_elapsed(self, small_sw):
        plan = FaultPlan.fail_stop(0, where="compute", after_roots=1)
        run = resilient_distributed_bc(small_sw, 3, fault_plan=plan,
                                       per_root_seconds=1e-3)
        assert run.sim_seconds == pytest.approx(
            run.compute_seconds + run.backoff_seconds + run.degrade_seconds)
        assert run.elapsed_seconds == pytest.approx(
            run.wall_seconds + run.sim_seconds)
        # recovery is an attribution overlay, never an extra charge.
        assert run.recovery_seconds <= run.sim_seconds + 1e-12

    def test_degrade_charged_as_its_own_component(self, small_sw):
        plan = FaultPlan.transient_oom(0, times=10)
        run = resilient_distributed_bc(small_sw, 1, fault_plan=plan,
                                       max_retries=1, per_root_seconds=1e-3)
        assert run.degraded
        assert run.degrade_seconds > 0
        assert run.sim_seconds == pytest.approx(
            run.compute_seconds + run.backoff_seconds + run.degrade_seconds)

    def test_budget_and_report_share_the_clock(self, fig1):
        from repro.observability import SpanClock

        clock = SpanClock(wall=lambda: 0.0)  # no real wall time passes
        run = resilient_distributed_bc(fig1, 2, per_root_seconds=1e-3,
                                       clock=clock)
        # With a frozen wall, elapsed is exactly the charged sim time,
        # and the report equals what the clock accumulated.
        assert run.wall_seconds == 0.0
        assert run.elapsed_seconds == pytest.approx(run.sim_seconds)
        assert run.sim_seconds == pytest.approx(clock.sim_seconds)
        assert clock.component_seconds("compute") == pytest.approx(
            run.compute_seconds)

    def test_budget_measured_against_charges(self, fig1):
        # Simulated charges alone must exhaust the budget: round 1's
        # charged compute exceeds it, so the recovery round after the
        # fault is abandoned even though almost no real time passes —
        # the budget check reads the same combined clock as the report.
        plan = FaultPlan.transient_oom(0, times=1)
        full = resilient_distributed_bc(fig1, 2, fault_plan=plan,
                                        per_root_seconds=1e-2)
        assert full.exact  # recovery fits when unconstrained
        run = resilient_distributed_bc(fig1, 2, fault_plan=plan,
                                       per_root_seconds=1e-2,
                                       wall_clock_budget=1e-2)
        assert run.degraded
        assert run.degraded_roots > 0

    def test_metrics_registry_records_incidents(self, fig1):
        from repro.observability import MetricsRegistry

        metrics = MetricsRegistry()
        plan = FaultPlan.transient_oom(0, times=2)
        run = resilient_distributed_bc(fig1, 2, fault_plan=plan,
                                       metrics=metrics)
        assert run.exact
        assert metrics.counter("resilience.incidents", kind="oom",
                               where="compute").value == 2
        assert metrics.counter("resilience.retries").value == run.retries
        comm_ops = {c.labels["op"] for c in metrics.counters()
                    if c.name == "comm.calls"}
        assert "bcast" in comm_ops and "reduce" in comm_ops


class TestCheckpointStore:
    def test_accumulates_and_pads(self):
        store = CheckpointStore(3, 4)
        store.commit(1, np.array([0, 1]), np.ones(4))
        store.commit(1, np.array([2]), np.ones(4))
        vals = store.per_rank_values()
        assert len(vals) == 3
        assert np.allclose(vals[1], 2.0)
        assert np.allclose(vals[0], 0.0)  # zero-unit rank -> zero vector
        assert store.completed_roots == 3
        assert store.units == 2
