"""BCClient: typed backoff, content-derived idempotency, hedged status,
spool transport, and the wait/timeout contract."""

from __future__ import annotations

import pytest

from repro.client import (
    BCClient,
    InProcessTransport,
    RetryPolicy,
    SpoolTransport,
    derive_job_id,
)
from repro.errors import (
    GraphFormatError,
    JobNotFoundError,
    ServiceOverloadError,
)
from repro.service import DONE, AdmissionPolicy, BCService, JobSpec

pytestmark = pytest.mark.service


def spec(i=1, **kw):
    kw.setdefault("graph", "smallworld")
    kw.setdefault("scale_factor", 512)
    kw.setdefault("strategy", "sampling")
    kw.setdefault("roots", 4)
    kw.setdefault("seed", i)
    return JobSpec(**kw)


class FlakyTransport:
    """Fails the first ``n`` calls with a given error, then succeeds."""

    def __init__(self, n, exc):
        self.n, self.exc, self.calls = n, exc, 0
        self.journal_path = "/nonexistent/journal.jsonl"

    def submit(self, s):
        self.calls += 1
        if self.calls <= self.n:
            raise self.exc
        return s.job_id

    status = result = submit


# -- derive_job_id / RetryPolicy --------------------------------------

def test_derive_job_id_deterministic_and_content_sensitive():
    a, b = spec(1), spec(1)
    assert derive_job_id(a) == derive_job_id(b)
    assert derive_job_id(a).startswith("c")
    assert derive_job_id(a) != derive_job_id(spec(2))
    # id is part of identity derivation's *input* spec, not its output:
    # deriving from an already-id'd spec still reflects content only
    assert derive_job_id(a.with_id("whatever")) == derive_job_id(a)


def test_retry_policy_validation():
    RetryPolicy(max_retries=0)
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(base=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(base=1.0, cap=0.5)


# -- retry_delay ------------------------------------------------------

def test_retry_delay_floors_at_server_hint():
    cli = BCClient(FlakyTransport(0, None), seed=7)
    assert cli.retry_delay(1, "j1", hint=99.0) == 99.0
    assert cli.retry_delay(1, "j1", hint=None) <= cli.policy.cap


def test_retry_delay_deterministic_and_salted_per_job():
    a = BCClient(FlakyTransport(0, None), seed=7)
    b = BCClient(FlakyTransport(0, None), seed=7)
    assert [a.retry_delay(n, "jX", None) for n in range(1, 6)] == \
           [b.retry_delay(n, "jX", None) for n in range(1, 6)]
    # different job ids decorrelate (same seed, different salt)
    assert [a.retry_delay(n, "jX", None) for n in range(1, 6)] != \
           [a.retry_delay(n, "jY", None) for n in range(1, 6)]


# -- _with_retries ----------------------------------------------------

def test_retries_absorb_overload_then_succeed():
    t = FlakyTransport(3, ServiceOverloadError("full", retry_after=0.25))
    cli = BCClient(t, policy=RetryPolicy(max_retries=5), seed=1)
    assert cli.submit(spec(1)) == derive_job_id(spec(1))
    assert cli.report["retries"] == 3
    assert len(cli.report["delays"]) == 3
    assert all(d >= 0.25 for d in cli.report["delays"])  # hint floor
    assert cli.slept_seconds == sum(cli.report["delays"])


def test_exhausted_retries_reraise_original_typed_error():
    t = FlakyTransport(99, ServiceOverloadError("full", retry_after=0.1))
    cli = BCClient(t, policy=RetryPolicy(max_retries=2), seed=1)
    with pytest.raises(ServiceOverloadError):
        cli.submit(spec(1))
    assert t.calls == 3                    # initial + 2 retries


def test_non_retryable_error_propagates_immediately():
    t = FlakyTransport(99, GraphFormatError("bad graph"))
    cli = BCClient(t, policy=RetryPolicy(max_retries=5), seed=1)
    with pytest.raises(GraphFormatError):
        cli.submit(spec(1))
    assert t.calls == 1 and cli.report["retries"] == 0


# -- end-to-end over a live service -----------------------------------

def test_submit_idempotent_through_service(tmp_path):
    with BCService(tmp_path / "svc") as svc:
        cli = BCClient(InProcessTransport(svc), seed=3)
        j1 = cli.submit(spec(1))
        j2 = cli.submit(spec(1))           # double-send: same job
        assert j1 == j2 and len(svc.jobs) == 1
        svc.run_pending()
        values, meta = cli.result(j1)
        assert values.size > 0 and meta["exact"] is True
        assert cli.wait(j1)["state"] == DONE


def test_shed_then_client_retry_lands_same_job(tmp_path):
    policy = AdmissionPolicy(max_queue=1, degrade_threshold=1)
    with BCService(tmp_path / "svc", policy=policy) as svc:
        cli = BCClient(InProcessTransport(svc),
                       policy=RetryPolicy(max_retries=6), seed=5)
        first = cli.submit(spec(1))
        # queue now full: the next submit sheds, the client backs off;
        # drain between attempts so a retry eventually lands
        blocked = spec(2)
        with pytest.raises(ServiceOverloadError):
            BCClient(InProcessTransport(svc),
                     policy=RetryPolicy(max_retries=0)).submit(blocked)
        svc.run_pending()
        second = cli.submit(blocked)
        svc.run_pending()
        assert svc.jobs[first].state == DONE
        assert svc.jobs[second].state == DONE


def test_hedged_status_falls_back_to_journal(tmp_path):
    with BCService(tmp_path / "svc") as svc:
        cli = BCClient(InProcessTransport(svc), seed=1)
        job_id = cli.submit(spec(1))
        svc.run_pending()

    class DeadTransport:
        journal_path = str(tmp_path / "svc" / "journal.jsonl")

        def status(self, job_id):
            raise ConnectionError("daemon is down")

    dead = BCClient(DeadTransport(), seed=1)
    status = dead.status(job_id)
    assert status["state"] == DONE
    assert dead.report["hedged_polls"] == 1
    # unknown jobs are unknown on both paths
    with pytest.raises(JobNotFoundError):
        dead.status("ghost")


def test_spool_transport_ticket_and_offline_status(tmp_path):
    root = tmp_path / "svc"
    with BCService(root) as svc:
        cli = BCClient(SpoolTransport(root), seed=2)
        job_id = cli.submit(spec(1))
        assert job_id == derive_job_id(spec(1))
        # ticket is on disk; the daemon ingests and runs it
        assert svc.poll_spool() == 1
        svc.run_pending()
    # daemon gone: spool status reads the journal offline
    assert cli.status(job_id)["state"] == DONE
    assert cli.wait(job_id)["state"] == DONE


def test_wait_times_out_on_starved_job(tmp_path):
    with BCService(tmp_path / "svc") as svc:
        cli = BCClient(InProcessTransport(svc), seed=1)
        job_id = cli.submit(spec(1))       # never run
        with pytest.raises(TimeoutError):
            cli.wait(job_id, max_polls=3)
