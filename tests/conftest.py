"""Shared fixtures: small deterministic graphs used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.build import from_edges
from repro.graph.generators import (
    delaunay_graph,
    figure1_graph,
    kronecker_graph,
    random_geometric_graph,
    road_network,
    watts_strogatz,
)


@pytest.fixture
def fig1():
    """The paper's 9-vertex running example."""
    return figure1_graph()


@pytest.fixture
def path5():
    """A 5-vertex path 0-1-2-3-4."""
    return from_edges([(0, 1), (1, 2), (2, 3), (3, 4)], name="path5")


@pytest.fixture
def star():
    """A star: vertex 0 connected to 1..6."""
    return from_edges([(0, i) for i in range(1, 7)], name="star7")


@pytest.fixture
def cycle6():
    """A 6-cycle."""
    return from_edges([(i, (i + 1) % 6) for i in range(6)], name="cycle6")


@pytest.fixture
def two_components():
    """Two disjoint triangles plus one isolated vertex (vertex 6)."""
    return from_edges(
        [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)],
        num_vertices=7, name="two_triangles",
    )


@pytest.fixture
def small_mesh():
    """A small Delaunay mesh (~120 vertices)."""
    return delaunay_graph(120, seed=7)


@pytest.fixture
def small_sw():
    """A small Watts-Strogatz graph."""
    return watts_strogatz(150, k=6, p=0.1, seed=3)


@pytest.fixture
def small_kron():
    """A small Kronecker graph (has isolated vertices)."""
    return kronecker_graph(8, edge_factor=8, seed=5)


@pytest.fixture
def small_road():
    """A small road network (high diameter)."""
    return road_network(200, seed=11)


@pytest.fixture
def small_rgg():
    """A small random geometric graph."""
    return random_geometric_graph(180, avg_degree=8.0, seed=13)


def random_graph(n: int, p: float, seed: int, num_vertices=None):
    """Erdős–Rényi helper used by several test modules."""
    rng = np.random.default_rng(seed)
    iu = np.triu_indices(n, k=1)
    mask = rng.random(iu[0].size) < p
    edges = np.column_stack([iu[0][mask], iu[1][mask]])
    return from_edges(edges, num_vertices=num_vertices or n,
                      name=f"gnp_{n}_{p}")
