"""Unit tests for the exception hierarchy and top-level exports."""

import pytest

import repro
from repro.errors import (
    ClusterConfigurationError,
    CommunicatorError,
    DeviceConfigurationError,
    DeviceOutOfMemoryError,
    FaultSpecError,
    GraphFormatError,
    GraphStructureError,
    RankFailure,
    ReproError,
    RetryExhaustedError,
    SilentCorruptionError,
    StrategyError,
    WorkerPoolError,
)

ALL_ERRORS = [
    GraphFormatError,
    GraphStructureError,
    DeviceOutOfMemoryError,
    DeviceConfigurationError,
    StrategyError,
    ClusterConfigurationError,
    CommunicatorError,
    FaultSpecError,
    RankFailure,
    RetryExhaustedError,
    SilentCorruptionError,
    WorkerPoolError,
]


class TestHierarchy:
    @pytest.mark.parametrize("exc", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_oom_carries_context(self):
        e = DeviceOutOfMemoryError(100, 50, 120, what="preds")
        assert e.requested == 100
        assert e.in_use == 50
        assert e.capacity == 120
        assert "preds" in str(e)
        assert "100" in str(e)

    def test_oom_without_label(self):
        e = DeviceOutOfMemoryError(1, 0, 0)
        assert "for" not in str(e).split(":")[0]

    def test_rank_failure_carries_context(self):
        e = RankFailure(3, where="reduce", roots_done=7)
        assert e.rank == 3
        assert e.where == "reduce"
        assert e.roots_done == 7
        assert "rank 3" in str(e)
        assert "reduce" in str(e)

    def test_retry_exhausted_carries_context(self):
        e = RetryExhaustedError(pending_roots=12, retries=3)
        assert e.pending_roots == 12
        assert e.retries == 3
        assert "12" in str(e)

    def test_silent_corruption_carries_context(self):
        from repro.verify import Violation

        vs = [Violation("checksum", 4, "sum mismatch"),
              Violation("sigma", 4, "bad count"),
              Violation("range", 4, "negative delta"),
              Violation("level", 4, "depth gap")]
        e = SilentCorruptionError(vs, root=4)
        assert e.root == 4
        assert len(e.violations) == 4
        assert "root 4" in str(e)
        assert "checksum" in str(e)
        assert "+1 more" in str(e)

    def test_catch_all(self, fig1):
        from repro.gpusim.device import Device

        with pytest.raises(ReproError):
            Device().run_bc(fig1, strategy="nope")


class TestTopLevelAPI:
    def test_version(self):
        assert repro.__version__

    def test_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_quickstart_surface(self, fig1):
        bc = repro.betweenness_centrality(fig1)
        assert bc.size == 9
        est = repro.approximate_bc(fig1, k=9, seed=0)
        assert est.size == 9
