"""Unit tests for graph statistics (Table II columns)."""

import numpy as np
import pytest

from repro.graph.stats import (
    connected_component_sizes,
    degree_histogram,
    estimate_diameter,
    exact_diameter,
    graph_stats,
)


class TestDegreeHistogram:
    def test_star(self, star):
        hist = degree_histogram(star)
        assert hist[1] == 6 and hist[6] == 1

    def test_sums_to_n(self, small_sw):
        assert int(degree_histogram(small_sw).sum()) == small_sw.num_vertices

    def test_empty(self):
        from repro.graph.build import from_edges

        assert degree_histogram(from_edges([])).tolist() == [0]


class TestComponents:
    def test_two_triangles(self, two_components):
        sizes = connected_component_sizes(two_components)
        assert sizes.tolist() == [3, 3, 1]

    def test_connected(self, fig1):
        assert connected_component_sizes(fig1).tolist() == [9]


class TestDiameter:
    def test_exact_path(self, path5):
        assert exact_diameter(path5) == 4

    def test_exact_cycle(self, cycle6):
        assert exact_diameter(cycle6) == 3

    def test_exact_figure1(self, fig1):
        import networkx as nx

        from repro.graph.build import to_networkx

        assert exact_diameter(fig1) == nx.diameter(to_networkx(fig1))

    def test_estimate_lower_bounds_exact(self, small_mesh, small_sw):
        for g in (small_mesh, small_sw):
            est = estimate_diameter(g, samples=6, seed=0)
            assert est <= exact_diameter(g)
            # Double sweep is near-exact on these families.
            assert est >= exact_diameter(g) - 2

    def test_estimate_deterministic(self, small_mesh):
        a = estimate_diameter(small_mesh, samples=3, seed=42)
        b = estimate_diameter(small_mesh, samples=3, seed=42)
        assert a == b

    def test_edgeless(self):
        from repro.graph.build import from_edges

        g = from_edges([], num_vertices=5)
        assert estimate_diameter(g) == 0
        assert exact_diameter(g) == 0


class TestGraphStats:
    def test_row_fields(self, fig1):
        st = graph_stats(fig1, description="example")
        assert st.num_vertices == 9
        assert st.num_edges == 11
        assert st.max_degree == 4
        assert st.diameter == 5
        assert st.diameter_exact
        assert st.num_components == 1
        assert st.largest_component == 9
        assert st.description == "example"

    def test_auto_estimate_for_big(self, small_sw):
        st = graph_stats(small_sw, exact=False)
        assert not st.diameter_exact
        assert st.diameter >= 1
