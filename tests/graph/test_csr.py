"""Unit tests for the CSR graph container."""

import numpy as np
import pytest

from repro.errors import GraphStructureError
from repro.graph.csr import CSRGraph
from repro.graph.build import from_edges


class TestConstruction:
    def test_empty_graph(self):
        g = CSRGraph(np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.max_degree == 0

    def test_single_vertex(self):
        g = CSRGraph(np.zeros(2, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert g.num_vertices == 1
        assert g.degree(0) == 0

    def test_basic_counts(self, fig1):
        assert fig1.num_vertices == 9
        assert fig1.num_edges == 11           # undirected edges
        assert fig1.num_directed_edges == 22  # stored both directions

    def test_indptr_must_start_at_zero(self):
        with pytest.raises(GraphStructureError):
            CSRGraph(np.array([1, 2]), np.array([0]))

    def test_indptr_must_match_adj(self):
        with pytest.raises(GraphStructureError):
            CSRGraph(np.array([0, 3]), np.array([0]))

    def test_indptr_must_be_monotone(self):
        with pytest.raises(GraphStructureError):
            CSRGraph(np.array([0, 2, 1, 3]), np.array([0, 1, 2]))

    def test_adjacency_out_of_range(self):
        with pytest.raises(GraphStructureError):
            CSRGraph(np.array([0, 1]), np.array([5]))

    def test_undirected_requires_even_adjacency(self):
        with pytest.raises(GraphStructureError):
            CSRGraph(np.array([0, 1, 1]), np.array([1]), undirected=True)

    def test_directed_odd_ok(self):
        g = CSRGraph(np.array([0, 1, 1]), np.array([1]), undirected=False)
        assert g.num_edges == 1

    def test_arrays_readonly(self, fig1):
        with pytest.raises(ValueError):
            fig1.adj[0] = 3
        with pytest.raises(ValueError):
            fig1.indptr[0] = 1


class TestAccessors:
    def test_neighbors_sorted(self, fig1):
        # from_edges builds rows in sorted order
        for v in range(fig1.num_vertices):
            nb = fig1.neighbors(v)
            assert np.all(np.diff(nb) > 0)

    def test_figure1_adjacency(self, fig1):
        # Paper vertex 4 (index 3) neighbours {1,3,5,6} -> {0,2,4,5}
        assert fig1.neighbors(3).tolist() == [0, 2, 4, 5]

    def test_neighbors_out_of_range(self, fig1):
        with pytest.raises(IndexError):
            fig1.neighbors(9)
        with pytest.raises(IndexError):
            fig1.neighbors(-1)

    def test_degree_matches_degrees(self, fig1):
        degs = fig1.degrees
        for v in range(fig1.num_vertices):
            assert fig1.degree(v) == degs[v]

    def test_degrees_sum_to_directed_edges(self, fig1, small_sw):
        for g in (fig1, small_sw):
            assert int(g.degrees.sum()) == g.num_directed_edges

    def test_len(self, fig1):
        assert len(fig1) == 9

    def test_max_degree(self, star):
        assert star.max_degree == 6


class TestDerived:
    def test_edge_sources_aligned(self, fig1):
        src = fig1.edge_sources()
        assert src.size == fig1.num_directed_edges
        for v in range(fig1.num_vertices):
            lo, hi = fig1.indptr[v], fig1.indptr[v + 1]
            assert np.all(src[lo:hi] == v)

    def test_isolated_vertices(self, two_components):
        assert two_components.isolated_vertices().tolist() == [6]

    def test_no_isolated(self, fig1):
        assert fig1.isolated_vertices().size == 0

    def test_to_edge_list_roundtrip(self, fig1):
        el = fig1.to_edge_list()
        g2 = from_edges(el, num_vertices=9, undirected=True,
                        already_symmetric=True)
        assert np.array_equal(g2.indptr, fig1.indptr)
        assert np.array_equal(g2.adj, fig1.adj)

    def test_memory_footprint_positive(self, fig1):
        assert fig1.memory_footprint_bytes() == fig1.indptr.nbytes + fig1.adj.nbytes

    def test_with_name(self, fig1):
        g2 = fig1.with_name("renamed")
        assert g2.name == "renamed"
        assert np.array_equal(g2.adj, fig1.adj)
