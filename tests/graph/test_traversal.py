"""Unit tests for level-synchronous BFS."""

import numpy as np
import pytest

from repro.graph.traversal import bfs, bfs_distances, eccentricity, frontier_sizes


class TestBFS:
    def test_path_graph(self, path5):
        r = bfs(path5, 0)
        assert r.distances.tolist() == [0, 1, 2, 3, 4]
        assert r.max_depth == 4
        assert [lv.tolist() for lv in r.levels] == [[0], [1], [2], [3], [4]]

    def test_path_middle(self, path5):
        r = bfs(path5, 2)
        assert r.distances.tolist() == [2, 1, 0, 1, 2]
        assert r.max_depth == 2

    def test_star(self, star):
        r = bfs(star, 0)
        assert r.max_depth == 1
        assert r.levels[1].size == 6

    def test_unreachable(self, two_components):
        r = bfs(two_components, 0)
        assert r.distances[3] == -1
        assert r.distances[6] == -1
        assert r.num_reached == 3

    def test_isolated_source(self, two_components):
        r = bfs(two_components, 6)
        assert r.max_depth == 0
        assert r.num_reached == 1

    def test_source_out_of_range(self, fig1):
        with pytest.raises(IndexError):
            bfs(fig1, 9)

    def test_levels_partition_reachable(self, small_sw):
        r = bfs(small_sw, 0)
        allv = np.concatenate(r.levels)
        assert np.unique(allv).size == allv.size
        assert allv.size == int((r.distances >= 0).sum())

    def test_level_distances_consistent(self, small_mesh):
        r = bfs(small_mesh, 5)
        for depth, lv in enumerate(r.levels):
            assert np.all(r.distances[lv] == depth)

    def test_matches_scipy(self, small_sw):
        import scipy.sparse as sp
        import scipy.sparse.csgraph as csgraph

        g = small_sw
        mat = sp.csr_matrix(
            (np.ones(g.adj.size), g.adj, g.indptr),
            shape=(g.num_vertices, g.num_vertices),
        )
        expect = csgraph.shortest_path(mat, method="D", unweighted=True,
                                       indices=3)
        got = bfs_distances(g, 3).astype(float)
        got[got < 0] = np.inf
        assert np.array_equal(got, expect)


class TestHelpers:
    def test_frontier_sizes(self, path5):
        assert frontier_sizes(path5, 0).tolist() == [1, 1, 1, 1, 1]

    def test_edge_frontier_sizes(self, star):
        r = bfs(star, 1)
        ef = r.edge_frontier_sizes(star)
        assert ef.tolist() == [1, 6, 5]  # leaf -> hub -> other leaves

    def test_eccentricity(self, path5, cycle6):
        assert eccentricity(path5, 0) == 4
        assert eccentricity(path5, 2) == 2
        assert eccentricity(cycle6, 0) == 3

    def test_figure1_second_frontier(self, fig1):
        # The Figure 2 premise: BFS from paper-vertex 4 has frontier
        # {1, 3, 5, 6} at the second iteration.
        r = bfs(fig1, 3)
        assert sorted((r.levels[1] + 1).tolist()) == [1, 3, 5, 6]


class TestMultiSourceBFS:
    def test_single_source_matches_bfs(self, fig1):
        from repro.graph.traversal import multi_source_bfs

        assert np.array_equal(multi_source_bfs(fig1, [3]),
                              bfs(fig1, 3).distances)

    def test_nearest_source_semantics(self, path5):
        from repro.graph.traversal import multi_source_bfs

        d = multi_source_bfs(path5, [0, 4])
        assert d.tolist() == [0, 1, 2, 1, 0]

    def test_pointwise_minimum(self, small_sw):
        from repro.graph.traversal import multi_source_bfs

        sources = [0, 17, 80]
        combined = multi_source_bfs(small_sw, sources)
        singles = np.stack([bfs(small_sw, s).distances for s in sources])
        singles = np.where(singles < 0, np.iinfo(np.int64).max, singles)
        expect = singles.min(axis=0)
        expect = np.where(expect == np.iinfo(np.int64).max, -1, expect)
        assert np.array_equal(combined, expect)

    def test_empty_sources(self, fig1):
        from repro.graph.traversal import multi_source_bfs

        assert np.all(multi_source_bfs(fig1, []) == -1)

    def test_out_of_range(self, fig1):
        from repro.graph.traversal import multi_source_bfs

        with pytest.raises(IndexError):
            multi_source_bfs(fig1, [12])

    def test_unreachable(self, two_components):
        from repro.graph.traversal import multi_source_bfs

        d = multi_source_bfs(two_components, [0])
        assert d[6] == -1 and d[3] == -1
