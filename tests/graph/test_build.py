"""Unit tests for graph builders and transforms."""

import numpy as np
import pytest

from repro.errors import GraphStructureError
from repro.graph.build import (
    dedupe_edges,
    from_edges,
    from_networkx,
    induced_subgraph,
    largest_connected_component,
    relabel,
    symmetrize_edges,
    to_networkx,
)


class TestFromEdges:
    def test_empty(self):
        g = from_edges([])
        assert g.num_vertices == 0 and g.num_edges == 0

    def test_isolated_trailing_vertices(self):
        g = from_edges([(0, 1)], num_vertices=5)
        assert g.num_vertices == 5
        assert g.isolated_vertices().tolist() == [2, 3, 4]

    def test_num_vertices_too_small(self):
        with pytest.raises(GraphStructureError):
            from_edges([(0, 5)], num_vertices=3)

    def test_negative_endpoint(self):
        with pytest.raises(GraphStructureError):
            from_edges([(-1, 2)])

    def test_dedupe_and_self_loops(self):
        g = from_edges([(0, 1), (1, 0), (0, 1), (2, 2)], num_vertices=3)
        assert g.num_edges == 1
        assert g.degree(2) == 0

    def test_directed(self):
        g = from_edges([(0, 1), (1, 2)], undirected=False)
        assert g.num_edges == 2
        assert g.degree(2) == 0  # no reverse edges

    def test_symmetric_storage(self):
        g = from_edges([(0, 1)])
        assert g.neighbors(0).tolist() == [1]
        assert g.neighbors(1).tolist() == [0]

    def test_already_symmetric_no_double(self):
        sym = symmetrize_edges(np.array([(0, 1), (1, 2)]))
        g = from_edges(sym, undirected=True, already_symmetric=True)
        assert g.num_edges == 2


class TestEdgeHelpers:
    def test_symmetrize(self):
        out = symmetrize_edges(np.array([(0, 1)]))
        assert sorted(map(tuple, out.tolist())) == [(0, 1), (1, 0)]

    def test_dedupe_keeps_loops_when_asked(self):
        out = dedupe_edges(np.array([(1, 1), (0, 1)]), drop_self_loops=False)
        assert (1, 1) in set(map(tuple, out.tolist()))

    def test_dedupe_empty(self):
        assert dedupe_edges(np.empty((0, 2), dtype=np.int64)).shape == (0, 2)


class TestNetworkX:
    def test_roundtrip(self, fig1):
        nxg = to_networkx(fig1)
        assert nxg.number_of_nodes() == 9
        assert nxg.number_of_edges() == 11
        g2 = from_networkx(nxg)
        assert np.array_equal(g2.adj, fig1.adj)

    def test_from_networkx_relabels(self):
        import networkx as nx

        nxg = nx.Graph()
        nxg.add_edge("c", "a")
        nxg.add_edge("a", "b")
        g = from_networkx(nxg)
        assert g.num_vertices == 3 and g.num_edges == 2

    def test_directed_roundtrip(self):
        g = from_edges([(0, 1), (1, 2)], undirected=False)
        nxg = to_networkx(g)
        assert nxg.is_directed()
        assert sorted(nxg.edges()) == [(0, 1), (1, 2)]


class TestComponents:
    def test_largest_component(self, two_components):
        sub = largest_connected_component(two_components)
        assert sub.num_vertices == 3
        assert sub.num_edges == 3

    def test_connected_graph_unchanged_size(self, fig1):
        sub = largest_connected_component(fig1)
        assert sub.num_vertices == 9
        assert sub.num_edges == 11

    def test_empty(self):
        g = from_edges([])
        assert largest_connected_component(g).num_vertices == 0


class TestInducedSubgraph:
    def test_triangle(self, fig1):
        sub = induced_subgraph(fig1, [6, 7, 8])  # the 7-8-9 triangle
        assert sub.num_vertices == 3
        assert sub.num_edges == 3

    def test_out_of_range(self, fig1):
        with pytest.raises(IndexError):
            induced_subgraph(fig1, [100])

    def test_no_cross_edges(self, fig1):
        sub = induced_subgraph(fig1, [0, 8])  # vertices 1 and 9: not adjacent
        assert sub.num_edges == 0


class TestRelabel:
    def test_identity(self, fig1):
        g2 = relabel(fig1, np.arange(9))
        assert np.array_equal(g2.adj, fig1.adj)

    def test_reverse_preserves_structure(self, fig1):
        perm = np.arange(9)[::-1]
        g2 = relabel(fig1, perm)
        assert g2.num_edges == fig1.num_edges
        assert sorted(g2.degrees.tolist()) == sorted(fig1.degrees.tolist())

    def test_bad_permutation(self, fig1):
        with pytest.raises(GraphStructureError):
            relabel(fig1, np.zeros(9, dtype=np.int64))
        with pytest.raises(GraphStructureError):
            relabel(fig1, np.arange(5))
