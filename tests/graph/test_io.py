"""Unit tests for graph file readers/writers."""

import io

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph.io import (
    load_graph,
    read_csr_npz,
    read_dimacs_metis,
    read_matrix_market,
    read_snap_edgelist,
    write_csr_npz,
    write_dimacs_metis,
    write_matrix_market,
    write_snap_edgelist,
)


class TestSnap:
    def test_read_basic(self):
        text = "# comment\n0 1\n1\t2\n"
        g = read_snap_edgelist(io.StringIO(text))
        assert g.num_vertices == 3 and g.num_edges == 2

    def test_blank_lines_and_comments(self):
        g = read_snap_edgelist(io.StringIO("#a\n\n0 1\n\n# b\n2 0\n"))
        assert g.num_edges == 2

    def test_bad_line(self):
        with pytest.raises(GraphFormatError):
            read_snap_edgelist(io.StringIO("0\n"))

    def test_non_integer(self):
        with pytest.raises(GraphFormatError):
            read_snap_edgelist(io.StringIO("a b\n"))

    def test_roundtrip(self, fig1, tmp_path):
        path = tmp_path / "g.txt"
        write_snap_edgelist(fig1, str(path))
        g2 = read_snap_edgelist(str(path))
        assert np.array_equal(g2.adj, fig1.adj)

    def test_directed_read(self):
        g = read_snap_edgelist(io.StringIO("0 1\n"), undirected=False)
        assert g.degree(1) == 0

    def test_negative_id_reports_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n2 -3\n")
        with pytest.raises(GraphFormatError) as err:
            read_snap_edgelist(str(path))
        msg = str(err.value)
        assert "bad.txt" in msg and "line 2" in msg


class TestMetis:
    def test_read_basic(self):
        # 3 vertices, 2 edges: 1-2, 2-3 (1-indexed)
        text = "3 2\n2\n1 3\n2\n"
        g = read_dimacs_metis(io.StringIO(text))
        assert g.num_vertices == 3 and g.num_edges == 2

    def test_isolated_vertex_blank_line(self):
        text = "3 1\n2\n1\n\n"
        g = read_dimacs_metis(io.StringIO(text))
        assert g.isolated_vertices().tolist() == [2]

    def test_comment_lines(self):
        text = "% hello\n2 1\n2\n1\n"
        g = read_dimacs_metis(io.StringIO(text))
        assert g.num_edges == 1

    def test_missing_header(self):
        with pytest.raises(GraphFormatError):
            read_dimacs_metis(io.StringIO(""))

    def test_vertex_out_of_range(self):
        with pytest.raises(GraphFormatError):
            read_dimacs_metis(io.StringIO("2 1\n3\n1\n"))

    def test_out_of_range_reports_line(self, tmp_path):
        path = tmp_path / "bad.graph"
        path.write_text("2 1\n2\n7\n")
        with pytest.raises(GraphFormatError) as err:
            read_dimacs_metis(str(path))
        msg = str(err.value)
        assert "bad.graph" in msg and "line 3" in msg

    def test_non_integer_header(self):
        with pytest.raises(GraphFormatError) as err:
            read_dimacs_metis(io.StringIO("two 1\n"))
        assert "line 1" in str(err.value)

    def test_negative_header_counts(self):
        with pytest.raises(GraphFormatError):
            read_dimacs_metis(io.StringIO("-2 1\n"))

    def test_too_many_rows(self):
        with pytest.raises(GraphFormatError):
            read_dimacs_metis(io.StringIO("1 0\n\n\n\n"))

    def test_roundtrip(self, fig1, tmp_path):
        path = tmp_path / "g.graph"
        write_dimacs_metis(fig1, str(path))
        g2 = read_dimacs_metis(str(path))
        assert np.array_equal(g2.adj, fig1.adj)

    def test_write_rejects_directed(self, tmp_path):
        from repro.graph.build import from_edges

        g = from_edges([(0, 1)], undirected=False)
        with pytest.raises(GraphFormatError):
            write_dimacs_metis(g, str(tmp_path / "d.graph"))


class TestMatrixMarket:
    def test_read_basic(self):
        text = ("%%MatrixMarket matrix coordinate pattern symmetric\n"
                "% comment\n3 3 2\n2 1\n3 2\n")
        g = read_matrix_market(io.StringIO(text))
        assert g.num_vertices == 3 and g.num_edges == 2

    def test_diagonal_dropped(self):
        text = "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 5.0\n2 1 1.0\n"
        g = read_matrix_market(io.StringIO(text))
        assert g.num_edges == 1

    def test_missing_banner(self):
        with pytest.raises(GraphFormatError):
            read_matrix_market(io.StringIO("3 3 1\n2 1\n"))

    def test_unsupported_format(self):
        with pytest.raises(GraphFormatError):
            read_matrix_market(io.StringIO("%%MatrixMarket matrix array real\n"))

    def test_roundtrip(self, fig1, tmp_path):
        path = tmp_path / "g.mtx"
        write_matrix_market(fig1, str(path))
        g2 = read_matrix_market(str(path))
        assert np.array_equal(g2.adj, fig1.adj)

    def test_entry_out_of_declared_dims(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern symmetric\n"
                        "3 3 2\n2 1\n9 2\n")
        with pytest.raises(GraphFormatError) as err:
            read_matrix_market(str(path))
        msg = str(err.value)
        assert "bad.mtx" in msg and "line 4" in msg

    def test_entry_count_mismatch(self):
        text = ("%%MatrixMarket matrix coordinate pattern symmetric\n"
                "3 3 5\n2 1\n3 2\n")
        with pytest.raises(GraphFormatError) as err:
            read_matrix_market(io.StringIO(text))
        assert "5" in str(err.value)

    def test_non_integer_entry(self):
        text = ("%%MatrixMarket matrix coordinate pattern symmetric\n"
                "3 3 1\nx y\n")
        with pytest.raises(GraphFormatError) as err:
            read_matrix_market(io.StringIO(text))
        assert "line 3" in str(err.value)

    def test_negative_size_line(self):
        text = "%%MatrixMarket matrix coordinate pattern symmetric\n-3 3 1\n"
        with pytest.raises(GraphFormatError):
            read_matrix_market(io.StringIO(text))


class TestCsrNpz:
    def test_roundtrip_via_load_graph(self, fig1, tmp_path):
        path = tmp_path / "g.npz"
        write_csr_npz(fig1, str(path))
        g2 = load_graph(str(path))
        assert np.array_equal(g2.indptr, fig1.indptr)
        assert np.array_equal(g2.adj, fig1.adj)
        assert g2.undirected == fig1.undirected

    def test_missing_arrays(self, tmp_path):
        path = tmp_path / "empty.npz"
        np.savez(path, nothing=np.arange(3))
        with pytest.raises(GraphFormatError) as err:
            read_csr_npz(str(path))
        assert "empty.npz" in str(err.value)

    def test_non_monotone_indptr(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, indptr=np.array([0, 3, 1]), adj=np.array([1, 0, 0]))
        with pytest.raises(GraphFormatError) as err:
            read_csr_npz(str(path))
        assert "bad.npz" in str(err.value)

    def test_adj_out_of_range(self, tmp_path):
        path = tmp_path / "oob.npz"
        np.savez(path, indptr=np.array([0, 1, 2]), adj=np.array([1, 9]))
        with pytest.raises(GraphFormatError) as err:
            read_csr_npz(str(path))
        assert "oob.npz" in str(err.value)

    def test_non_integer_dtype(self, tmp_path):
        path = tmp_path / "float.npz"
        np.savez(path, indptr=np.array([0.0, 1.0]), adj=np.array([0.5]))
        with pytest.raises(GraphFormatError):
            read_csr_npz(str(path))


class TestLoadGraph:
    def test_dispatch(self, fig1, tmp_path):
        p = tmp_path / "x.mtx"
        write_matrix_market(fig1, str(p))
        g = load_graph(str(p))
        assert g.num_edges == fig1.num_edges
        assert g.name == "x.mtx"

    def test_unknown_extension(self, tmp_path):
        with pytest.raises(GraphFormatError):
            load_graph(str(tmp_path / "x.bin"))
