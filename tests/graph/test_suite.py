"""Unit tests for the Table II dataset registry."""

import pytest

from repro.graph.generators.suite import (
    DATASET_CLASSES,
    DATASETS,
    make_dataset,
    suite,
)


class TestRegistry:
    def test_all_ten_datasets(self):
        assert len(DATASETS) == 10
        assert set(DATASETS) == {
            "af_shell9", "caidaRouterLevel", "cnr-2000", "com-amazon",
            "delaunay_n20", "kron_g500-logn20", "loc-gowalla",
            "luxembourg.osm", "rgg_n_2_20", "smallworld",
        }

    def test_paper_sizes_match_table2(self):
        assert DATASETS["af_shell9"].paper_vertices == 504_855
        assert DATASETS["kron_g500-logn20"].paper_edges == 44_619_402
        assert DATASETS["luxembourg.osm"].paper_vertices == 114_599

    def test_classes_cover_all(self):
        names = set()
        for members in DATASET_CLASSES.values():
            names.update(members)
        assert names == set(DATASETS)


class TestMakeDataset:
    def test_scaled_size(self):
        g = make_dataset("smallworld", scale_factor=100, seed=0)
        assert abs(g.num_vertices - 1000) < 20

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_dataset("nope")

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            make_dataset("smallworld", scale_factor=0)

    def test_deterministic(self):
        import numpy as np

        a = make_dataset("caidaRouterLevel", scale_factor=200, seed=3)
        b = make_dataset("caidaRouterLevel", scale_factor=200, seed=3)
        assert np.array_equal(a.adj, b.adj)

    def test_names_carried(self):
        g = make_dataset("cnr-2000", scale_factor=256)
        assert g.name == "cnr-2000"


class TestSuiteIteration:
    def test_subset(self):
        out = list(suite(scale_factor=512, names=["smallworld", "luxembourg.osm"]))
        assert [spec.name for spec, _ in out] == ["smallworld", "luxembourg.osm"]

    def test_structural_classes(self):
        """The high-diameter datasets must out-diameter the low-diameter
        ones at any scale — the split Figure 3 relies on."""
        from repro.graph.stats import estimate_diameter

        diams = {}
        for spec, g in suite(scale_factor=256):
            diams[spec.name] = estimate_diameter(g, samples=3, seed=0)
        high = min(diams[n] for n in DATASET_CLASSES["high-diameter"])
        low = max(diams[n] for n in DATASET_CLASSES["low-diameter"])
        assert high > low
