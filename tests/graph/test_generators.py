"""Unit tests for the synthetic dataset generators.

Each generator is checked for determinism under a fixed seed and for
the structural class it is meant to reproduce (degree regime, diameter
regime), since those properties are what the paper's strategy analysis
keys on.
"""

import numpy as np
import pytest

from repro.graph.generators import (
    barabasi_albert,
    chung_lu,
    community_graph,
    copying_web_graph,
    delaunay_graph,
    figure1_graph,
    geosocial_graph,
    kronecker_graph,
    powerlaw_degree_sequence,
    random_geometric_graph,
    rmat_edges,
    road_network,
    stencil_mesh,
    watts_strogatz,
)
from repro.graph.stats import connected_component_sizes, estimate_diameter


def _deterministic(builder):
    g1, g2 = builder(), builder()
    assert np.array_equal(g1.adj, g2.adj)
    assert np.array_equal(g1.indptr, g2.indptr)


class TestRGG:
    def test_deterministic(self):
        _deterministic(lambda: random_geometric_graph(300, seed=5))

    def test_avg_degree_close(self):
        g = random_geometric_graph(2000, avg_degree=10.0, seed=0)
        avg = g.num_directed_edges / g.num_vertices
        assert 6.0 < avg < 14.0  # boundary effects lower it slightly

    def test_high_diameter(self):
        g = random_geometric_graph(2000, avg_degree=10.0, seed=0)
        assert estimate_diameter(g, samples=4) > 10

    def test_empty(self):
        assert random_geometric_graph(0).num_vertices == 0

    def test_explicit_radius(self):
        g = random_geometric_graph(100, radius=1.5, seed=1)  # complete
        assert g.num_edges == 100 * 99 // 2


class TestDelaunay:
    def test_deterministic(self):
        _deterministic(lambda: delaunay_graph(200, seed=3))

    def test_connected_planar_degree(self):
        g = delaunay_graph(1000, seed=0)
        assert connected_component_sizes(g)[0] == 1000
        # Planar triangulation: average degree < 6.
        assert g.num_directed_edges / g.num_vertices < 6.0

    def test_tiny(self):
        g = delaunay_graph(2, seed=0)
        assert g.num_edges == 1


class TestKronecker:
    def test_deterministic(self):
        _deterministic(lambda: kronecker_graph(8, edge_factor=8, seed=2))

    def test_shape(self):
        g = kronecker_graph(10, edge_factor=16, seed=0)
        assert g.num_vertices == 1024
        # Scale-free: extreme hub, tiny diameter, isolated vertices.
        assert g.max_degree > 50
        assert g.isolated_vertices().size > 0
        assert estimate_diameter(g, samples=4) <= 8

    def test_rmat_edges_in_range(self):
        e = rmat_edges(6, 500, seed=1)
        assert e.shape == (500, 2)
        assert e.min() >= 0 and e.max() < 64

    def test_bad_probs(self):
        with pytest.raises(ValueError):
            rmat_edges(4, 10, probs=(0.5, 0.5, 0.5, 0.5))


class TestSmallWorld:
    def test_deterministic(self):
        _deterministic(lambda: watts_strogatz(200, k=6, p=0.1, seed=9))

    def test_degree_near_k(self):
        g = watts_strogatz(2000, k=10, p=0.1, seed=0)
        avg = g.num_directed_edges / g.num_vertices
        # Ring lattice with k=10 gives n*k/2 undirected edges, i.e. an
        # average directed degree of ~k (minus rewire collisions) —
        # matching the paper's smallworld row (100k vertices, 500k edges).
        assert 8 < avg <= 10
        assert g.max_degree < 30  # near-uniform

    def test_low_diameter(self):
        g = watts_strogatz(2000, k=10, p=0.1, seed=0)
        assert estimate_diameter(g, samples=4) < 12

    def test_no_rewire_is_lattice(self):
        g = watts_strogatz(50, k=4, p=0.0, seed=0)
        assert g.max_degree == 4
        assert np.all(g.degrees == 4)

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, k=3)

    def test_bad_p(self):
        with pytest.raises(ValueError):
            watts_strogatz(10, k=2, p=1.5)


class TestScaleFree:
    def test_ba_deterministic(self):
        _deterministic(lambda: barabasi_albert(300, m=3, seed=4))

    def test_ba_heavy_tail(self):
        g = barabasi_albert(2000, m=3, seed=0)
        assert g.max_degree > 20 * 3  # hub far above attachment count

    def test_ba_small_n(self):
        g = barabasi_albert(3, m=5, seed=0)
        assert g.num_edges == 3  # complete graph on 3

    def test_ba_bad_m(self):
        with pytest.raises(ValueError):
            barabasi_albert(10, m=0)

    def test_powerlaw_sequence(self):
        d = powerlaw_degree_sequence(5000, exponent=2.5, min_degree=2, seed=0)
        assert d.min() >= 2
        assert d.max() > 10 * d.min()

    def test_powerlaw_bad_exponent(self):
        with pytest.raises(ValueError):
            powerlaw_degree_sequence(10, exponent=1.0)

    def test_chung_lu_respects_weights(self):
        w = np.full(1000, 6.0)
        g = chung_lu(w, seed=0)
        avg = g.num_directed_edges / g.num_vertices
        assert 4.0 < avg < 7.0

    def test_chung_lu_bad_weights(self):
        with pytest.raises(ValueError):
            chung_lu(np.array([-1.0, 2.0]))
        with pytest.raises(ValueError):
            chung_lu(np.empty(0))


class TestRoad:
    def test_deterministic(self):
        _deterministic(lambda: road_network(300, seed=8))

    def test_shape(self):
        g = road_network(3000, seed=0)
        # m/n barely above 1, tiny max degree, huge diameter.
        assert 1.0 <= g.num_edges / g.num_vertices < 1.3
        assert g.max_degree <= 4
        assert estimate_diameter(g, samples=4) > 30

    def test_connected(self):
        g = road_network(500, seed=1)
        assert connected_component_sizes(g)[0] == g.num_vertices

    def test_tree_when_no_extras(self):
        g = road_network(400, extra_edge_fraction=0.0, seed=2)
        assert g.num_edges == g.num_vertices - 1

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            road_network(100, extra_edge_fraction=2.0)


class TestMesh:
    def test_deterministic(self):
        _deterministic(lambda: stencil_mesh(300, radius=2, seed=0))

    def test_interior_degree(self):
        g = stencil_mesh(2500, radius=2, aspect=1.0, seed=0)
        assert g.max_degree == (2 * 2 + 1) ** 2 - 1  # full stencil interior

    def test_uniform_degree_regime(self):
        g = stencil_mesh(2500, radius=2, seed=0)
        # Near-uniform: max within 2x of mean.
        assert g.max_degree < 2 * g.num_directed_edges / g.num_vertices

    def test_bad_radius(self):
        with pytest.raises(ValueError):
            stencil_mesh(100, radius=0)


class TestWeb:
    def test_deterministic(self):
        _deterministic(lambda: copying_web_graph(400, seed=6))

    def test_hub_and_depth(self):
        g = copying_web_graph(4000, out_degree=8, beta=0.3, locality=0.05,
                              seed=0)
        assert g.max_degree > 50
        assert estimate_diameter(g, samples=4) >= 6  # crawl locality depth

    def test_param_validation(self):
        with pytest.raises(ValueError):
            copying_web_graph(10, out_degree=0)
        with pytest.raises(ValueError):
            copying_web_graph(10, beta=2.0)
        with pytest.raises(ValueError):
            copying_web_graph(10, locality=0.0)


class TestSocial:
    def test_geosocial_deterministic(self):
        _deterministic(lambda: geosocial_graph(500, seed=1, locality=0.5))

    def test_geosocial_hub(self):
        g = geosocial_graph(3000, exponent=2.2, hub_fraction_of_n=0.1, seed=0)
        assert g.max_degree > 30

    def test_geosocial_bad_locality(self):
        with pytest.raises(ValueError):
            geosocial_graph(100, locality=1.5)

    def test_community_deterministic(self):
        _deterministic(lambda: community_graph(600, seed=2))

    def test_community_connected(self):
        g = community_graph(2000, seed=0)
        assert connected_component_sizes(g)[0] == g.num_vertices

    def test_community_moderate_hub(self):
        g = community_graph(3000, seed=0)
        assert g.max_degree < g.num_vertices // 10


class TestFigure1Graph:
    def test_structure(self):
        g = figure1_graph()
        assert g.num_vertices == 9
        assert g.num_edges == 11
        # Paper-stated properties validated in tests/bc; here: cut vertex.
        from repro.graph.build import induced_subgraph
        from repro.graph.stats import connected_component_sizes as ccs

        without4 = induced_subgraph(g, [v for v in range(9) if v != 3])
        assert ccs(without4).size == 2  # removing vertex 4 splits the graph
