"""Run the doctests embedded in public-API docstrings."""

import doctest

import pytest

import repro.bc.api
import repro.bc.hybrid
import repro.verify


@pytest.mark.parametrize("module", [repro.bc.api, repro.bc.hybrid,
                                    repro.verify])
def test_module_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{module.__name__} lost its doctests"
    assert result.failed == 0
