"""Smoke tests: the example applications run end to end.

Each example is executed as a subprocess with a reduced problem size
(where it takes an argument) and must exit cleanly with its headline
output present.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def _run(script, *args, timeout=240):
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, script), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "Most central vertex: 4" in out
    assert "identical scores" in out


def test_road_network():
    out = _run("road_network_analysis.py", "4000")
    assert "critical intersections" in out
    assert "Work-efficient speedup over edge-parallel" in out


def test_social_network():
    out = _run("social_network_influence.py", "4000")
    assert "top-20 by betweenness" in out
    assert "classified" in out


def test_power_grid():
    out = _run("power_grid_contingency.py", "1500")
    assert "critical buses" in out
    assert "connectivity" in out
