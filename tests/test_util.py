"""Unit tests for the vectorised helpers in repro._util."""

import numpy as np
import pytest

from repro._util import (
    as_index_array,
    check_nonnegative_int,
    chunk_max_sum,
    concat_ranges,
)


class TestConcatRanges:
    def test_simple(self):
        out = concat_ranges(np.array([0, 5]), np.array([3, 2]))
        assert out.tolist() == [0, 1, 2, 5, 6]

    def test_matches_naive(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            k = int(rng.integers(1, 12))
            starts = rng.integers(0, 100, size=k)
            counts = rng.integers(0, 6, size=k)
            expect = np.concatenate(
                [np.arange(s, s + c) for s, c in zip(starts, counts)]
                or [np.empty(0, dtype=np.int64)]
            )
            got = concat_ranges(starts, counts)
            assert np.array_equal(got, expect)

    def test_zero_counts_interleaved(self):
        out = concat_ranges(np.array([10, 20, 30]), np.array([0, 2, 0]))
        assert out.tolist() == [20, 21]

    def test_all_zero_counts(self):
        out = concat_ranges(np.array([1, 2, 3]), np.array([0, 0, 0]))
        assert out.size == 0

    def test_empty_inputs(self):
        out = concat_ranges(np.array([], dtype=np.int64),
                            np.array([], dtype=np.int64))
        assert out.size == 0

    def test_mismatched_shapes_raises(self):
        with pytest.raises(ValueError):
            concat_ranges(np.array([1, 2]), np.array([1]))

    def test_negative_counts_raise(self):
        with pytest.raises(ValueError):
            concat_ranges(np.array([0]), np.array([-1]))

    def test_single_large_range(self):
        out = concat_ranges(np.array([7]), np.array([1000]))
        assert out[0] == 7 and out[-1] == 1006 and out.size == 1000


class TestChunkMaxSum:
    def test_exact_multiple(self):
        w = np.array([1, 5, 2, 7, 3, 3])
        assert chunk_max_sum(w, 3) == 5 + 7

    def test_with_padding(self):
        w = np.array([4, 1, 9])
        assert chunk_max_sum(w, 2) == 4 + 9

    def test_chunk_one_is_sum(self):
        w = np.array([2, 3, 4])
        assert chunk_max_sum(w, 1) == 9

    def test_chunk_larger_than_array_is_max(self):
        w = np.array([2, 9, 4])
        assert chunk_max_sum(w, 100) == 9

    def test_empty(self):
        assert chunk_max_sum(np.array([]), 4) == 0

    def test_bad_chunk(self):
        with pytest.raises(ValueError):
            chunk_max_sum(np.array([1]), 0)

    def test_monotone_in_chunk_size(self):
        # Larger chunks can only reduce the serialised total.
        rng = np.random.default_rng(1)
        w = rng.integers(0, 50, size=64)
        values = [chunk_max_sum(w, c) for c in (1, 2, 4, 8, 16, 32, 64)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_lower_bounded_by_max(self):
        rng = np.random.default_rng(2)
        w = rng.integers(0, 1000, size=100)
        for c in (3, 7, 64):
            assert chunk_max_sum(w, c) >= w.max()


class TestValidationHelpers:
    def test_as_index_array_ok(self):
        out = as_index_array([0, 2, 1], 3)
        assert out.dtype == np.int64 and out.tolist() == [0, 2, 1]

    def test_as_index_array_out_of_range(self):
        with pytest.raises(IndexError):
            as_index_array([0, 3], 3)
        with pytest.raises(IndexError):
            as_index_array([-1], 3)

    def test_check_nonnegative_int(self):
        assert check_nonnegative_int(4.0, "x") == 4
        with pytest.raises(ValueError):
            check_nonnegative_int(-1, "x")
