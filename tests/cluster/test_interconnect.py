"""Unit tests for interconnect models."""

import pytest

from repro.cluster.interconnect import INFINIBAND_QDR, PCIE2_X16, LinkModel
from repro.errors import ClusterConfigurationError


class TestLinkModel:
    def test_transfer_alpha_beta(self):
        link = LinkModel("t", latency_s=1e-6, bandwidth_bytes_per_s=1e9)
        assert link.transfer_seconds(0) == pytest.approx(1e-6)
        assert link.transfer_seconds(10**9) == pytest.approx(1.000001)

    def test_negative_bytes(self):
        with pytest.raises(ValueError):
            INFINIBAND_QDR.transfer_seconds(-1)

    def test_tree_collective_rounds(self):
        link = LinkModel("t", 0.0, 1e9)
        one = link.transfer_seconds(1000)
        assert link.tree_collective_seconds(1000, 2) == pytest.approx(one)
        assert link.tree_collective_seconds(1000, 8) == pytest.approx(3 * one)
        assert link.tree_collective_seconds(1000, 9) == pytest.approx(4 * one)

    def test_single_rank_free(self):
        assert INFINIBAND_QDR.tree_collective_seconds(10**9, 1) == 0.0

    def test_bad_ranks(self):
        with pytest.raises(ClusterConfigurationError):
            INFINIBAND_QDR.tree_collective_seconds(1, 0)

    def test_validation(self):
        with pytest.raises(ClusterConfigurationError):
            LinkModel("x", -1.0, 1e9)
        with pytest.raises(ClusterConfigurationError):
            LinkModel("x", 0.0, 0.0)

    def test_presets_sensible(self):
        # PCIe has higher bandwidth than QDR IB in this configuration.
        assert PCIE2_X16.bandwidth_bytes_per_s > INFINIBAND_QDR.bandwidth_bytes_per_s
        assert INFINIBAND_QDR.latency_s < PCIE2_X16.latency_s
