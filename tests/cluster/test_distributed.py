"""Unit tests for distributed BC (values and performance model)."""

import numpy as np
import pytest

from repro.bc.brandes import brandes_reference
from repro.cluster.distributed import (
    distributed_bc_values,
    partition_roots,
    scaling_sweep,
    simulate_distributed_run,
)
from repro.cluster.mpi_sim import SimComm
from repro.cluster.topology import ClusterSpec, kids
from repro.errors import ClusterConfigurationError
from repro.gpusim.spec import TESLA_M2090


class TestPartitionRoots:
    def test_covers_all(self):
        parts = partition_roots(10, 3)
        allr = np.concatenate(parts)
        assert sorted(allr.tolist()) == list(range(10))

    def test_balanced(self):
        parts = partition_roots(100, 7)
        sizes = [p.size for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_more_parts_than_roots(self):
        parts = partition_roots(2, 5)
        assert sum(p.size for p in parts) == 2

    def test_bad_parts(self):
        with pytest.raises(ClusterConfigurationError):
            partition_roots(5, 0)

    def test_negative_roots_rejected(self):
        with pytest.raises(ClusterConfigurationError):
            partition_roots(-1, 3)

    def test_zero_roots_gives_empty_parts(self):
        parts = partition_roots(0, 4)
        assert len(parts) == 4
        assert all(p.size == 0 for p in parts)


class TestValues:
    @pytest.mark.parametrize("ranks", [1, 2, 3, 7])
    def test_matches_serial(self, fig1, ranks):
        ref = brandes_reference(fig1)
        assert np.allclose(distributed_bc_values(fig1, ranks), ref)

    def test_matches_on_disconnected(self, two_components, small_sw):
        for g in (two_components, small_sw):
            ref = brandes_reference(g)
            assert np.allclose(distributed_bc_values(g, 4), ref)

    def test_zero_root_ranks_contribute_zero_vector(self, fig1):
        # More ranks than vertices: the surplus ranks get empty root
        # partitions and must contribute zeros to the reduce rather
        # than being dropped (or corrupting it).
        ref = brandes_reference(fig1)
        assert np.allclose(distributed_bc_values(fig1, 12), ref)

    def test_comm_mismatch(self, fig1):
        with pytest.raises(ClusterConfigurationError):
            distributed_bc_values(fig1, 3, comm=SimComm(2))

    def test_comm_charges_time(self, fig1):
        comm = SimComm(3, link=None)
        from repro.cluster.interconnect import INFINIBAND_QDR

        comm2 = SimComm(3, link=INFINIBAND_QDR)
        distributed_bc_values(fig1, 3, comm=comm2)
        assert comm2.elapsed_comm_seconds > 0


class TestTopology:
    def test_kids_preset(self):
        c = kids(64)
        assert c.num_nodes == 64
        assert c.gpus_per_node == 3
        assert c.num_gpus == 192
        assert c.gpu == TESLA_M2090

    def test_with_nodes(self):
        c = kids(1).with_nodes(16)
        assert c.num_gpus == 48
        assert c.name == "KIDS"

    def test_validation(self):
        with pytest.raises(ClusterConfigurationError):
            ClusterSpec("x", 0, 3, TESLA_M2090)
        with pytest.raises(ClusterConfigurationError):
            ClusterSpec("x", 1, 0, TESLA_M2090)


class TestPerformanceModel:
    def test_components_positive(self, small_sw):
        run = simulate_distributed_run(small_sw, kids(4), sample_roots=8, seed=0)
        assert run.seconds > 0
        assert run.compute_seconds > 0
        assert run.broadcast_seconds > 0
        assert run.reduce_seconds > 0
        assert run.seconds == pytest.approx(
            run.setup_seconds + run.compute_seconds + run.broadcast_seconds
            + run.reduce_seconds
        )

    def test_more_nodes_less_compute(self, small_sw):
        runs = scaling_sweep(small_sw, kids(1), [1, 2, 4], sample_roots=8,
                             seed=0)
        compute = [r.compute_seconds for r in runs]
        # Strictly better while each GPU still holds multiple roots;
        # beyond that the single-root makespan floor kicks in (a root
        # cannot be split across GPUs), so only non-increase is demanded.
        assert compute[0] > compute[1]
        assert compute[1] >= compute[2]

    def test_single_root_floor(self, small_sw):
        # With more GPUs than roots, compute bottoms out at one root's
        # cost rather than dropping to zero.
        runs = scaling_sweep(small_sw, kids(1), [64, 128], sample_roots=8,
                             seed=0)
        assert runs[0].compute_seconds > 0
        assert runs[0].compute_seconds == pytest.approx(
            runs[1].compute_seconds, rel=0.5
        )

    def test_total_time_improves_then_saturates(self, small_sw):
        runs = scaling_sweep(small_sw, kids(1), [1, 4, 64], sample_roots=8,
                             seed=0)
        secs = [r.seconds for r in runs]
        assert secs[0] >= secs[1] - 1e-9
        # At 64 nodes the fixed setup dominates: within 5% of 4 nodes.
        assert secs[2] <= secs[1] * 1.05

    def test_speedup_bounded_by_gpu_ratio(self, small_sw):
        runs = scaling_sweep(small_sw, kids(1), [1, 8], sample_roots=8, seed=0)
        speedup = runs[0].seconds / runs[1].seconds
        assert 1.0 <= speedup <= 8.0 + 1e-9

    def test_deterministic(self, small_sw):
        a = simulate_distributed_run(small_sw, kids(2), sample_roots=8, seed=3)
        b = simulate_distributed_run(small_sw, kids(2), sample_roots=8, seed=3)
        assert a.seconds == b.seconds

    def test_measured_cycles_shortcut(self, small_sw):
        cycles = np.full(10, 1e6)
        run = simulate_distributed_run(small_sw, kids(2),
                                       measured_cycles=cycles, seed=0)
        # All roots bootstrap to the same cost: compute is exact.
        n = small_sw.num_vertices
        per_gpu = np.ceil(n / 6) * 1e6 / TESLA_M2090.num_sms
        assert run.compute_seconds == pytest.approx(
            TESLA_M2090.seconds(per_gpu), rel=0.01
        )

    def test_gteps(self, small_sw):
        run = simulate_distributed_run(small_sw, kids(2), sample_roots=8, seed=0)
        expect = small_sw.num_edges * small_sw.num_vertices / run.seconds
        assert run.teps() == pytest.approx(expect)
        assert run.gteps() == pytest.approx(expect / 1e9)
