"""Unit tests for the in-process MPI-like communicator."""

import numpy as np
import pytest

from repro.cluster.interconnect import INFINIBAND_QDR
from repro.cluster.mpi_sim import SimComm
from repro.errors import CommunicatorError


class TestCollectives:
    def test_bcast(self):
        comm = SimComm(4)
        out = comm.bcast({"x": 1})
        assert len(out) == 4 and all(v == {"x": 1} for v in out)

    def test_scatter_gather_roundtrip(self):
        comm = SimComm(3)
        values = [10, 20, 30]
        scattered = comm.scatter(values)
        gathered = comm.gather(scattered)
        assert gathered == values

    def test_allgather(self):
        comm = SimComm(2)
        out = comm.allgather(["a", "b"])
        assert out == [["a", "b"], ["a", "b"]]

    def test_reduce_numpy_sum(self):
        comm = SimComm(3)
        vals = [np.arange(4, dtype=float) * (i + 1) for i in range(3)]
        out = comm.reduce(vals)
        assert np.allclose(out, np.arange(4) * 6.0)

    def test_reduce_does_not_mutate_inputs(self):
        comm = SimComm(2)
        a = np.ones(3)
        b = np.ones(3)
        comm.reduce([a, b])
        assert np.all(a == 1.0)

    def test_reduce_custom_op(self):
        comm = SimComm(3)
        assert comm.reduce([5, 2, 9], op=max) == 9

    def test_allreduce(self):
        comm = SimComm(2)
        out = comm.allreduce([np.ones(2), np.ones(2)])
        assert len(out) == 2
        assert np.all(out[0] == 2.0)
        out[0][0] = 99  # copies must be independent
        assert out[1][0] == 2.0

    def test_size_mismatch(self):
        comm = SimComm(3)
        with pytest.raises(CommunicatorError):
            comm.reduce([1, 2])

    def test_bad_root(self):
        comm = SimComm(2)
        with pytest.raises(CommunicatorError):
            comm.bcast(1, root=5)

    def test_bad_size(self):
        with pytest.raises(CommunicatorError):
            SimComm(0)


class TestAdversarialInputs:
    """Collectives under hostile inputs: wrong-length value lists,
    mismatched shapes, empty arrays."""

    @pytest.mark.parametrize("n_values", [0, 1, 2, 5])
    def test_wrong_length_lists_rejected_everywhere(self, n_values):
        comm = SimComm(3)
        values = [np.ones(2)] * n_values
        for collective in (comm.scatter, comm.gather, comm.allgather,
                           comm.reduce, comm.allreduce):
            with pytest.raises(CommunicatorError):
                collective(values)

    def test_reduce_shape_mismatch(self):
        comm = SimComm(3)
        vals = [np.ones(4), np.ones(4), np.ones(5)]
        with pytest.raises(CommunicatorError, match="shape mismatch"):
            comm.reduce(vals)

    def test_allreduce_shape_mismatch(self):
        comm = SimComm(2)
        with pytest.raises(CommunicatorError, match="shape mismatch"):
            comm.allreduce([np.ones((2, 2)), np.ones(4)])

    def test_reduce_shape_mismatch_with_custom_op(self):
        comm = SimComm(2)
        with pytest.raises(CommunicatorError):
            comm.reduce([np.ones(3), np.ones(2)], op=np.maximum)

    def test_reduce_empty_arrays(self):
        comm = SimComm(3)
        out = comm.reduce([np.empty(0)] * 3)
        assert isinstance(out, np.ndarray)
        assert out.size == 0

    def test_reduce_scalars_unaffected_by_shape_check(self):
        comm = SimComm(3)
        assert comm.reduce([1, 2, 3]) == 6

    def test_bad_root_on_every_rooted_collective(self):
        comm = SimComm(2)
        for call in (lambda: comm.bcast(1, root=2),
                     lambda: comm.scatter([1, 2], root=-1),
                     lambda: comm.gather([1, 2], root=7),
                     lambda: comm.reduce([1, 2], root=2)):
            with pytest.raises(CommunicatorError):
                call()


class TestCommCosting:
    def test_charges_accumulate(self):
        comm = SimComm(4, link=INFINIBAND_QDR)
        assert comm.elapsed_comm_seconds == 0.0
        comm.bcast(np.zeros(1000))
        first = comm.elapsed_comm_seconds
        assert first > 0
        comm.reduce([np.zeros(1000)] * 4)
        assert comm.elapsed_comm_seconds > first

    def test_no_link_no_charge(self):
        comm = SimComm(4)
        comm.bcast(np.zeros(1000))
        assert comm.elapsed_comm_seconds == 0.0

    def test_barrier(self):
        comm = SimComm(4, link=INFINIBAND_QDR)
        comm.barrier()
        assert comm.elapsed_comm_seconds > 0.0

    def test_custom_op_charges_same_bytes_as_default(self):
        vals = [np.zeros(1000)] * 4
        default = SimComm(4, link=INFINIBAND_QDR)
        default.reduce(vals)
        custom = SimComm(4, link=INFINIBAND_QDR)
        custom.reduce(vals, op=np.maximum)
        assert custom.elapsed_comm_seconds == pytest.approx(
            default.elapsed_comm_seconds
        )
