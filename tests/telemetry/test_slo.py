"""SLO aggregation: grouping, rates, percentiles, exemplars, top."""

from __future__ import annotations

import pytest

from repro.service import AdmissionPolicy, BCService, JobSpec
from repro.telemetry import (
    LATENCY_BUCKETS,
    SLO_SCHEMA,
    aggregate_slo,
    read_events,
    render_top,
)

pytestmark = pytest.mark.telemetry


def ev(kind, **kw):
    base = {"event": kind, "seq": ev.n, "t": 0.0}
    ev.n += 1
    base.update(kw)
    return base


ev.n = 1


def submit(job, tenant="t0", strategy="sampling", **kw):
    return ev("submit", job_id=job, trace_id=f"tr{job}", tenant=tenant,
              strategy=strategy, **kw)


def done(job, e2e, **kw):
    kw.setdefault("exact", True)
    kw.setdefault("phases", {"queued": 0.0, "backoff": 0.0,
                             "compute": e2e})
    return ev("done", job_id=job, e2e=e2e, **kw)


def test_groups_rates_and_percentiles():
    events = [
        submit("a"), done("a", 1.0),
        submit("b"), done("b", 3.0),
        submit("c"), done("c", 2.0, exact=False,
                          degraded_reason="overload"),
        submit("d", tenant="t1"), ev("fail", job_id="d",
                                     phases={"queued": 0.5, "backoff": 0.0,
                                             "compute": 0.0}),
        ev("shed", job_id="e", tenant="t1", strategy="sampling",
           trace_id="tre"),
    ]
    report = aggregate_slo(events)
    assert report["schema"] == SLO_SCHEMA
    by = {(g["tenant"], g["strategy"]): g for g in report["groups"]}
    g0 = by[("t0", "sampling")]
    assert (g0["offered"], g0["done"], g0["degraded"]) == (3, 3, 1)
    assert g0["error_budget_burn"] == pytest.approx(1 / 3)
    assert g0["e2e"]["p50"] == pytest.approx(2.0)
    assert g0["e2e"]["max"] == pytest.approx(3.0)
    g1 = by[("t1", "sampling")]
    assert (g1["offered"], g1["failed"], g1["shed"]) == (2, 1, 1)
    assert g1["shed_rate"] == pytest.approx(0.5)
    assert g1["error_budget_burn"] == pytest.approx(1.0)
    assert g1["phases"]["queued"] == pytest.approx(0.5)
    totals = report["totals"]
    assert (totals["offered"], totals["done"], totals["shed"]) == (5, 3, 1)
    assert report["stream"]["by_kind"]["submit"] == 4


def test_exemplars_pick_slowest_per_bucket():
    # Two jobs in the same bucket: the slower one is the exemplar.
    b = LATENCY_BUCKETS[6]
    events = [
        submit("slow"), done("slow", b * 0.9),
        submit("fast"), done("fast", b * 0.8),
        submit("huge"), done("huge", LATENCY_BUCKETS[-1] * 10),  # inf tail
    ]
    report = aggregate_slo(events)
    exemplars = report["groups"][0]["histogram"]["exemplars"]
    by_bucket = {x["bucket"]: x for x in exemplars}
    assert by_bucket[b]["job_id"] == "slow"
    assert by_bucket[b]["trace_id"] == "trslow"
    assert by_bucket["inf"]["job_id"] == "huge"
    counts = report["groups"][0]["histogram"]["counts"]
    assert sum(counts) == 3 and counts[-1] == 1


def test_empty_stream():
    report = aggregate_slo([])
    assert report["groups"] == []
    assert report["totals"]["e2e"]["p50"] is None
    assert render_top(report)  # header + totals render without rows


def test_render_top_shows_groups_and_exemplars():
    events = [submit("a", tenant="acme"), done("a", 0.5)]
    lines = render_top(aggregate_slo(events))
    text = "\n".join(lines)
    assert "acme" in text and "TOTAL" in text
    assert "exemplar" in text and "tra" in text
    assert "compute 100%" in text


def test_slo_over_real_service_run(tmp_path):
    with BCService(tmp_path / "svc",
                   policy=AdmissionPolicy(max_queue=1,
                                          degrade_threshold=1)) as svc:
        ids = []
        for i in (1, 2, 3):
            try:
                job = svc.submit(JobSpec(
                    job_id=f"j{i:06d}", graph="smallworld",
                    scale_factor=512, strategy="sampling", roots=4,
                    seed=i, tenant=f"t{i % 2}"))
                ids.append(job.job_id)
            except Exception:
                pass
            svc.run_pending()
        events, _ = read_events(str(tmp_path / "svc" / "events.jsonl"))
    report = aggregate_slo(events)
    assert report["totals"]["offered"] == 3
    assert report["totals"]["done"] >= 1
    # Groups are keyed (tenant, strategy) and sorted.
    keys = [(g["tenant"], g["strategy"]) for g in report["groups"]]
    assert keys == sorted(keys)
