"""Chrome trace-event export: structure, spans, validation, writing."""

from __future__ import annotations

import json

import pytest

from repro.service import BCService, JobSpec
from repro.telemetry import (
    chrome_trace,
    read_events,
    validate_chrome_trace,
    write_chrome_trace,
)

pytestmark = pytest.mark.telemetry


def run_events(tmp_path):
    with BCService(tmp_path / "svc") as svc:
        for i, tenant in ((1, "acme"), (2, "acme"), (3, "zoo")):
            svc.submit(JobSpec(
                job_id=f"j{i:06d}", graph="smallworld", scale_factor=512,
                strategy="sampling", roots=4, seed=i, tenant=tenant,
                faults="fail:0@compute+1" if i == 2 else ""))
        svc.run_pending()
    return read_events(str(tmp_path / "svc" / "events.jsonl"))[0]


def test_whole_run_export(tmp_path):
    events = run_events(tmp_path)
    doc = chrome_trace(events)
    assert validate_chrome_trace(doc) == []
    evs = doc["traceEvents"]
    # One process per tenant, one thread per job, each named.
    procs = [e for e in evs if e["ph"] == "M"
             and e["name"] == "process_name"]
    threads = [e for e in evs if e["ph"] == "M"
               and e["name"] == "thread_name"]
    assert {p["args"]["name"] for p in procs} == {"tenant acme",
                                                  "tenant zoo"}
    assert len(threads) == 3
    # The chaos job contributes a backoff span with a real duration.
    backoffs = [e for e in evs if e["name"].startswith("backoff")]
    assert backoffs and all(e["ph"] == "X" and e["dur"] > 0
                            for e in backoffs)
    # Timestamps are µs of simulated time, non-negative, span-consistent.
    computes = [e for e in evs if e["name"].startswith("compute")]
    assert computes
    for e in computes:
        assert e["ts"] >= 0 and e["dur"] > 0
    # args thread the trace ids through every slice.
    sliced = [e for e in evs if e["ph"] in ("X", "i")]
    assert all(e["args"].get("trace_id") for e in sliced
               if e["args"].get("job_id"))


def test_single_job_filter(tmp_path):
    events = run_events(tmp_path)
    doc = chrome_trace(events, job_id="j000002")
    assert validate_chrome_trace(doc) == []
    jobs = {e["args"].get("job_id") for e in doc["traceEvents"]
            if e["ph"] != "M" and e["args"].get("job_id")}
    assert jobs == {"j000002"}
    # Only that job's tenant row appears.
    procs = [e["args"]["name"] for e in doc["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"]
    assert procs == ["tenant acme"]


def test_slo_report_embedded_with_exemplars(tmp_path):
    events = run_events(tmp_path)
    doc = chrome_trace(events)
    slo = doc["otherData"]["slo"]
    assert slo["totals"]["done"] == 3
    exemplar_jobs = {ex["job_id"] for g in slo["groups"]
                     for ex in g["histogram"]["exemplars"]}
    assert exemplar_jobs <= {"j000001", "j000002", "j000003"}
    assert exemplar_jobs


def test_validate_rejects_malformed():
    assert validate_chrome_trace([]) == ["document is not an object"]
    assert validate_chrome_trace({}) == ["traceEvents missing or not a list"]
    bad = {"traceEvents": [
        {"ph": "X", "ts": 1.0, "dur": -2.0, "pid": 1, "tid": 1},
        {"name": "x", "ph": "??", "ts": -1.0, "pid": "a", "tid": 1},
    ]}
    problems = validate_chrome_trace(bad)
    assert any("missing name" in p for p in problems)
    assert any("bad dur" in p for p in problems)
    assert any("bad phase" in p for p in problems)
    assert any("bad ts" in p for p in problems)
    assert any("missing pid" in p for p in problems)


def test_write_chrome_trace_roundtrip(tmp_path):
    events = run_events(tmp_path)
    out = tmp_path / "nested" / "trace.json"
    write_chrome_trace(str(out), chrome_trace(events))
    loaded = json.loads(out.read_text())
    assert validate_chrome_trace(loaded) == []
    assert loaded["displayTimeUnit"] == "ms"
    with pytest.raises(ValueError):
        write_chrome_trace(str(out), {"traceEvents": "nope"})
