"""The repro.events/v1 stream: framing, durability, exactly-once."""

from __future__ import annotations

import os

import pytest

from repro.observability import MetricsRegistry
from repro.resilience.faults import ActiveFaults, FaultPlan
from repro.service import DONE, BCService, JobSpec
from repro.service.storage import ServiceStorage
from repro.telemetry import (
    TelemetryLog,
    decode_event_line,
    encode_event,
    read_events,
    trace_id_for,
    verify_events,
)

pytestmark = pytest.mark.telemetry


def spec(i=1, **kw):
    kw.setdefault("job_id", f"j{i:06d}")
    kw.setdefault("graph", "smallworld")
    kw.setdefault("scale_factor", 512)
    kw.setdefault("strategy", "sampling")
    kw.setdefault("roots", 4)
    kw.setdefault("seed", i)
    return JobSpec(**kw)


# -- framing ------------------------------------------------------------
def test_encode_decode_roundtrip():
    ev = {"event": "submit", "seq": 3, "t": 0.25, "job_id": "j1"}
    assert decode_event_line(encode_event(ev)) == ev


def test_decode_rejects_bad_checksum_and_framing():
    line = encode_event({"event": "done", "seq": 1, "t": 0.0})
    with pytest.raises(ValueError):
        decode_event_line(line[:-1])            # no newline: torn
    with pytest.raises(ValueError):
        decode_event_line("0" * 8 + " {}\n")    # body without 'event'
    corrupt = line.replace("done", "fail")      # crc no longer matches
    with pytest.raises(ValueError):
        decode_event_line(corrupt)


def test_read_events_drops_torn_tail_keeps_interior(tmp_path):
    path = tmp_path / "events.jsonl"
    lines = [encode_event({"event": "a", "seq": i, "t": 0.0})
             for i in (1, 2, 3)]
    path.write_text("".join(lines) + lines[0][: len(lines[0]) // 2])
    events, torn = read_events(str(path))
    assert torn and [e["seq"] for e in events] == [1, 2, 3]


def test_missing_file_is_empty_stream(tmp_path):
    events, torn = read_events(str(tmp_path / "none.jsonl"))
    assert events == [] and torn is False
    assert verify_events(str(tmp_path / "none.jsonl"))["ok"]


# -- trace ids ----------------------------------------------------------
def test_trace_id_pure_function_of_content():
    a = spec(1)
    # Same content under a different job id / tenant: same trace.
    b = spec(1, job_id="other", tenant="acme")
    assert trace_id_for(a) == trace_id_for(b.to_dict())
    assert trace_id_for(a).startswith("tr") and len(trace_id_for(a)) == 18
    assert trace_id_for(spec(2)) != trace_id_for(a)


# -- emission / reopen --------------------------------------------------
def test_emit_seq_monotone_across_reopen(tmp_path):
    path = str(tmp_path / "events.jsonl")
    log = TelemetryLog(path)
    log.emit("a")
    log.emit("b", jseq=1)
    log2 = TelemetryLog(path)
    ev = log2.emit("c")
    assert ev["seq"] == 3
    assert verify_events(path)["ok"]


def test_torn_tail_truncated_on_reopen(tmp_path):
    path = tmp_path / "events.jsonl"
    log = TelemetryLog(str(path))
    log.emit("a")
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("deadbeef {\"event\"")          # torn mid-write
    log2 = TelemetryLog(str(path))
    assert [e["event"] for e in log2.events] == ["a"]
    events, torn = read_events(str(path))       # file itself repaired
    assert not torn and len(events) == 1


def test_enospc_drops_event_and_counts(tmp_path):
    path = str(tmp_path / "events.jsonl")
    storage = ServiceStorage(
        faults=ActiveFaults(FaultPlan.parse("enospc:0@journal")))
    metrics = MetricsRegistry()
    log = TelemetryLog(path, storage=storage, metrics=metrics)
    assert log.emit("a") is None
    assert log.dropped == 1
    ok = log.emit("b")                          # fault consumed; next lands
    assert ok is not None and ok["seq"] == 1    # dropped seq not consumed
    assert [e["event"] for e in read_events(path)[0]] == ["b"]


def test_reconcile_backfills_missing_and_never_duplicates(tmp_path):
    path = str(tmp_path / "events.jsonl")
    records = [
        {"kind": "open", "seq": 1},
        {"kind": "submit", "seq": 2, "job": spec(1).to_dict(),
         "mode": "admit"},
        {"kind": "start", "seq": 3, "job_id": "j000001", "attempt": 1,
         "device": "dev0"},
        {"kind": "done", "seq": 4, "job_id": "j000001", "exact": True,
         "degraded_reason": None, "sim_seconds": 0.5, "device": "dev0"},
    ]
    log = TelemetryLog(path)
    log.on_journal_record(records[0])
    log.on_journal_record(records[1])           # seq 3, 4 never mirrored

    log2 = TelemetryLog(path)
    assert log2.reconcile(records) == 2
    res = verify_events(path, journal_records=records)
    assert res["ok"], res["problems"]
    # The back-filled done event knows its trace id via the submit
    # record even though that submit was already event-covered.
    done = [e for e in read_events(path)[0] if e["event"] == "done"][0]
    assert done["trace_id"] == trace_id_for(spec(1))
    # A second reconcile is a no-op: exactly-once, not at-least-once.
    log3 = TelemetryLog(path)
    assert log3.reconcile(records) == 0


def test_verify_catches_duplicate_jseq_and_nonmonotone_seq(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text(
        encode_event({"event": "a", "seq": 1, "t": 0.0, "jseq": 1})
        + encode_event({"event": "b", "seq": 1, "t": 0.0, "jseq": 1}))
    res = verify_events(str(path))
    assert not res["ok"]
    assert any("jseq" in p for p in res["problems"])
    assert any("seq not increasing" in p for p in res["problems"])


# -- service integration ------------------------------------------------
def run_service(root):
    with BCService(root) as svc:
        svc.submit(spec(1))
        svc.submit(spec(2, faults="fail:0@compute+1"))
        svc.run_pending()
        records = list(svc.journal.records)
    return records


def test_stream_covers_every_journal_record(tmp_path):
    records = run_service(tmp_path / "svc")
    res = verify_events(str(tmp_path / "svc" / "events.jsonl"),
                        journal_records=records)
    assert res["ok"], res["problems"]


def test_two_identical_runs_are_byte_identical(tmp_path):
    run_service(tmp_path / "a")
    run_service(tmp_path / "b")
    a = (tmp_path / "a" / "events.jsonl").read_bytes()
    b = (tmp_path / "b" / "events.jsonl").read_bytes()
    assert a == b and a  # simulated clock only: deterministic streams


def test_restart_reconciles_and_stays_exactly_once(tmp_path):
    root = tmp_path / "svc"
    run_service(root)
    # Model the worst crash: the whole event stream lost, journal intact.
    os.remove(root / "events.jsonl")
    with BCService(root) as svc:
        res = verify_events(str(root / "events.jsonl"),
                            journal_records=svc.journal.records)
        assert res["ok"], res["problems"]


def test_telemetry_never_fails_the_service(tmp_path):
    # Every telemetry append hits ENOSPC; jobs must still run to DONE.
    # The journal shares the 'journal' fault target, so the full disk
    # is wired onto the telemetry log's storage alone.
    svc = BCService(tmp_path / "svc")
    svc.telemetry.storage = ServiceStorage(
        faults=ActiveFaults(FaultPlan.parse("enospc:0@journalx1000")))
    svc.submit(spec(1))
    svc.run_pending()
    assert svc.jobs["j000001"].state == DONE
    assert svc.telemetry.dropped > 0
    svc.close()
    # And the next open heals every hole the full disk tore.
    with BCService(tmp_path / "svc") as svc2:
        res = verify_events(str(tmp_path / "svc" / "events.jsonl"),
                            journal_records=svc2.journal.records)
        assert res["ok"], res["problems"]
