"""Timeline reconstruction + the issue's acceptance lifecycle.

The acceptance scenario: a job submitted through :class:`BCClient`
against an overloaded service, with one chaos fault on its first
attempt.  One trace id must thread shed -> client retry -> admit ->
attempt 1 fault -> backoff -> attempt 2 -> done, the timeline must
render it, the Chrome export must validate, and a SIGKILL/restart must
neither drop nor duplicate a lifecycle event."""

from __future__ import annotations

import pytest

from repro.client import BCClient, InProcessTransport
from repro.service import AdmissionPolicy, BCService, JobSpec
from repro.service.storage import ServiceStorage, SimulatedCrash
from repro.telemetry import (
    attempt_rows,
    build_timeline,
    chrome_trace,
    read_events,
    render_timeline,
    trace_id_for,
    validate_chrome_trace,
    verify_events,
)

pytestmark = pytest.mark.telemetry


def spec(i=1, **kw):
    kw.setdefault("job_id", f"j{i:06d}")
    kw.setdefault("graph", "smallworld")
    kw.setdefault("scale_factor", 512)
    kw.setdefault("strategy", "sampling")
    kw.setdefault("roots", 4)
    kw.setdefault("seed", i)
    return JobSpec(**kw)


@pytest.fixture
def lifecycle_root(tmp_path):
    """Run the acceptance scenario; returns the service root."""
    root = tmp_path / "svc"
    # max_queue=2 with degrade disabled: two fillers saturate the
    # queue, so the target's first offer is shed (not degraded).
    svc = BCService(root, policy=AdmissionPolicy(max_queue=2,
                                                 degrade_threshold=2))
    svc.submit(spec(8))
    svc.submit(spec(9))
    # The client's backoff sleep drains the daemon queue, so the retry
    # finds room — the in-process analogue of waiting out an overload.
    client = BCClient(InProcessTransport(svc),
                      sleep=lambda d: svc.run_pending())
    target = spec(1, job_id="", faults="fail:0@compute+1",
                  tenant="acme", allow_degrade=False)
    job_id = client.submit(target)
    assert client.report["retries"] >= 1          # it was shed once
    svc.run_pending()
    assert svc.jobs[job_id].state == "done"
    svc.close()
    return root, job_id, trace_id_for(target)


def test_acceptance_single_trace_full_lifecycle(lifecycle_root):
    root, job_id, trace = lifecycle_root
    events, torn = read_events(str(root / "events.jsonl"))
    assert not torn
    mine = [e for e in events if e.get("trace_id") == trace]
    kinds = [e["event"] for e in mine]
    # One trace id reconstructs the whole story, in order.
    assert [k for k in kinds if not k.startswith("sched.")] == [
        "shed", "submit", "attempt-start", "backoff",
        "attempt-start", "done"]
    assert {e.get("job_id") for e in mine} == {job_id}
    # Attempt 1 failed into a backoff; attempt 2 finished exact.
    backoff = next(e for e in mine if e["event"] == "backoff")
    assert backoff["delay"] > 0
    done = next(e for e in mine if e["event"] == "done")
    assert done["exact"] is True
    assert done["phases"]["backoff"] == pytest.approx(backoff["delay"])
    assert done["e2e"] == pytest.approx(
        done["phases"]["queued"] + done["phases"]["backoff"]
        + done["phases"]["compute"])
    # The scheduler's retry decision rides the same trace.
    assert "sched.retry" in kinds and "sched.attempt-failed" in kinds


def test_acceptance_timeline_renders(lifecycle_root):
    root, job_id, trace = lifecycle_root
    events, _ = read_events(str(root / "events.jsonl"))
    doc = build_timeline(events, job_id=job_id)
    assert doc["trace_id"] == trace
    assert doc["state"] == "done" and doc["sheds"] == 1
    assert [a["attempt"] for a in doc["attempts"]] == [1, 2]
    assert doc["attempts"][0]["outcome"].startswith("failed")
    assert doc["attempts"][0]["backoff_after"] > 0
    assert doc["attempts"][1]["outcome"].startswith("done")
    lines = render_timeline(doc)
    text = "\n".join(lines)
    assert trace in text and "shed" in text and "backoff" in text
    assert "attempt 2" in text and "e2e" in text
    # Selecting by trace id yields the same document.
    assert build_timeline(events, trace_id=trace)["events"] == doc["events"]


def test_acceptance_chrome_export_validates(lifecycle_root):
    root, job_id, trace = lifecycle_root
    events, _ = read_events(str(root / "events.jsonl"))
    doc = chrome_trace(events, job_id=job_id)
    assert validate_chrome_trace(doc) == []
    names = [e["name"] for e in doc["traceEvents"]]
    assert "shed" in names and "done" in names
    assert any(n.startswith("backoff") for n in names)
    assert any(n.startswith("attempt 2") for n in names)
    # Exemplars in the embedded SLO report point back at the job.
    groups = doc["otherData"]["slo"]["groups"]
    exemplars = [ex for g in groups
                 for ex in g["histogram"]["exemplars"]]
    assert any(ex["job_id"] == job_id for ex in exemplars)


def test_acceptance_survives_kill_and_restart(lifecycle_root, tmp_path):
    root, job_id, trace = lifecycle_root
    before = [e for e in read_events(str(root / "events.jsonl"))[0]
              if e.get("trace_id") == trace]
    # SIGKILL model: reopen under a crashing storage, then heal.
    crashed = False
    svc = None
    try:
        svc = BCService(root, storage=ServiceStorage(crash_after=3))
        svc.submit(spec(30))
        svc.run_pending()
        svc.close()
    except SimulatedCrash:
        crashed = True
        if svc is not None:
            svc.abandon()
    assert crashed
    with BCService(root) as svc2:
        res = verify_events(str(root / "events.jsonl"),
                            journal_records=svc2.journal.records)
        assert res["ok"], res["problems"]
        after = [e for e in read_events(str(root / "events.jsonl"))[0]
                 if e.get("trace_id") == trace]
        # The finished trace's lifecycle: no events lost, none doubled.
        assert [(e["event"], e.get("jseq")) for e in after] == \
            [(e["event"], e.get("jseq")) for e in before]


def test_attempt_rows_and_unknown_job(lifecycle_root):
    root, job_id, _ = lifecycle_root
    events, _ = read_events(str(root / "events.jsonl"))
    rows = attempt_rows(events, job_id)
    assert [r["attempt"] for r in rows] == [1, 2]
    assert rows[0]["backoff_after"] > 0 and rows[1]["compute"] > 0
    assert attempt_rows(events, "ghost") == []
    assert attempt_rows([], job_id) == []
    with pytest.raises(ValueError):
        build_timeline(events, job_id="ghost")
    with pytest.raises(ValueError):
        build_timeline(events)  # neither selector


def test_dedupe_joins_existing_trace(tmp_path):
    with BCService(tmp_path / "svc") as svc:
        sp = spec(1)
        svc.submit(sp)
        svc.submit(spec(1, job_id="", tenant="acme"))  # same content
        svc.run_pending()
        events, _ = read_events(str(tmp_path / "svc" / "events.jsonl"))
    doc = build_timeline(events, job_id=sp.job_id)
    kinds = [e["event"] for e in doc["events"]]
    assert "dedupe" in kinds
    dedupe = next(e for e in doc["events"] if e["event"] == "dedupe")
    assert dedupe["trace_id"] == trace_id_for(sp)
    assert "deduped" in "\n".join(render_timeline(doc))
