"""Integration tests: every experiment runs at reduced scale and its
headline *shape* claims hold.

These are the end-to-end checks of the reproduction: the big scale runs
live in benchmarks/ and EXPERIMENTS.md; here we assert the qualitative
structure on small instances so the suite stays fast.
"""

import numpy as np
import pytest

from repro.harness.experiments import (
    EXPERIMENTS,
    figure1,
    figure3,
    figure4,
    figure5,
    figure6,
    table1,
    table2,
    table3,
    table4,
)
from repro.harness.runner import ExperimentConfig

CFG = ExperimentConfig(scale_factor=128, root_sample=6, seed=0)


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {
            "figure1", "figure3", "figure4", "figure5", "figure6",
            "table1", "table2", "table3", "table4",
        }

    def test_each_module_has_run_and_render(self):
        for mod in EXPERIMENTS.values():
            assert callable(mod.run) and callable(mod.render)


class TestFigure1:
    def test_scores_match_text_claims(self):
        r = figure1.run()
        assert r.argmax_paper_label == 4
        assert r.bc[7] == pytest.approx(0.0)  # paper vertex 8
        assert r.bc[8] == pytest.approx(0.0)  # paper vertex 9

    def test_figure2_work_counts(self):
        r = figure1.run()
        # vertex-parallel: n threads; edge-parallel: 2m; WE: |frontier|.
        assert r.threads_vertex_parallel == 9
        assert r.threads_edge_parallel == 22
        assert r.threads_work_efficient == 4
        assert sorted(r.frontier_iteration2.tolist()) == [1, 3, 5, 6]

    def test_render(self):
        out = figure1.render()
        assert "Figure 1" in out and "Figure 2" in out


class TestTable1:
    def test_vertex_correlation_positive_everywhere(self):
        r = table1.run(CFG, roots_per_graph=2)
        assert len(r.rows) == 10  # 2 roots x 5 graphs
        # The paper's headline: rho_v,t positive regardless of structure.
        assert r.min_vertex_corr() > 0.0

    def test_uniform_graphs_both_high(self):
        # At 1/128 scale the tiny frontiers quantise the per-level cost,
        # weakening correlations relative to the full-scale runs
        # (benchmarks/test_table1.py checks the strong version at /8);
        # the qualitative claim still holds clearly.
        r = table1.run(CFG, roots_per_graph=2)
        for name in ("delaunay_n20", "smallworld"):
            for row in r.by_graph(name):
                assert row.rho_vertex_time > 0.6
                assert row.rho_edge_time > 0.6
        for row in r.by_graph("rgg_n_2_20"):
            assert row.rho_vertex_time > 0.4

    def test_render(self):
        out = table1.render(table1.run(CFG, roots_per_graph=2))
        assert "rho_v,t" in out


class TestTable2:
    def test_all_rows(self):
        r = table2.run(CFG)
        assert len(r.rows) == 10

    def test_structural_shape(self):
        r = table2.run(CFG)
        # Road network: barely more edges than vertices, deep.
        lux = r.stats("luxembourg.osm")
        assert lux.num_edges < 1.3 * lux.num_vertices
        # Kron: hubs and isolated vertices.
        kron = r.stats("kron_g500-logn20")
        assert kron.max_degree > 50
        # Diameter split between classes.
        assert lux.diameter > 5 * kron.diameter

    def test_render(self):
        assert "af_shell9" in table2.render(table2.run(CFG))


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return table3.run(ExperimentConfig(scale_factor=64, root_sample=6))

    def test_high_diameter_graphs_win_big(self, result):
        # The paper's af_shell/delaunay/luxembourg rows: sampling wins
        # clearly on high-diameter graphs.
        assert result.row("af_shell9").speedup > 2.0
        assert result.row("delaunay_n20").speedup > 2.0

    def test_scale_free_graphs_near_parity(self, result):
        for name in ("caidaRouterLevel", "loc-gowalla", "smallworld"):
            assert 0.5 < result.row(name).speedup < 3.0

    def test_geomean_beats_baseline(self, result):
        assert result.geomean_speedup > 1.2

    def test_render(self, result):
        out = table3.render(result)
        assert "Geometric mean" in out


class TestFigure3:
    def test_shape_split(self):
        r = figure3.run(CFG, roots_per_graph=2)
        from repro.metrics.frontier import classify_frontier_shape

        for evo in r.by_graph("kron_g500-logn20") + r.by_graph("smallworld"):
            assert classify_frontier_shape(evo) == "ballooning"
        for evo in r.by_graph("rgg_n_2_20") + r.by_graph("luxembourg.osm"):
            assert classify_frontier_shape(evo) == "gradual"

    def test_iteration_counts_reflect_diameter(self):
        r = figure3.run(CFG, roots_per_graph=2)
        deep = min(e.num_levels for e in r.by_graph("luxembourg.osm"))
        shallow = max(e.num_levels for e in r.by_graph("smallworld"))
        assert deep > shallow

    def test_render(self):
        assert "Figure 3" in figure3.render(figure3.run(CFG, roots_per_graph=1))


class TestFigure4:
    @pytest.fixture(scope="class")
    def result(self):
        return figure4.run(ExperimentConfig(scale_factor=64, root_sample=6))

    def test_work_efficient_wins_meshes(self, result):
        assert result.row("af_shell9").speedup("work-efficient") > 2.0
        assert result.row("delaunay_n20").speedup("work-efficient") > 2.0

    def test_work_efficient_loses_scale_free(self, result):
        # "using the work-efficient method alone performs slower than
        # the edge-parallel method" on these graphs.
        assert result.row("loc-gowalla").speedup("work-efficient") < 0.8
        assert result.row("caidaRouterLevel").speedup("work-efficient") < 0.8

    def test_adaptive_methods_never_catastrophic(self, result):
        for row in result.rows:
            assert row.speedup("hybrid") > 0.4
            assert row.speedup("sampling") > 0.4

    def test_render(self, result):
        assert "Hybrid" in figure4.render(result)


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return figure5.run(ExperimentConfig(scale_factor=1, root_sample=4),
                           scales=range(8, 11))

    def test_sampling_beats_gpu_fan(self, result):
        for p in result.points:
            if isinstance(p.gpu_fan_seconds, float):
                assert p.sampling_seconds < p.gpu_fan_seconds

    def test_kron_reader_rejected(self, result):
        for p in result.family("kron"):
            assert p.edge_parallel_seconds == figure5.READER_REJECTS

    def test_time_grows_with_scale(self, result):
        for fam in ("rgg", "delaunay", "kron"):
            pts = result.family(fam)
            times = [p.sampling_seconds for p in pts]
            assert times == sorted(times)

    def test_gpu_fan_oom_at_large_scale(self):
        """At scale 17 the O(n^2) predecessor matrix exceeds 6 GB."""
        from repro.bc.gpu_fan import supports_graph
        from repro.graph.generators import rgg_n_2
        from repro.gpusim.spec import GTX_TITAN

        g17 = rgg_n_2(17, seed=0)
        assert not supports_graph(g17, GTX_TITAN.memory_bytes)
        g15 = rgg_n_2(15, seed=0)
        assert supports_graph(g15, GTX_TITAN.memory_bytes)

    def test_render(self, result):
        assert "GPU-FAN" in figure5.render(result)


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self):
        return figure6.run(ExperimentConfig(scale_factor=1, root_sample=8),
                           scales=(11, 14), node_counts=(1, 4, 16))

    def test_speedups_grow_with_scale(self, result):
        for fam in ("delaunay", "rgg", "kron"):
            small = result.curve(fam, 11).speedups()[-1]
            large = result.curve(fam, 14).speedups()[-1]
            assert large >= small

    def test_speedup_bounded_by_nodes(self, result):
        for c in result.curves:
            for nodes, sp in zip(c.node_counts, c.speedups()):
                assert sp <= nodes + 1e-9

    def test_render(self, result):
        assert "GPUs" in figure6.render(result)


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return table4.run(ExperimentConfig(scale_factor=1, root_sample=8),
                          scale=13)

    def test_kron_teps_highest(self, result):
        # Table IV: the Kronecker graph posts the best TEPS rate.
        assert result.row("kron").gteps_64 > result.row("delaunay").gteps_64
        assert result.row("kron").gteps_64 > result.row("rgg").gteps_64

    def test_kron_adjustment_for_isolated(self, result):
        kron = result.row("kron")
        assert kron.isolated_vertices > 0
        assert kron.adjusted_gteps_64 < kron.gteps_64
        rgg = result.row("rgg")
        assert rgg.adjusted_gteps_64 == pytest.approx(rgg.gteps_64)

    def test_render(self, result):
        assert "Adjusted" in table4.render(result)
