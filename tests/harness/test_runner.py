"""Unit tests for the shared experiment plumbing."""

import numpy as np
import pytest

from repro.harness.runner import ExperimentConfig, load_suite_graph, pick_roots


class TestExperimentConfig:
    def test_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.scale_factor == 64
        assert cfg.root_sample == 24

    def test_paper_thresholds_at_full_scale(self):
        cfg = ExperimentConfig(scale_factor=1)
        assert cfg.alpha == 768
        assert cfg.beta == 512
        assert cfg.min_frontier == 512

    def test_sqrt_scaling(self):
        cfg = ExperimentConfig(scale_factor=64)
        assert cfg.alpha == 768 // 8
        assert cfg.beta == 512 // 8
        assert cfg.min_frontier == 64

    def test_floor_of_two(self):
        cfg = ExperimentConfig(scale_factor=1_000_000)
        assert cfg.alpha >= 2 and cfg.beta >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scale_factor=0)
        with pytest.raises(ValueError):
            ExperimentConfig(root_sample=0)


class TestPickRoots:
    def test_distinct_and_sorted(self, small_sw):
        roots = pick_roots(small_sw, 10, seed=1)
        assert np.unique(roots).size == 10
        assert np.all(np.diff(roots) > 0)

    def test_avoids_isolated(self, two_components):
        roots = pick_roots(two_components, 6, seed=0)
        assert 6 not in roots  # vertex 6 is isolated

    def test_caps_at_pool(self, fig1):
        roots = pick_roots(fig1, 100, seed=0)
        assert roots.size == 9

    def test_deterministic(self, small_sw):
        a = pick_roots(small_sw, 5, seed=9)
        b = pick_roots(small_sw, 5, seed=9)
        assert np.array_equal(a, b)

    def test_all_isolated_fallback(self):
        from repro.graph.build import from_edges

        g = from_edges([], num_vertices=4)
        roots = pick_roots(g, 2, seed=0)
        assert roots.size == 2


class TestLoadSuiteGraph:
    def test_scales(self):
        cfg = ExperimentConfig(scale_factor=256)
        g = load_suite_graph("smallworld", cfg)
        assert abs(g.num_vertices - 100_000 // 256) < 10
