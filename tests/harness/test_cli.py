"""Unit tests for the CLI entry point."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_experiments(self):
        args = build_parser().parse_args(["table2", "--scale-factor", "256"])
        assert args.experiment == "table2"
        assert args.scale_factor == 256

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_scales_list(self):
        args = build_parser().parse_args(["figure5", "--scales", "10", "11"])
        assert args.scales == [10, 11]


class TestMain:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out

    def test_table2_small(self, capsys):
        assert main(["table2", "--scale-factor", "512", "--roots", "2"]) == 0
        assert "af_shell9" in capsys.readouterr().out

    def test_figure5_with_scales(self, capsys):
        assert main(["figure5", "--scale-factor", "1", "--roots", "2",
                     "--scales", "8", "9"]) == 0
        assert "GPU-FAN" in capsys.readouterr().out


@pytest.mark.faults
class TestResilienceCommand:
    def test_parser_accepts_fault_options(self):
        args = build_parser().parse_args(
            ["resilience", "--faults", "fail:0@reduce", "--ranks", "3",
             "--max-retries", "1"]
        )
        assert args.experiment == "resilience"
        assert args.faults == "fail:0@reduce"
        assert args.ranks == 3
        assert args.max_retries == 1

    def test_recovered_run_reports_exact(self, capsys):
        assert main(["resilience", "--scale-factor", "256",
                     "--faults", "fail:1@compute+1", "--ranks", "3"]) == 0
        out = capsys.readouterr().out
        assert "EXACT" in out
        assert "fail-stop" in out

    def test_exhausted_run_reports_degraded(self, capsys):
        assert main(["resilience", "--scale-factor", "256",
                     "--faults", "oom:0x9", "--ranks", "1",
                     "--max-retries", "1"]) == 0
        out = capsys.readouterr().out
        assert "DEGRADED" in out


@pytest.mark.sdc
class TestVerifyCommand:
    def test_parser_accepts_verify_options(self):
        args = build_parser().parse_args(
            ["verify", "--faults", "sdc:0@sigma+1#62", "--verify",
             "paranoid", "--ranks", "3"]
        )
        assert args.experiment == "verify"
        assert args.faults == "sdc:0@sigma+1#62"
        assert args.verify == "paranoid"

    def test_default_run_repairs(self, capsys):
        assert main(["verify", "--ranks", "3"]) == 0
        out = capsys.readouterr().out
        assert "corruption detected and repaired" in out
        assert "paranoid" in out

    def test_verify_off_flags_undetected_corruption(self, capsys):
        assert main(["verify", "--verify", "off", "--ranks", "3"]) == 0
        assert "UNDETECTED CORRUPTION" in capsys.readouterr().out

    def test_report_written(self, tmp_path, capsys):
        out_path = tmp_path / "nested" / "dir" / "report.json"
        assert main(["verify", "--ranks", "3", "--out", str(out_path)]) == 0
        import json

        report = json.loads(out_path.read_text())
        assert report["schema"] == "repro.verify/v1"
        assert report["corruption_detected"] >= 1


class TestOutputErrors:
    def test_metrics_out_creates_parent_dirs(self, tmp_path):
        metrics = tmp_path / "a" / "b" / "metrics.json"
        assert main(["figure1", "--metrics-out", str(metrics)]) == 0
        assert metrics.exists()

    def test_unwritable_path_is_one_line_error(self, capsys):
        rc = main(["figure1", "--metrics-out", "/proc/nope/metrics.json"])
        assert rc == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert err.startswith("error: cannot write /proc/nope/metrics.json")
