"""Unit tests for the CLI entry point."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_known_experiments(self):
        args = build_parser().parse_args(["table2", "--scale-factor", "256"])
        assert args.experiment == "table2"
        assert args.scale_factor == 256

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table9"])

    def test_scales_list(self):
        args = build_parser().parse_args(["figure5", "--scales", "10", "11"])
        assert args.scales == [10, 11]


class TestMain:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out

    def test_table2_small(self, capsys):
        assert main(["table2", "--scale-factor", "512", "--roots", "2"]) == 0
        assert "af_shell9" in capsys.readouterr().out

    def test_figure5_with_scales(self, capsys):
        assert main(["figure5", "--scale-factor", "1", "--roots", "2",
                     "--scales", "8", "9"]) == 0
        assert "GPU-FAN" in capsys.readouterr().out


@pytest.mark.faults
class TestResilienceCommand:
    def test_parser_accepts_fault_options(self):
        args = build_parser().parse_args(
            ["resilience", "--faults", "fail:0@reduce", "--ranks", "3",
             "--max-retries", "1"]
        )
        assert args.experiment == "resilience"
        assert args.faults == "fail:0@reduce"
        assert args.ranks == 3
        assert args.max_retries == 1

    def test_recovered_run_reports_exact(self, capsys):
        assert main(["resilience", "--scale-factor", "256",
                     "--faults", "fail:1@compute+1", "--ranks", "3"]) == 0
        out = capsys.readouterr().out
        assert "EXACT" in out
        assert "fail-stop" in out

    def test_exhausted_run_reports_degraded(self, capsys):
        assert main(["resilience", "--scale-factor", "256",
                     "--faults", "oom:0x9", "--ranks", "1",
                     "--max-retries", "1"]) == 0
        out = capsys.readouterr().out
        assert "DEGRADED" in out
