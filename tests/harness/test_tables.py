"""Unit tests for text table rendering."""

import pytest

from repro.harness.tables import format_kv, format_series, format_table


class TestFormatTable:
    def test_basic(self):
        out = format_table(["a", "bb"], [(1, 2), (30, 4)])
        lines = out.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert set(lines[1]) <= {"-", " "}
        assert lines[2].split() == ["1", "2"]

    def test_title(self):
        out = format_table(["x"], [(1,)], title="T")
        assert out.splitlines()[0] == "T"

    def test_width_matches_longest(self):
        out = format_table(["h"], [("longvalue",)])
        header, sep, row = out.splitlines()
        assert len(sep) == len("longvalue")

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])

    def test_float_formatting(self):
        out = format_table(["v"], [(3.14159,), (float("nan"),), (1e-9,)])
        assert "3.142" in out
        assert "nan" in out

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert len(out.splitlines()) == 2


class TestHelpers:
    def test_kv(self):
        out = format_kv({"alpha": 768, "beta": 512}, title="params")
        assert "alpha" in out and "768" in out
        assert out.splitlines()[0] == "params"

    def test_series(self):
        out = format_series("curve", [1, 2], [10, 20], "n", "t")
        assert "curve" in out and "10" in out
