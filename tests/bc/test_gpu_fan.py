"""Unit tests for the GPU-FAN scalability model."""

import pytest

from repro.bc.gpu_fan import predecessor_matrix_bytes, supports_graph
from repro.graph.generators import watts_strogatz
from repro.gpusim.spec import GTX_TITAN


class TestPredecessorMatrix:
    def test_quadratic(self):
        assert predecessor_matrix_bytes(1000) == 1_000_000
        assert predecessor_matrix_bytes(0) == 0

    def test_dominates_footprint_at_scale(self):
        from repro.gpusim.memory import strategy_footprint

        g = watts_strogatz(20_000, k=4, p=0.1, seed=0)
        fp = strategy_footprint(g, "gpu-fan", num_blocks=1)
        assert fp["gpu-fan predecessor matrix (O(n^2))"] == \
            predecessor_matrix_bytes(g.num_vertices)
        assert fp["gpu-fan predecessor matrix (O(n^2))"] > \
            10 * fp["graph CSR"]


class TestSupportsGraph:
    def test_small_graph_fits(self, fig1):
        assert supports_graph(fig1, GTX_TITAN.memory_bytes)

    def test_cliff(self):
        """The 6 GB cliff sits near n = sqrt(6 GiB) ~ 80k vertices."""
        fits = watts_strogatz(70_000, k=4, p=0.1, seed=0)
        dies = watts_strogatz(90_000, k=4, p=0.1, seed=0)
        assert supports_graph(fits, GTX_TITAN.memory_bytes)
        assert not supports_graph(dies, GTX_TITAN.memory_bytes)

    def test_threshold_scales_with_memory(self, small_sw):
        need = predecessor_matrix_bytes(small_sw.num_vertices)
        assert not supports_graph(small_sw, need // 2)
        assert supports_graph(small_sw, need * 2)
