"""Unit tests for the adaptive single-vertex BC estimator (ref [3])."""

import numpy as np
import pytest

from repro.bc.approx import adaptive_vertex_bc
from repro.bc.brandes import brandes_reference
from repro.graph.generators import watts_strogatz


class TestAdaptiveVertexBC:
    def test_exact_at_full_samples(self, fig1):
        # With max_samples = n and a huge stopping constant, every root
        # is sampled and the estimate is exact.
        exact = brandes_reference(fig1)
        for v in range(9):
            est = adaptive_vertex_bc(fig1, v, c=1e18, seed=1)
            assert est.samples_used == 9
            assert not est.converged
            assert est.estimate == pytest.approx(exact[v])

    def test_high_bc_vertex_converges_early(self):
        g = watts_strogatz(400, k=6, p=0.05, seed=2)
        exact = brandes_reference(g)
        hub = int(np.argmax(exact))
        est = adaptive_vertex_bc(g, hub, c=2.0, seed=0)
        assert est.converged
        assert est.samples_used < g.num_vertices // 2
        # Within a constant factor (the Bader et al. guarantee).
        assert est.estimate == pytest.approx(exact[hub], rel=0.6)

    def test_zero_bc_vertex(self, star):
        # Leaves never accumulate dependency: runs to the cap, gives 0.
        est = adaptive_vertex_bc(star, 1, c=1.0, max_samples=5, seed=0)
        assert est.samples_used == 5
        assert not est.converged
        assert est.estimate == 0.0

    def test_sample_cap_respected(self, fig1):
        est = adaptive_vertex_bc(fig1, 3, c=1e18, max_samples=3, seed=0)
        assert est.samples_used == 3

    def test_validation(self, fig1):
        with pytest.raises(IndexError):
            adaptive_vertex_bc(fig1, 99)
        with pytest.raises(ValueError):
            adaptive_vertex_bc(fig1, 0, c=0.0)

    def test_deterministic_under_seed(self, fig1):
        a = adaptive_vertex_bc(fig1, 3, c=1.0, seed=7)
        b = adaptive_vertex_bc(fig1, 3, c=1.0, seed=7)
        assert a == b

    def test_unbiased_over_seeds(self, fig1):
        exact = brandes_reference(fig1)[3]
        ests = [adaptive_vertex_bc(fig1, 3, c=1e18, max_samples=4,
                                   seed=s).estimate for s in range(80)]
        assert np.mean(ests) == pytest.approx(exact, rel=0.2)
