"""Unit tests for degree-1 folding: peel mechanics, credits, mapping."""

import numpy as np
import pytest

from repro.bc.accumulation import dependency_accumulation
from repro.bc.brandes import brandes_reference
from repro.bc.frontier import forward_sweep
from repro.bc.preprocess import (
    FoldResult,
    fold_degree_one,
    folded_betweenness_centrality,
    per_root_correction,
)
from repro.graph.build import from_edges

pytestmark = pytest.mark.fold


def path(n):
    return from_edges([(i, i + 1) for i in range(n - 1)])


class TestPeel:
    def test_no_pendants_is_identity(self):
        g = from_edges([(i, (i + 1) % 5) for i in range(5)])  # C5
        fold = fold_degree_one(g)
        assert fold.is_identity
        assert fold.core is g
        assert fold.rounds == 0
        assert np.all(fold.credit == 0)

    def test_directed_is_identity(self):
        g = from_edges([(0, 1), (1, 2)], undirected=False)
        assert fold_degree_one(g).is_identity

    def test_empty_and_single_vertex(self):
        assert fold_degree_one(from_edges([], num_vertices=0)).is_identity
        assert fold_degree_one(from_edges([], num_vertices=1)).is_identity

    def test_path_peels_from_both_ends(self):
        fold = fold_degree_one(path(7))
        assert fold.core.num_vertices == 1
        # 7-path: ends peel inward, 3 rounds to the middle.
        assert fold.rounds == 3
        assert fold.weights[fold.core_vertices[0]] == 7.0

    def test_k2_resolves_higher_into_lower(self):
        fold = fold_degree_one(from_edges([(0, 1)]))
        assert fold.core_vertices.tolist() == [0]
        assert fold.parent[1] == 0
        assert fold.weights[0] == 2.0

    def test_star_folds_to_hub(self):
        fold = fold_degree_one(from_edges([(0, i) for i in range(1, 6)]))
        assert fold.core_vertices.tolist() == [0]
        assert np.all(fold.parent[1:] == 0)
        assert np.all(fold.host == 0)

    def test_self_loop_does_not_block_peel(self):
        # Vertex 1 has a self-loop plus one real edge: still pendant.
        g = from_edges([(0, 1), (1, 1), (0, 2), (2, 3), (3, 0)])
        fold = fold_degree_one(g)
        assert 1 not in fold.core_vertices.tolist()

    def test_isolated_vertices_stay_residual(self):
        g = from_edges([(0, 1), (1, 2)], num_vertices=5)
        fold = fold_degree_one(g)
        assert {3, 4} <= set(fold.core_vertices.tolist())

    def test_pendant_chain_off_cycle(self):
        # C4 with a 3-chain hanging off vertex 0: chain folds, cycle stays.
        g = from_edges([(0, 1), (1, 2), (2, 3), (3, 0),
                        (0, 4), (4, 5), (5, 6)])
        fold = fold_degree_one(g)
        assert sorted(fold.core_vertices.tolist()) == [0, 1, 2, 3]
        assert fold.weights[0] == 4.0  # absorbed the 3-chain
        assert np.all(fold.host[[4, 5, 6]] == 0)


class TestCredits:
    def test_path_credit_closed_form(self):
        """On an n-path every vertex's full BC is closed-form; a path
        folds to one residual vertex so credit alone must carry all
        interior pairs (ordered units; Brandes halves for undirected)."""
        n = 9
        g = path(n)
        fold = fold_degree_one(g)
        expect = brandes_reference(g)
        # Residual traversal contributes nothing (single-vertex core).
        got = fold.credit / 2.0
        assert np.allclose(got, expect)

    def test_star_credit(self):
        g = from_edges([(0, i) for i in range(1, 6)])
        fold = fold_degree_one(g)
        assert np.allclose(fold.credit / 2.0, brandes_reference(g))

    def test_two_components_credit_uses_local_sizes(self):
        """Component size N in the credit formula is per-component, not
        global — a disconnected pair of paths must stay exact."""
        g = from_edges([(0, 1), (1, 2), (3, 4), (4, 5), (5, 6)])
        fold = fold_degree_one(g)
        assert np.allclose(fold.credit / 2.0, brandes_reference(g))


class TestAssembly:
    def _weighted_delta(self, core, cs, tw):
        return dependency_accumulation(core, forward_sweep(core, cs),
                                       target_weights=tw)

    @pytest.mark.parametrize("edges", [
        [(0, 1), (1, 2), (2, 3), (3, 1), (0, 4), (4, 5)],
        [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3), (0, 6)],
    ])
    def test_folded_assembly_matches_brandes(self, edges):
        g = from_edges(edges)
        got = folded_betweenness_centrality(
            fold_degree_one(g), self._weighted_delta) / 2.0
        assert np.allclose(got, brandes_reference(g))

    def test_expand_scatters_and_zeroes(self):
        fold = fold_degree_one(from_edges([(0, 1), (1, 2), (2, 0), (0, 3)]))
        out = fold.expand(np.array([1.0, 2.0, 3.0]))
        assert out.shape == (4,)
        assert out[3] == 0.0
        assert sorted(out[:3].tolist()) == [1.0, 2.0, 3.0]

    def test_per_root_correction_each_root(self):
        g = from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (4, 5),
                        (5, 6), (2, 7)])
        fold = fold_degree_one(g)
        tw = fold.core_weights
        for root in range(g.num_vertices):
            core_root, corr = per_root_correction(fold, root)
            delta = self._weighted_delta(fold.core, core_root, tw)
            got = fold.expand(delta) + corr
            expect = dependency_accumulation(g, forward_sweep(g, root))
            assert np.allclose(got, expect), f"root {root}"

    def test_per_root_correction_rejects_bad_root(self):
        fold = fold_degree_one(path(4))
        with pytest.raises(IndexError):
            per_root_correction(fold, 99)


class TestDigest:
    def test_digest_stable_and_cached(self):
        g = path(6)
        a, b = fold_degree_one(g), fold_degree_one(g)
        assert a.digest() == b.digest()
        assert a.digest() is a.digest()  # memoised

    def test_digest_distinguishes_folds(self):
        assert (fold_degree_one(path(6)).digest()
                != fold_degree_one(path(7)).digest())

    def test_identity_fold_digest_differs_from_peeled(self):
        g_cycle = from_edges([(i, (i + 1) % 6) for i in range(6)])
        assert (fold_degree_one(g_cycle).digest()
                != fold_degree_one(path(6)).digest())
