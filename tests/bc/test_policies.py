"""Unit tests for strategy policies (Algorithms 4 and 5 decision rules)."""

import math

import numpy as np
import pytest

from repro.bc.hybrid import DEFAULT_ALPHA, DEFAULT_BETA, select_strategy
from repro.bc.policies import (
    EDGE_PARALLEL,
    WORK_EFFICIENT,
    FixedPolicy,
    FrontierGuardPolicy,
    HybridPolicy,
)
from repro.bc.sampling import (
    DEFAULT_GAMMA,
    DEFAULT_N_SAMPS,
    choose_edge_parallel,
    sample_roots,
)
from repro.errors import StrategyError


class TestFixedPolicy:
    def test_constant(self):
        p = FixedPolicy(EDGE_PARALLEL)
        assert p.initial() == EDGE_PARALLEL
        assert p.next_strategy(EDGE_PARALLEL, 1, 100000) == EDGE_PARALLEL

    def test_unknown_strategy(self):
        with pytest.raises(StrategyError):
            FixedPolicy("magic")


class TestHybridPolicy:
    def test_paper_defaults(self):
        assert DEFAULT_ALPHA == 768 and DEFAULT_BETA == 512
        p = HybridPolicy()
        assert p.alpha == 768 and p.beta == 512

    def test_starts_work_efficient(self):
        # Section IV-B: a wrong edge-parallel start costs >10x, a wrong
        # work-efficient start only 2.2x, so WE is the default.
        assert HybridPolicy().initial() == WORK_EFFICIENT

    def test_small_change_keeps_strategy(self):
        p = HybridPolicy(alpha=100, beta=50)
        assert p.next_strategy(WORK_EFFICIENT, 10, 60) == WORK_EFFICIENT
        assert p.next_strategy(EDGE_PARALLEL, 1000, 950) == EDGE_PARALLEL

    def test_big_growth_selects_edge_parallel(self):
        p = HybridPolicy(alpha=100, beta=50)
        assert p.next_strategy(WORK_EFFICIENT, 10, 500) == EDGE_PARALLEL

    def test_big_shrink_selects_work_efficient(self):
        p = HybridPolicy(alpha=100, beta=50)
        assert p.next_strategy(EDGE_PARALLEL, 500, 20) == WORK_EFFICIENT

    def test_boundary_change_exactly_alpha(self):
        p = HybridPolicy(alpha=100, beta=50)
        # Q_change <= alpha keeps the strategy (Algorithm 4 line 2).
        assert p.next_strategy(WORK_EFFICIENT, 0, 100) == WORK_EFFICIENT
        assert p.next_strategy(WORK_EFFICIENT, 0, 101) == EDGE_PARALLEL

    def test_boundary_qnext_exactly_beta(self):
        p = HybridPolicy(alpha=0, beta=50)
        # Q_next > beta chooses edge-parallel (strict).
        assert p.next_strategy(WORK_EFFICIENT, 0, 50) == WORK_EFFICIENT
        assert p.next_strategy(WORK_EFFICIENT, 0, 51) == EDGE_PARALLEL

    def test_select_strategy_function_agrees(self):
        p = HybridPolicy()
        for cur in (WORK_EFFICIENT, EDGE_PARALLEL):
            for q, qn in [(0, 2000), (1000, 1010), (5000, 100), (100, 90)]:
                assert p.next_strategy(cur, q, qn) == select_strategy(cur, q, qn)

    def test_negative_params(self):
        with pytest.raises(StrategyError):
            HybridPolicy(alpha=-1)


class TestFrontierGuardPolicy:
    def test_guard(self):
        p = FrontierGuardPolicy(min_frontier=512)
        assert p.initial() == WORK_EFFICIENT
        assert p.next_strategy(WORK_EFFICIENT, 1, 511) == WORK_EFFICIENT
        assert p.next_strategy(WORK_EFFICIENT, 1, 512) == EDGE_PARALLEL
        assert p.next_strategy(EDGE_PARALLEL, 5000, 40) == WORK_EFFICIENT


class TestSamplingDecision:
    def test_paper_defaults(self):
        assert DEFAULT_N_SAMPS == 512
        assert DEFAULT_GAMMA == 4.0

    def test_small_world_chooses_edge_parallel(self):
        # Median depth 6 on a million-vertex graph: 6 < 4*log2(1e6)=80.
        assert choose_edge_parallel([6] * 100, 1_000_000)

    def test_high_diameter_keeps_work_efficient(self):
        # Median depth 864 (rgg_n_2_20): 864 > 80.
        assert not choose_edge_parallel([864] * 100, 1_048_576)

    def test_threshold_exact(self):
        n = 1024  # 4*log2(n) = 40
        assert choose_edge_parallel([39], n)
        assert not choose_edge_parallel([40], n)

    def test_median_is_robust_to_outliers(self):
        # One stuck root should not flip the decision.
        depths = [800] * 50 + [2] * 10
        assert not choose_edge_parallel(depths, 1_048_576)

    def test_upper_median_matches_pseudocode(self):
        # keys[n_samps / 2] after sorting: the upper median for even n.
        assert choose_edge_parallel([1000, 1], 1 << 20) is False
        assert choose_edge_parallel([1, 1000], 1 << 20) is False

    def test_empty_and_tiny(self):
        assert choose_edge_parallel([], 100) is False
        assert choose_edge_parallel([1], 1) is False

    def test_gamma_scaling(self):
        n = 1 << 16
        depth = int(2 * math.log2(n))
        assert choose_edge_parallel([depth], n, gamma=4.0)
        assert not choose_edge_parallel([depth], n, gamma=1.0)


class TestSampleRoots:
    def test_takes_first_k(self):
        out = sample_roots(100, n_samps=5)
        assert out.tolist() == [0, 1, 2, 3, 4]

    def test_respects_given_roots(self):
        out = sample_roots(100, n_samps=2, roots=np.array([7, 3, 9]))
        assert out.tolist() == [7, 3]

    def test_fewer_roots_than_samples(self):
        assert sample_roots(3, n_samps=512).tolist() == [0, 1, 2]
