"""Unit tests for incremental BC updates (insert/delete edge)."""

import numpy as np
import pytest

from repro.bc.api import betweenness_centrality
from repro.bc.dynamic import affected_sources, delete_edge, insert_edge
from repro.errors import GraphStructureError
from repro.graph.build import from_edges
from tests.conftest import random_graph


def _check_insert(g, u, v):
    bc = betweenness_centrality(g)
    g2, bc2, stats = insert_edge(g, bc, u, v)
    full = betweenness_centrality(g2)
    assert np.allclose(bc2, full, rtol=1e-9, atol=1e-9)
    return g2, bc2, stats


def _check_delete(g, u, v):
    bc = betweenness_centrality(g)
    g2, bc2, stats = delete_edge(g, bc, u, v)
    full = betweenness_centrality(g2)
    assert np.allclose(bc2, full, rtol=1e-9, atol=1e-9)
    return g2, bc2, stats


class TestInsert:
    def test_path_shortcut(self, path5):
        # Shortcut 0-4 turns the path into a cycle: interior BC drops.
        g2, bc2, stats = _check_insert(path5, 0, 4)
        assert g2.num_edges == 5
        assert bc2[2] < betweenness_centrality(path5)[2]

    def test_figure1_new_bridge(self, fig1):
        _check_insert(fig1, 1, 8)  # paper vertices 2 and 9

    def test_equidistant_insert_affects_nothing(self, cycle6):
        # 1 and 5 are equidistant from every vertex on an even cycle?
        # Use the star instead: all leaves are equidistant from all
        # other leaves' perspective except themselves.
        g = from_edges([(0, i) for i in range(1, 5)])
        bc = betweenness_centrality(g)
        g2, bc2, stats = insert_edge(g, bc, 1, 2)
        # Leaves 3, 4 and hub 0 see d(s,1) == d(s,2): unaffected.
        assert stats.num_affected == 2  # only s=1 and s=2 themselves
        assert np.allclose(bc2, betweenness_centrality(g2))

    def test_cross_component_insert(self, two_components):
        g2, bc2, stats = _check_insert(two_components, 0, 3)
        # Joining two triangles: every vertex of both is affected.
        assert stats.num_affected >= 6

    def test_isolated_vertex_connection(self, two_components):
        _check_insert(two_components, 6, 0)

    def test_existing_edge_rejected(self, fig1):
        bc = betweenness_centrality(fig1)
        with pytest.raises(GraphStructureError):
            insert_edge(fig1, bc, 0, 1)  # paper edge 1-2 exists

    def test_self_loop_rejected(self, fig1):
        with pytest.raises(GraphStructureError):
            insert_edge(fig1, betweenness_centrality(fig1), 3, 3)

    def test_out_of_range(self, fig1):
        with pytest.raises(IndexError):
            insert_edge(fig1, betweenness_centrality(fig1), 0, 42)

    def test_directed_rejected(self):
        g = from_edges([(0, 1)], undirected=False)
        with pytest.raises(GraphStructureError):
            insert_edge(g, np.zeros(2), 1, 0)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs_exact(self, seed):
        g = random_graph(14, 0.2, seed)
        rng = np.random.default_rng(seed)
        # find a non-edge
        for _ in range(100):
            u, v = rng.integers(0, 14, size=2)
            if u != v and not np.any(g.neighbors(int(u)) == v):
                _check_insert(g, int(u), int(v))
                break


class TestDelete:
    def test_cycle_break(self, cycle6):
        g2, bc2, stats = _check_delete(cycle6, 0, 1)
        # Breaking the cycle leaves a path: interior vertices gain BC.
        assert bc2.max() > betweenness_centrality(cycle6).max()

    def test_figure1_cut_edge(self, fig1):
        _check_delete(fig1, 3, 4)  # paper edge 4-5: disconnects halves

    def test_missing_edge_rejected(self, fig1):
        with pytest.raises(GraphStructureError):
            delete_edge(fig1, betweenness_centrality(fig1), 0, 8)

    def test_roundtrip_insert_then_delete(self, fig1):
        bc = betweenness_centrality(fig1)
        g2, bc2, _ = insert_edge(fig1, bc, 1, 8)
        g3, bc3, _ = delete_edge(g2, bc2, 1, 8)
        assert np.allclose(bc3, bc, rtol=1e-9, atol=1e-9)
        assert g3.num_edges == fig1.num_edges

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs_exact(self, seed):
        g = random_graph(14, 0.25, seed)
        if g.num_edges == 0:
            return
        src = g.edge_sources()
        u, v = int(src[0]), int(g.adj[0])
        _check_delete(g, u, v)


class TestAffectedSources:
    def test_deleted_edge_bounded_by_one_level(self, fig1):
        # Every existing edge satisfies |d(s,u)-d(s,v)| <= 1, so the
        # affected set is exactly the diff==1 roots.
        src = fig1.edge_sources()
        for i in range(0, src.size, 3):
            u, v = int(src[i]), int(fig1.adj[i])
            aff = affected_sources(fig1, u, v)
            from repro.graph.traversal import bfs_distances

            du, dv = bfs_distances(fig1, u), bfs_distances(fig1, v)
            expect = np.flatnonzero(np.abs(du - dv) == 1)
            assert np.array_equal(aff, expect)

    def test_savings_reporting(self, small_road):
        bc = betweenness_centrality(
            small_road, sources=range(small_road.num_vertices)
        )
        # Delete an existing edge: stats expose the filter's saving.
        u = int(small_road.edge_sources()[0])
        v = int(small_road.adj[0])
        _, _, stats = delete_edge(small_road, bc, u, v)
        assert 0.0 <= stats.affected_fraction <= 1.0
        assert stats.savings_fraction == pytest.approx(
            1.0 - stats.affected_fraction
        )
