"""Differential test matrix: every BC implementation against Brandes.

One parametrized grid — (implementation x graph) — is the repo's
single source of value-correctness truth.  Each implementation (the
literal kernels, the vectorised engine, the batched engine, and the
simulated device under every strategy) must reproduce the Brandes
reference exactly on every structural class the generators produce:
meshes, scale-free graphs with isolated vertices, high-diameter roads,
small worlds, communities, router topologies, web crawls, plus the
degenerate cases (single vertex, edgeless, disconnected) and directed
graphs.

Per-module test files keep their *behavioural* tests (traces, cost
charging, error paths, batching fallbacks); their scattered
value-equivalence checks were folded into this matrix.

The matrix runs twice: once with the degree-1 folding preprocess
disabled (the raw kernels against Brandes) and once folded (every
implementation traverses the reduced core, and the expanded result must
match the unfolded Brandes oracle to 1e-9) — including the directed and
disconnected cases, where the fold is the identity and must change
nothing.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.bc.api import betweenness_centrality
from repro.bc.batched import batched_betweenness_centrality
from repro.bc.brandes import brandes_reference
from repro.bc.edge_parallel import bc_edge_parallel, edge_parallel_root
from repro.bc.preprocess import fold_degree_one, folded_betweenness_centrality
from repro.bc.vertex_parallel import bc_vertex_parallel, vertex_parallel_root
from repro.bc.work_efficient import bc_work_efficient, work_efficient_root
from repro.graph.build import from_edges
from repro.graph.generators import (
    community_graph,
    copying_web_graph,
    delaunay_graph,
    figure1_graph,
    kronecker_graph,
    random_geometric_graph,
    road_network,
    router_topology,
    watts_strogatz,
)
from repro.gpusim import Device


def _device_bc(strategy, fold=False):
    def run(g):
        # check_memory off: gpu-fan's O(n^2) predecessor matrix is a
        # capacity question (Figure 5), not a correctness one.
        return Device().run_bc(g, strategy=strategy, check_memory=False,
                               fold=fold).bc

    run.__name__ = f"device_{strategy}"
    return run


def _dynamic_bc(g):
    """Exercise ``bc/dynamic.py``: round-trip an edge update (delete
    then reinsert, or insert then delete on edgeless graphs) starting
    from the exact BC vector.  The incremental affected-roots updates
    must land back exactly on the full-Brandes values."""
    from repro.bc import dynamic

    if not g.undirected:
        pytest.skip("bc/dynamic updates are undirected-only")
    bc = betweenness_centrality(g)
    if g.num_vertices < 2:
        return bc
    src = g.edge_sources()
    if src.size:
        u, v = int(src[0]), int(g.adj[0])
        g1, bc1, _ = dynamic.delete_edge(g, bc, u, v)
        _, bc2, _ = dynamic.insert_edge(g1, bc1, u, v)
        return bc2
    g1, bc1, _ = dynamic.insert_edge(g, bc, 0, 1)
    _, bc2, _ = dynamic.delete_edge(g1, bc1, 0, 1)
    return bc2


def _folded_literal(forward):
    """Folded variant of a literal kernel: the kernel's own forward
    sweep on the reduced core, followed by the weighted accumulation of
    :mod:`repro.bc.preprocess` (endpoint term ``w[v] + delta`` instead
    of ``1 + delta``), expanded back to original vertex ids."""

    def dependencies(core, cs, tw):
        d, sigma = forward(core, cs)
        n = core.num_vertices
        delta = np.zeros(n, dtype=np.float64)
        reached = (d >= 0) & (d < n)
        if reached.sum() > 1:
            for dep in range(int(d[reached].max()) - 1, 0, -1):
                for w in np.flatnonzero(d == dep):
                    w = int(w)
                    acc = 0.0
                    for v in core.adj[core.indptr[w]:core.indptr[w + 1]]:
                        v = int(v)
                        if d[v] == dep + 1:
                            acc += sigma[w] / sigma[v] * (tw[v] + delta[v])
                    delta[w] = acc
        return delta

    def run(g):
        bc = folded_betweenness_centrality(fold_degree_one(g), dependencies)
        if g.undirected:
            bc /= 2.0
        return bc

    return run


def _we_forward(core, cs):
    state = work_efficient_root(core, cs)
    return state.d, state.sigma


def _ep_forward(core, cs):
    d, sigma, _, _ = edge_parallel_root(core, cs)
    return d, sigma


def _vp_forward(core, cs):
    d, sigma, _, _ = vertex_parallel_root(core, cs)
    return d, sigma


#: Implementation under test -> callable(graph) -> BC vector (folding
#: explicitly off: this half of the matrix is the raw kernels).
ALGORITHMS = {
    "engine": lambda g: betweenness_centrality(g, fold=False),
    "work_efficient": bc_work_efficient,
    "edge_parallel": bc_edge_parallel,
    "vertex_parallel": bc_vertex_parallel,
    "batched": lambda g: batched_betweenness_centrality(g, fold=False),
    "device_work_efficient": _device_bc("work-efficient"),
    "device_edge_parallel": _device_bc("edge-parallel"),
    "device_vertex_parallel": _device_bc("vertex-parallel"),
    "device_gpu_fan": _device_bc("gpu-fan"),
    "device_hybrid": _device_bc("hybrid"),
    "device_sampling": _device_bc("sampling"),
    "device_batched": _device_bc("batched"),
    "dynamic": _dynamic_bc,
}

#: Folded variant of every implementation: traverse the degree-1 core,
#: expand, and the values must still equal the unfolded Brandes oracle.
FOLDED_ALGORITHMS = {
    "engine": lambda g: betweenness_centrality(g, fold=True),
    "work_efficient": _folded_literal(_we_forward),
    "edge_parallel": _folded_literal(_ep_forward),
    "vertex_parallel": _folded_literal(_vp_forward),
    "batched": lambda g: batched_betweenness_centrality(g, fold=True),
    "device_work_efficient": _device_bc("work-efficient", fold=True),
    "device_edge_parallel": _device_bc("edge-parallel", fold=True),
    "device_vertex_parallel": _device_bc("vertex-parallel", fold=True),
    "device_gpu_fan": _device_bc("gpu-fan", fold=True),
    "device_hybrid": _device_bc("hybrid", fold=True),
    "device_sampling": _device_bc("sampling", fold=True),
    "device_batched": _device_bc("batched", fold=True),
    "dynamic": _dynamic_bc,  # starts from the folded-by-default engine
}

#: Graph case -> zero-arg builder.  One representative per generator
#: class, sized so the full matrix stays fast, plus the degenerate and
#: directed cases the per-module tests used to cover piecemeal.
GRAPHS = {
    "fig1": figure1_graph,
    "path5": lambda: from_edges([(0, 1), (1, 2), (2, 3), (3, 4)]),
    "star7": lambda: from_edges([(0, i) for i in range(1, 7)]),
    "cycle6": lambda: from_edges([(i, (i + 1) % 6) for i in range(6)]),
    "two_components": lambda: from_edges(
        [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)], num_vertices=7),
    "single_vertex": lambda: from_edges([], num_vertices=1),
    "edgeless4": lambda: from_edges([], num_vertices=4),
    "directed_dag": lambda: from_edges(
        [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (1, 4)], undirected=False),
    "directed_cycles": lambda: from_edges(
        [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (1, 4)],
        undirected=False),
    "delaunay": lambda: delaunay_graph(60, seed=7),
    "kron": lambda: kronecker_graph(5, edge_factor=8, seed=5),
    "road": lambda: road_network(80, seed=11),
    "smallworld": lambda: watts_strogatz(64, k=6, p=0.1, seed=3),
    "community": lambda: community_graph(60, mean_community=15, seed=2),
    "router": lambda: router_topology(60, attach=3, seed=4),
    "rgg": lambda: random_geometric_graph(64, avg_degree=6.0, seed=13),
    "web": lambda: copying_web_graph(64, out_degree=4, seed=9),
    # Pendant-heavy fixtures: the degree-1 fold's best cases, where the
    # peel removes most (or all but one) of the graph.
    "pendant_star": lambda: from_edges([(0, i) for i in range(1, 41)]),
    "caterpillar": lambda: from_edges(
        [(i, i + 1) for i in range(9)]
        + [(i, 10 + 2 * i + j) for i in range(10) for j in range(2)]),
    "broom": lambda: from_edges(
        [(i, i + 1) for i in range(9)] + [(9, 10 + j) for j in range(15)]),
    "tree_of_cliques": lambda: from_edges(
        # three K4 cliques joined in a tree, with pendant chains/leaves
        [(a, b) for base in (0, 4, 8)
         for a in range(base, base + 4)
         for b in range(a + 1, base + 4)]
        + [(3, 4), (7, 8)]
        + [(11, 12), (12, 13), (0, 14), (5, 15)]),
}


@functools.lru_cache(maxsize=None)
def _case(name):
    """Build each graph (and its Brandes oracle) once for the matrix."""
    g = GRAPHS[name]()
    return g, brandes_reference(g)


@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_matches_brandes(algo, graph_name):
    g, expect = _case(graph_name)
    got = ALGORITHMS[algo](g)
    assert got.shape == expect.shape
    assert np.allclose(got, expect), (
        f"{algo} diverges from Brandes on {graph_name}: "
        f"max |err| = {np.max(np.abs(got - expect)):.3e}"
    )


@pytest.mark.fold
@pytest.mark.parametrize("algo", sorted(FOLDED_ALGORITHMS))
@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_folded_matches_unfolded_brandes(algo, graph_name):
    """The exactness matrix of the degree-1 preprocess: every
    implementation, run folded, must reproduce the *unfolded* Brandes
    values to 1e-9 on every structural class — including directed and
    disconnected graphs, where the fold is the identity."""
    g, expect = _case(graph_name)
    got = FOLDED_ALGORITHMS[algo](g)
    assert got.shape == expect.shape
    err = float(np.max(np.abs(got - expect))) if got.size else 0.0
    assert err <= 1e-9, (
        f"folded {algo} diverges from Brandes on {graph_name}: "
        f"max |err| = {err:.3e}"
    )


@pytest.mark.fold
def test_pendant_fixtures_actually_fold():
    """The new fixtures must exercise deep peels, not identity folds."""
    for name, expect_core in [("pendant_star", 1), ("caterpillar", 1),
                              ("broom", 1), ("tree_of_cliques", 12)]:
        g, _ = _case(name)
        fold = fold_degree_one(g)
        assert fold.core.num_vertices == expect_core, name
    for name in ("directed_dag", "directed_cycles"):
        g, _ = _case(name)
        assert fold_degree_one(g).is_identity, name


def test_kron_case_has_isolated_vertices():
    """The matrix must keep exercising the Section V-B failure mode."""
    g, _ = _case("kron")
    assert g.isolated_vertices().size > 0


def test_matrix_covers_disconnected_and_directed():
    assert _case("two_components")[0].num_vertices == 7
    assert not _case("directed_dag")[0].undirected
