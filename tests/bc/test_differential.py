"""Differential test matrix: every BC implementation against Brandes.

One parametrized grid — (implementation x graph) — is the repo's
single source of value-correctness truth.  Each implementation (the
literal kernels, the vectorised engine, the batched engine, and the
simulated device under every strategy) must reproduce the Brandes
reference exactly on every structural class the generators produce:
meshes, scale-free graphs with isolated vertices, high-diameter roads,
small worlds, communities, router topologies, web crawls, plus the
degenerate cases (single vertex, edgeless, disconnected) and directed
graphs.

Per-module test files keep their *behavioural* tests (traces, cost
charging, error paths, batching fallbacks); their scattered
value-equivalence checks were folded into this matrix.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest

from repro.bc.api import betweenness_centrality
from repro.bc.batched import batched_betweenness_centrality
from repro.bc.brandes import brandes_reference
from repro.bc.edge_parallel import bc_edge_parallel
from repro.bc.vertex_parallel import bc_vertex_parallel
from repro.bc.work_efficient import bc_work_efficient
from repro.graph.build import from_edges
from repro.graph.generators import (
    community_graph,
    copying_web_graph,
    delaunay_graph,
    figure1_graph,
    kronecker_graph,
    random_geometric_graph,
    road_network,
    router_topology,
    watts_strogatz,
)
from repro.gpusim import Device


def _device_bc(strategy):
    def run(g):
        # check_memory off: gpu-fan's O(n^2) predecessor matrix is a
        # capacity question (Figure 5), not a correctness one.
        return Device().run_bc(g, strategy=strategy, check_memory=False).bc

    run.__name__ = f"device_{strategy}"
    return run


def _dynamic_bc(g):
    """Exercise ``bc/dynamic.py``: round-trip an edge update (delete
    then reinsert, or insert then delete on edgeless graphs) starting
    from the exact BC vector.  The incremental affected-roots updates
    must land back exactly on the full-Brandes values."""
    from repro.bc import dynamic

    if not g.undirected:
        pytest.skip("bc/dynamic updates are undirected-only")
    bc = betweenness_centrality(g)
    if g.num_vertices < 2:
        return bc
    src = g.edge_sources()
    if src.size:
        u, v = int(src[0]), int(g.adj[0])
        g1, bc1, _ = dynamic.delete_edge(g, bc, u, v)
        _, bc2, _ = dynamic.insert_edge(g1, bc1, u, v)
        return bc2
    g1, bc1, _ = dynamic.insert_edge(g, bc, 0, 1)
    _, bc2, _ = dynamic.delete_edge(g1, bc1, 0, 1)
    return bc2


#: Implementation under test -> callable(graph) -> BC vector.
ALGORITHMS = {
    "engine": betweenness_centrality,
    "work_efficient": bc_work_efficient,
    "edge_parallel": bc_edge_parallel,
    "vertex_parallel": bc_vertex_parallel,
    "batched": batched_betweenness_centrality,
    "device_work_efficient": _device_bc("work-efficient"),
    "device_edge_parallel": _device_bc("edge-parallel"),
    "device_vertex_parallel": _device_bc("vertex-parallel"),
    "device_gpu_fan": _device_bc("gpu-fan"),
    "device_hybrid": _device_bc("hybrid"),
    "device_sampling": _device_bc("sampling"),
    "dynamic": _dynamic_bc,
}

#: Graph case -> zero-arg builder.  One representative per generator
#: class, sized so the full matrix stays fast, plus the degenerate and
#: directed cases the per-module tests used to cover piecemeal.
GRAPHS = {
    "fig1": figure1_graph,
    "path5": lambda: from_edges([(0, 1), (1, 2), (2, 3), (3, 4)]),
    "star7": lambda: from_edges([(0, i) for i in range(1, 7)]),
    "cycle6": lambda: from_edges([(i, (i + 1) % 6) for i in range(6)]),
    "two_components": lambda: from_edges(
        [(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)], num_vertices=7),
    "single_vertex": lambda: from_edges([], num_vertices=1),
    "edgeless4": lambda: from_edges([], num_vertices=4),
    "directed_dag": lambda: from_edges(
        [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (1, 4)], undirected=False),
    "directed_cycles": lambda: from_edges(
        [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2), (1, 4)],
        undirected=False),
    "delaunay": lambda: delaunay_graph(60, seed=7),
    "kron": lambda: kronecker_graph(5, edge_factor=8, seed=5),
    "road": lambda: road_network(80, seed=11),
    "smallworld": lambda: watts_strogatz(64, k=6, p=0.1, seed=3),
    "community": lambda: community_graph(60, mean_community=15, seed=2),
    "router": lambda: router_topology(60, attach=3, seed=4),
    "rgg": lambda: random_geometric_graph(64, avg_degree=6.0, seed=13),
    "web": lambda: copying_web_graph(64, out_degree=4, seed=9),
}


@functools.lru_cache(maxsize=None)
def _case(name):
    """Build each graph (and its Brandes oracle) once for the matrix."""
    g = GRAPHS[name]()
    return g, brandes_reference(g)


@pytest.mark.parametrize("algo", sorted(ALGORITHMS))
@pytest.mark.parametrize("graph_name", sorted(GRAPHS))
def test_matches_brandes(algo, graph_name):
    g, expect = _case(graph_name)
    got = ALGORITHMS[algo](g)
    assert got.shape == expect.shape
    assert np.allclose(got, expect), (
        f"{algo} diverges from Brandes on {graph_name}: "
        f"max |err| = {np.max(np.abs(got - expect)):.3e}"
    )


def test_kron_case_has_isolated_vertices():
    """The matrix must keep exercising the Section V-B failure mode."""
    g, _ = _case("kron")
    assert g.isolated_vertices().size > 0


def test_matrix_covers_disconnected_and_directed():
    assert _case("two_components")[0].num_vertices == 7
    assert not _case("directed_dag")[0].undirected
