"""Unit tests for the dependency accumulation (Stage 2)."""

import numpy as np
import pytest

from repro.bc.accumulation import accumulate_level, dependency_accumulation
from repro.bc.frontier import forward_sweep
from repro.graph.build import from_edges


class TestDependencyAccumulation:
    def test_matches_brandes_dependencies(self, fig1):
        # delta_s(v) from Eq. 2, cross-checked against a hand-rolled
        # predecessor-based Brandes accumulation.
        from collections import deque

        for s in range(9):
            fwd = forward_sweep(fig1, s)
            got = dependency_accumulation(fig1, fwd)

            d, sigma = fwd.distances, fwd.sigma
            order = [v for lv in fwd.levels for v in lv.tolist()]
            delta = np.zeros(9)
            for w in reversed(order):
                for v in fig1.neighbors(w):
                    if d[v] == d[w] - 1:
                        delta[v] += sigma[v] / sigma[w] * (1 + delta[w])
            delta[s] = 0.0
            assert np.allclose(got, delta)

    def test_root_has_zero_delta(self, small_sw):
        fwd = forward_sweep(small_sw, 5)
        delta = dependency_accumulation(small_sw, fwd)
        assert delta[5] == 0.0

    def test_deepest_level_zero(self, path5):
        fwd = forward_sweep(path5, 0)
        delta = dependency_accumulation(path5, fwd)
        assert delta[4] == 0.0  # leaf at max depth has no successors

    def test_unreachable_zero(self, two_components):
        fwd = forward_sweep(two_components, 0)
        delta = dependency_accumulation(two_components, fwd)
        assert np.all(delta[[3, 4, 5, 6]] == 0.0)

    def test_on_level_order_is_deepest_first(self, path5):
        fwd = forward_sweep(path5, 0)
        seen = []
        dependency_accumulation(path5, fwd,
                                on_level=lambda d, lv: seen.append(d))
        assert seen == [3, 2, 1]

    def test_single_vertex_graph(self):
        g = from_edges([], num_vertices=1)
        fwd = forward_sweep(g, 0)
        delta = dependency_accumulation(g, fwd)
        assert delta.tolist() == [0.0]


class TestAccumulateLevel:
    def test_empty_level_noop(self, fig1):
        fwd = forward_sweep(fig1, 0)
        delta = np.zeros(9)
        accumulate_level(fig1, np.empty(0, dtype=np.int64), fwd.distances,
                         fwd.sigma, delta)
        assert np.all(delta == 0)

    def test_level_without_successors_untouched(self, path5):
        fwd = forward_sweep(path5, 0)
        delta = np.full(5, -1.0)
        accumulate_level(path5, np.array([4]), fwd.distances, fwd.sigma, delta)
        assert delta[4] == -1.0  # no successors => no write

    def test_sigma_ratio_scale(self, path5):
        fwd = forward_sweep(path5, 0)
        base = np.zeros(5)
        accumulate_level(path5, np.array([3]), fwd.distances, fwd.sigma, base)
        scaled = np.zeros(5)
        accumulate_level(path5, np.array([3]), fwd.distances, fwd.sigma,
                         scaled, sigma_ratio_scale=0.5)
        assert scaled[3] == pytest.approx(base[3] * 0.5)
