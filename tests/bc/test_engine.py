"""Unit tests for the per-root engine (values + cost charging + traces)."""

import numpy as np
import pytest

from repro.bc.brandes import brandes_reference
from repro.bc.engine import run_root
from repro.bc.policies import (
    EDGE_PARALLEL,
    GPU_FAN,
    VERTEX_PARALLEL,
    WORK_EFFICIENT,
    FixedPolicy,
    FrontierGuardPolicy,
    HybridPolicy,
)
from repro.errors import StrategyError
from repro.gpusim.cost import CostModel

COSTS = CostModel()
CHUNK = 256


def full_bc(g, policy_factory, **kw):
    bc = np.zeros(g.num_vertices)
    traces = []
    for s in range(g.num_vertices):
        traces.append(run_root(g, s, bc, policy_factory(), COSTS, CHUNK, **kw))
    if g.undirected:
        bc /= 2.0
    return bc, traces


class TestValues:
    # Fixed/hybrid policy value equivalence is covered per device
    # strategy in tests/bc/test_differential.py; only policies the
    # matrix does not drive (frontier guard, raw gpu-fan) stay here.
    def test_guard_matches_reference(self, fig1):
        bc, _ = full_bc(fig1, lambda: FrontierGuardPolicy(min_frontier=2))
        assert np.allclose(bc, brandes_reference(fig1))

    def test_gpu_fan_needs_device_chunk(self, fig1):
        bc = np.zeros(9)
        with pytest.raises(StrategyError):
            run_root(fig1, 0, bc, FixedPolicy(GPU_FAN), COSTS, CHUNK)

    def test_gpu_fan_values(self, fig1):
        bc, _ = full_bc(fig1, lambda: FixedPolicy(GPU_FAN), device_chunk=1024)
        assert np.allclose(bc, brandes_reference(fig1))


class TestTraces:
    def test_forward_levels_match_bfs(self, fig1):
        bc = np.zeros(9)
        tr = run_root(fig1, 3, bc, FixedPolicy(WORK_EFFICIENT), COSTS, CHUNK)
        sizes = tr.vertex_frontier_sizes()
        # root; neighbours {1,3,5,6}; then {2,7}; then {8,9} (paper labels).
        assert sizes.tolist() == [1, 4, 2, 2]
        assert tr.max_depth == 3

    def test_edge_frontier_sums_degrees(self, star):
        bc = np.zeros(7)
        tr = run_root(star, 1, bc, FixedPolicy(WORK_EFFICIENT), COSTS, CHUNK)
        assert tr.edge_frontier_sizes().tolist() == [1, 6, 5]

    def test_backward_levels_skip_deepest_and_root(self, path5):
        bc = np.zeros(5)
        tr = run_root(path5, 0, bc, FixedPolicy(WORK_EFFICIENT), COSTS, CHUNK)
        back = [lv.depth for lv in tr.levels if lv.stage == "backward"]
        assert back == [3, 2, 1]

    def test_cycles_positive_and_total(self, fig1):
        bc = np.zeros(9)
        tr = run_root(fig1, 0, bc, FixedPolicy(WORK_EFFICIENT), COSTS, CHUNK)
        assert all(lv.cycles > 0 for lv in tr.levels)
        assert tr.cycles == pytest.approx(sum(lv.cycles for lv in tr.levels))

    def test_strategy_recorded_per_level(self, small_sw):
        bc = np.zeros(small_sw.num_vertices)
        tr = run_root(small_sw, 0, bc, FrontierGuardPolicy(min_frontier=10),
                      COSTS, CHUNK)
        fwd = tr.forward_levels()
        for prev, lv in zip(fwd, fwd[1:]):
            expect = (EDGE_PARALLEL if lv.frontier_size >= 10
                      else WORK_EFFICIENT)
            assert lv.strategy == expect

    def test_backward_reuses_forward_strategy(self, small_sw):
        bc = np.zeros(small_sw.num_vertices)
        tr = run_root(small_sw, 0, bc, HybridPolicy(alpha=2, beta=10),
                      COSTS, CHUNK)
        by_depth = {lv.depth: lv.strategy for lv in tr.levels
                    if lv.stage == "forward"}
        for lv in tr.levels:
            if lv.stage == "backward":
                assert lv.strategy == by_depth[lv.depth]

    def test_strategies_used_order(self, small_sw):
        bc = np.zeros(small_sw.num_vertices)
        tr = run_root(small_sw, 0, bc, HybridPolicy(alpha=2, beta=10),
                      COSTS, CHUNK)
        used = tr.strategies_used()
        assert used[0] == WORK_EFFICIENT  # hybrid always starts WE
        assert set(used) <= {WORK_EFFICIENT, EDGE_PARALLEL}


class TestCostCharging:
    def test_edge_parallel_charges_all_edges_every_level(self, path5):
        """The O(n^2+m) signature: EP cost per level is ~constant in the
        frontier, WE cost tracks the frontier."""
        bc = np.zeros(5)
        tr = run_root(path5, 0, bc, FixedPolicy(EDGE_PARALLEL), COSTS, CHUNK)
        fwd_cycles = tr.forward_cycles()
        assert np.allclose(fwd_cycles, fwd_cycles[0], rtol=0.2)

    def test_edge_parallel_pays_per_level(self, path5, star):
        """Same edge work, different depth: EP's cost is proportional
        to the level count (the O(n^2 + m) traversal), so the 5-level
        path costs far more than the 2-level star per edge."""
        bc1 = np.zeros(5)
        path_tr = run_root(path5, 0, bc1, FixedPolicy(EDGE_PARALLEL),
                           COSTS, CHUNK)
        bc2 = np.zeros(7)
        star_tr = run_root(star, 0, bc2, FixedPolicy(EDGE_PARALLEL),
                           COSTS, CHUNK)
        path_levels = len(path_tr.levels)
        star_levels = len(star_tr.levels)
        assert path_levels > 2 * star_levels
        assert path_tr.cycles > 2 * star_tr.cycles

    def test_vertex_parallel_pays_vertex_checks(self):
        """Vertex-parallel scans all n vertices every level; on a
        high-diameter graph with tiny frontiers that dwarfs the
        work-efficient cost once n is far above the chunk width."""
        from repro.graph.generators import road_network

        g = road_network(20_000, seed=1)
        n = g.num_vertices
        bc1 = np.zeros(n)
        vp = run_root(g, 0, bc1, FixedPolicy(VERTEX_PARALLEL), COSTS, CHUNK)
        bc2 = np.zeros(n)
        we = run_root(g, 0, bc2, FixedPolicy(WORK_EFFICIENT), COSTS, CHUNK)
        assert vp.cycles > 2 * we.cycles
