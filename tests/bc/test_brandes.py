"""Unit tests for the serial Brandes reference."""

import numpy as np
import pytest

from repro.bc.brandes import brandes_reference, brandes_single_source, normalize_bc
from repro.graph.build import from_edges, to_networkx


def nx_bc(g, normalized=False):
    import networkx as nx

    d = nx.betweenness_centrality(to_networkx(g), normalized=normalized)
    return np.array([d[i] for i in range(g.num_vertices)])


class TestSingleSource:
    def test_path_counts(self, cycle6):
        d, sigma, order = brandes_single_source(cycle6, 0)
        assert d.tolist() == [0, 1, 2, 3, 2, 1]
        # Opposite vertex has two shortest paths.
        assert sigma[3] == 2.0
        assert sigma[1] == sigma[5] == 1.0

    def test_order_nondecreasing_distance(self, fig1):
        d, _, order = brandes_single_source(fig1, 0)
        dist_seq = [d[v] for v in order]
        assert dist_seq == sorted(dist_seq)

    def test_unreachable(self, two_components):
        d, sigma, order = brandes_single_source(two_components, 0)
        assert d[4] == -1 and sigma[4] == 0.0
        assert len(order) == 3


class TestReference:
    def test_figure1_matches_paper_claims(self, fig1):
        bc = brandes_reference(fig1)
        # Vertex 4 (index 3) is the cut vertex with the highest score.
        assert np.argmax(bc) == 3
        # Vertices 8 and 9 (indices 7, 8) score zero.
        assert bc[7] == pytest.approx(0.0)
        assert bc[8] == pytest.approx(0.0)

    def test_path_graph_closed_form(self, path5):
        # Interior vertex i of an n-path: i*(n-1-i) pairs pass through.
        bc = brandes_reference(path5)
        assert bc.tolist() == [0.0, 3.0, 4.0, 3.0, 0.0]

    def test_star_closed_form(self, star):
        bc = brandes_reference(star)
        assert bc[0] == pytest.approx(6 * 5 / 2)
        assert np.all(bc[1:] == 0)

    def test_matches_networkx(self, fig1, cycle6, two_components, small_sw):
        for g in (fig1, cycle6, two_components):
            assert np.allclose(brandes_reference(g), nx_bc(g))

    def test_matches_networkx_random(self):
        from tests.conftest import random_graph

        for seed in range(4):
            g = random_graph(25, 0.15, seed)
            assert np.allclose(brandes_reference(g), nx_bc(g))

    def test_subset_sources(self, fig1):
        full = brandes_reference(fig1)
        parts = sum(
            (brandes_reference(fig1, sources=[s]) for s in range(9)),
            np.zeros(9),
        )
        assert np.allclose(full, parts)

    def test_normalized_matches_networkx(self, fig1):
        assert np.allclose(
            brandes_reference(fig1, normalized=True), nx_bc(fig1, normalized=True)
        )

    def test_directed(self):
        import networkx as nx

        g = from_edges([(0, 1), (1, 2), (2, 0), (1, 3)], undirected=False)
        d = nx.betweenness_centrality(to_networkx(g), normalized=False)
        expect = np.array([d[i] for i in range(4)])
        assert np.allclose(brandes_reference(g), expect)


class TestNormalize:
    def test_small_n_zero(self):
        assert np.all(normalize_bc(np.array([1.0, 2.0]), 2) == 0)

    def test_scale_undirected(self):
        out = normalize_bc(np.array([6.0]), 4, undirected=True)
        assert out[0] == pytest.approx(6.0 / 3.0)

    def test_scale_directed(self):
        out = normalize_bc(np.array([6.0]), 4, undirected=False)
        assert out[0] == pytest.approx(1.0)

    def test_copy_semantics(self):
        x = np.array([3.0])
        out = normalize_bc(x, 5, copy=True)
        assert x[0] == 3.0 and out[0] != 3.0
