"""Unit tests for the public BC API and the approximation."""

import numpy as np
import pytest

from repro.bc.api import bc_single_source_dependencies, betweenness_centrality
from repro.bc.approx import approximate_bc, sample_sources
from repro.bc.brandes import brandes_reference
from repro.graph.build import from_edges
from tests.conftest import random_graph


class TestBetweennessCentrality:
    # Engine-vs-Brandes value equivalence across the full graph suite
    # lives in tests/bc/test_differential.py.
    def test_matches_networkx_random(self):
        import networkx as nx

        from repro.graph.build import to_networkx

        for seed in range(3):
            g = random_graph(30, 0.12, seed)
            d = nx.betweenness_centrality(to_networkx(g), normalized=False)
            expect = np.array([d[i] for i in range(30)])
            assert np.allclose(betweenness_centrality(g), expect)

    def test_normalized(self, fig1):
        raw = betweenness_centrality(fig1)
        norm = betweenness_centrality(fig1, normalized=True)
        scale = (9 - 1) * (9 - 2) / 2
        assert np.allclose(norm, raw / scale)

    def test_sources_subset_sums(self, fig1):
        full = betweenness_centrality(fig1)
        half1 = betweenness_centrality(fig1, sources=range(0, 5))
        half2 = betweenness_centrality(fig1, sources=range(5, 9))
        assert np.allclose(full, half1 + half2)

    def test_empty_graph(self):
        g = from_edges([], num_vertices=0)
        assert betweenness_centrality(g).size == 0

    def test_edgeless_graph(self):
        g = from_edges([], num_vertices=4)
        assert np.all(betweenness_centrality(g) == 0)

    def test_directed(self):
        g = from_edges([(0, 1), (1, 2)], undirected=False)
        bc = betweenness_centrality(g)
        assert bc.tolist() == [0.0, 1.0, 0.0]

    def test_single_source_dependencies(self, fig1):
        delta = bc_single_source_dependencies(fig1, 3)
        assert delta[3] == 0.0
        total = sum(bc_single_source_dependencies(fig1, s) for s in range(9))
        assert np.allclose(total / 2.0, brandes_reference(fig1))


class TestApproximateBC:
    def test_exact_when_all_sources(self, fig1):
        est = approximate_bc(fig1, k=9, seed=0)
        assert np.allclose(est, brandes_reference(fig1))

    def test_unbiased_over_many_seeds(self, fig1):
        exact = brandes_reference(fig1)
        ests = [approximate_bc(fig1, k=4, seed=s) for s in range(60)]
        mean = np.mean(ests, axis=0)
        # The estimator is unbiased; 60 draws gets close.
        assert np.allclose(mean, exact, atol=0.12 * (exact.max() + 1))

    def test_zero_samples(self, fig1):
        assert np.all(approximate_bc(fig1, k=0) == 0)

    def test_k_capped_at_n(self, fig1):
        est = approximate_bc(fig1, k=1000, seed=1)
        assert np.allclose(est, brandes_reference(fig1))

    def test_ranking_preserved_on_clear_structure(self, fig1):
        est = approximate_bc(fig1, k=6, seed=2)
        assert np.argmax(est) == 3  # the cut vertex stays on top


class TestSampleSources:
    def test_distinct(self, small_sw):
        s = sample_sources(small_sw, 20, seed=0)
        assert np.unique(s).size == 20

    def test_degree_biased_prefers_hubs(self, star):
        picks = [sample_sources(star, 1, seed=s, method="degree")[0]
                 for s in range(40)]
        assert picks.count(0) > 10  # the hub carries 6/12 of the weight

    def test_unknown_method(self, star):
        with pytest.raises(ValueError):
            sample_sources(star, 1, method="magic")

    def test_negative_k(self, star):
        with pytest.raises(ValueError):
            sample_sources(star, -1)
