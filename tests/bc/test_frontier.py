"""Unit tests for the vectorised forward sweep (Stage 1)."""

import numpy as np
import pytest

from repro.bc.brandes import brandes_single_source
from repro.bc.frontier import SIGMA_RESCALE_LIMIT, forward_sweep
from repro.graph.build import from_edges


class TestForwardSweep:
    def test_matches_serial_reference(self, fig1, cycle6, small_sw):
        for g in (fig1, cycle6, small_sw):
            for s in (0, g.num_vertices // 2):
                fwd = forward_sweep(g, s)
                d, sigma, _ = brandes_single_source(g, s)
                assert np.array_equal(fwd.distances, d)
                assert np.allclose(fwd.sigma, sigma)

    def test_levels_are_s_array_segments(self, fig1):
        fwd = forward_sweep(fig1, 3)
        ends = fwd.ends()
        s_arr = fwd.s_array()
        # ends is CSR-like over S: segment i holds the depth-i vertices.
        assert ends[0] == 0 and ends[-1] == s_arr.size
        for depth, lv in enumerate(fwd.levels):
            seg = s_arr[ends[depth]:ends[depth + 1]]
            assert sorted(seg.tolist()) == sorted(lv.tolist())

    def test_ends_len_invariant(self, fig1, path5):
        # Algorithm 1 invariant: ends_len == max depth + 2.
        for g, s in ((fig1, 0), (path5, 0)):
            fwd = forward_sweep(g, s)
            assert fwd.ends().size == fwd.max_depth + 2

    def test_isolated_root(self, two_components):
        fwd = forward_sweep(two_components, 6)
        assert fwd.max_depth == 0
        assert fwd.sigma[6] == 1.0
        assert np.all(fwd.sigma[np.arange(6)] == 0)

    def test_source_out_of_range(self, fig1):
        with pytest.raises(IndexError):
            forward_sweep(fig1, 100)

    def test_on_level_callback_sequence(self, path5):
        calls = []
        forward_sweep(path5, 0,
                      on_level=lambda d, f, q: calls.append((d, f.size, q)))
        # 5 levels; the last sees an empty next queue.
        assert calls == [(0, 1, 1), (1, 1, 1), (2, 1, 1), (3, 1, 1), (4, 1, 0)]

    def test_sigma_counts_parallel_paths(self):
        # Diamond: 0-1, 0-2, 1-3, 2-3: two shortest paths 0->3.
        g = from_edges([(0, 1), (0, 2), (1, 3), (2, 3)])
        fwd = forward_sweep(g, 0)
        assert fwd.sigma.tolist() == [1, 1, 1, 2]

    def test_level_scales_default_one(self, fig1):
        fwd = forward_sweep(fig1, 0)
        assert np.all(fwd.level_scales == 1.0)
        assert fwd.level_scales.size == len(fwd.levels)


class TestSigmaRescaling:
    def _wide_path(self, segments: int, width: int = 4):
        """Chain of complete bipartite blocks: sigma multiplies by
        ``width`` per segment -> forces rescaling for enough segments."""
        edges = []
        prev = [0]
        nxt = 1
        for _ in range(segments):
            layer = list(range(nxt, nxt + width))
            nxt += width
            edges.extend((p, q) for p in prev for q in layer)
            prev = layer
        return from_edges(edges)

    def test_no_rescale_small(self):
        g = self._wide_path(10)
        fwd = forward_sweep(g, 0)
        assert np.all(fwd.level_scales == 1.0)
        assert fwd.sigma.max() == 4 ** 9  # true counts intact

    def test_rescale_triggers_and_bounds_sigma(self):
        # 4^k > 1e100 needs k > 166 segments.
        g = self._wide_path(200)
        fwd = forward_sweep(g, 0)
        assert np.any(fwd.level_scales > 1.0)
        assert np.isfinite(fwd.sigma).all()
        assert fwd.sigma.max() <= SIGMA_RESCALE_LIMIT

    def test_rescaled_bc_still_correct(self):
        # BC of the chain is computable exactly: with w parallel
        # vertices per layer, every interior layer vertex has the same
        # score by symmetry; compare against the serial reference on a
        # depth where reference floats still hold, after forcing
        # rescaling via a tiny limit.
        import repro.bc.frontier as fr

        g = self._wide_path(12)
        from repro.bc.api import betweenness_centrality

        expect = betweenness_centrality(g)
        old = fr.SIGMA_RESCALE_LIMIT
        try:
            fr.SIGMA_RESCALE_LIMIT = 10.0  # rescale on almost every level
            got = betweenness_centrality(g)
        finally:
            fr.SIGMA_RESCALE_LIMIT = old
        assert np.allclose(expect, got, rtol=1e-9)
