"""Unit tests for the batched multi-root BC engine."""

import numpy as np
import pytest

from repro.bc.api import betweenness_centrality
from repro.bc.batched import batched_betweenness_centrality, batched_dependencies
from repro.graph.build import from_edges


class TestBatchedDependencies:
    def test_rows_match_per_root(self, fig1):
        from repro.bc.api import bc_single_source_dependencies

        roots = np.arange(9)
        delta = batched_dependencies(fig1, roots)
        for r, s in enumerate(roots):
            assert np.allclose(delta[r], bc_single_source_dependencies(fig1, s))

    def test_empty_batch(self, fig1):
        assert batched_dependencies(fig1, np.array([])).shape == (0, 9)

    def test_roots_out_of_range(self, fig1):
        with pytest.raises(IndexError):
            batched_dependencies(fig1, np.array([99]))

    def test_duplicate_roots_allowed(self, fig1):
        delta = batched_dependencies(fig1, np.array([3, 3]))
        assert np.allclose(delta[0], delta[1])


class TestBatchedBC:
    @pytest.mark.parametrize("batch_size", [1, 3, 7, 64])
    def test_matches_engine(self, fig1, batch_size):
        got = batched_betweenness_centrality(fig1, batch_size=batch_size)
        assert np.allclose(got, betweenness_centrality(fig1))

    # Batched-vs-Brandes value equivalence across graph structures
    # (incl. disconnected and directed) lives in
    # tests/bc/test_differential.py.
    def test_sources_subset(self, fig1):
        got = batched_betweenness_centrality(fig1, sources=[0, 4, 8])
        assert np.allclose(got, betweenness_centrality(fig1,
                                                       sources=[0, 4, 8]))

    def test_normalized(self, fig1):
        got = batched_betweenness_centrality(fig1, normalized=True)
        assert np.allclose(got, betweenness_centrality(fig1, normalized=True))

    def test_bad_batch_size(self, fig1):
        with pytest.raises(ValueError):
            batched_betweenness_centrality(fig1, batch_size=0)

    @staticmethod
    def _overflow_graph():
        """Deep wide-path graph whose path counts overflow float64."""
        edges = []
        prev = [0]
        nxt = 1
        for _ in range(380):  # 8^379 >> float64 max (~1.8e308)
            layer = list(range(nxt, nxt + 8))
            nxt += 8
            edges.extend((p, q) for p in prev for q in layer)
            prev = layer
        return from_edges(edges)

    def test_overflow_fallback(self):
        """A deep wide-path graph overflows the batched sigma; the
        wrapper must fall back to the per-root engine and stay exact."""
        g = self._overflow_graph()
        with pytest.raises(FloatingPointError):
            batched_dependencies(g, np.array([0]))
        got = batched_betweenness_centrality(g, sources=[0])
        expect = betweenness_centrality(g, sources=[0])
        assert np.allclose(got, expect, rtol=1e-9)

    def test_overflow_retry_keeps_the_metrics_registry(self):
        """Regression: the per-root-engine retry used to drop the
        caller's metrics registry, losing the traversal counters and
        giving no signal that the fallback ever fired.  The retry must
        count ``batched.overflow_retries`` (once per failed batch, not
        per root) on the *same* registry and stay exact."""
        from repro.observability import MetricsRegistry

        g = self._overflow_graph()
        metrics = MetricsRegistry()
        got = batched_betweenness_centrality(g, sources=[0, 1, 2],
                                             metrics=metrics, fold=False)
        assert metrics.counter("batched.overflow_retries").value == 1.0
        # The retried traversals land on the caller's registry too.
        assert metrics.counter("frontier.sweeps").value >= 3.0
        expect = betweenness_centrality(g, sources=[0, 1, 2], fold=False)
        assert np.allclose(got, expect, rtol=1e-9)

    def test_no_overflow_means_no_retry_counter(self, fig1):
        from repro.observability import MetricsRegistry

        metrics = MetricsRegistry()
        batched_betweenness_centrality(fig1, metrics=metrics)
        assert metrics.counter("batched.overflow_retries").value == 0.0

    def test_isolated_roots(self, two_components):
        got = batched_betweenness_centrality(two_components, sources=[6])
        assert np.all(got == 0)
