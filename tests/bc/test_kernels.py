"""Literal kernel re-implementations: value equality and work counts.

The work-efficient (Algorithms 1-3), edge-parallel and vertex-parallel
kernels must produce identical distances, path counts and dependencies
— they differ only in thread-to-work mapping.  These tests pin that
equivalence and the kernels' documented work characteristics.
"""

import numpy as np
import pytest

from repro.bc.brandes import brandes_reference
from repro.bc.edge_parallel import bc_edge_parallel, edge_parallel_root
from repro.bc.vertex_parallel import bc_vertex_parallel, vertex_parallel_root
from repro.bc.work_efficient import bc_work_efficient, work_efficient_root
from tests.conftest import random_graph

ALL_BC = [bc_work_efficient, bc_edge_parallel, bc_vertex_parallel]


class TestWorkEfficientKernel:
    def test_state_invariants(self, fig1):
        st = work_efficient_root(fig1, 3)
        # S holds each reached vertex once, in depth order.
        assert np.unique(st.S).size == st.S.size
        depths = st.d[st.S]
        assert np.all(np.diff(depths) >= 0)
        # ends is CSR-like over S.
        assert st.ends[0] == 0 and st.ends[-1] == st.S.size
        # ends_len - 2 == max_v d[v] (Algorithm 1's comment).
        finite = st.d[st.d < np.iinfo(np.int64).max]
        assert st.max_depth == finite.max()

    def test_sigma_matches_reference(self, fig1):
        from repro.bc.brandes import brandes_single_source

        for s in range(9):
            st = work_efficient_root(fig1, s)
            _, sigma, _ = brandes_single_source(fig1, s)
            assert np.allclose(st.sigma, sigma)

    def test_out_of_range(self, fig1):
        with pytest.raises(IndexError):
            work_efficient_root(fig1, 9)

    def test_isolated_root(self, two_components):
        st = work_efficient_root(two_components, 6)
        assert st.S.tolist() == [6]
        assert st.max_depth == 0


class TestEdgeParallelKernel:
    def test_iteration_count_is_depth_plus_one(self, path5):
        *_, iters = edge_parallel_root(path5, 0)
        # Each iteration sweeps all edges once per depth level.
        assert iters == 5

    def test_distances(self, cycle6):
        d, sigma, _, _ = edge_parallel_root(cycle6, 0)
        assert d.tolist() == [0, 1, 2, 3, 2, 1]
        assert sigma[3] == 2.0


class TestVertexParallelKernel:
    def test_distances(self, star):
        d, _, _, iters = vertex_parallel_root(star, 2)
        assert d.tolist() == [1, 2, 0, 2, 2, 2, 2]
        assert iters == 3


class TestKernelEquivalence:
    # Full-graph value equivalence across all kernels, strategies and
    # structural classes lives in tests/bc/test_differential.py; only
    # behaviour the matrix cannot express (source subsets) stays here.
    def test_subset_sources(self, fig1):
        ref = brandes_reference(fig1, sources=[0, 3, 5])
        for fn in ALL_BC:
            assert np.allclose(fn(fig1, sources=[0, 3, 5]), ref)
