"""Unit tests for root partitioners."""

import numpy as np
import pytest

from repro.parallel.partition import (
    block_partition,
    cyclic_partition,
    work_balanced_partition,
)

ROOTS = np.arange(17)


class TestBlock:
    def test_covers_exactly(self):
        parts = block_partition(ROOTS, 4)
        assert sorted(np.concatenate(parts).tolist()) == ROOTS.tolist()

    def test_contiguous(self):
        for p in block_partition(ROOTS, 5):
            if p.size > 1:
                assert np.all(np.diff(p) == 1)

    def test_bad_parts(self):
        with pytest.raises(ValueError):
            block_partition(ROOTS, 0)


class TestCyclic:
    def test_covers_exactly(self):
        parts = cyclic_partition(ROOTS, 4)
        assert sorted(np.concatenate(parts).tolist()) == ROOTS.tolist()

    def test_stride(self):
        parts = cyclic_partition(ROOTS, 4)
        assert parts[1].tolist() == [1, 5, 9, 13]

    def test_bad_parts(self):
        with pytest.raises(ValueError):
            cyclic_partition(ROOTS, -1)


class TestWorkBalanced:
    def test_covers_exactly(self):
        w = np.arange(17, dtype=float) + 1
        parts = work_balanced_partition(ROOTS, w, 3)
        assert sorted(np.concatenate(parts).tolist()) == ROOTS.tolist()

    def test_balances_skewed_weights(self):
        # One giant root plus many small ones: greedy LPT puts the
        # giant alone-ish and spreads the rest.
        w = np.ones(17)
        w[0] = 16.0
        parts = work_balanced_partition(ROOTS, w, 2)
        loads = [w[np.isin(ROOTS, p)].sum() for p in parts]
        assert max(loads) <= 17  # not 16 + many

    def test_beats_block_on_skew(self):
        rng = np.random.default_rng(0)
        w = rng.pareto(1.5, size=64) + 0.1
        lpt = work_balanced_partition(np.arange(64), w, 4)
        blk = block_partition(np.arange(64), 4)
        load = lambda parts: max(w[p].sum() for p in parts)
        assert load(lpt) <= load(blk)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            work_balanced_partition(ROOTS, np.ones(3), 2)
