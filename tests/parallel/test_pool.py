"""Unit tests for the process-pool BC executor."""

import numpy as np
import pytest

from repro.bc.brandes import brandes_reference
from repro.parallel.pool import parallel_betweenness_centrality


class TestPool:
    def test_matches_serial_two_workers(self, fig1):
        got = parallel_betweenness_centrality(fig1, num_workers=2,
                                              chunks_per_worker=2)
        assert np.allclose(got, brandes_reference(fig1))

    def test_single_worker_short_circuit(self, fig1):
        got = parallel_betweenness_centrality(fig1, num_workers=1)
        assert np.allclose(got, brandes_reference(fig1))

    def test_sources_subset(self, fig1):
        got = parallel_betweenness_centrality(fig1, sources=[0, 3, 5],
                                              num_workers=2)
        assert np.allclose(got, brandes_reference(fig1, sources=[0, 3, 5]))

    def test_more_workers_than_roots(self, path5):
        got = parallel_betweenness_centrality(path5, num_workers=8,
                                              chunks_per_worker=4)
        assert np.allclose(got, brandes_reference(path5))

    def test_larger_graph(self, small_sw):
        got = parallel_betweenness_centrality(
            small_sw, sources=range(0, 40), num_workers=2,
        )
        ref = brandes_reference(small_sw, sources=range(0, 40))
        assert np.allclose(got, ref)

    def test_bad_chunks(self, fig1):
        with pytest.raises(ValueError):
            parallel_betweenness_centrality(fig1, num_workers=2,
                                            chunks_per_worker=0)
