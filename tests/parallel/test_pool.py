"""Unit tests for the process-pool BC executor."""

import numpy as np
import pytest

from repro.bc.brandes import brandes_reference
from repro.parallel.pool import parallel_betweenness_centrality


class TestPool:
    def test_matches_serial_two_workers(self, fig1):
        got = parallel_betweenness_centrality(fig1, num_workers=2,
                                              chunks_per_worker=2)
        assert np.allclose(got, brandes_reference(fig1))

    def test_single_worker_short_circuit(self, fig1):
        got = parallel_betweenness_centrality(fig1, num_workers=1)
        assert np.allclose(got, brandes_reference(fig1))

    def test_sources_subset(self, fig1):
        got = parallel_betweenness_centrality(fig1, sources=[0, 3, 5],
                                              num_workers=2)
        assert np.allclose(got, brandes_reference(fig1, sources=[0, 3, 5]))

    def test_more_workers_than_roots(self, path5):
        got = parallel_betweenness_centrality(path5, num_workers=8,
                                              chunks_per_worker=4)
        assert np.allclose(got, brandes_reference(path5))

    def test_larger_graph(self, small_sw):
        got = parallel_betweenness_centrality(
            small_sw, sources=range(0, 40), num_workers=2,
        )
        ref = brandes_reference(small_sw, sources=range(0, 40))
        assert np.allclose(got, ref)

    def test_bad_chunks(self, fig1):
        with pytest.raises(ValueError):
            parallel_betweenness_centrality(fig1, num_workers=2,
                                            chunks_per_worker=0)


@pytest.mark.faults
class TestWorkerCrashRecovery:
    """A crashed pool worker must never lose the run: failed chunks are
    recomputed serially and the result stays exact."""

    def test_one_crashed_chunk_recovered(self, fig1):
        got = parallel_betweenness_centrality(
            fig1, num_workers=2, chunks_per_worker=2, _crash_chunks=(0,)
        )
        assert np.allclose(got, brandes_reference(fig1))

    def test_all_chunks_crashed_recovered(self, fig1):
        got = parallel_betweenness_centrality(
            fig1, num_workers=2, chunks_per_worker=2,
            _crash_chunks=tuple(range(8)),
        )
        assert np.allclose(got, brandes_reference(fig1))

    def test_recovery_is_metered(self, fig1):
        """Satellite contract: serial recovery must be observable — a
        `pool.recomputed_chunks` counter and a timed `pool.recompute`
        span sized by how many chunks fell back."""
        from repro.observability import MetricsRegistry

        metrics = MetricsRegistry()
        parallel_betweenness_centrality(
            fig1, num_workers=2, chunks_per_worker=2,
            _crash_chunks=(0, 1), metrics=metrics,
        )
        recomputed = [c for c in metrics.counters()
                      if c.name == "pool.recomputed_chunks"]
        # A dead worker can take the whole pool (and so every chunk)
        # with it; the counter tracks however many actually fell back.
        assert recomputed and recomputed[0].value >= 2
        assert recomputed[0].labels == {"path": "serial"}

        def walk(spans):
            for sp in spans:
                yield sp
                yield from walk(sp.children)

        recompute = [sp for sp in walk(metrics.root_spans)
                     if sp.name == "pool.recompute"]
        assert len(recompute) == 1
        assert recompute[0].labels == {"chunks": int(recomputed[0].value)}
        assert recompute[0].end is not None

    def test_crash_with_source_subset(self, small_sw):
        got = parallel_betweenness_centrality(
            small_sw, sources=range(0, 30), num_workers=2,
            _crash_chunks=(1,),
        )
        ref = brandes_reference(small_sw, sources=range(0, 30))
        assert np.allclose(got, ref)

    def test_no_bare_pool_exception_leaks(self, fig1):
        # Even with every worker dying, the caller sees a clean result
        # (or, if serial recovery also failed, a ReproError — never a
        # raw BrokenProcessPool).
        from repro.errors import ReproError

        try:
            got = parallel_betweenness_centrality(
                fig1, num_workers=2, chunks_per_worker=4,
                _crash_chunks=tuple(range(16)),
            )
        except Exception as exc:  # noqa: BLE001 - the assertion IS the test
            assert isinstance(exc, ReproError)
        else:
            assert np.allclose(got, brandes_reference(fig1))
