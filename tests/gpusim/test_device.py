"""Unit tests for the simulated device (scheduling, strategies, OOM)."""

import numpy as np
import pytest

from repro.bc.brandes import brandes_reference
from repro.errors import DeviceOutOfMemoryError, GraphFormatError, StrategyError
from repro.graph.generators import kronecker_graph, road_network, watts_strogatz
from repro.gpusim.device import STRATEGIES, Device, _list_schedule
from repro.gpusim.spec import GTX_TITAN, GPUSpec


@pytest.fixture
def dev():
    return Device(GTX_TITAN)


class TestListSchedule:
    def test_single_worker_sums(self):
        makespan, per = _list_schedule([3, 1, 2], 1)
        assert makespan == 6

    def test_perfect_split(self):
        makespan, per = _list_schedule([1] * 8, 4)
        assert makespan == 2
        assert per.tolist() == [2, 2, 2, 2]

    def test_greedy_balances(self):
        makespan, _ = _list_schedule([5, 1, 1, 1, 1, 1], 2)
        assert makespan == 5

    def test_empty(self):
        makespan, per = _list_schedule([], 4)
        assert makespan == 0


class TestRunBC:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_all_strategies_exact(self, dev, fig1, strategy):
        run = dev.run_bc(fig1, strategy=strategy)
        assert np.allclose(run.bc, brandes_reference(fig1))
        assert run.cycles > 0
        assert run.seconds == pytest.approx(run.cycles / GTX_TITAN.clock_hz)

    def test_unknown_strategy(self, dev, fig1):
        with pytest.raises(StrategyError):
            dev.run_bc(fig1, strategy="magic")

    def test_roots_subset(self, dev, fig1):
        run = dev.run_bc(fig1, strategy="work-efficient", roots=[0, 3])
        expect = brandes_reference(fig1, sources=[0, 3])
        assert np.allclose(run.bc, expect)
        assert run.num_roots == 2

    def test_roots_out_of_range(self, dev, fig1):
        with pytest.raises(IndexError):
            dev.run_bc(fig1, roots=[42])

    def test_trace_has_one_entry_per_root(self, dev, fig1):
        run = dev.run_bc(fig1, strategy="work-efficient", roots=[1, 2, 5])
        assert [rt.root for rt in run.trace.roots] == [1, 2, 5]

    def test_makespan_between_bounds(self, dev, small_sw):
        run = dev.run_bc(small_sw, strategy="work-efficient",
                         roots=np.arange(40))
        total = run.trace.total_root_cycles
        assert run.cycles >= total / GTX_TITAN.num_sms - 1e-9
        assert run.cycles <= total

    def test_memory_report_present(self, dev, fig1):
        run = dev.run_bc(fig1, strategy="work-efficient", roots=[0])
        assert "graph CSR" in run.memory_report

    def test_check_memory_off(self, dev, fig1):
        run = dev.run_bc(fig1, strategy="work-efficient", roots=[0],
                         check_memory=False)
        assert run.memory_report == {}


class TestStrictReader:
    def test_rejects_isolated_vertices(self, dev, small_kron):
        assert small_kron.isolated_vertices().size > 0
        with pytest.raises(GraphFormatError):
            dev.run_bc(small_kron, strategy="edge-parallel", roots=[0],
                       strict_reader=True)

    def test_only_applies_to_jia_baselines(self, dev, small_kron):
        run = dev.run_bc(small_kron, strategy="sampling",
                         roots=[int(np.flatnonzero(small_kron.degrees > 0)[0])],
                         strict_reader=True)
        assert run.cycles > 0

    def test_clean_graph_passes(self, dev, fig1):
        run = dev.run_bc(fig1, strategy="edge-parallel", roots=[0],
                         strict_reader=True)
        assert run.cycles > 0


class TestGPUFanOnDevice:
    def test_sequential_roots(self, dev, fig1):
        run = dev.run_bc(fig1, strategy="gpu-fan", roots=[0, 1, 2])
        assert run.cycles == pytest.approx(run.trace.total_root_cycles)

    def test_oom_at_scale(self):
        # 100k vertices -> 10 GB predecessor matrix > 6 GB.
        g = watts_strogatz(100_000, k=4, p=0.05, seed=0)
        dev = Device(GTX_TITAN)
        with pytest.raises(DeviceOutOfMemoryError):
            dev.run_bc(g, strategy="gpu-fan", roots=[0])

    def test_same_graph_fits_for_paper_method(self):
        g = watts_strogatz(100_000, k=4, p=0.05, seed=0)
        run = Device(GTX_TITAN).run_bc(g, strategy="work-efficient", roots=[0])
        assert run.cycles > 0


class TestSampling:
    def test_decision_recorded(self, dev, small_sw, small_road):
        run_sw = dev.run_bc(small_sw, strategy="sampling",
                            roots=np.arange(20), n_samps=6)
        assert run_sw.sampling_chose_edge_parallel is True
        run_rd = dev.run_bc(small_road, strategy="sampling",
                            roots=np.arange(20), n_samps=6)
        assert run_rd.sampling_chose_edge_parallel is False

    def test_fixed_phase_accounting(self, dev, small_sw):
        run = dev.run_bc(small_sw, strategy="sampling",
                         roots=np.arange(20), n_samps=6)
        assert run.fixed_roots == 6
        assert 0 < run.fixed_cycles < run.cycles

    def test_phase2_respects_guard(self, dev, small_sw):
        run = dev.run_bc(small_sw, strategy="sampling",
                         roots=np.arange(12), n_samps=4, min_frontier=30)
        for rt in run.trace.roots[4:]:
            for lv in rt.levels:
                # The guard admits edge-parallel only on levels whose
                # frontier meets the threshold (both stages).
                if lv.strategy == "edge-parallel":
                    assert lv.frontier_size >= 30

    def test_non_strategy_kwargs_rejected_gracefully(self, dev, fig1):
        # Hybrid parameters are accepted and applied only for hybrid.
        run = dev.run_bc(fig1, strategy="hybrid", alpha=10, beta=5)
        assert np.allclose(run.bc, brandes_reference(fig1))


class TestExtrapolation:
    def test_fixed_strategy_scales_linearly(self, dev, small_sw):
        run = dev.run_bc(small_sw, strategy="work-efficient",
                         roots=np.arange(20))
        t1 = run.extrapolated_seconds(100)
        t2 = run.extrapolated_seconds(200)
        assert t2 == pytest.approx(2 * t1)

    def test_sampling_has_fixed_offset(self, dev, small_sw):
        run = dev.run_bc(small_sw, strategy="sampling",
                         roots=np.arange(20), n_samps=10)
        t1 = run.extrapolated_seconds(1000)
        t2 = run.extrapolated_seconds(1990)
        # Doubling remaining roots doubles only the steady-state part.
        steady1 = t1 - GTX_TITAN.seconds(run.fixed_cycles)
        steady2 = t2 - GTX_TITAN.seconds(run.fixed_cycles)
        assert steady2 == pytest.approx(2 * steady1)

    def test_gpu_fan_no_sm_division(self, dev, fig1):
        run = dev.run_bc(fig1, strategy="gpu-fan", roots=[0, 1])
        per_root = run.trace.total_root_cycles / 2
        expect = GTX_TITAN.seconds(per_root * 9)
        assert run.extrapolated_seconds() == pytest.approx(expect, rel=0.3)

    def test_teps_positive(self, dev, fig1):
        run = dev.run_bc(fig1, strategy="work-efficient")
        assert run.teps() > 0
        assert run.mteps() == pytest.approx(run.teps() / 1e6)
        assert run.extrapolated_mteps() > 0


class TestDirectedGraphs:
    def test_strategies_exact_on_directed(self, dev):
        import networkx as nx

        from repro.graph.build import from_edges, to_networkx

        g = from_edges([(0, 1), (1, 2), (2, 0), (1, 3), (3, 4), (4, 1)],
                       undirected=False)
        d = nx.betweenness_centrality(to_networkx(g), normalized=False)
        expect = np.array([d[i] for i in range(g.num_vertices)])
        for strategy in ("work-efficient", "edge-parallel", "hybrid",
                         "sampling"):
            run = dev.run_bc(g, strategy=strategy)
            assert np.allclose(run.bc, expect), strategy

    def test_directed_edge_count_semantics(self, dev):
        from repro.graph.build import from_edges

        g = from_edges([(0, 1), (1, 2)], undirected=False)
        run = dev.run_bc(g, strategy="work-efficient", roots=[0])
        assert run.num_edges == 2  # directed edges counted as-is
