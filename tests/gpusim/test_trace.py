"""Unit tests for trace containers."""

import numpy as np

from repro.gpusim.trace import LevelTrace, RootTrace, RunTrace


def _lv(depth, stage, strategy="work-efficient", f=1, ef=2, cycles=10.0):
    return LevelTrace(depth=depth, stage=stage, strategy=strategy,
                      frontier_size=f, edge_frontier=ef, cycles=cycles)


class TestRootTrace:
    def test_cycles_sum(self):
        rt = RootTrace(root=0)
        rt.add(_lv(0, "forward", cycles=5))
        rt.add(_lv(1, "forward", cycles=7))
        rt.add(_lv(1, "backward", cycles=3))
        assert rt.cycles == 15

    def test_max_depth_forward_only(self):
        rt = RootTrace(root=0)
        rt.add(_lv(0, "forward"))
        rt.add(_lv(1, "forward"))
        rt.add(_lv(1, "backward"))
        assert rt.max_depth == 1

    def test_empty(self):
        rt = RootTrace(root=0)
        assert rt.max_depth == 0 and rt.cycles == 0

    def test_series(self):
        rt = RootTrace(root=0)
        rt.add(_lv(0, "forward", f=1, ef=3, cycles=4))
        rt.add(_lv(1, "forward", f=5, ef=9, cycles=8))
        rt.add(_lv(1, "backward", f=5, ef=9, cycles=2))
        assert rt.vertex_frontier_sizes().tolist() == [1, 5]
        assert rt.edge_frontier_sizes().tolist() == [3, 9]
        assert rt.forward_cycles().tolist() == [4, 8]

    def test_strategies_used_dedup(self):
        rt = RootTrace(root=0)
        rt.add(_lv(0, "forward", strategy="work-efficient"))
        rt.add(_lv(1, "forward", strategy="edge-parallel"))
        rt.add(_lv(2, "forward", strategy="work-efficient"))
        assert rt.strategies_used() == ["work-efficient", "edge-parallel"]


class TestRunTrace:
    def test_totals(self):
        run = RunTrace()
        for i in range(3):
            rt = RootTrace(root=i)
            rt.add(_lv(0, "forward", cycles=10))
            run.roots.append(rt)
        assert run.total_root_cycles == 30
        assert run.max_depths().tolist() == [0, 0, 0]
