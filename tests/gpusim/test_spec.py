"""Unit tests for GPU specifications."""

import pytest

from repro.errors import DeviceConfigurationError
from repro.gpusim.spec import GTX_TITAN, TESLA_M2090, GPUSpec


class TestPresets:
    def test_titan_matches_paper(self):
        # Section V-A: 14 SMs, 837 MHz, 6 GB, compute capability 3.5.
        assert GTX_TITAN.num_sms == 14
        assert GTX_TITAN.clock_hz == pytest.approx(837e6)
        assert GTX_TITAN.memory_bytes == 6 * 1024**3
        assert GTX_TITAN.compute_capability == "3.5"

    def test_m2090_matches_paper(self):
        # Section V-A: 16 SMs, 1.3 GHz, 6 GB, compute capability 2.0.
        assert TESLA_M2090.num_sms == 16
        assert TESLA_M2090.clock_hz == pytest.approx(1.3e9)
        assert TESLA_M2090.compute_capability == "2.0"

    def test_total_threads(self):
        assert GTX_TITAN.total_threads == 14 * 256

    def test_seconds(self):
        assert GTX_TITAN.seconds(837e6) == pytest.approx(1.0)


class TestValidation:
    def test_bad_sms(self):
        with pytest.raises(DeviceConfigurationError):
            GPUSpec("x", 0, 1e9, 1024)

    def test_bad_clock(self):
        with pytest.raises(DeviceConfigurationError):
            GPUSpec("x", 1, 0, 1024)

    def test_bad_memory(self):
        with pytest.raises(DeviceConfigurationError):
            GPUSpec("x", 1, 1e9, 0)

    def test_bad_threads(self):
        with pytest.raises(DeviceConfigurationError):
            GPUSpec("x", 1, 1e9, 1024, concurrent_threads_per_sm=0)
