"""Unit tests for the device memory ledger (the Figure 5 OOM story)."""

import numpy as np
import pytest

from repro.errors import DeviceOutOfMemoryError
from repro.graph.generators import kronecker_graph, watts_strogatz
from repro.gpusim.memory import (
    DeviceMemoryModel,
    graph_footprint,
    strategy_footprint,
)


class TestLedger:
    def test_alloc_and_free(self):
        mem = DeviceMemoryModel(capacity=1000)
        mem.alloc(400, "a")
        mem.alloc(400, "b")
        assert mem.in_use == 800 and mem.free == 200
        mem.free_all()
        assert mem.in_use == 0

    def test_oom(self):
        mem = DeviceMemoryModel(capacity=100)
        with pytest.raises(DeviceOutOfMemoryError) as exc:
            mem.alloc(101, "big")
        assert exc.value.requested == 101
        assert exc.value.capacity == 100
        assert "big" in str(exc.value)

    def test_oom_after_partial(self):
        mem = DeviceMemoryModel(capacity=100)
        mem.alloc(60, "x")
        with pytest.raises(DeviceOutOfMemoryError) as exc:
            mem.alloc(50, "y")
        assert exc.value.in_use == 60

    def test_negative_alloc(self):
        with pytest.raises(ValueError):
            DeviceMemoryModel(capacity=10).alloc(-1, "x")

    def test_report_merges_labels(self):
        mem = DeviceMemoryModel(capacity=100)
        mem.alloc(10, "x")
        mem.alloc(20, "x")
        assert mem.report() == {"x": 30}


class TestFootprints:
    def test_graph_footprint(self, fig1):
        assert graph_footprint(fig1) == (9 + 1) * 4 + 22 * 4

    def test_work_efficient_is_o_n(self, small_sw):
        fp = strategy_footprint(small_sw, "work-efficient", num_blocks=14)
        locals_ = fp["per-block locals (O(n))"]
        # Linear in n, independent of m.
        assert locals_ < 50 * small_sw.num_vertices * 14

    def test_edge_parallel_is_o_m(self, small_sw):
        fp = strategy_footprint(small_sw, "edge-parallel", num_blocks=14)
        assert "per-block locals (O(m) preds)" in fp

    def test_gpu_fan_is_o_n_squared(self, small_sw):
        fp = strategy_footprint(small_sw, "gpu-fan", num_blocks=14)
        n = small_sw.num_vertices
        assert fp["gpu-fan predecessor matrix (O(n^2))"] == n * n

    def test_hybrid_and_sampling_share_we_footprint(self, fig1):
        we = strategy_footprint(fig1, "work-efficient", 14)
        for s in ("hybrid", "sampling"):
            assert strategy_footprint(fig1, s, 14) == we

    def test_unknown_strategy(self, fig1):
        with pytest.raises(ValueError):
            strategy_footprint(fig1, "magic", 14)

    def test_gpu_fan_ooms_where_others_fit(self):
        """The paper's scalability cliff: on a 6 GB card GPU-FAN dies at
        a scale the O(n)/O(m) methods handle easily."""
        g = watts_strogatz(100_000, k=4, p=0.1, seed=0)
        capacity = 6 * 1024**3
        gf = sum(strategy_footprint(g, "gpu-fan", 1).values())
        we = sum(strategy_footprint(g, "work-efficient", 14).values())
        ep = sum(strategy_footprint(g, "edge-parallel", 14).values())
        assert gf > capacity       # 1e10 bytes of predecessors
        assert we < capacity // 50
        assert ep < capacity // 50

    def test_ordering_we_below_ep_below_fan(self):
        # On a dense-enough graph (avg directed degree > 16, true of
        # kron/ef16 and of every real dataset in Table II except roads)
        # the O(n) locals < O(m) predecessors < O(n^2) matrix.
        g = kronecker_graph(10, edge_factor=16, seed=0)
        we = sum(strategy_footprint(g, "work-efficient", 14).values())
        ep = sum(strategy_footprint(g, "edge-parallel", 14).values())
        gf = sum(strategy_footprint(g, "gpu-fan", 14).values())
        assert we <= ep <= gf
