"""Unit tests for the kernel cost model."""

import numpy as np
import pytest

from repro.gpusim.cost import DEFAULT_COSTS, CostModel

C = CostModel(cycle_scale=1.0)  # unit-scale for arithmetic checks
CHUNK = 256


class TestRowCycles:
    def test_short_row_scattered(self):
        w = C._row_cycles(np.array([4]))
        assert w[0] == 4 * C.edge_scattered

    def test_long_row_streams(self):
        deg = 1000
        w = C._row_cycles(np.array([deg]))
        expect = C.stream_threshold * C.edge_scattered + \
            (deg - C.stream_threshold) * C.edge_streamed
        assert w[0] == expect

    def test_streaming_is_sublinear_in_scatter_terms(self):
        # A hub is slower than a leaf, but far cheaper than
        # scattered-per-edge (the Table I kron effect).
        hub = C._row_cycles(np.array([10_000]))[0]
        assert hub < 10_000 * C.edge_scattered
        assert hub > 10_000 * C.edge_streamed


class TestWorkEfficientCosts:
    def test_scales_with_frontier(self):
        small = C.we_forward(np.full(10, 4), CHUNK)
        large = C.we_forward(np.full(10_000, 4), CHUNK)
        assert large > 10 * small

    def test_empty_frontier_is_launch_only(self):
        assert C.we_forward(np.array([]), CHUNK) == C.launch

    def test_imbalance_penalty(self):
        """One hub in a chunk of leaves costs the hub's row time —
        disabling imbalance drops to the mean (the ablation)."""
        deg = np.ones(CHUNK, dtype=np.int64)
        deg[0] = 3000
        with_imb = C.we_forward(deg, CHUNK)
        without = C.without_imbalance().we_forward(deg, CHUNK)
        assert with_imb > 10 * without

    def test_backward_cheaper_than_forward(self):
        deg = np.full(1000, 8)
        assert C.we_backward(deg, CHUNK) < C.we_forward(deg, CHUNK)


class TestEdgeParallelCosts:
    def test_independent_of_frontier(self):
        a = C.ep_forward(100_000, 10, CHUNK)
        b = C.ep_forward(100_000, 10, CHUNK)
        assert a == b

    def test_scales_with_edges(self):
        assert C.ep_forward(1_000_000, 0, CHUNK) > 9 * C.ep_forward(100_000, 0, CHUNK)

    def test_atomic_term(self):
        assert C.ep_forward(1000, 1000, CHUNK) > C.ep_forward(1000, 0, CHUNK)


class TestVertexParallelCosts:
    def test_pays_all_vertex_checks(self):
        none = C.vp_forward(1_000_000, np.array([]), CHUNK)
        assert none >= 1_000_000 / CHUNK * C.vertex_check

    def test_more_expensive_than_we_for_same_frontier(self):
        deg = np.full(100, 5)
        masked = np.zeros(100_000)
        masked[:100] = 5
        assert C.vp_forward(100_000, masked, CHUNK) > C.we_forward(deg, CHUNK)


class TestGPUFan:
    def test_global_sync_penalty(self):
        ep = C.ep_forward(1000, 0, CHUNK)
        gf = C.gpu_fan_forward(1000, 0, CHUNK)
        assert gf > ep  # same work, far costlier barrier

    def test_device_chunk_speeds_edges(self):
        one_sm = C.gpu_fan_forward(10_000_000, 0, 256)
        whole = C.gpu_fan_forward(10_000_000, 0, 256 * 14)
        assert whole < one_sm

    def test_backward_equals_forward(self):
        assert C.gpu_fan_backward(5000, 10, 1024) == \
            C.gpu_fan_forward(5000, 10, 1024)


class TestCrossoverShapes:
    """The calibration facts the paper's results rest on."""

    def test_small_frontier_prefers_work_efficient(self):
        # A road-network-like level: 20 frontier vertices of degree 2
        # in a 240k-directed-edge graph.
        we = C.we_forward(np.full(20, 2), CHUNK)
        ep = C.ep_forward(240_000, 40, CHUNK)
        assert we < ep / 5

    def test_huge_frontier_prefers_edge_parallel(self):
        # A small-world peak level: half the graph in the frontier.
        rng = np.random.default_rng(0)
        deg = rng.poisson(10, size=50_000) + 1
        we = C.we_forward(deg, CHUNK)
        ep = C.ep_forward(int(deg.sum() * 2), int(deg.sum()), CHUNK)
        assert ep < we

    def test_cycle_scale_is_uniform(self):
        """Scaling cycles must not change any method ratio."""
        c1 = CostModel(cycle_scale=1.0)
        c2 = CostModel(cycle_scale=100.0)
        deg = np.full(100, 7)
        ratio_we = c2.we_forward(deg, CHUNK) / c1.we_forward(deg, CHUNK)
        ratio_ep = c2.ep_forward(5000, 100, CHUNK) / c1.ep_forward(5000, 100, CHUNK)
        assert ratio_we == pytest.approx(100.0)
        assert ratio_ep == pytest.approx(100.0)

    def test_default_cycle_scale(self):
        assert DEFAULT_COSTS.cycle_scale == 100.0


class TestEnqueueModes:
    def test_prefix_sum_charges_scan(self):
        import numpy as np

        deg = np.full(2000, 10)
        cas = CostModel(cycle_scale=1.0, enqueue="cas")
        scan = CostModel(cycle_scale=1.0, enqueue="prefix-sum")
        assert scan.we_forward(deg, CHUNK) > cas.we_forward(deg, CHUNK)

    def test_unknown_mode_rejected(self):
        import numpy as np
        import pytest

        bad = CostModel(enqueue="magic")
        with pytest.raises(ValueError):
            bad.we_forward(np.array([1, 2]), CHUNK)

    def test_backward_unaffected_by_enqueue(self):
        import numpy as np

        deg = np.full(100, 5)
        cas = CostModel(cycle_scale=1.0, enqueue="cas")
        scan = CostModel(cycle_scale=1.0, enqueue="prefix-sum")
        assert cas.we_backward(deg, CHUNK) == scan.we_backward(deg, CHUNK)
