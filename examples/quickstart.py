#!/usr/bin/env python3
"""Quickstart: exact betweenness centrality in a few lines.

Recreates the paper's Figure 1 example — scoring every vertex of a
small network, finding the cut vertex — then shows the simulated-GPU
strategies producing identical scores with very different costs.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import betweenness_centrality, normalize_bc
from repro.graph.generators import figure1_graph
from repro.gpusim import Device, GTX_TITAN


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Exact BC on the paper's running example (Figure 1).
    # ------------------------------------------------------------------
    g = figure1_graph()
    bc = betweenness_centrality(g)

    print("Figure 1 example graph — BC per vertex (paper labels 1..9):")
    for v, score in enumerate(bc):
        bar = "#" * int(score)
        print(f"  vertex {v + 1}: {score:5.2f}  {bar}")

    top = int(np.argmax(bc)) + 1
    print(f"\nMost central vertex: {top} (the cut vertex between the two "
          "halves, exactly as the paper describes)")
    zeros = [v + 1 for v, s in enumerate(bc) if s == 0]
    print(f"Zero-BC vertices: {zeros} (on no shortest path between others)")

    # Normalised scores are comparable across graphs of different sizes.
    norm = normalize_bc(bc, g.num_vertices)
    print(f"Normalised max score: {norm.max():.3f}")

    # ------------------------------------------------------------------
    # 2. The same computation on the simulated GTX Titan under each
    #    parallelisation strategy: identical values, different cost.
    # ------------------------------------------------------------------
    print("\nSimulated GPU (GTX Titan, 14 SMs) — strategy comparison:")
    device = Device(GTX_TITAN)
    baseline = None
    for strategy in ("edge-parallel", "work-efficient", "hybrid", "sampling"):
        run = device.run_bc(g, strategy=strategy, n_samps=3)
        assert np.allclose(run.bc, bc), "strategies must agree on values"
        if baseline is None:
            baseline = run.seconds
        print(f"  {strategy:15s}: {run.seconds * 1e6:9.2f} simulated-us "
              f"({baseline / run.seconds:5.2f}x vs edge-parallel)")

    print("\nAll strategies return identical scores — they differ only in "
          "how threads map to the traversal, which is what the paper is "
          "about.  (On a 9-vertex toy the full edge sweep is nearly free, "
          "so edge-parallel looks fine; run "
          "examples/road_network_analysis.py to see it lose by 10x on a "
          "high-diameter graph.)")


if __name__ == "__main__":
    main()
