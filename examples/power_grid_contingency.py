#!/usr/bin/env python3
"""Power-grid contingency analysis with betweenness centrality.

The paper cites Jin et al.'s use of parallel BC for power-grid
contingency analysis (Section I): buses whose removal reroutes or
strands the most power flow are exactly the high-betweenness vertices.

This example builds a grid-like transmission network (a sparse mesh
with a few long-distance ties — structurally between the paper's road
and mesh classes), ranks buses by BC, then *simulates the contingency*:
knock out the top-BC bus and measure how connectivity and path lengths
degrade, versus removing a random bus.

Run:  python examples/power_grid_contingency.py [num_buses]
"""

import sys

import numpy as np

from repro import betweenness_centrality
from repro.bc.approx import approximate_bc
from repro.graph.build import from_edges, induced_subgraph
from repro.graph.generators import stencil_mesh
from repro.graph.stats import connected_component_sizes
from repro.graph.traversal import bfs


def build_grid(n: int, seed: int = 0):
    """Transmission grid: a sparse planar mesh plus a handful of
    long-distance high-voltage ties."""
    rng = np.random.default_rng(seed)
    mesh = stencil_mesh(n, radius=1, aspect=2.0, seed=seed)
    src = mesh.edge_sources()
    keep = src < mesh.adj  # one direction
    edges = np.column_stack([src[keep], mesh.adj[keep]])
    # Thin the mesh heavily (grids are much sparser than FEM meshes)...
    mask = rng.random(edges.shape[0]) < 0.45
    edges = edges[mask]
    # ...and add a handful of long-distance high-voltage ties.
    ties = rng.integers(0, mesh.num_vertices, size=(mesh.num_vertices // 500, 2))
    edges = np.concatenate([edges, ties], axis=0)
    g = from_edges(edges, num_vertices=mesh.num_vertices, name="powergrid")
    return g


def largest_cc_fraction(g) -> float:
    sizes = connected_component_sizes(g)
    return float(sizes[0]) / g.num_vertices if sizes.size else 0.0


def mean_path_length_sample(g, samples: int = 8, seed: int = 0) -> float:
    rng = np.random.default_rng(seed)
    totals = []
    for _ in range(samples):
        r = bfs(g, int(rng.integers(0, g.num_vertices)))
        reach = r.distances[r.distances > 0]
        if reach.size:
            totals.append(float(reach.mean()))
    return float(np.mean(totals)) if totals else float("inf")


def contingency(g, victims):
    """Remove buses; report connectivity + routing degradation."""
    victims = set(int(v) for v in victims)
    rest = [v for v in range(g.num_vertices) if v not in victims]
    g2 = induced_subgraph(g, rest)
    return largest_cc_fraction(g2), mean_path_length_sample(g2, seed=1)


def main(n: int = 4_000) -> None:
    g = build_grid(n, seed=11)
    print(f"Transmission grid: {g.num_vertices} buses, {g.num_edges} lines, "
          f"largest component {largest_cc_fraction(g) * 100:.1f}%")

    # Rank buses by betweenness (exact for small grids, sampled otherwise).
    if g.num_vertices <= 1500:
        bc = betweenness_centrality(g)
    else:
        bc = approximate_bc(g, k=256, seed=2)
    order = np.argsort(bc)[::-1]
    print("\nTop 5 critical buses (N-1 contingency candidates):")
    for rank, v in enumerate(order[:5], 1):
        print(f"  #{rank}: bus {int(v)} (BC {bc[v]:.0f}, "
              f"{g.degree(int(v))} lines)")

    base_cc = largest_cc_fraction(g)
    base_len = mean_path_length_sample(g, seed=1)
    print(f"\nBaseline: {base_cc * 100:.1f}% connected, "
          f"mean electrical path {base_len:.1f} hops")

    k = 5
    top = order[:k].tolist()
    cc_top, len_top = contingency(g, top)
    rng = np.random.default_rng(5)
    rand = rng.choice(g.num_vertices, size=k, replace=False).tolist()
    cc_rand, len_rand = contingency(g, rand)

    print(f"\nN-{k} contingency — drop the {k} top-BC buses:")
    print(f"  connectivity {cc_top * 100:.1f}%  mean path {len_top:.2f} hops")
    print(f"N-{k} contingency — drop {k} random buses:")
    print(f"  connectivity {cc_rand * 100:.1f}%  mean path {len_rand:.2f} hops")
    print("\nThe top-BC outage stretches (or severs) far more routes — "
          "which is why contingency screens rank buses by betweenness "
          "before running expensive power-flow studies.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4_000)
