#!/usr/bin/env python3
"""Road-network analysis: find critical intersections, fast.

The paper's motivating result: on high-diameter graphs (road maps,
meshes) the work-efficient method beats the edge-parallel baseline by
an order of magnitude, because edge-parallel re-inspects every edge on
every one of the ~diameter BFS iterations.

This example builds a luxembourg.osm-like road network, ranks
intersections by betweenness (the "bridges" whose closure disrupts the
most routes — the paper cites exactly this use for urban planning and
contingency analysis), and compares the strategies' simulated cost.

Run:  python examples/road_network_analysis.py [num_vertices]
"""

import sys

import numpy as np

from repro.bc.approx import approximate_bc
from repro.graph.generators import road_network
from repro.graph.stats import estimate_diameter
from repro.gpusim import Device, GTX_TITAN
from repro.harness.runner import pick_roots


def main(n: int = 20_000) -> None:
    g = road_network(n, seed=42)
    diam = estimate_diameter(g, samples=4, seed=0)
    print(f"Road network: {g.num_vertices} intersections, "
          f"{g.num_edges} road segments, diameter ~{diam}")

    # ------------------------------------------------------------------
    # 1. Approximate BC (source sampling) is plenty to rank roads:
    #    exact BC costs O(nm); 256 sampled roots gets the top ranks.
    # ------------------------------------------------------------------
    bc = approximate_bc(g, k=min(256, g.num_vertices), seed=1)
    order = np.argsort(bc)[::-1]
    print("\nTop 5 critical intersections (approximate BC):")
    for rank, v in enumerate(order[:5], 1):
        print(f"  #{rank}: intersection {int(v)} "
              f"(score {bc[v]:.0f}, degree {g.degree(int(v))})")

    # What fraction of intersections carry almost no through-traffic?
    quiet = float((bc < 0.01 * bc.max()).mean()) * 100
    print(f"{quiet:.0f}% of intersections lie on almost no shortest routes "
          "(degree-2 chain interiors score low unless they bridge regions)")

    # ------------------------------------------------------------------
    # 2. Why the paper's method matters here: simulated strategy costs.
    # ------------------------------------------------------------------
    device = Device(GTX_TITAN)
    roots = pick_roots(g, 12, seed=0)
    print(f"\nSimulated GTX Titan cost over {roots.size} roots, "
          "extrapolated to a full run:")
    times = {}
    for strategy in ("edge-parallel", "work-efficient", "sampling"):
        run = device.run_bc(g, strategy=strategy, roots=roots,
                            n_samps=max(1, roots.size // 3))
        times[strategy] = run.extrapolated_seconds()
        print(f"  {strategy:15s}: {times[strategy]:8.2f} simulated-s "
              f"({run.extrapolated_mteps():7.1f} MTEPS)")
    speedup = times["edge-parallel"] / times["work-efficient"]
    print(f"\nWork-efficient speedup over edge-parallel: {speedup:.1f}x — "
          "the high-diameter regime of the paper's Table III "
          "(luxembourg.osm: 8.31x at full scale).")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20_000)
