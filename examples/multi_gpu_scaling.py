#!/usr/bin/env python3
"""Multi-GPU scaling study (the paper's Section V-D, on your laptop).

Two layers of the reproduction, shown side by side:

1. **Real parallelism** — the exact BC computation decomposed over a
   process pool exactly the way the paper decomposes it over GPUs
   (partition roots, accumulate local score vectors, reduce), with a
   wall-clock speedup measurement.
2. **Simulated KIDS cluster** — the performance model behind Figure 6
   and Table IV: sweep 1 -> 64 nodes (3 Tesla M2090s each) and watch
   speedup approach linear as the problem grows.

Run:  python examples/multi_gpu_scaling.py
"""

import os
import time

import numpy as np

from repro.bc.api import betweenness_centrality
from repro.cluster import kids, scaling_sweep
from repro.graph.generators import delaunay_graph, watts_strogatz
from repro.parallel import parallel_betweenness_centrality


def real_parallel_demo() -> None:
    g = watts_strogatz(3000, k=8, p=0.1, seed=1)
    roots = np.arange(600)
    workers = min(4, os.cpu_count() or 1)
    print(f"Process-pool decomposition on {g.num_vertices}-vertex "
          f"small-world graph, {roots.size} roots:")

    t0 = time.perf_counter()
    serial = betweenness_centrality(g, sources=roots)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = parallel_betweenness_centrality(g, sources=roots,
                                               num_workers=workers)
    t_parallel = time.perf_counter() - t0

    assert np.allclose(serial, parallel), "decomposition must be exact"
    print(f"  serial   : {t_serial:6.2f} s")
    print(f"  {workers} workers: {t_parallel:6.2f} s "
          f"({t_serial / max(t_parallel, 1e-9):.2f}x, identical scores)")
    print("  (partition roots -> local accumulation -> reduce: the exact "
          "structure of the paper's MPI program)\n")


def simulated_cluster_demo() -> None:
    print("Simulated KIDS cluster (3x Tesla M2090 per node), "
          "speedup vs one node:")
    node_counts = (1, 4, 16, 64)
    header = "  {:<22}".format("graph")
    header += "".join(f"{n:>8}n" for n in node_counts)
    print(header)
    for scale in (13, 15):
        g = delaunay_graph(1 << scale, seed=0)
        g = g.with_name(f"delaunay_n{scale}")
        runs = scaling_sweep(g, kids(1), node_counts, sample_roots=12, seed=0)
        base = runs[0].seconds
        row = f"  {g.name:<22}"
        row += "".join(f"{base / r.seconds:8.1f}x" for r in runs)
        print(row)
    print("\nBigger problems scale closer to linear — the paper needed "
          "2^18 vertices for near-linear speedup on 64 nodes (Figure 6); "
          "the same bend shows here at smaller scales because fixed setup "
          "and reduction costs amortise only against enough per-GPU work.")


if __name__ == "__main__":
    real_parallel_demo()
    simulated_cluster_demo()
