#!/usr/bin/env python3
"""Tracking centrality in an evolving network.

The paper motivates normalised BC for "comparing discrete slices of a
network that changes over time" (Section II-B) and the authors'
companion work targets dynamic GPU graph analytics.  This example
maintains exact BC scores of a growing social network *incrementally*:
each new friendship triggers a source-filtered update
(`repro.bc.dynamic`) instead of a full O(nm) recomputation, and the
realised savings are reported.

Run:  python examples/dynamic_network.py
"""

import numpy as np

from repro import betweenness_centrality, normalize_bc
from repro.bc.dynamic import insert_edge
from repro.graph.generators import watts_strogatz


def main() -> None:
    g = watts_strogatz(500, k=4, p=0.02, seed=3)
    bc = betweenness_centrality(g)
    n = g.num_vertices
    print(f"Initial network: {n} people, {g.num_edges} friendships")
    print(f"Most central person: {int(np.argmax(bc))} "
          f"(normalised score {normalize_bc(bc, n)[int(np.argmax(bc))]:.4f})")

    rng = np.random.default_rng(9)
    print("\nStreaming in 6 new friendships (triadic closure: friends of "
          "friends connect):")
    total_affected = 0
    for step in range(6):
        # Pick a friend-of-a-friend pair that is not yet connected —
        # how real social ties overwhelmingly form.
        while True:
            u = int(rng.integers(0, n))
            nbrs = g.neighbors(u)
            if nbrs.size == 0:
                continue
            mid = int(nbrs[rng.integers(0, nbrs.size)])
            two_hop = g.neighbors(mid)
            v = int(two_hop[rng.integers(0, two_hop.size)])
            if v != u and not np.any(g.neighbors(u) == v):
                break
        g, bc, stats = insert_edge(g, bc, u, v)
        total_affected += stats.num_affected
        leader = int(np.argmax(bc))
        print(f"  +({u:3d},{v:3d}): {stats.num_affected:4d}/{n} roots "
              f"recomputed ({stats.savings_fraction * 100:5.1f}% saved)  "
              f"top person now {leader}")

    # The incremental scores are exact — verify against a full run.
    full = betweenness_centrality(g)
    assert np.allclose(bc, full), "incremental must equal full recompute"
    print(f"\nVerified: incremental scores identical to a full recompute.")
    avg = total_affected / 6
    print(f"Average update cost: {avg:.0f} roots vs {n} for a full run "
          f"({(1 - avg / n) * 100:.0f}% cheaper) — locality of the new "
          "edges determines the saving (equidistant endpoints cost zero).")


if __name__ == "__main__":
    main()
