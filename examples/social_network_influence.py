#!/usr/bin/env python3
"""Social-network influence and community bridges.

BC was invented in the social sciences to find people "central to
networks who could influence others by withholding or altering
information" (paper Section II-B).  This example builds a
loc-gowalla-like geosocial network and contrasts two centrality
notions:

* **degree** — who has the most friends (hubs), versus
* **betweenness** — who *brokers* between groups (bridges).

It then shows why the adaptive strategies matter on this graph class:
the frontier balloons after two hops (Figure 3's small-world shape), so
the sampling method switches to edge-parallel mid-traversal.

Run:  python examples/social_network_influence.py [num_vertices]
"""

import sys

import numpy as np

from repro.bc.approx import approximate_bc
from repro.graph.generators import geosocial_graph
from repro.metrics.frontier import classify_frontier_shape, frontier_evolution
from repro.gpusim import Device, GTX_TITAN
from repro.harness.runner import pick_roots


def main(n: int = 15_000) -> None:
    g = geosocial_graph(n, exponent=2.25, min_degree=4,
                        hub_fraction_of_n=0.08, locality=0.6,
                        locality_window=0.01, seed=7)
    print(f"Geosocial network: {g.num_vertices} users, {g.num_edges} "
          f"friendships, biggest hub has {g.max_degree} friends")

    # ------------------------------------------------------------------
    # 1. Hubs vs brokers.
    # ------------------------------------------------------------------
    bc = approximate_bc(g, k=min(192, n), seed=3)
    deg = g.degrees
    top_deg = set(np.argsort(deg)[::-1][:20].tolist())
    top_bc = set(np.argsort(bc)[::-1][:20].tolist())
    overlap = len(top_deg & top_bc)
    print(f"\nTop-20 by degree vs top-20 by betweenness: {overlap} users "
          "in common.")
    brokers = sorted(top_bc - top_deg, key=lambda v: -bc[v])[:5]
    if brokers:
        print("Brokers (high betweenness, modest degree — they connect "
              "regions rather than crowds):")
        for v in brokers:
            print(f"  user {int(v)}: degree {int(deg[v])}, "
                  f"BC score {bc[v]:.0f}")

    # ------------------------------------------------------------------
    # 2. The small-world frontier shape that drives the hybrid strategy.
    # ------------------------------------------------------------------
    root = int(np.argsort(deg)[len(deg) // 2])  # a typical user
    evo = frontier_evolution(g, root)
    print(f"\nBFS frontier from user {root}: "
          f"{[int(s) for s in evo.sizes.tolist()]}")
    print(f"Peak frontier: {evo.peak_percentage:.1f}% of the network "
          f"after {int(np.argmax(evo.sizes))} hops "
          f"-> classified '{classify_frontier_shape(evo)}'")

    # ------------------------------------------------------------------
    # 3. Strategy choice on this structure (simulated GPU).
    # ------------------------------------------------------------------
    device = Device(GTX_TITAN)
    roots = pick_roots(g, 12, seed=0)
    run = device.run_bc(g, strategy="sampling", roots=roots, n_samps=4,
                        min_frontier=64)
    print(f"\nSampling method classified the graph as small-world: "
          f"{run.sampling_chose_edge_parallel}")
    used = set()
    for rt in run.trace.roots:
        used.update(rt.strategies_used())
    print(f"Per-iteration strategies used across roots: {sorted(used)}")
    ep = device.run_bc(g, strategy="edge-parallel", roots=roots)
    we = device.run_bc(g, strategy="work-efficient", roots=roots)
    print(f"Simulated cost — edge-parallel {ep.extrapolated_seconds():.2f}s, "
          f"work-efficient {we.extrapolated_seconds():.2f}s, "
          f"sampling {run.extrapolated_seconds():.2f}s")
    print("On ballooning frontiers the work-efficient method's load "
          "imbalance bites; the adaptive methods stay at edge-parallel "
          "parity or better (paper Figure 4).")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 15_000)
