"""Cluster topology description.

The preset mirrors KIDS: each node hosts two Xeon X5660s (not modelled
— BC never touches the host CPUs except for MPI) and three Tesla
M2090 GPUs; nodes are connected by Infiniband QDR (Section V-A).  The
paper's largest runs use 64 nodes = 192 GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ClusterConfigurationError
from ..gpusim.spec import TESLA_M2090, GPUSpec
from .interconnect import INFINIBAND_QDR, PCIE2_X16, LinkModel

__all__ = ["ClusterSpec", "kids"]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous multi-node GPU cluster."""

    name: str
    num_nodes: int
    gpus_per_node: int
    gpu: GPUSpec
    network: LinkModel = INFINIBAND_QDR
    pcie: LinkModel = PCIE2_X16
    #: Fixed per-run overhead (MPI launch, context creation, graph load);
    #: this is what bends the small-scale speedup curves of Figure 6.
    setup_seconds: float = 2.0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ClusterConfigurationError("num_nodes must be >= 1")
        if self.gpus_per_node < 1:
            raise ClusterConfigurationError("gpus_per_node must be >= 1")
        if self.setup_seconds < 0:
            raise ClusterConfigurationError("setup_seconds must be >= 0")

    @property
    def num_gpus(self) -> int:
        """Total GPUs across the cluster."""
        return self.num_nodes * self.gpus_per_node

    def with_nodes(self, num_nodes: int) -> "ClusterSpec":
        """Same cluster at a different node count (Figure 6 sweeps)."""
        return ClusterSpec(
            name=self.name,
            num_nodes=int(num_nodes),
            gpus_per_node=self.gpus_per_node,
            gpu=self.gpu,
            network=self.network,
            pcie=self.pcie,
            setup_seconds=self.setup_seconds,
        )


def kids(num_nodes: int = 64) -> ClusterSpec:
    """The Keeneland Initial Delivery System at ``num_nodes`` nodes."""
    return ClusterSpec(
        name="KIDS",
        num_nodes=int(num_nodes),
        gpus_per_node=3,
        gpu=TESLA_M2090,
    )
