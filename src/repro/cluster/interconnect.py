"""Interconnect models for the simulated cluster.

KIDS (Keeneland Initial Delivery System, Section V-A) connects nodes
with Infiniband QDR and attaches three Tesla M2090s per node over
PCIe 2.0 x16.  The model is the usual alpha-beta (latency + bytes /
bandwidth) cost with tree-structured collectives — the MPI_Bcast that
replicates the graph and the MPI_Reduce that combines per-node BC
vectors (Section V-D).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ClusterConfigurationError

__all__ = ["LinkModel", "INFINIBAND_QDR", "PCIE2_X16"]


@dataclass(frozen=True)
class LinkModel:
    """Alpha-beta point-to-point link."""

    name: str
    latency_s: float
    bandwidth_bytes_per_s: float

    def __post_init__(self) -> None:
        if self.latency_s < 0:
            raise ClusterConfigurationError("latency must be non-negative")
        if self.bandwidth_bytes_per_s <= 0:
            raise ClusterConfigurationError("bandwidth must be positive")

    def transfer_seconds(self, nbytes: int) -> float:
        """Point-to-point time for one message."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        return self.latency_s + nbytes / self.bandwidth_bytes_per_s

    def tree_collective_seconds(self, nbytes: int, num_ranks: int) -> float:
        """Binomial-tree broadcast/reduce across ``num_ranks`` ranks."""
        if num_ranks < 1:
            raise ClusterConfigurationError("num_ranks must be >= 1")
        if num_ranks == 1:
            return 0.0
        rounds = math.ceil(math.log2(num_ranks))
        return rounds * self.transfer_seconds(nbytes)


#: QDR Infiniband: ~32 Gbit/s effective, microsecond-scale MPI latency.
INFINIBAND_QDR = LinkModel(
    name="Infiniband QDR",
    latency_s=1.5e-6,
    bandwidth_bytes_per_s=4.0e9,
)

#: PCIe 2.0 x16 host<->GPU link (~6 GB/s effective).
PCIE2_X16 = LinkModel(
    name="PCIe 2.0 x16",
    latency_s=10e-6,
    bandwidth_bytes_per_s=6.0e9,
)
