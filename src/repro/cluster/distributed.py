"""Distributed betweenness centrality (Section V-D).

Two layers:

* :func:`distributed_bc_values` — a *value-exact* MPI-style program:
  roots are block-partitioned over ranks, each rank accumulates a local
  BC vector with the single-GPU engine's public API, and the vectors
  are summed with :class:`~repro.cluster.mpi_sim.SimComm`'s ``reduce``.
  This is the program structure the paper runs on KIDS, minus the
  hardware.
* :func:`simulate_distributed_run` — the *performance* model behind
  Figure 6 and Table IV: per-root simulated cycle costs are measured on
  a sample of roots with the single-GPU device, bootstrapped to the
  full root set, block-partitioned across all GPUs, and combined with
  the graph-broadcast / score-reduce communication costs and the fixed
  per-run setup overhead that bends the small-scale speedup curves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bc.api import betweenness_centrality
from ..errors import ClusterConfigurationError
from ..graph.csr import CSRGraph
from ..gpusim.device import Device
from ..gpusim.memory import FLOAT_BYTES, graph_footprint
from .mpi_sim import SimComm
from .topology import ClusterSpec

__all__ = [
    "partition_roots",
    "distributed_bc_values",
    "ClusterRun",
    "simulate_distributed_run",
    "scaling_sweep",
]


def partition_roots(num_roots: int, num_parts: int) -> list:
    """Contiguous block partition of roots 0..num_roots-1 (the paper
    distributes "a subset of roots to each GPU").

    When ``num_parts > num_roots`` some parts are empty arrays.  Ranks
    handed an empty part are *not* dropped from the program: in
    :func:`distributed_bc_values` (and the resilient driver) they
    contribute an all-zero vector to the reduce, which the test suite
    verifies leaves the result exact.
    """
    if num_parts < 1:
        raise ClusterConfigurationError("num_parts must be >= 1")
    if num_roots < 0:
        raise ClusterConfigurationError("num_roots must be >= 0")
    bounds = np.linspace(0, num_roots, num_parts + 1).astype(np.int64)
    return [np.arange(bounds[i], bounds[i + 1], dtype=np.int64)
            for i in range(num_parts)]


def distributed_bc_values(
    g: CSRGraph, num_ranks: int, comm: SimComm | None = None
) -> np.ndarray:
    """Exact BC via the rank-parallel decomposition + reduce.

    Equivalent to :func:`repro.bc.betweenness_centrality`; the test
    suite asserts bit-for-bit-close equality for any rank count.
    """
    if comm is None:
        comm = SimComm(num_ranks)
    elif comm.size != num_ranks:
        raise ClusterConfigurationError("communicator size mismatch")
    parts = partition_roots(g.num_vertices, num_ranks)
    # Each rank computes its local copy of the BC scores; a rank whose
    # part is empty (more ranks than roots) contributes the zero vector.
    locals_ = [betweenness_centrality(g, sources=part) for part in parts]
    # ...which are reduced into the global scores (MPI_Reduce).
    return comm.reduce(locals_, root=0)


@dataclass(frozen=True)
class ClusterRun:
    """Simulated multi-node run outcome (one Figure 6 data point)."""

    graph: str
    cluster_nodes: int
    num_gpus: int
    num_vertices: int
    num_edges: int
    seconds: float
    compute_seconds: float
    broadcast_seconds: float
    reduce_seconds: float
    setup_seconds: float

    def teps(self) -> float:
        """Eq. 4 over the full n-root computation."""
        if self.seconds <= 0:
            return float("inf")
        return self.num_edges * self.num_vertices / self.seconds

    def gteps(self) -> float:
        return self.teps() / 1e9


def _per_gpu_makespan(root_cycles: np.ndarray, num_sms: int) -> float:
    """Lower-bound makespan of one GPU's root list over its SMs: the
    larger of perfect division and the single longest root."""
    if root_cycles.size == 0:
        return 0.0
    return max(float(root_cycles.sum()) / num_sms, float(root_cycles.max()))


def simulate_distributed_run(
    g: CSRGraph,
    cluster: ClusterSpec,
    strategy: str = "sampling",
    sample_roots: int = 64,
    seed: int = 0,
    device: Device | None = None,
    measured_cycles: np.ndarray | None = None,
) -> ClusterRun:
    """Model a full n-root BC run on ``cluster``.

    ``sample_roots`` sources are actually executed on a single
    simulated GPU to obtain the empirical per-root cycle distribution;
    the remaining roots' costs are bootstrap-resampled from it (valid
    per the paper's uniform-per-root-cost argument, and the resampling
    retains the variance that causes small-scale load imbalance).
    Pass ``measured_cycles`` to reuse a distribution measured earlier
    (the Figure 6 sweep shares one sample across node counts).
    """
    n = g.num_vertices
    rng = np.random.default_rng(seed)
    if measured_cycles is not None:
        measured = np.asarray(measured_cycles, dtype=np.float64)
    else:
        if device is None:
            device = Device(cluster.gpu)
        k = min(int(sample_roots), n)
        sampled = rng.choice(n, size=k, replace=False) if k else np.empty(0, np.int64)
        run = device.run_bc(g, strategy=strategy, roots=sampled,
                            n_samps=min(64, max(1, k // 2)))
        measured = np.array([rt.cycles for rt in run.trace.roots], dtype=np.float64)
    if measured.size == 0:
        measured = np.array([0.0])
    # Bootstrap every root's cost from the empirical distribution.
    all_cycles = rng.choice(measured, size=n, replace=True)

    num_gpus = cluster.num_gpus
    parts = partition_roots(n, num_gpus)
    per_gpu = np.array([
        _per_gpu_makespan(all_cycles[p], cluster.gpu.num_sms) for p in parts
    ])
    compute_s = cluster.gpu.seconds(float(per_gpu.max(initial=0.0)))

    # Graph replication: Infiniband tree broadcast to every node, then a
    # PCIe copy to each of the node's GPUs (sequential per node: one
    # host link feeds all three cards).
    gbytes = graph_footprint(g)
    bcast_s = cluster.network.tree_collective_seconds(gbytes, cluster.num_nodes)
    bcast_s += cluster.gpus_per_node * cluster.pcie.transfer_seconds(gbytes)

    # Score reduction: GPUs -> host over PCIe, host vectors -> root via
    # an MPI_Reduce tree (Section V-D).
    sbytes = n * FLOAT_BYTES
    reduce_s = cluster.gpus_per_node * cluster.pcie.transfer_seconds(sbytes)
    reduce_s += cluster.network.tree_collective_seconds(sbytes, cluster.num_nodes)

    total = cluster.setup_seconds + bcast_s + compute_s + reduce_s
    return ClusterRun(
        graph=g.name or "graph",
        cluster_nodes=cluster.num_nodes,
        num_gpus=num_gpus,
        num_vertices=n,
        num_edges=g.num_edges,
        seconds=total,
        compute_seconds=compute_s,
        broadcast_seconds=bcast_s,
        reduce_seconds=reduce_s,
        setup_seconds=cluster.setup_seconds,
    )


def scaling_sweep(
    g: CSRGraph,
    cluster: ClusterSpec,
    node_counts,
    strategy: str = "sampling",
    sample_roots: int = 64,
    seed: int = 0,
) -> list:
    """Run :func:`simulate_distributed_run` at several node counts
    (one Figure 6 curve); the per-root sample is shared across points."""
    n = g.num_vertices
    rng = np.random.default_rng(seed)
    device = Device(cluster.gpu)
    k = min(int(sample_roots), n)
    sampled = rng.choice(n, size=k, replace=False) if k else np.empty(0, np.int64)
    run = device.run_bc(g, strategy=strategy, roots=sampled,
                        n_samps=min(64, max(1, k // 2)))
    measured = np.array([rt.cycles for rt in run.trace.roots], dtype=np.float64)
    runs = []
    for nodes in node_counts:
        runs.append(
            simulate_distributed_run(
                g, cluster.with_nodes(int(nodes)), strategy=strategy,
                sample_roots=sample_roots, seed=seed,
                measured_cycles=measured,
            )
        )
    return runs
