"""Multi-node substrate: interconnect/topology models, MPI-like
communicator, distributed BC."""

from .distributed import (
    ClusterRun,
    distributed_bc_values,
    partition_roots,
    scaling_sweep,
    simulate_distributed_run,
)
from .interconnect import INFINIBAND_QDR, PCIE2_X16, LinkModel
from .mpi_sim import SimComm
from .topology import ClusterSpec, kids

__all__ = [
    "LinkModel",
    "INFINIBAND_QDR",
    "PCIE2_X16",
    "ClusterSpec",
    "kids",
    "SimComm",
    "partition_roots",
    "distributed_bc_values",
    "ClusterRun",
    "simulate_distributed_run",
    "scaling_sweep",
]
