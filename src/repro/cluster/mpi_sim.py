"""In-process MPI-like communicator.

mpi4py is not available in this environment, so the multi-GPU program
structure of Section V-D (replicate the graph, partition roots,
accumulate local BC vectors, ``MPI_Reduce`` into global scores) is
exercised against this single-process communicator.  Collectives
operate on *lists of per-rank values* and follow mpi4py semantics:
lowercase names for generic objects, capitalised behaviour (elementwise
NumPy reduction) is what ``reduce``/``allreduce`` do when the values
are arrays.

Every collective also charges simulated communication time against an
optional :class:`~repro.cluster.interconnect.LinkModel`, accumulated in
:attr:`SimComm.elapsed_comm_seconds`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import CommunicatorError
from ..observability.registry import NULL_REGISTRY
from .interconnect import LinkModel

__all__ = ["SimComm"]


def _nbytes(value) -> int:
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(value, (list, tuple)):
        return sum(_nbytes(v) for v in value)
    return 64  # generic pickled-object estimate


class SimComm:
    """A simulated communicator over ``size`` ranks.

    Parameters
    ----------
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`; every
        collective records ``comm.calls``/``comm.bytes``/``comm.seconds``
        counters labelled by operation.  All values are simulated, so
        they export deterministically.  Each call is also appended to
        :attr:`timeline` — ``(op, nbytes, seconds)`` dicts in program
        order — which distributed drivers use to reconstruct per-rank
        communication timelines, and recorded as a ``comm.op`` trace
        event so ``repro.trace/v1`` documents carry the collective
        timeline next to the strategy decisions.
    """

    def __init__(self, size: int, link: LinkModel | None = None,
                 metrics=None):
        if size < 1:
            raise CommunicatorError("communicator size must be >= 1")
        self.size = int(size)
        self.link = link
        self.elapsed_comm_seconds = 0.0
        self.metrics = NULL_REGISTRY if metrics is None else metrics
        self.timeline: list = []

    # ------------------------------------------------------------------
    def _check_rank(self, rank: int) -> int:
        rank = int(rank)
        if not 0 <= rank < self.size:
            raise CommunicatorError(f"rank {rank} out of range [0, {self.size})")
        return rank

    def _check_values(self, values: Sequence) -> None:
        if len(values) != self.size:
            raise CommunicatorError(
                f"expected {self.size} per-rank values, got {len(values)}"
            )

    def _charge(self, nbytes: int, tree: bool = True, op: str = "collective") -> None:
        seconds = 0.0
        if self.link is not None:
            if tree:
                seconds = self.link.tree_collective_seconds(nbytes, self.size)
            else:
                seconds = self.link.transfer_seconds(nbytes)
            self.elapsed_comm_seconds += seconds
        self.timeline.append({"op": op, "nbytes": int(nbytes),
                              "seconds": seconds})
        self.metrics.inc("comm.calls", op=op)
        self.metrics.inc("comm.bytes", nbytes, op=op)
        self.metrics.inc("comm.seconds", seconds, op=op)
        self.metrics.record("comm.op", op=op, nbytes=int(nbytes),
                            seconds=float(seconds), size=self.size)

    # ------------------------------------------------------------------
    def bcast(self, value, root: int = 0):
        """Return the root's value as every rank's value."""
        self._check_rank(root)
        self._charge(_nbytes(value), op="bcast")
        return [value for _ in range(self.size)]

    def scatter(self, values: Sequence, root: int = 0):
        """Distribute one value to each rank from the root's list."""
        self._check_rank(root)
        self._check_values(values)
        self._charge(_nbytes(values), op="scatter")
        return list(values)

    def gather(self, values: Sequence, root: int = 0):
        """Collect every rank's value at the root."""
        self._check_rank(root)
        self._check_values(values)
        self._charge(_nbytes(values), op="gather")
        return list(values)

    def allgather(self, values: Sequence):
        """Every rank receives every value."""
        self._check_values(values)
        self._charge(_nbytes(values), op="allgather")
        return [list(values) for _ in range(self.size)]

    def _check_reduce_shapes(self, values: Sequence) -> None:
        """Array contributions to a reduction must agree on shape; a
        mismatch would otherwise surface as a bare NumPy broadcast
        error (or worse, silently broadcast) deep inside ``op``."""
        shape = None
        for rank, v in enumerate(values):
            if not isinstance(v, np.ndarray):
                continue
            if shape is None:
                shape = v.shape
            elif v.shape != shape:
                raise CommunicatorError(
                    f"reduce shape mismatch: rank {rank} contributed "
                    f"{v.shape}, expected {shape}"
                )

    def reduce(self, values: Sequence, op: Callable = None, root: int = 0):
        """Combine per-rank values at the root (elementwise sum for
        NumPy arrays by default — the Section V-D score reduction).

        A custom ``op`` moves the same bytes up the reduction tree as
        the default sum, so both paths charge identically.
        """
        self._check_rank(root)
        self._check_values(values)
        self._check_reduce_shapes(values)
        # One per-rank payload travels each tree edge regardless of the
        # combining operator: charge the same bytes on both paths.
        self._charge(_nbytes(values[0]), op="reduce")
        if op is None:
            acc = values[0].copy() if isinstance(values[0], np.ndarray) else values[0]
            for v in values[1:]:
                acc = acc + v
        else:
            acc = values[0]
            for v in values[1:]:
                acc = op(acc, v)
        return acc

    def allreduce(self, values: Sequence, op: Callable = None):
        """Reduce then make the result visible to all ranks."""
        acc = self.reduce(values, op=op, root=0)
        self._charge(_nbytes(acc), op="allreduce")
        return [acc.copy() if isinstance(acc, np.ndarray) else acc
                for _ in range(self.size)]

    def barrier(self) -> None:
        """Synchronise (charges one empty tree collective)."""
        self._charge(0, op="barrier")
