"""Exception hierarchy for the ``repro`` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except``.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "GraphStructureError",
    "DeviceOutOfMemoryError",
    "DeviceConfigurationError",
    "StrategyError",
    "ClusterConfigurationError",
    "CommunicatorError",
    "FaultSpecError",
    "TraceFormatError",
    "BenchFormatError",
    "RankFailure",
    "RetryExhaustedError",
    "SilentCorruptionError",
    "WorkerPoolError",
    "ServiceError",
    "JobSpecError",
    "JobNotFoundError",
    "JournalCorruptionError",
    "ServiceOverloadError",
    "CircuitOpenError",
    "DeadlineExceededError",
    "StorageFullError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphFormatError(ReproError):
    """A graph file or edge list could not be parsed."""


class GraphStructureError(ReproError):
    """A graph violates a structural requirement (e.g. bad CSR arrays)."""


class DeviceOutOfMemoryError(ReproError):
    """A simulated device allocation exceeded the device memory capacity.

    Mirrors the behaviour the paper reports for GPU-FAN, whose
    O(n^2) predecessor structure exhausts the 6 GB of a GTX Titan for
    graphs beyond a modest scale (Section V-B, Figure 5).
    """

    def __init__(self, requested: int, in_use: int, capacity: int, what: str = ""):
        self.requested = int(requested)
        self.in_use = int(in_use)
        self.capacity = int(capacity)
        self.what = what
        super().__init__(
            f"device OOM allocating {requested} bytes"
            + (f" for {what!r}" if what else "")
            + f": {in_use} bytes already in use of {capacity} capacity"
        )


class DeviceConfigurationError(ReproError):
    """A simulated device/GPU specification is invalid."""


class StrategyError(ReproError):
    """An unknown or misconfigured BC parallelisation strategy."""


class ClusterConfigurationError(ReproError):
    """A simulated cluster/topology specification is invalid."""


class CommunicatorError(ReproError):
    """Misuse of the in-process MPI-like communicator."""


class FaultSpecError(ReproError):
    """An invalid fault-injection plan or fault spec string."""


class TraceFormatError(ReproError):
    """A decision-trace file is not a valid ``repro.trace/v1`` document."""


class BenchFormatError(ReproError):
    """A benchmark-results file is not a valid ``repro.bench/v1``
    document (or two documents being diffed are incomparable)."""


class RankFailure(ReproError):
    """A simulated rank fail-stopped.

    Raised by the fault-injection layer (:mod:`repro.resilience`) when a
    rank dies at a collective or mid-compute.  Carries enough context
    for the resilient driver to re-partition the rank's orphaned roots.
    """

    def __init__(self, rank: int, where: str = "compute", roots_done: int = 0):
        self.rank = int(rank)
        self.where = str(where)
        self.roots_done = int(roots_done)
        super().__init__(
            f"rank {self.rank} fail-stopped at {self.where!r}"
            + (f" after {self.roots_done} roots" if self.roots_done else "")
        )


class RetryExhaustedError(ReproError):
    """Recovery retries ran out before every root partition completed.

    The resilient driver only raises this when graceful degradation is
    explicitly disabled; the default policy degrades to a sampled
    estimate instead of raising.
    """

    def __init__(self, pending_roots: int, retries: int):
        self.pending_roots = int(pending_roots)
        self.retries = int(retries)
        super().__init__(
            f"{self.pending_roots} roots still pending after "
            f"{self.retries} retries"
        )


class SilentCorruptionError(ReproError):
    """An ABFT invariant check caught silently corrupted data.

    Raised by the verification layer (:mod:`repro.verify`) when a BC
    run's intermediate state (``dist``/``sigma``/``delta``/partial BC)
    violates an algorithmic invariant and no recovery path is
    available.  The resilient driver never lets this escape — it
    quarantines and recomputes the corrupted roots instead — but the
    bare device path raises it so a poisoned result cannot be returned
    as if it were healthy.
    """

    def __init__(self, violations, root: int | None = None):
        self.violations = list(violations)
        self.root = root
        head = "; ".join(str(v) for v in self.violations[:3])
        more = len(self.violations) - 3
        super().__init__(
            f"{len(self.violations)} invariant violation(s)"
            + (f" at root {root}" if root is not None else "")
            + (f": {head}" if head else "")
            + (f" (+{more} more)" if more > 0 else "")
        )


class WorkerPoolError(ReproError):
    """A process-pool worker crashed and serial recovery also failed."""


class ServiceError(ReproError):
    """Base class for errors raised by the BC service (:mod:`repro.service`)."""


class JobSpecError(ServiceError):
    """A submitted job specification is invalid."""


class JobNotFoundError(ServiceError):
    """A job id is unknown to the service."""

    def __init__(self, job_id: str):
        self.job_id = str(job_id)
        super().__init__(f"unknown job {self.job_id!r}")


class JournalCorruptionError(ServiceError):
    """A job-journal record *before the tail* failed its checksum or
    cannot be parsed.

    A corrupt/truncated **tail** record is a torn write (the expected
    outcome of ``kill -9`` mid-append) and is silently dropped on
    replay; corruption anywhere else means the journal file itself was
    damaged and recovery must not guess.
    """

    def __init__(self, path, line_no: int, reason: str):
        self.path = str(path)
        self.line_no = int(line_no)
        self.reason = str(reason)
        super().__init__(f"{self.path}:{self.line_no}: {self.reason}")


class ServiceOverloadError(ServiceError):
    """The service shed a job at admission (backpressure).

    Raised instead of queueing when the bounded queue is full or the
    tenant's quota is exhausted — the typed error load generators and
    clients key retry/"try later" behaviour on.  ``retry_after`` is the
    admission controller's hint (simulated seconds) for how long the
    client should wait before re-offering the job; :class:`BCClient
    <repro.client.BCClient>` uses it as the floor of its exponential
    backoff.
    """

    def __init__(self, reason: str, *, tenant: str = "", depth: int = 0,
                 limit: int = 0, retry_after: float | None = None):
        self.reason = str(reason)
        self.tenant = str(tenant)
        self.depth = int(depth)
        self.limit = int(limit)
        self.retry_after = None if retry_after is None else float(retry_after)
        detail = f" ({self.depth}/{self.limit})" if limit else ""
        who = f" for tenant {self.tenant!r}" if tenant else ""
        hint = (f"; retry after {self.retry_after:.3f}s"
                if self.retry_after is not None else "")
        super().__init__(f"job shed: {self.reason}{who}{detail}{hint}")


class CircuitOpenError(ServiceError):
    """The (graph, strategy) pair is quarantined by the circuit breaker.

    After ``threshold`` consecutive job failures on the same pair the
    scheduler stops burning retries on it and fails further jobs fast
    until a half-open probe succeeds.
    """

    def __init__(self, graph_key: str, strategy: str, failures: int):
        self.graph_key = str(graph_key)
        self.strategy = str(strategy)
        self.failures = int(failures)
        super().__init__(
            f"circuit open for ({self.graph_key}, {self.strategy}) after "
            f"{self.failures} consecutive failures"
        )


class StorageFullError(ServiceError):
    """A durable service write could not complete because the disk is
    full (``ENOSPC``), even after the service reclaimed space by
    compacting the journal and evicting unpinned cache entries.

    The write it reports was **not** acknowledged: the journal/cache
    were restored to their pre-write state, so nothing was half-done.
    Clients should treat it like overload — back off and retry.
    """

    def __init__(self, path: str, op: str, attempts: int = 1):
        self.path = str(path)
        self.op = str(op)
        self.attempts = int(attempts)
        super().__init__(
            f"disk full: {self.op} to {self.path!r} failed with ENOSPC "
            f"after {self.attempts} attempt(s) (space reclaim did not "
            f"free enough)"
        )


class DeadlineExceededError(ServiceError):
    """A job's simulated runtime exceeded its deadline and degradation
    was not allowed."""

    def __init__(self, job_id: str, deadline: float, needed: float):
        self.job_id = str(job_id)
        self.deadline = float(deadline)
        self.needed = float(needed)
        super().__init__(
            f"job {self.job_id!r} needs {self.needed:.4f}s simulated "
            f"compute but its deadline is {self.deadline:.4f}s"
        )
