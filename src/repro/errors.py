"""Exception hierarchy for the ``repro`` package.

All library-raised errors derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except``.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "GraphStructureError",
    "DeviceOutOfMemoryError",
    "DeviceConfigurationError",
    "StrategyError",
    "ClusterConfigurationError",
    "CommunicatorError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphFormatError(ReproError):
    """A graph file or edge list could not be parsed."""


class GraphStructureError(ReproError):
    """A graph violates a structural requirement (e.g. bad CSR arrays)."""


class DeviceOutOfMemoryError(ReproError):
    """A simulated device allocation exceeded the device memory capacity.

    Mirrors the behaviour the paper reports for GPU-FAN, whose
    O(n^2) predecessor structure exhausts the 6 GB of a GTX Titan for
    graphs beyond a modest scale (Section V-B, Figure 5).
    """

    def __init__(self, requested: int, in_use: int, capacity: int, what: str = ""):
        self.requested = int(requested)
        self.in_use = int(in_use)
        self.capacity = int(capacity)
        self.what = what
        super().__init__(
            f"device OOM allocating {requested} bytes"
            + (f" for {what!r}" if what else "")
            + f": {in_use} bytes already in use of {capacity} capacity"
        )


class DeviceConfigurationError(ReproError):
    """A simulated device/GPU specification is invalid."""


class StrategyError(ReproError):
    """An unknown or misconfigured BC parallelisation strategy."""


class ClusterConfigurationError(ReproError):
    """A simulated cluster/topology specification is invalid."""


class CommunicatorError(ReproError):
    """Misuse of the in-process MPI-like communicator."""
