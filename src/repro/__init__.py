"""repro — reproduction of "Scalable and High Performance Betweenness
Centrality on the GPU" (McLaughlin & Bader, SC 2014).

Quickstart
----------
>>> from repro import betweenness_centrality
>>> from repro.graph.generators import figure1_graph
>>> bc = betweenness_centrality(figure1_graph())

Simulated-GPU performance runs:

>>> from repro.gpusim import Device, GTX_TITAN
>>> run = Device(GTX_TITAN).run_bc(figure1_graph(), strategy="sampling")
>>> run.bc.shape
(9,)
"""

from .bc.api import betweenness_centrality
from .bc.approx import approximate_bc
from .bc.brandes import brandes_reference, normalize_bc
from .errors import (
    ClusterConfigurationError,
    CommunicatorError,
    DeviceConfigurationError,
    DeviceOutOfMemoryError,
    FaultSpecError,
    GraphFormatError,
    GraphStructureError,
    RankFailure,
    ReproError,
    RetryExhaustedError,
    StrategyError,
    WorkerPoolError,
)
from .graph.csr import CSRGraph
from .graph.build import from_edges, from_networkx

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "betweenness_centrality",
    "approximate_bc",
    "brandes_reference",
    "normalize_bc",
    "CSRGraph",
    "from_edges",
    "from_networkx",
    "ReproError",
    "GraphFormatError",
    "GraphStructureError",
    "DeviceOutOfMemoryError",
    "DeviceConfigurationError",
    "StrategyError",
    "ClusterConfigurationError",
    "CommunicatorError",
    "FaultSpecError",
    "RankFailure",
    "RetryExhaustedError",
    "WorkerPoolError",
]
