"""Benchmark trajectory: run the perf grid, diff it against a baseline.

``BENCH_baseline.json`` pins the repo's simulated performance — makespan
cycles, MTEPS, per-level totals for every (dataset, strategy) pair of
the benchmark grid.  This package is what makes that file *load-bearing*
instead of write-only:

* :func:`run_bench_grid` produces a ``repro.bench/v1`` document (the
  same sweep `benchmarks/baseline.py` commits);
* :func:`load_bench` / :func:`diff_bench` pair two documents by
  (dataset, strategy) and classify every pair — **regressed**,
  **improved**, **unchanged**, **missing**, **new** — under a
  noise-aware tolerance (relative threshold plus a minimum-effect
  floor, so a 5% swing on a 40-cycle run doesn't page anyone);
* the ``repro bench run|diff|report`` CLI commands render the verdict
  as a terminal table and a machine-readable ``repro.bench.diff/v1``
  report, exiting nonzero on regression — the ratcheting perf gate CI's
  ``perf-regression`` job runs against the committed baseline.

The grid body is simulated and therefore deterministic: an
identical-seed rerun diffs all-unchanged (delta exactly zero), so any
nonzero delta is a real behaviour change in the cost model, the engine
or a policy — not harness noise.
"""

from .grid import (
    BENCH_SCHEMA,
    DATASET_NAMES,
    STRATEGY_NAMES,
    default_n_samps,
    run_bench_grid,
)
from .regress import (
    DIFF_SCHEMA,
    BenchDiff,
    Comparison,
    diff_bench,
    load_bench,
)

__all__ = [
    "BENCH_SCHEMA",
    "DIFF_SCHEMA",
    "DATASET_NAMES",
    "STRATEGY_NAMES",
    "default_n_samps",
    "run_bench_grid",
    "load_bench",
    "diff_bench",
    "BenchDiff",
    "Comparison",
]
