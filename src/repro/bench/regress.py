"""Pairwise regression detection over ``repro.bench/v1`` documents.

Two bench documents are paired by ``(dataset, strategy)`` and each
pair's metric is classified under a noise-aware tolerance:

* **relative threshold** (``rel_tol``, default 5%): the change must
  exceed this fraction of the baseline value, and
* **minimum-effect floor** (``min_effect``): the absolute change must
  also exceed this — a 10% swing on a 40-cycle run is below the noise
  floor of any real measurement and must not page anyone.

Both conditions must hold for a pair to count as *regressed* or
*improved*; everything else is *unchanged*.  Pairs present on only one
side are *missing* (baseline-only — coverage was lost) or *new*
(current-only).  Whether "bigger is worse" is inferred from the metric:
cycles and seconds regress upward, (M)TEPS regress downward.

The grid body is deterministic, so an identical-seed rerun produces
delta == 0 for every pair — the all-unchanged verdict the CLI's
``repro bench diff`` acceptance test locks down.  A *regressed* verdict
therefore always reflects a real behaviour change (cost model, engine,
policy), and the tolerances exist for intentional-change review ("is
this 0.3% or 30%?"), not for flaky-harness suppression.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import BenchFormatError
from ..observability.export import load_json
from .grid import BENCH_SCHEMA

__all__ = [
    "DIFF_SCHEMA",
    "DEFAULT_METRIC",
    "DEFAULT_REL_TOL",
    "DEFAULT_MIN_EFFECT",
    "Comparison",
    "BenchDiff",
    "load_bench",
    "diff_bench",
]

DIFF_SCHEMA = "repro.bench.diff/v1"
DEFAULT_METRIC = "makespan_cycles"
DEFAULT_REL_TOL = 0.05
#: Minimum absolute change (in the metric's own units) for a pair to be
#: classified at all; defaults per metric below.
DEFAULT_MIN_EFFECT = {
    "makespan_cycles": 1e3,
    "sim_seconds": 1e-6,
    "mteps": 1.0,
    "extrapolated_mteps": 1.0,
    "levels_traced": 1.0,
    "bytes_allocated": 1024.0,
}

#: Metrics where a *larger* current value is an improvement.
_HIGHER_IS_BETTER = {"mteps", "extrapolated_mteps"}


def load_bench(path) -> dict:
    """Load and validate a ``repro.bench/v1`` document."""
    try:
        doc = load_json(path)
    except ValueError as exc:
        raise BenchFormatError(str(exc)) from exc
    if not isinstance(doc, dict) or doc.get("schema") != BENCH_SCHEMA:
        raise BenchFormatError(
            f"{path}: expected schema {BENCH_SCHEMA!r}, got "
            f"{doc.get('schema') if isinstance(doc, dict) else type(doc).__name__!r}"
        )
    results = doc.get("results")
    if not isinstance(results, list):
        raise BenchFormatError(f"{path}: missing or non-list 'results'")
    for i, row in enumerate(results):
        if not isinstance(row, dict) or "dataset" not in row \
                or "strategy" not in row:
            raise BenchFormatError(
                f"{path}: results[{i}] lacks dataset/strategy keys"
            )
    return doc


@dataclass(frozen=True)
class Comparison:
    """One (dataset, strategy) pair's verdict."""

    dataset: str
    strategy: str
    metric: str
    status: str            # regressed | improved | unchanged | missing | new
    baseline: float | None
    current: float | None
    delta: float | None    # current - baseline
    ratio: float | None    # current / baseline (None when baseline == 0)

    @property
    def pair(self) -> str:
        return f"{self.dataset}/{self.strategy}"

    def to_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "strategy": self.strategy,
            "metric": self.metric,
            "status": self.status,
            "baseline": self.baseline,
            "current": self.current,
            "delta": self.delta,
            "ratio": self.ratio,
        }


@dataclass
class BenchDiff:
    """The full verdict of one baseline-vs-current comparison."""

    metric: str
    rel_tol: float
    min_effect: float
    higher_is_better: bool
    rows: list = field(default_factory=list)
    config_warnings: list = field(default_factory=list)

    def by_status(self, status: str) -> list:
        return [r for r in self.rows if r.status == status]

    @property
    def regressed(self) -> list:
        return self.by_status("regressed")

    @property
    def has_regressions(self) -> bool:
        return bool(self.regressed)

    @property
    def exit_code(self) -> int:
        """Nonzero exactly when a regression was detected — what
        ``repro bench diff --fail-on-regression`` returns."""
        return 1 if self.has_regressions else 0

    def summary_counts(self) -> dict:
        counts = {s: 0 for s in
                  ("regressed", "improved", "unchanged", "missing", "new")}
        for r in self.rows:
            counts[r.status] += 1
        return counts

    def to_dict(self) -> dict:
        """Machine-readable ``repro.bench.diff/v1`` verdict."""
        return {
            "schema": DIFF_SCHEMA,
            "metric": self.metric,
            "rel_tol": self.rel_tol,
            "min_effect": self.min_effect,
            "higher_is_better": self.higher_is_better,
            "summary": self.summary_counts(),
            "regressions": [r.pair for r in self.regressed],
            "rows": [r.to_dict() for r in self.rows],
            "config_warnings": list(self.config_warnings),
            "verdict": "regressed" if self.has_regressions else "ok",
        }

    def render_table(self) -> str:
        """Terminal table, worst news first."""
        order = {"regressed": 0, "missing": 1, "improved": 2, "new": 3,
                 "unchanged": 4}
        rows = sorted(self.rows,
                      key=lambda r: (order[r.status], r.dataset, r.strategy))
        lines = [
            f"{'dataset':<20} {'strategy':<16} {'baseline':>14} "
            f"{'current':>14} {'change':>9}  status"
        ]
        for r in rows:
            base = "-" if r.baseline is None else f"{r.baseline:,.0f}"
            curr = "-" if r.current is None else f"{r.current:,.0f}"
            if r.baseline and r.delta is not None:
                change = f"{100.0 * r.delta / abs(r.baseline):+.1f}%"
            elif r.delta is not None:
                change = f"{r.delta:+.0f}"
            else:
                change = "-"
            flag = " <<<" if r.status == "regressed" else ""
            lines.append(
                f"{r.dataset:<20} {r.strategy:<16} {base:>14} "
                f"{curr:>14} {change:>9}  {r.status}{flag}"
            )
        counts = self.summary_counts()
        lines.append("")
        lines.append(
            f"metric={self.metric} rel_tol={self.rel_tol:g} "
            f"min_effect={self.min_effect:g}: "
            + ", ".join(f"{v} {k}" for k, v in counts.items() if v)
        )
        for w in self.config_warnings:
            lines.append(f"warning: {w}")
        if self.has_regressions:
            lines.append(
                "REGRESSED: " + ", ".join(r.pair for r in self.regressed)
            )
        else:
            lines.append("no regressions")
        return "\n".join(lines)


def _index(doc: dict, metric: str, path_label: str) -> dict:
    out = {}
    for row in doc["results"]:
        key = (row["dataset"], row["strategy"])
        if key in out:
            raise BenchFormatError(
                f"{path_label}: duplicate (dataset, strategy) pair {key}"
            )
        if metric in row and row[metric] is not None:
            out[key] = float(row[metric])
        else:
            out[key] = None
    return out


def _classify(baseline: float, current: float, rel_tol: float,
              min_effect: float, higher_is_better: bool) -> str:
    delta = current - baseline
    worse = -delta if higher_is_better else delta
    if abs(delta) <= min_effect:
        return "unchanged"
    scale = abs(baseline)
    if scale == 0.0:
        # Any above-floor change from a zero baseline is a real change.
        return "regressed" if worse > 0 else "improved"
    if abs(delta) / scale <= rel_tol:
        return "unchanged"
    return "regressed" if worse > 0 else "improved"


def diff_bench(
    baseline: dict,
    current: dict,
    metric: str = DEFAULT_METRIC,
    rel_tol: float = DEFAULT_REL_TOL,
    min_effect: float | None = None,
    higher_is_better: bool | None = None,
) -> BenchDiff:
    """Pair ``baseline`` and ``current`` by (dataset, strategy) and
    classify every pair; see the module docstring for the rules."""
    if rel_tol < 0:
        raise BenchFormatError("rel_tol must be non-negative")
    if min_effect is None:
        min_effect = DEFAULT_MIN_EFFECT.get(metric, 0.0)
    if min_effect < 0:
        raise BenchFormatError("min_effect must be non-negative")
    if higher_is_better is None:
        higher_is_better = metric in _HIGHER_IS_BETTER

    diff = BenchDiff(metric=metric, rel_tol=float(rel_tol),
                     min_effect=float(min_effect),
                     higher_is_better=bool(higher_is_better))

    base_cfg = baseline.get("config", {})
    curr_cfg = current.get("config", {})
    for key in sorted(set(base_cfg) | set(curr_cfg)):
        if base_cfg.get(key) != curr_cfg.get(key):
            diff.config_warnings.append(
                f"config mismatch: {key} baseline={base_cfg.get(key)!r} "
                f"current={curr_cfg.get(key)!r} — deltas may reflect the "
                f"config, not the code"
            )

    base_idx = _index(baseline, metric, "baseline")
    curr_idx = _index(current, metric, "current")
    for key in sorted(set(base_idx) | set(curr_idx)):
        dataset, strategy = key
        b = base_idx.get(key)
        c = curr_idx.get(key)
        if key not in curr_idx or c is None:
            status, delta, ratio = "missing", None, None
        elif key not in base_idx or b is None:
            status, delta, ratio = "new", None, None
        else:
            status = _classify(b, c, rel_tol, min_effect, higher_is_better)
            delta = c - b
            ratio = (c / b) if b != 0 else None
        diff.rows.append(Comparison(
            dataset=dataset, strategy=strategy, metric=metric,
            status=status, baseline=b, current=c, delta=delta, ratio=ratio,
        ))
    return diff
