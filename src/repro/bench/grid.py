"""The benchmark grid: every device strategy over the Table II sample.

One dataset per structural class (scale-free, mesh, Kronecker with
isolated vertices, road, small-world) × the five trackable strategies.
The document body (schema ``repro.bench/v1``) is *simulated* and
therefore byte-deterministic for a fixed config — makespan cycles,
simulated seconds, MTEPS, per-level totals — so perf diffs against it
are exact; wall-clock measurements of the Python harness itself live
under the single ``timing`` key the caller may attach.

The sampling strategy's run is configured so Algorithm 5's decision is
actually *exercised*, not just recorded: ``n_samps`` defaults to half
the benchmarked roots (:func:`default_n_samps`), leaving a non-empty
phase 2 that runs under the chosen method.  With the historical default
(512 samples > 16 roots) every root was consumed by the classification
phase, so ``sampling_chose_edge_parallel`` described a choice that never
ran a single root — and the per-row ``sampling_median_depth`` /
``sampling_depth_cutoff`` audit fields were unrecoverable.
"""

from __future__ import annotations

import numpy as np

from ..graph.generators import make_dataset
from ..gpusim import GTX_TITAN, Device
from ..observability import MetricsRegistry

__all__ = [
    "BENCH_SCHEMA",
    "DATASET_NAMES",
    "STRATEGY_NAMES",
    "default_n_samps",
    "run_bench_grid",
]

BENCH_SCHEMA = "repro.bench/v1"

#: One dataset per structural class, small enough for laptop CI.
DATASET_NAMES = (
    "caidaRouterLevel",   # scale-free
    "delaunay_n20",       # mesh
    "kron_g500-logn20",   # scale-free, isolated vertices
    "luxembourg.osm",     # road, high diameter
    "smallworld",         # small world
)

#: Strategies benchmarked (gpu-fan excluded: its O(n^2) predecessor
#: matrix is the Figure 5 failure mode, not a baseline to track).
STRATEGY_NAMES = (
    "work-efficient",
    "edge-parallel",
    "vertex-parallel",
    "hybrid",
    "sampling",
    "batched",
)


def default_n_samps(roots: int) -> int:
    """Sampling-phase size for a ``roots``-root benchmark run: half the
    roots (min 2), so the classified method actually processes the
    other half."""
    return max(2, int(roots) // 2)


def _sampling_decision(metrics: MetricsRegistry) -> dict | None:
    """The run's recorded Algorithm 5 classification event, if any
    (the ``batched`` strategy records the same depth rule under its own
    event name)."""
    for ev in metrics.events:
        if ev["event"] in ("decision.sampling", "decision.batched"):
            return ev
    return None


def run_bench_grid(
    scale_factor: int = 1024,
    roots: int = 16,
    seed: int = 0,
    n_samps: int | None = None,
    device: Device | None = None,
    datasets=DATASET_NAMES,
    strategies=STRATEGY_NAMES,
    wall_clock=None,
    include_service: bool = True,
    fold: bool = True,
):
    """Run the benchmark grid; returns ``(document, wall_per_run)``.

    Parameters
    ----------
    n_samps:
        Sampling-phase size for the ``sampling`` and ``batched``
        strategies (both classify via Algorithm 5's depth rule);
        defaults to :func:`default_n_samps` so the classification
        decision governs a non-empty steady phase.
    device:
        The device to benchmark (a fresh GTX Titan by default); tests
        inject a straggler-slowed device to prove the regression gate
        fires.
    wall_clock:
        Zero-argument wall-time source (defaults to
        ``time.perf_counter``); wall times are reported out-of-band in
        ``wall_per_run``, never in the document body.
    include_service:
        Also run the service load-generator scenarios
        (:func:`repro.service.service_bench_rows`) and append their
        ``dataset="service-load"`` rows, putting p50/p99 latency,
        throughput and shed rate under the same regression ratchet as
        kernel makespans.
    fold:
        Degree-1 folding preprocess (default on, matching
        :meth:`~repro.gpusim.Device.run_bc`); ``False`` reproduces the
        pre-fold baseline for before/after comparisons.  Each row
        reports the traversed core size either way.
    """
    if wall_clock is None:
        import time

        wall_clock = time.perf_counter
    if device is None:
        device = Device(GTX_TITAN)
    if n_samps is None:
        n_samps = default_n_samps(roots)
    results = []
    wall_per_run = {}
    for name in datasets:
        g = make_dataset(name, scale_factor=scale_factor, seed=seed)
        rng = np.random.default_rng(seed)
        sample = np.sort(rng.choice(g.num_vertices,
                                    size=min(roots, g.num_vertices),
                                    replace=False))
        for strategy in strategies:
            metrics = MetricsRegistry()
            kwargs = ({"n_samps": int(n_samps)}
                      if strategy in ("sampling", "batched") else {})
            t0 = wall_clock()
            run = device.run_bc(g, strategy=strategy, roots=sample,
                                metrics=metrics, fold=fold, **kwargs)
            wall_per_run[f"{name}/{strategy}"] = wall_clock() - t0
            levels = sum(len(rt.levels) for rt in run.trace.roots)
            decision = _sampling_decision(metrics)
            results.append({
                "dataset": name,
                "strategy": strategy,
                "num_vertices": int(g.num_vertices),
                "num_edges": int(g.num_edges),
                "core_vertices": (int(run.fold.core.num_vertices)
                                  if run.fold is not None
                                  else int(g.num_vertices)),
                "folded_vertices": (int(run.fold.num_folded)
                                    if run.fold is not None else 0),
                "num_roots": int(run.num_roots),
                "makespan_cycles": float(run.cycles),
                "sim_seconds": float(run.seconds),
                "mteps": float(run.mteps()),
                "extrapolated_mteps": float(run.extrapolated_mteps()),
                "levels_traced": int(levels),
                "bytes_allocated": int(sum(run.memory_report.values())),
                "sampling_chose_edge_parallel":
                    run.sampling_chose_edge_parallel,
                "sampling_median_depth":
                    None if decision is None else decision["median_depth"],
                "sampling_depth_cutoff":
                    None if decision is None else decision["depth_cutoff"],
            })
    if include_service:
        # Imported here, not at module top: bench is a dependency of the
        # service's load model, so the import must stay one-directional
        # at module-load time.
        from ..service.loadgen import service_bench_rows

        t0 = wall_clock()
        service_rows = service_bench_rows(seed=seed)
        wall_per_run["service-load"] = wall_clock() - t0
        results.extend(service_rows)
    doc = {
        "schema": BENCH_SCHEMA,
        "config": {
            "device": device.spec.name,
            "scale_factor": int(scale_factor),
            "roots": int(roots),
            "n_samps": int(n_samps),
            "seed": int(seed),
            "fold": bool(fold),
        },
        "results": results,
    }
    return doc, wall_per_run
