"""Fault-tolerant distributed BC driver.

:func:`resilient_distributed_bc` is the recovery-aware counterpart of
:func:`repro.cluster.distributed.distributed_bc_values`.  It exploits
the additive structure of Brandes's accumulation (Eq. 3: BC is a plain
sum of per-root dependency vectors), which makes the computation
naturally checkpointable and re-partitionable:

1. Roots are block-partitioned over ranks; each rank's partition is a
   **checkpointable unit**.  A completed unit's partial BC vector is
   written to the (simulated) host-side checkpoint store and survives
   the rank's later death.
2. A rank that fail-stops mid-compute loses its in-progress unit; its
   orphaned roots are re-partitioned across the survivors after an
   exponential backoff, up to ``max_retries`` rounds.  Transient faults
   (simulated :class:`~repro.errors.DeviceOutOfMemoryError`) are
   retried on the same rank.
3. A rank that dies *at the final reduce* loses nothing: its
   checkpointed partial is contributed from stable storage and the
   collective is re-entered with the survivors.
4. When retries are exhausted, no survivors remain, or the wall-clock
   budget is hit, the driver **degrades gracefully**: the unfinished
   roots' contribution is estimated by the Brandes–Pich sampled
   estimator (``repro.bc.approx`` style — sample ``k`` of the pending
   roots, rescale by ``pending / k``) and the result is flagged
   ``exact=False`` instead of raising.

5. Ranks that **lie** (the ``sdc`` fault kind — a silent bit-flip in a
   per-root array, a unit partial, or an in-flight reduce buffer) are
   caught by the ABFT invariant suite of :mod:`repro.verify` when a
   verification policy is active: the corrupted root (or unit) is
   quarantined and recomputed like any orphan, and the final reduce is
   checksummed against stable storage and re-entered on mismatch.

With no faults injected — or with any single fail-stop failure and at
least one retry — the returned values are bit-for-bit-close to the
serial :func:`repro.bc.betweenness_centrality`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..bc.accumulation import dependency_accumulation
from ..bc.frontier import forward_sweep
from ..bc.preprocess import FoldResult, fold_degree_one
from ..cluster.distributed import partition_roots
from ..cluster.mpi_sim import SimComm
from ..cluster.topology import ClusterSpec
from ..errors import (
    ClusterConfigurationError,
    RankFailure,
    RetryExhaustedError,
)
from ..graph.csr import CSRGraph
from ..gpusim.device import Device
from ..observability.clock import SpanClock
from ..observability.registry import NULL_REGISTRY
from ..verify import RootChecker, VerificationPolicy
from .faults import (
    ActiveFaults,
    FaultPlan,
    FaultyComm,
    OOM,
    FAIL_STOP,
    SDC,
    apply_sdc,
)

__all__ = [
    "CheckpointStore",
    "RankIncident",
    "ResilientRun",
    "estimate_per_root_seconds",
    "resilient_distributed_bc",
]


class CheckpointStore:
    """Host-side stable storage for completed partition units.

    One entry per rank: the elementwise sum of every unit that rank
    completed (a survivor may finish several units across recovery
    rounds; summing locally before the reduce is exactly what a real
    rank would do).  Entries survive their rank's death — that is the
    point of checkpointing — so the final reduce can still include a
    dead rank's finished work.
    """

    def __init__(self, num_ranks: int, num_vertices: int):
        self.num_ranks = int(num_ranks)
        self.num_vertices = int(num_vertices)
        self._partials: dict = {}
        self.completed_roots = 0
        self.units = 0

    def commit(self, rank: int, roots: np.ndarray, partial: np.ndarray) -> None:
        """Checkpoint one completed unit for ``rank``."""
        rank = int(rank)
        if rank in self._partials:
            self._partials[rank] = self._partials[rank] + partial
        else:
            self._partials[rank] = partial.copy()
        self.completed_roots += int(roots.size)
        self.units += 1

    def per_rank_values(self) -> list:
        """Per-rank vectors for the reduce; ranks that checkpointed
        nothing (zero roots, or died before finishing a unit)
        contribute zero vectors rather than being dropped."""
        zero = np.zeros(self.num_vertices, dtype=np.float64)
        return [self._partials.get(r, zero) for r in range(self.num_ranks)]


@dataclass(frozen=True)
class RankIncident:
    """One observed fault during a resilient run."""

    rank: int
    kind: str          # "fail-stop" | "oom" | "sdc"
    where: str         # "compute", a collective name, or (for sdc) the
                       # violated invariant ("range"/"sigma"/"checksum"/
                       # "partial"/"reduce"/...)
    attempt: int       # recovery round in which it fired (0 = first try)
    roots_lost: int    # orphaned roots that had to be reassigned


@dataclass
class ResilientRun:
    """Outcome record of one :func:`resilient_distributed_bc` run."""

    values: np.ndarray
    exact: bool
    num_ranks: int
    survivors: int
    total_roots: int
    completed_roots: int
    recomputed_roots: int
    degraded_roots: int
    retries: int
    incidents: list = field(default_factory=list)
    backoff_seconds: float = 0.0
    compute_seconds: float = 0.0
    #: Attribution overlay: simulated seconds spent on *recovery work*
    #: (recomputing orphaned units + backoff pauses).  Every second here
    #: is already counted once in ``compute_seconds`` or
    #: ``backoff_seconds`` — do NOT add it to them (doing exactly that
    #: was the old double-charge bug).
    recovery_seconds: float = 0.0
    comm_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    #: Simulated seconds charged for the degraded sampling estimate.
    degrade_seconds: float = 0.0
    #: Real wall seconds of the run (``elapsed_seconds`` minus charges).
    wall_seconds: float = 0.0
    #: Total charged simulated seconds; invariant:
    #: ``sim_seconds == compute_seconds + backoff_seconds + degrade_seconds``
    #: and ``elapsed_seconds == wall_seconds + sim_seconds`` — both the
    #: budget check and this report read the same
    #: :class:`~repro.observability.SpanClock`.
    sim_seconds: float = 0.0
    degrade_samples_used: int = 0
    #: Verification mode the run executed under ("off"/"sampled"/
    #: "paranoid").
    verification: str = "off"
    #: ABFT detections: invariant violations caught (per-root, partial,
    #: or reduce checksum).
    corruption_detected: int = 0
    #: Roots discarded after a detection and recomputed (or degraded).
    roots_requarantined: int = 0
    #: Checksummed-reduce re-entries after an in-flight corruption.
    reduce_retries: int = 0
    #: True when a reduce-level corruption could not be repaired within
    #: the retry budget; the values carry the corruption and the run is
    #: not exact.
    corrupted_reduce: bool = False

    @property
    def degraded(self) -> bool:
        """True when any root's contribution is a sampled estimate."""
        return self.degraded_roots > 0

    def summary(self) -> str:
        """Human-readable multi-line report (used by the CLI)."""
        lines = [
            f"ranks            : {self.num_ranks} ({self.survivors} survived)",
            f"roots            : {self.total_roots} total / "
            f"{self.completed_roots} exact / {self.degraded_roots} degraded",
            f"recovery         : {self.retries} retry round(s), "
            f"{self.recomputed_roots} roots recomputed",
            f"verification     : {self.verification} "
            f"({self.corruption_detected} detection(s), "
            f"{self.roots_requarantined} roots requarantined, "
            f"{self.reduce_retries} reduce retry(s))",
            f"incidents        : {len(self.incidents)}",
        ]
        for inc in self.incidents:
            lines.append(
                f"  - rank {inc.rank} {inc.kind} at {inc.where!r} "
                f"(attempt {inc.attempt}, {inc.roots_lost} roots orphaned)"
            )
        lines.append(
            f"charged seconds  : compute={self.compute_seconds:.4f} "
            f"backoff={self.backoff_seconds:.4f} "
            f"degrade={self.degrade_seconds:.4f} "
            f"comm={self.comm_seconds:.6f} "
            f"(of which recovery={self.recovery_seconds:.4f})"
        )
        verdict = "EXACT" if self.exact else "DEGRADED"
        if self.corrupted_reduce:
            verdict += " (unrepaired reduce corruption)"
        lines.append(f"result           : {verdict}")
        return "\n".join(lines)


def estimate_per_root_seconds(
    g: CSRGraph,
    cluster: ClusterSpec,
    sample_roots: int = 8,
    seed: int = 0,
) -> float:
    """Per-root wall seconds on one of ``cluster``'s GPUs.

    Measures a root sample on the simulated device (as
    :func:`repro.cluster.distributed.simulate_distributed_run` does)
    and divides the mean per-root cycles by the SM concurrency — the
    charge rate the resilient driver uses to cost recovery work.
    """
    n = g.num_vertices
    rng = np.random.default_rng(seed)
    k = min(int(sample_roots), n)
    if k == 0:
        return 0.0
    sampled = rng.choice(n, size=k, replace=False)
    run = Device(cluster.gpu).run_bc(g, strategy="work-efficient", roots=sampled)
    cycles = np.array([rt.cycles for rt in run.trace.roots], dtype=np.float64)
    if cycles.size == 0:
        return 0.0
    return cluster.gpu.seconds(float(cycles.mean()) / cluster.gpu.num_sms)


def _redistribute(orphans: np.ndarray, survivors: list) -> dict:
    """Re-partition orphaned roots across the surviving ranks."""
    parts = partition_roots(orphans.size, len(survivors))
    return {rank: orphans[part] for rank, part in zip(survivors, parts)}


def resilient_distributed_bc(
    g: CSRGraph,
    num_ranks: int,
    *,
    fault_plan: FaultPlan | None = None,
    comm: FaultyComm | None = None,
    max_retries: int = 3,
    backoff_base: float = 0.05,
    wall_clock_budget: float | None = None,
    per_root_seconds: float = 0.0,
    degrade_samples: int = 8,
    degrade: bool = True,
    seed: int = 0,
    metrics=None,
    clock: SpanClock | None = None,
    verify="off",
    fold: bool | FoldResult = True,
) -> ResilientRun:
    """Exact distributed BC that survives injected rank failures.

    Parameters
    ----------
    fault_plan:
        The adversary (see :class:`repro.resilience.FaultPlan`); ``None``
        runs fault-free.
    comm:
        A prepared :class:`FaultyComm` (must match ``num_ranks``); built
        from ``fault_plan`` when omitted.
    max_retries:
        Recovery rounds after the first attempt.  Each round reassigns
        the orphaned roots across survivors after an exponential
        backoff (``backoff_base * 2**(round-1)`` simulated seconds).
    wall_clock_budget:
        Cap, in seconds, on real elapsed time plus charged simulated
        time (compute + backoff); when exceeded, remaining roots are
        degraded immediately.
    per_root_seconds:
        Charge rate for simulated compute time (see
        :func:`estimate_per_root_seconds`); ``0.0`` charges only
        backoff and communication.
    degrade_samples:
        Roots sampled for the degraded estimate of unfinished work.
    degrade:
        When ``False``, raise :class:`~repro.errors.RetryExhaustedError`
        instead of degrading (strict mode).
    seed:
        Seed for the degradation sampler.
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`; records
        ``resilience.*`` counters (incidents by kind/where, retries,
        recomputed/degraded roots) and per-rank compute spans (the
        per-rank timeline).  Defaults to the no-op registry.
    clock:
        The :class:`~repro.observability.SpanClock` both the wall-clock
        budget check and the final ``elapsed_seconds`` report read.
        Defaults to ``metrics.clock`` when a registry is given, else a
        fresh clock.  Simulated charges (compute makespan, backoff,
        degrade sampling) are advanced on it exactly once each, so the
        two paths cannot disagree.
    verify:
        A :class:`~repro.verify.VerificationPolicy`, a mode string
        (``"off"``/``"sampled"``/``"paranoid"``), or ``None``.  When
        enabled, every checked root runs the ABFT invariant suite; a
        root caught corrupted (an ``sdc`` bit-flip in its ``sigma``/
        ``dist``/``delta``) is **quarantined** — discarded and re-run in
        the next recovery round like an orphan of a crashed rank.  A
        corrupted unit-level partial discards the whole unit.  The final
        reduce is checksummed against the stable-storage partials and
        re-entered on mismatch (the injector corrupts in-flight copies,
        so redundant reduction heals).  Budget exhaustion degrades as
        usual, with the corruption surfaced in the returned record
        instead of silently poisoning the values.
    fold:
        Degree-1 folding (:mod:`repro.bc.preprocess`; default on).
        When the fold is non-trivial, the **checkpointed roots are
        folded-graph roots**: the core's vertices are partitioned over
        ranks, every per-root traversal runs on the reduced graph with
        weighted accumulation, checkpoints and the reduce stay in core
        space, and the folded credit is added after expansion.  Pass a
        prepared :class:`~repro.bc.preprocess.FoldResult` to reuse one,
        or ``False`` to traverse the original graph.

    Returns a :class:`ResilientRun`; ``run.values`` equals the serial
    :func:`repro.bc.betweenness_centrality` whenever ``run.exact``.
    """
    if num_ranks < 1:
        raise ClusterConfigurationError("num_ranks must be >= 1")
    if max_retries < 0:
        raise ClusterConfigurationError("max_retries must be >= 0")
    if backoff_base < 0:
        raise ClusterConfigurationError("backoff_base must be >= 0")

    if metrics is None:
        metrics = NULL_REGISTRY
    if clock is None:
        clock = metrics.clock if metrics.enabled else SpanClock()

    faults: ActiveFaults | None = (fault_plan.start(seed=seed)
                                   if fault_plan else None)
    if comm is None:
        comm = FaultyComm(num_ranks, faults=faults, metrics=metrics)
    elif comm.size != num_ranks:
        raise ClusterConfigurationError("communicator size mismatch")

    policy = VerificationPolicy.coerce(verify)
    checker = RootChecker(policy, metrics) if policy.enabled else None

    fold_result: FoldResult | None = None
    if isinstance(fold, FoldResult):
        fold_result = fold
    elif fold:
        fold_result = fold_degree_one(g)
    folded = fold_result is not None and not fold_result.is_identity
    if folded:
        run_g = fold_result.core
        target_weights = fold_result.core_weights
        metrics.record("resilience.fold",
                       core_vertices=int(run_g.num_vertices),
                       folded_vertices=int(fold_result.num_folded),
                       rounds=int(fold_result.rounds))
    else:
        run_g = g
        target_weights = None

    # Traversal roots and checkpoint vectors live on the (possibly
    # folded) run graph; expansion back to original ids happens once,
    # after the reduce.
    n = run_g.num_vertices
    half = 2.0 if g.undirected else 1.0
    store = CheckpointStore(num_ranks, n)
    incidents: list = []
    wall0 = clock.wall_seconds()
    sim0 = clock.sim_seconds
    comp0 = {c: clock.component_seconds(c)
             for c in ("compute", "backoff", "degrade")}
    recovery_s = 0.0
    recomputed_roots = 0
    corruption_detected = 0
    roots_requarantined = 0

    def record_incident(inc: RankIncident) -> None:
        incidents.append(inc)
        metrics.inc("resilience.incidents", kind=inc.kind, where=inc.where)
        metrics.record("resilience.incident", rank=inc.rank, kind=inc.kind,
                       where=inc.where, attempt=inc.attempt,
                       roots_lost=inc.roots_lost)

    def checked(fn, *args, **kwargs):
        # Every invariant evaluation is timed so the layer's cost is a
        # first-class observable (verify.overhead_seconds).
        t0 = time.perf_counter()
        out = fn(*args, **kwargs)
        metrics.inc("verify.overhead_seconds", time.perf_counter() - t0)
        return out

    def apply_site(events, site: str, arr: np.ndarray) -> None:
        for ev in events:
            if ev.site == site:
                apply_sdc(ev, arr, seed=faults.seed)
                metrics.inc("verify.faults_injected", site=site)

    def over_budget() -> bool:
        # Same clock, same expression as the final elapsed_seconds
        # report — the two can never drift apart.
        if wall_clock_budget is None:
            return False
        return (clock.elapsed() - wall0 - sim0) >= wall_clock_budget

    # ------------------------------------------------------------------
    # Graph replication (MPI_Bcast).  A rank that dies here never
    # receives the graph: mark it dead and re-enter the collective.
    pending: dict = {r: part for r, part in
                     enumerate(partition_roots(n, num_ranks))}
    while True:
        try:
            comm.bcast(("graph", g.num_vertices, g.num_edges), root=0)
            break
        except RankFailure as f:
            record_incident(RankIncident(f.rank, FAIL_STOP, f.where, 0,
                                         int(pending.get(f.rank,
                                                         np.empty(0)).size)))
            comm.mark_dead(f.rank)

    # Roots assigned to ranks that died before compute are orphans from
    # the start.
    orphans_list = [pending.pop(r) for r in list(pending)
                    if r not in comm.live]
    if orphans_list:
        early = np.concatenate(orphans_list)
        if comm.live:
            for rank, roots in _redistribute(early, sorted(comm.live)).items():
                pending[rank] = np.concatenate([pending[rank], roots]) \
                    if rank in pending else roots
            orphans_list = []

    # ------------------------------------------------------------------
    # Compute rounds with re-partitioning recovery.
    attempt = 0
    exhausted = False
    while True:
        round_orphans = list(orphans_list)
        orphans_list = []
        round_costs = [0.0]
        for rank in sorted(pending):
            roots = pending[rank]
            if roots.size == 0:
                continue
            if over_budget():
                round_orphans.append(roots)
                continue
            factor = faults.straggler_factor(rank) if faults else 1.0
            if faults and faults.oom_fires(rank):
                # Transient: the rank survives and its unit is retried
                # in the next round (after backoff).
                record_incident(RankIncident(rank, OOM, "compute", attempt,
                                             int(roots.size)))
                round_orphans.append(roots)
                continue
            crash = faults.compute_crash(rank) if faults else None
            if crash is not None:
                # The rank processes part of its unit, then dies; the
                # unit checkpoint was never written, so all of its
                # roots are orphaned.
                done = min(crash.after_roots, int(roots.size))
                record_incident(RankIncident(rank, FAIL_STOP, "compute",
                                             attempt, int(roots.size)))
                comm.mark_dead(rank)
                round_costs.append(per_root_seconds * done * factor)
                round_orphans.append(roots)
                continue
            # Per-rank timeline entry: the span's wall duration is the
            # real recompute time; its simulated cost is recorded as a
            # labelled counter (the round charges only the makespan).
            quarantined: list = []
            with metrics.span("resilience.rank_compute", rank=rank,
                              attempt=attempt):
                partial = np.zeros(n, dtype=np.float64)
                expected_sum = 0.0
                for pos, s in enumerate(roots):
                    s = int(s)
                    fwd = forward_sweep(run_g, s)
                    events = faults.sdc_for_root(rank, pos) if faults else []
                    # sigma/dist strikes hit before accumulation so the
                    # corruption propagates into delta, as a real upset
                    # in resident memory would.
                    apply_site(events, "sigma", fwd.sigma)
                    apply_site(events, "dist", fwd.distances)
                    delta = dependency_accumulation(
                        run_g, fwd, target_weights=target_weights)
                    sw = 1.0 if not folded else float(target_weights[s])
                    if sw != 1.0:
                        # A folded core root stands for sw original
                        # sources; its dependency vector is scaled
                        # before checkpointing (Eq. 3 stays a plain sum).
                        delta *= sw
                    apply_site(events, "delta", delta)
                    if checker is not None and policy.checks_root(s):
                        violations = checked(checker.check_root, run_g,
                                             fwd, delta,
                                             target_weights=target_weights,
                                             source_weight=sw)
                        if violations:
                            # Quarantine: the root's contribution never
                            # reaches the partial; it is re-run next
                            # round exactly like a crashed rank's
                            # orphan.
                            corruption_detected += 1
                            quarantined.append(s)
                            record_incident(RankIncident(
                                rank, SDC, violations[0].invariant,
                                attempt, 1))
                            metrics.inc("verify.corruption_detected",
                                        layer="driver",
                                        invariant=violations[0].invariant)
                            continue
                    partial += delta
                    expected_sum += float(delta.sum())
                # Unit-level corruption (the "partial" site) strikes the
                # accumulated vector just before the checkpoint write.
                apply_site(faults.sdc_for_partial(rank) if faults else [],
                           "partial", partial)
                if checker is not None:
                    pv = checked(checker.check_partial, partial,
                                 expected_sum, rank)
                    if pv:
                        # The whole unit is suspect — nothing from it may
                        # reach stable storage.
                        corruption_detected += 1
                        good = [int(s) for s in roots
                                if int(s) not in quarantined]
                        record_incident(RankIncident(
                            rank, SDC, pv[0].invariant, attempt,
                            len(good)))
                        metrics.inc("verify.corruption_detected",
                                    layer="driver",
                                    invariant=pv[0].invariant)
                        quarantined.extend(good)
                        partial = None
            if partial is not None:
                good = np.asarray(
                    [int(s) for s in roots if int(s) not in quarantined],
                    dtype=np.int64)
                if good.size:
                    partial /= half
                    store.commit(rank, good, partial)
            if quarantined:
                roots_requarantined += len(quarantined)
                metrics.inc("resilience.roots_requarantined",
                            len(quarantined))
                round_orphans.append(np.asarray(quarantined,
                                                dtype=np.int64))
            cost = per_root_seconds * roots.size * factor
            round_costs.append(cost)
            metrics.inc("resilience.rank_seconds", cost, rank=rank)
            metrics.inc("resilience.rank_roots", roots.size, rank=rank)
            if attempt > 0:
                recomputed_roots += int(roots.size)
                recovery_s += cost
        # Ranks compute concurrently: the round costs its makespan —
        # charged exactly once, on the shared clock.
        clock.advance(max(round_costs), "compute")

        orphans = (np.concatenate(round_orphans) if round_orphans
                   else np.empty(0, dtype=np.int64))
        metrics.record("resilience.round", attempt=attempt,
                       orphans=int(orphans.size),
                       survivors=len(comm.live),
                       completed_roots=int(store.completed_roots),
                       makespan_seconds=float(max(round_costs)))
        if orphans.size == 0:
            break
        survivors = sorted(comm.live)
        if attempt >= max_retries or not survivors or over_budget():
            exhausted = True
            break
        attempt += 1
        metrics.inc("resilience.retries")
        pause = backoff_base * (2 ** (attempt - 1))
        recovery_s += pause
        clock.advance(pause, "backoff")
        pending = _redistribute(orphans, survivors)

    # ------------------------------------------------------------------
    # Score reduction (MPI_Reduce) over checkpointed partials.  A rank
    # dying here loses nothing — its unit is already in stable storage —
    # so the collective is simply re-entered.  With verification on, the
    # reduce is also *checksummed*: the reduced vector's sum must match
    # the independently-summed per-rank checksums (computed from stable
    # storage, which in-flight corruption cannot touch).  A mismatch
    # re-enters the collective — redundant reduction over clean inputs
    # repairs a transient in-flight bit-flip.
    reduce_retries = 0
    corrupted_reduce = False
    while True:
        values = store.per_rank_values()
        try:
            total = comm.reduce(values, root=0)
        except RankFailure as f:
            record_incident(RankIncident(f.rank, FAIL_STOP, f.where,
                                         attempt, 0))
            comm.mark_dead(f.rank)
            continue
        if checker is None:
            break
        expected = float(sum(float(v.sum()) for v in values))
        if checked(checker.reduce_ok, total, expected):
            break
        corruption_detected += 1
        victim = -1
        corruptions = getattr(comm, "corruptions", None)
        if corruptions:
            victim = int(corruptions[-1].get("rank", -1))
        record_incident(RankIncident(victim, SDC, "reduce", attempt, 0))
        metrics.inc("verify.corruption_detected", layer="driver",
                    invariant="reduce")
        if reduce_retries >= max_retries:
            # Out of budget: surface the corruption instead of looping —
            # the values carry it and the run is flagged inexact.
            corrupted_reduce = True
            break
        reduce_retries += 1
        metrics.inc("resilience.reduce_retries")

    # ------------------------------------------------------------------
    # Graceful degradation for whatever never completed.
    degraded_roots = 0
    samples_used = 0
    if exhausted and orphans.size:
        if not degrade:
            raise RetryExhaustedError(int(orphans.size), attempt)
        degraded_roots = int(orphans.size)
        k = max(1, min(int(degrade_samples), degraded_roots))
        rng = np.random.default_rng(seed)
        sample = rng.choice(orphans, size=k, replace=False)
        with metrics.span("resilience.degrade", samples=k):
            est = np.zeros(n, dtype=np.float64)
            for s in sample:
                fwd = forward_sweep(run_g, int(s))
                delta = dependency_accumulation(
                    run_g, fwd, target_weights=target_weights)
                if folded:
                    delta *= float(target_weights[int(s)])
                est += delta
        est /= half
        total = total + est * (degraded_roots / k)
        samples_used = k
        clock.advance(per_root_seconds * k, "degrade")
        metrics.inc("resilience.degraded_roots", degraded_roots)
        metrics.record("resilience.degrade", roots=degraded_roots,
                       samples=k, scale=degraded_roots / k)

    if folded:
        # Back to original ids: checkpoints, reduce and the degraded
        # estimate were all core-space; the pendants' closed-form
        # credit (already in ordered-pair units) gets the same halving
        # the traversed partials received at commit time.
        total = fold_result.expand(total) + fold_result.credit / half

    metrics.inc("resilience.runs")
    metrics.inc("resilience.recomputed_roots", recomputed_roots)
    compute_s = clock.component_seconds("compute") - comp0["compute"]
    backoff_s = clock.component_seconds("backoff") - comp0["backoff"]
    degrade_s = clock.component_seconds("degrade") - comp0["degrade"]
    sim_s = clock.sim_seconds - sim0
    wall_s = clock.wall_seconds() - wall0
    return ResilientRun(
        values=total,
        exact=degraded_roots == 0 and not corrupted_reduce,
        num_ranks=num_ranks,
        survivors=len(comm.live),
        total_roots=n,
        completed_roots=store.completed_roots,
        recomputed_roots=recomputed_roots,
        degraded_roots=degraded_roots,
        retries=attempt,
        incidents=incidents,
        backoff_seconds=backoff_s,
        compute_seconds=compute_s,
        recovery_seconds=recovery_s,
        comm_seconds=comm.elapsed_comm_seconds,
        elapsed_seconds=wall_s + sim_s,
        degrade_seconds=degrade_s,
        wall_seconds=wall_s,
        sim_seconds=sim_s,
        degrade_samples_used=samples_used,
        verification=policy.mode,
        corruption_detected=corruption_detected,
        roots_requarantined=roots_requarantined,
        reduce_retries=reduce_retries,
        corrupted_reduce=corrupted_reduce,
    )
