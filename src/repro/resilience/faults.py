"""Deterministic fault injection for the distributed BC program.

The paper's 192-GPU runs (Section V-D) assume every rank survives to
the final ``MPI_Reduce``.  This module supplies the adversary for
testing what happens when one doesn't:

* :class:`FaultEvent` / :class:`FaultPlan` — a declarative, seedable
  description of *which* rank fails, *where* (a named collective or
  mid-compute after ``k`` roots), and *how* (fail-stop, transient
  simulated OOM, or a straggler slowdown factor).
* :class:`ActiveFaults` — the mutable runtime view of a plan; events
  are consumed as they fire so a retried operation succeeds (fail-stop
  is one-shot per event, OOM fires ``times`` attempts, stragglers
  persist for the whole run).
* :class:`FaultyComm` — a :class:`~repro.cluster.mpi_sim.SimComm` that
  raises :class:`~repro.errors.RankFailure` when a live rank is
  scheduled to die at the entered collective.
* :class:`FaultyDevice` — a :class:`~repro.gpusim.device.Device` bound
  to one rank that raises injected faults before running and stretches
  its simulated cycles by the rank's straggler factor.

Everything is deterministic: a plan built from an explicit event list
or from :meth:`FaultPlan.random` with a seed always fires identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DeviceOutOfMemoryError, FaultSpecError, RankFailure
from ..cluster.mpi_sim import SimComm
from ..gpusim.cost import DEFAULT_COSTS, CostModel
from ..gpusim.device import Device
from ..gpusim.spec import GTX_TITAN, GPUSpec

__all__ = [
    "FAIL_STOP",
    "OOM",
    "STRAGGLER",
    "COLLECTIVES",
    "FaultEvent",
    "FaultPlan",
    "ActiveFaults",
    "FaultyComm",
    "FaultyDevice",
]

#: Fault kinds.
FAIL_STOP = "fail-stop"
OOM = "oom"
STRAGGLER = "straggler"
_KINDS = (FAIL_STOP, OOM, STRAGGLER)

#: Injection points a fail-stop can target ("compute" plus every
#: :class:`SimComm` collective).
COLLECTIVES = ("bcast", "scatter", "gather", "allgather", "reduce",
               "allreduce", "barrier")
_WHERE = ("compute",) + COLLECTIVES


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault.

    Parameters
    ----------
    kind:
        ``"fail-stop"`` (the rank dies), ``"oom"`` (the rank's compute
        raises :class:`DeviceOutOfMemoryError`, transiently), or
        ``"straggler"`` (the rank's compute is ``factor`` times slower).
    rank:
        Victim rank.
    where:
        ``"compute"`` or a collective name; only fail-stop may target a
        collective.
    after_roots:
        For a mid-compute fail-stop: how many roots of the rank's
        partition complete before it dies (their partial progress is
        lost — the checkpoint unit is the whole partition).
    times:
        For transient OOM: how many attempts fire before the fault
        clears.
    factor:
        Straggler slowdown multiple (``>= 1``).
    """

    kind: str
    rank: int
    where: str = "compute"
    after_roots: int = 0
    times: int = 1
    factor: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise FaultSpecError(f"unknown fault kind {self.kind!r}; known: {_KINDS}")
        if self.rank < 0:
            raise FaultSpecError("rank must be >= 0")
        if self.where not in _WHERE:
            raise FaultSpecError(
                f"unknown fault site {self.where!r}; known: {_WHERE}"
            )
        if self.kind != FAIL_STOP and self.where != "compute":
            raise FaultSpecError(f"{self.kind} faults only fire at 'compute'")
        if self.after_roots < 0:
            raise FaultSpecError("after_roots must be >= 0")
        if self.times < 1:
            raise FaultSpecError("times must be >= 1")
        if self.factor < 1.0:
            raise FaultSpecError("straggler factor must be >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, replayable set of :class:`FaultEvent`\\ s."""

    events: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for ev in self.events:
            if not isinstance(ev, FaultEvent):
                raise FaultSpecError(f"not a FaultEvent: {ev!r}")

    # -- convenience constructors --------------------------------------
    @classmethod
    def fail_stop(cls, rank: int, where: str = "compute",
                  after_roots: int = 0) -> "FaultPlan":
        """Kill one rank at ``where`` (optionally mid-compute)."""
        return cls((FaultEvent(FAIL_STOP, rank, where=where,
                               after_roots=after_roots),))

    @classmethod
    def transient_oom(cls, rank: int, times: int = 1) -> "FaultPlan":
        """Make one rank's compute OOM for ``times`` attempts."""
        return cls((FaultEvent(OOM, rank, times=times),))

    @classmethod
    def straggler(cls, rank: int, factor: float = 4.0) -> "FaultPlan":
        """Slow one rank's compute by ``factor``."""
        return cls((FaultEvent(STRAGGLER, rank, factor=factor),))

    @classmethod
    def random(cls, num_ranks: int, seed: int = 0, num_faults: int = 1,
               kinds=_KINDS) -> "FaultPlan":
        """A deterministic random plan over ``num_ranks`` ranks."""
        if num_ranks < 1:
            raise FaultSpecError("num_ranks must be >= 1")
        if num_faults < 0:
            raise FaultSpecError("num_faults must be >= 0")
        rng = np.random.default_rng(seed)
        events = []
        for _ in range(int(num_faults)):
            kind = kinds[int(rng.integers(len(kinds)))]
            rank = int(rng.integers(num_ranks))
            if kind == FAIL_STOP:
                where = _WHERE[int(rng.integers(len(_WHERE)))]
                events.append(FaultEvent(FAIL_STOP, rank, where=where,
                                         after_roots=int(rng.integers(4))))
            elif kind == OOM:
                events.append(FaultEvent(OOM, rank,
                                         times=int(rng.integers(1, 3))))
            else:
                events.append(FaultEvent(STRAGGLER, rank,
                                         factor=float(1 + 3 * rng.random())))
        return cls(tuple(events))

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a CLI fault spec.

        Grammar (``;``-separated entries)::

            fail:RANK[@WHERE][+AFTER_ROOTS]   fail-stop
            oom:RANK[xTIMES]                  transient OOM
            straggler:RANKxFACTOR             slowdown

        Examples: ``"fail:1@reduce"``, ``"fail:2+3"``, ``"oom:0x2"``,
        ``"straggler:1x3.5;fail:0@bcast"``.
        """
        events = []
        for raw in spec.split(";"):
            entry = raw.strip()
            if not entry:
                continue
            try:
                kind, rest = entry.split(":", 1)
            except ValueError:
                raise FaultSpecError(f"bad fault entry {entry!r}: missing ':'")
            kind = kind.strip().lower()
            rest = rest.strip()
            try:
                if kind in ("fail", FAIL_STOP):
                    after = 0
                    if "+" in rest:
                        rest, after_s = rest.split("+", 1)
                        after = int(after_s)
                    where = "compute"
                    if "@" in rest:
                        rest, where = rest.split("@", 1)
                    events.append(FaultEvent(FAIL_STOP, int(rest),
                                             where=where.strip(),
                                             after_roots=after))
                elif kind == OOM:
                    times = 1
                    if "x" in rest:
                        rest, times_s = rest.split("x", 1)
                        times = int(times_s)
                    events.append(FaultEvent(OOM, int(rest), times=times))
                elif kind == STRAGGLER:
                    if "x" not in rest:
                        raise FaultSpecError(
                            f"straggler entry {entry!r} needs 'xFACTOR'"
                        )
                    rank_s, factor_s = rest.split("x", 1)
                    events.append(FaultEvent(STRAGGLER, int(rank_s),
                                             factor=float(factor_s)))
                else:
                    raise FaultSpecError(f"unknown fault kind {kind!r}")
            except FaultSpecError:
                raise
            except ValueError as exc:
                raise FaultSpecError(f"bad fault entry {entry!r}: {exc}")
        return cls(tuple(events))

    # ------------------------------------------------------------------
    def start(self) -> "ActiveFaults":
        """Fresh mutable runtime state for one run of this plan."""
        return ActiveFaults(self)


class ActiveFaults:
    """Runtime view of a :class:`FaultPlan`; events are consumed as they
    fire so retried operations see a fault-free world."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._collective = {}   # (rank, where) -> count of pending fail-stops
        self._compute_fail = {}  # rank -> FaultEvent (first pending)
        self._oom = {}           # rank -> remaining attempts
        self._straggle = {}      # rank -> factor (persistent)
        for ev in plan.events:
            if ev.kind == FAIL_STOP and ev.where != "compute":
                key = (ev.rank, ev.where)
                self._collective[key] = self._collective.get(key, 0) + 1
            elif ev.kind == FAIL_STOP:
                self._compute_fail.setdefault(ev.rank, ev)
            elif ev.kind == OOM:
                self._oom[ev.rank] = self._oom.get(ev.rank, 0) + ev.times
            else:
                self._straggle[ev.rank] = max(
                    self._straggle.get(ev.rank, 1.0), ev.factor
                )

    def crash_at(self, rank: int, where: str) -> bool:
        """Consume (and report) a fail-stop of ``rank`` at collective
        ``where``."""
        key = (rank, where)
        remaining = self._collective.get(key, 0)
        if remaining <= 0:
            return False
        if remaining == 1:
            del self._collective[key]
        else:
            self._collective[key] = remaining - 1
        return True

    def compute_crash(self, rank: int):
        """Consume a pending mid-compute fail-stop for ``rank``;
        returns the :class:`FaultEvent` or ``None``."""
        return self._compute_fail.pop(rank, None)

    def oom_fires(self, rank: int) -> bool:
        """Consume one transient-OOM attempt for ``rank``."""
        remaining = self._oom.get(rank, 0)
        if remaining <= 0:
            return False
        if remaining == 1:
            del self._oom[rank]
        else:
            self._oom[rank] = remaining - 1
        return True

    def straggler_factor(self, rank: int) -> float:
        """Persistent slowdown multiple for ``rank`` (1.0 = healthy)."""
        return self._straggle.get(rank, 1.0)

    def injected_oom(self, rank: int, nbytes: int) -> DeviceOutOfMemoryError:
        """Build the simulated OOM a faulty rank raises."""
        return DeviceOutOfMemoryError(
            int(nbytes), 0, 0, what=f"injected fault on rank {rank}"
        )


class FaultyComm(SimComm):
    """A :class:`SimComm` whose collectives kill planned ranks.

    Before performing a collective, every *live* rank scheduled to
    fail-stop there raises :class:`~repro.errors.RankFailure`.  The
    driver catches it, calls :meth:`mark_dead`, and re-enters the
    collective; the event has been consumed, so the retry proceeds with
    the survivors (dead ranks' contributions are zero vectors — see
    :func:`repro.cluster.distributed.partition_roots`).
    """

    def __init__(self, size: int, faults: ActiveFaults | None = None,
                 link=None, metrics=None):
        super().__init__(size, link=link, metrics=metrics)
        self.faults = faults
        self.live = set(range(self.size))

    def mark_dead(self, rank: int) -> None:
        """Remove a fail-stopped rank from the collective group."""
        self.live.discard(int(rank))

    @property
    def num_live(self) -> int:
        return len(self.live)

    def _maybe_fail(self, where: str) -> None:
        if self.faults is None:
            return
        for rank in sorted(self.live):
            if self.faults.crash_at(rank, where):
                raise RankFailure(rank, where)

    # Every collective checks for planned deaths before executing.
    def bcast(self, value, root: int = 0):
        self._maybe_fail("bcast")
        return super().bcast(value, root=root)

    def scatter(self, values, root: int = 0):
        self._maybe_fail("scatter")
        return super().scatter(values, root=root)

    def gather(self, values, root: int = 0):
        self._maybe_fail("gather")
        return super().gather(values, root=root)

    def allgather(self, values):
        self._maybe_fail("allgather")
        return super().allgather(values)

    def reduce(self, values, op=None, root: int = 0):
        self._maybe_fail("reduce")
        return super().reduce(values, op=op, root=root)

    def allreduce(self, values, op=None):
        self._maybe_fail("allreduce")
        return super().allreduce(values, op=op)

    def barrier(self) -> None:
        self._maybe_fail("barrier")
        super().barrier()


class FaultyDevice(Device):
    """A simulated GPU bound to one rank of a fault plan.

    Injects the rank's planned compute faults at the top of
    :meth:`~repro.gpusim.device.Device.run_bc` (via the base class's
    ``_inject_faults`` hook) and stretches the run's simulated cycles
    by the rank's straggler factor.
    """

    def __init__(self, rank: int, faults: ActiveFaults,
                 spec: GPUSpec = GTX_TITAN, costs: CostModel = DEFAULT_COSTS):
        super().__init__(spec, costs)
        self.rank = int(rank)
        self.faults = faults
        self.straggler_factor = faults.straggler_factor(self.rank)

    def _inject_faults(self, g, roots) -> None:
        crash = self.faults.compute_crash(self.rank)
        if crash is not None:
            raise RankFailure(self.rank, "compute",
                              roots_done=min(crash.after_roots, roots.size))
        if self.faults.oom_fires(self.rank):
            raise self.faults.injected_oom(self.rank, g.num_vertices * 8)
