"""Deterministic fault injection for the distributed BC program.

The paper's 192-GPU runs (Section V-D) assume every rank survives to
the final ``MPI_Reduce``.  This module supplies the adversary for
testing what happens when one doesn't:

* :class:`FaultEvent` / :class:`FaultPlan` — a declarative, seedable
  description of *which* rank fails, *where* (a named collective or
  mid-compute after ``k`` roots), and *how* (fail-stop, transient
  simulated OOM, or a straggler slowdown factor).
* :class:`ActiveFaults` — the mutable runtime view of a plan; events
  are consumed as they fire so a retried operation succeeds (fail-stop
  is one-shot per event, OOM fires ``times`` attempts, stragglers
  persist for the whole run).
* :class:`FaultyComm` — a :class:`~repro.cluster.mpi_sim.SimComm` that
  raises :class:`~repro.errors.RankFailure` when a live rank is
  scheduled to die at the entered collective.
* :class:`FaultyDevice` — a :class:`~repro.gpusim.device.Device` bound
  to one rank that raises injected faults before running and stretches
  its simulated cycles by the rank's straggler factor.

Everything is deterministic: a plan built from an explicit event list
or from :meth:`FaultPlan.random` with a seed always fires identically.

Beyond ranks that die, the ``sdc`` kind models ranks that *lie*: a
single seeded bit-flip in one of the per-root arrays (``sigma``,
``delta``, ``dist``), a rank's partial BC vector, or an in-flight
reduce contribution (injected by :meth:`FaultyComm.reduce`).  Detection
and repair live in :mod:`repro.verify` and the resilient driver; the
injector's job is only to corrupt deterministically.

The **storage** kinds model the disk misbehaving under the BC service
(:mod:`repro.service`) instead of a rank:

* ``enospc`` — the write fails with ``OSError(ENOSPC)``; nothing lands.
* ``torn`` — a deterministic *prefix* of the bytes lands, then the
  write fails with ``OSError(EIO)`` (a partial write the writer is told
  about).
* ``fsync-lie`` — write/flush/fsync all report success but the bytes
  are silently dropped (the page-cache lie read-back verification must
  catch).
* ``rot`` — the write succeeds, then one bit of the file rots at rest.

They target the service's write *sites* (``journal``/``cache``/
``spool``/``any``) rather than ranks, counted in successful writes to
that site: ``enospc:2@journal`` fails the third journal write.  The
consumer is :class:`repro.service.storage.ServiceStorage`, which routes
every durable service write through :meth:`ActiveFaults.storage_fire`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import DeviceOutOfMemoryError, FaultSpecError, RankFailure
from ..cluster.mpi_sim import SimComm
from ..gpusim.cost import DEFAULT_COSTS, CostModel
from ..gpusim.device import Device
from ..gpusim.spec import GTX_TITAN, GPUSpec

__all__ = [
    "FAIL_STOP",
    "OOM",
    "STRAGGLER",
    "SDC",
    "ENOSPC",
    "TORN",
    "FSYNC_LIE",
    "ROT",
    "STORAGE_KINDS",
    "STORAGE_TARGETS",
    "COLLECTIVES",
    "SDC_SITES",
    "FaultEvent",
    "FaultPlan",
    "ActiveFaults",
    "FaultyComm",
    "FaultyDevice",
    "flip_bit",
    "apply_sdc",
]

#: Fault kinds.
FAIL_STOP = "fail-stop"
OOM = "oom"
STRAGGLER = "straggler"
SDC = "sdc"
ENOSPC = "enospc"
TORN = "torn"
FSYNC_LIE = "fsync-lie"
ROT = "rot"
#: Disk-fault kinds consumed by the service storage layer.
STORAGE_KINDS = (ENOSPC, TORN, FSYNC_LIE, ROT)
_KINDS = (FAIL_STOP, OOM, STRAGGLER, SDC) + STORAGE_KINDS
#: Kinds :meth:`FaultPlan.random` draws from by default.  SDC is opt-in
#: because silent corruption is only meaningful when a verification
#: policy is active — injecting it into an unverified run makes the
#: result wrong by construction.  Storage kinds are opt-in because they
#: only fire inside the service's write path.
_RANDOM_KINDS = (FAIL_STOP, OOM, STRAGGLER)

#: Write sites a storage fault can target.  ``any`` matches every site.
STORAGE_TARGETS = ("journal", "cache", "spool", "any")

#: Injection points a fail-stop can target ("compute" plus every
#: :class:`SimComm` collective).
COLLECTIVES = ("bcast", "scatter", "gather", "allgather", "reduce",
               "allreduce", "barrier")
_WHERE = ("compute",) + COLLECTIVES

#: Arrays an ``sdc`` bit-flip can target.  The first three strike one
#: root's intermediate state, ``partial`` a rank's accumulated BC
#: vector, ``reduce`` one rank's contribution inside the collective.
SDC_SITES = ("sigma", "delta", "dist", "partial", "reduce")

#: Default bit flipped by an ``sdc`` event: high in the float64
#: mantissa/exponent, so the corruption is numerically meaningful
#: (relative change >= ~2**-3) rather than lost in rounding noise.
DEFAULT_SDC_BIT = 55


@dataclass(frozen=True)
class FaultEvent:
    """One planned fault.

    Parameters
    ----------
    kind:
        ``"fail-stop"`` (the rank dies), ``"oom"`` (the rank's compute
        raises :class:`DeviceOutOfMemoryError`, transiently), or
        ``"straggler"`` (the rank's compute is ``factor`` times slower).
    rank:
        Victim rank.
    where:
        ``"compute"`` or a collective name; only fail-stop may target a
        collective.
    after_roots:
        For a mid-compute fail-stop: how many roots of the rank's
        partition complete before it dies (their partial progress is
        lost — the checkpoint unit is the whole partition).
    times:
        For transient OOM: how many attempts fire before the fault
        clears.
    factor:
        Straggler slowdown multiple (``>= 1``).
    site:
        For ``sdc``: which array the bit-flip strikes (one of
        :data:`SDC_SITES`).
    root_index:
        For ``sdc`` on a per-root site (``sigma``/``delta``/``dist``):
        the position within the victim rank's current root partition at
        which the flip fires.
    bit:
        For ``sdc``/``rot``: which bit of the victim 64-bit word
        (``sdc``) or victim byte (``rot``) is flipped.
    target:
        For storage kinds: the write site the fault strikes (one of
        :data:`STORAGE_TARGETS`; ``any`` matches every site).
    after_writes:
        For storage kinds: how many matching write attempts complete
        unharmed before the fault fires (``0`` = the first write).
    """

    kind: str
    rank: int = 0
    where: str = "compute"
    after_roots: int = 0
    times: int = 1
    factor: float = 2.0
    site: str = "delta"
    root_index: int = 0
    bit: int = DEFAULT_SDC_BIT
    target: str = "any"
    after_writes: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise FaultSpecError(f"unknown fault kind {self.kind!r}; known: {_KINDS}")
        if self.rank < 0:
            raise FaultSpecError("rank must be >= 0")
        if self.where not in _WHERE:
            raise FaultSpecError(
                f"unknown fault site {self.where!r}; known: {_WHERE}"
            )
        if self.kind != FAIL_STOP and self.where != "compute":
            raise FaultSpecError(f"{self.kind} faults only fire at 'compute'")
        if self.after_roots < 0:
            raise FaultSpecError("after_roots must be >= 0")
        if self.times < 1:
            raise FaultSpecError("times must be >= 1")
        if self.factor < 1.0:
            raise FaultSpecError("straggler factor must be >= 1")
        if self.site not in SDC_SITES:
            raise FaultSpecError(
                f"unknown sdc site {self.site!r}; known: {SDC_SITES}"
            )
        if self.root_index < 0:
            raise FaultSpecError("root_index must be >= 0")
        if not 0 <= self.bit <= 63:
            raise FaultSpecError("bit must be in [0, 63]")
        if self.target not in STORAGE_TARGETS:
            raise FaultSpecError(
                f"unknown storage target {self.target!r}; known: "
                f"{STORAGE_TARGETS}"
            )
        if self.after_writes < 0:
            raise FaultSpecError("after_writes must be >= 0")
        if self.kind in STORAGE_KINDS:
            if self.times != 1 and self.kind != ENOSPC:
                raise FaultSpecError(
                    f"only enospc storage faults repeat (xTIMES); "
                    f"{self.kind} is one-shot")
            if self.rank != 0 or self.after_roots or self.root_index:
                raise FaultSpecError(
                    f"{self.kind} faults target writes, not ranks/roots")
            if self.bit != DEFAULT_SDC_BIT and self.kind != ROT:
                raise FaultSpecError(
                    f"#BIT is only meaningful for rot, not {self.kind}")
        else:
            if self.target != "any" or self.after_writes:
                raise FaultSpecError(
                    f"@TARGET/after_writes are only for storage fault "
                    f"kinds, not {self.kind}")

    @property
    def is_storage(self) -> bool:
        return self.kind in STORAGE_KINDS

    def spec(self) -> str:
        """The entry's canonical CLI spec; ``FaultPlan.parse`` inverts
        it exactly (defaults are omitted)."""
        if self.kind == FAIL_STOP:
            out = f"fail:{self.rank}"
            if self.where != "compute":
                out += f"@{self.where}"
            if self.after_roots:
                out += f"+{self.after_roots}"
            return out
        if self.kind == OOM:
            return f"oom:{self.rank}" + (f"x{self.times}" if self.times != 1
                                         else "")
        if self.kind == STRAGGLER:
            return f"straggler:{self.rank}x{self.factor!r}"
        if self.kind in STORAGE_KINDS:
            out = f"{self.kind}:{self.after_writes}"
            if self.target != "any":
                out += f"@{self.target}"
            if self.kind == ENOSPC and self.times != 1:
                out += f"x{self.times}"
            if self.kind == ROT and self.bit != DEFAULT_SDC_BIT:
                out += f"#{self.bit}"
            return out
        out = f"sdc:{self.rank}"
        if self.site != "delta":
            out += f"@{self.site}"
        if self.root_index:
            out += f"+{self.root_index}"
        if self.bit != DEFAULT_SDC_BIT:
            out += f"#{self.bit}"
        return out

    def __str__(self) -> str:
        return self.spec()


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, replayable set of :class:`FaultEvent`\\ s."""

    events: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for ev in self.events:
            if not isinstance(ev, FaultEvent):
                raise FaultSpecError(f"not a FaultEvent: {ev!r}")

    # -- convenience constructors --------------------------------------
    @classmethod
    def fail_stop(cls, rank: int, where: str = "compute",
                  after_roots: int = 0) -> "FaultPlan":
        """Kill one rank at ``where`` (optionally mid-compute)."""
        return cls((FaultEvent(FAIL_STOP, rank, where=where,
                               after_roots=after_roots),))

    @classmethod
    def transient_oom(cls, rank: int, times: int = 1) -> "FaultPlan":
        """Make one rank's compute OOM for ``times`` attempts."""
        return cls((FaultEvent(OOM, rank, times=times),))

    @classmethod
    def straggler(cls, rank: int, factor: float = 4.0) -> "FaultPlan":
        """Slow one rank's compute by ``factor``."""
        return cls((FaultEvent(STRAGGLER, rank, factor=factor),))

    @classmethod
    def sdc(cls, rank: int, site: str = "delta", root_index: int = 0,
            bit: int = DEFAULT_SDC_BIT) -> "FaultPlan":
        """Flip one bit of ``site`` on ``rank`` (silent corruption)."""
        return cls((FaultEvent(SDC, rank, site=site, root_index=root_index,
                               bit=bit),))

    @classmethod
    def storage(cls, kind: str, target: str = "any", after_writes: int = 0,
                times: int = 1, bit: int = DEFAULT_SDC_BIT) -> "FaultPlan":
        """One storage fault: ``kind`` strikes the write to ``target``
        after ``after_writes`` unharmed matching writes."""
        return cls((FaultEvent(kind, target=target, after_writes=after_writes,
                               times=times, bit=bit),))

    @classmethod
    def random(cls, num_ranks: int, seed: int = 0, num_faults: int = 1,
               kinds=_RANDOM_KINDS) -> "FaultPlan":
        """A deterministic random plan over ``num_ranks`` ranks."""
        if num_ranks < 1:
            raise FaultSpecError("num_ranks must be >= 1")
        if num_faults < 0:
            raise FaultSpecError("num_faults must be >= 0")
        rng = np.random.default_rng(seed)
        events = []
        for _ in range(int(num_faults)):
            kind = kinds[int(rng.integers(len(kinds)))]
            rank = int(rng.integers(num_ranks))
            if kind == FAIL_STOP:
                where = _WHERE[int(rng.integers(len(_WHERE)))]
                events.append(FaultEvent(FAIL_STOP, rank, where=where,
                                         after_roots=int(rng.integers(4))))
            elif kind == OOM:
                events.append(FaultEvent(OOM, rank,
                                         times=int(rng.integers(1, 3))))
            elif kind == SDC:
                site = SDC_SITES[int(rng.integers(len(SDC_SITES)))]
                events.append(FaultEvent(SDC, rank, site=site,
                                         root_index=int(rng.integers(4)),
                                         bit=int(rng.integers(48, 64))))
            else:
                events.append(FaultEvent(STRAGGLER, rank,
                                         factor=float(1 + 3 * rng.random())))
        return cls(tuple(events))

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a CLI fault spec.

        Grammar (``;``-separated entries)::

            fail:RANK[@WHERE][+AFTER_ROOTS]   fail-stop
            oom:RANK[xTIMES]                  transient OOM
            straggler:RANKxFACTOR             slowdown
            sdc:RANK[@SITE][+ROOT_INDEX][#BIT]  silent bit-flip
            enospc:AFTER[@TARGET][xTIMES]     disk-full write failure
            torn:AFTER[@TARGET]               partial write + EIO
            fsync-lie:AFTER[@TARGET]          silent write drop
            rot:AFTER[@TARGET][#BIT]          at-rest bit rot

        ``SITE`` is one of :data:`SDC_SITES` (default ``delta``),
        ``ROOT_INDEX`` the position within the rank's root partition
        (default 0), ``BIT`` the flipped bit in [0, 63] (default 55).
        For storage kinds, ``AFTER`` counts unharmed matching writes
        before the fault fires and ``TARGET`` is one of
        :data:`STORAGE_TARGETS` (default ``any``).

        Examples: ``"fail:1@reduce"``, ``"fail:2+3"``, ``"oom:0x2"``,
        ``"straggler:1x3.5;fail:0@bcast"``, ``"sdc:1@sigma+2#62"``,
        ``"sdc:0@reduce"``, ``"enospc:2@journalx3"``,
        ``"torn:0@cache;rot:1@journal#3"``.

        :meth:`FaultPlan.__str__` emits this grammar, and
        ``FaultPlan.parse(str(plan)) == plan`` for every valid plan
        (property-tested in ``tests/properties``).
        """
        events = []
        for raw in spec.split(";"):
            entry = raw.strip()
            if not entry:
                continue
            try:
                kind, rest = entry.split(":", 1)
            except ValueError:
                raise FaultSpecError(f"bad fault entry {entry!r}: missing ':'")
            kind = kind.strip().lower()
            rest = rest.strip()
            try:
                if kind in ("fail", FAIL_STOP):
                    after = 0
                    if "+" in rest:
                        rest, after_s = rest.split("+", 1)
                        after = int(after_s)
                    where = "compute"
                    if "@" in rest:
                        rest, where = rest.split("@", 1)
                    events.append(FaultEvent(FAIL_STOP, int(rest),
                                             where=where.strip(),
                                             after_roots=after))
                elif kind == OOM:
                    times = 1
                    if "x" in rest:
                        rest, times_s = rest.split("x", 1)
                        times = int(times_s)
                    events.append(FaultEvent(OOM, int(rest), times=times))
                elif kind == STRAGGLER:
                    if "x" not in rest:
                        raise FaultSpecError(
                            f"straggler entry {entry!r} needs 'xFACTOR'"
                        )
                    rank_s, factor_s = rest.split("x", 1)
                    events.append(FaultEvent(STRAGGLER, int(rank_s),
                                             factor=float(factor_s)))
                elif kind == SDC:
                    bit = DEFAULT_SDC_BIT
                    if "#" in rest:
                        rest, bit_s = rest.split("#", 1)
                        bit = int(bit_s)
                    root_index = 0
                    if "+" in rest:
                        rest, idx_s = rest.split("+", 1)
                        root_index = int(idx_s)
                    site = "delta"
                    if "@" in rest:
                        rest, site = rest.split("@", 1)
                        site = site.strip()
                        if site not in SDC_SITES:
                            raise FaultSpecError(
                                f"bad sdc entry {entry!r}: unknown site "
                                f"{site!r}; known: {SDC_SITES}"
                            )
                    events.append(FaultEvent(SDC, int(rest), site=site,
                                             root_index=root_index, bit=bit))
                elif kind in STORAGE_KINDS:
                    times = 1
                    bit = DEFAULT_SDC_BIT
                    if kind == ENOSPC and "x" in rest:
                        rest, times_s = rest.rsplit("x", 1)
                        times = int(times_s)
                    if kind == ROT and "#" in rest:
                        rest, bit_s = rest.split("#", 1)
                        bit = int(bit_s)
                    target = "any"
                    if "@" in rest:
                        rest, target = rest.split("@", 1)
                        target = target.strip()
                        if target not in STORAGE_TARGETS:
                            raise FaultSpecError(
                                f"bad {kind} entry {entry!r}: unknown "
                                f"target {target!r}; known: "
                                f"{STORAGE_TARGETS}"
                            )
                    events.append(FaultEvent(kind, target=target,
                                             after_writes=int(rest),
                                             times=times, bit=bit))
                else:
                    raise FaultSpecError(
                        f"unknown fault kind {kind!r}; known: fail, oom, "
                        f"straggler, sdc, enospc, torn, fsync-lie, rot"
                    )
            except FaultSpecError:
                raise
            except ValueError as exc:
                raise FaultSpecError(f"bad fault entry {entry!r}: {exc}")
        return cls(tuple(events))

    def __str__(self) -> str:
        """Canonical spec string; :meth:`parse` inverts it exactly."""
        return ";".join(ev.spec() for ev in self.events)

    # ------------------------------------------------------------------
    def start(self, seed: int = 0) -> "ActiveFaults":
        """Fresh mutable runtime state for one run of this plan.

        ``seed`` salts the victim-element selection of ``sdc`` events
        (the bit and site are in the event; *which* array element gets
        flipped is drawn deterministically from this seed).
        """
        return ActiveFaults(self, seed=seed)


def flip_bit(arr: np.ndarray, index: int, bit: int) -> None:
    """Flip ``bit`` of the 64-bit word at ``arr[index]`` in place.

    Works on any 8-byte dtype (``float64`` values are reinterpreted as
    their IEEE-754 bit pattern — exactly what a radiation-induced SDC
    does to a resident array).
    """
    if arr.dtype.itemsize != 8:
        raise FaultSpecError(
            f"can only flip bits of 8-byte elements, got {arr.dtype}"
        )
    if not 0 <= bit <= 63:
        raise FaultSpecError("bit must be in [0, 63]")
    view = arr.view(np.uint64)
    view[index] ^= np.uint64(1) << np.uint64(bit)


def apply_sdc(event: FaultEvent, arr: np.ndarray, seed: int = 0) -> int:
    """Fire one ``sdc`` event against ``arr``; returns the victim index.

    The victim element is drawn deterministically from
    ``(seed, rank, site, root_index, bit)``, preferring elements whose
    corruption is numerically meaningful (reached vertices for
    ``dist``, nonzero entries elsewhere) so a flipped bit always
    changes the value it strikes.
    """
    if event.kind != SDC:
        raise FaultSpecError(f"apply_sdc needs an sdc event, got {event.kind}")
    if arr.size == 0:
        return -1
    if event.site == "dist":
        eligible = np.flatnonzero(arr >= 0)
    else:
        eligible = np.flatnonzero(arr != 0)
    if eligible.size == 0:
        eligible = np.arange(arr.size)
    rng = np.random.default_rng(
        [int(seed), event.rank, SDC_SITES.index(event.site),
         event.root_index, event.bit]
    )
    index = int(eligible[int(rng.integers(eligible.size))])
    flip_bit(arr, index, event.bit)
    return index


class ActiveFaults:
    """Runtime view of a :class:`FaultPlan`; events are consumed as they
    fire so retried operations see a fault-free world."""

    def __init__(self, plan: FaultPlan, seed: int = 0):
        self.plan = plan
        self.seed = int(seed)
        self._collective = {}   # (rank, where) -> count of pending fail-stops
        self._compute_fail = {}  # rank -> FaultEvent (first pending)
        self._oom = {}           # rank -> remaining attempts
        self._straggle = {}      # rank -> factor (persistent)
        self._sdc_root = {}      # (rank, root_index) -> [events]
        self._sdc_partial = {}   # rank -> [events]
        self._sdc_reduce = []    # [events]
        # Storage events, in plan order.  Each entry keeps its own count
        # of *unharmed* matching writes seen so far and how many firings
        # remain (>1 only for a repeating enospc).
        self._storage = []       # [{"ev": ev, "seen": 0, "remaining": n}]
        for ev in plan.events:
            if ev.kind in STORAGE_KINDS:
                self._storage.append(
                    {"ev": ev, "seen": 0, "remaining": ev.times})
            elif ev.kind == FAIL_STOP and ev.where != "compute":
                key = (ev.rank, ev.where)
                self._collective[key] = self._collective.get(key, 0) + 1
            elif ev.kind == FAIL_STOP:
                self._compute_fail.setdefault(ev.rank, ev)
            elif ev.kind == OOM:
                self._oom[ev.rank] = self._oom.get(ev.rank, 0) + ev.times
            elif ev.kind == SDC:
                if ev.site == "reduce":
                    self._sdc_reduce.append(ev)
                elif ev.site == "partial":
                    self._sdc_partial.setdefault(ev.rank, []).append(ev)
                else:
                    key = (ev.rank, ev.root_index)
                    self._sdc_root.setdefault(key, []).append(ev)
            else:
                self._straggle[ev.rank] = max(
                    self._straggle.get(ev.rank, 1.0), ev.factor
                )

    def crash_at(self, rank: int, where: str) -> bool:
        """Consume (and report) a fail-stop of ``rank`` at collective
        ``where``."""
        key = (rank, where)
        remaining = self._collective.get(key, 0)
        if remaining <= 0:
            return False
        if remaining == 1:
            del self._collective[key]
        else:
            self._collective[key] = remaining - 1
        return True

    def compute_crash(self, rank: int):
        """Consume a pending mid-compute fail-stop for ``rank``;
        returns the :class:`FaultEvent` or ``None``."""
        return self._compute_fail.pop(rank, None)

    def oom_fires(self, rank: int) -> bool:
        """Consume one transient-OOM attempt for ``rank``."""
        remaining = self._oom.get(rank, 0)
        if remaining <= 0:
            return False
        if remaining == 1:
            del self._oom[rank]
        else:
            self._oom[rank] = remaining - 1
        return True

    def straggler_factor(self, rank: int) -> float:
        """Persistent slowdown multiple for ``rank`` (1.0 = healthy)."""
        return self._straggle.get(rank, 1.0)

    def injected_oom(self, rank: int, nbytes: int) -> DeviceOutOfMemoryError:
        """Build the simulated OOM a faulty rank raises."""
        return DeviceOutOfMemoryError(
            int(nbytes), 0, 0, what=f"injected fault on rank {rank}"
        )

    # -- silent corruption ---------------------------------------------
    def sdc_for_root(self, rank: int, root_pos: int) -> list:
        """Consume (and return) every pending per-root ``sdc`` event
        scheduled for ``rank``'s ``root_pos``-th root this unit."""
        return self._sdc_root.pop((int(rank), int(root_pos)), [])

    def sdc_for_partial(self, rank: int) -> list:
        """Consume the pending partial-BC corruption events for ``rank``."""
        return self._sdc_partial.pop(int(rank), [])

    def sdc_for_reduce(self):
        """Consume one pending in-flight reduce corruption event."""
        return self._sdc_reduce.pop(0) if self._sdc_reduce else None

    def sdc_pending_for(self, rank: int) -> bool:
        """Whether any unfired ``sdc`` event targets ``rank``'s compute
        (per-root or partial sites; reduce corruption is the comm's)."""
        rank = int(rank)
        return (any(key[0] == rank and events
                    for key, events in self._sdc_root.items())
                or bool(self._sdc_partial.get(rank)))

    @property
    def sdc_events_pending(self) -> int:
        """How many ``sdc`` events have not fired yet."""
        return (sum(len(v) for v in self._sdc_root.values())
                + sum(len(v) for v in self._sdc_partial.values())
                + len(self._sdc_reduce))

    # -- storage faults -------------------------------------------------
    def storage_fire(self, target: str):
        """One durable write to ``target`` is being attempted; returns
        the :class:`FaultEvent` that strikes it, or ``None``.

        At most one event fires per attempt: the first live event (in
        plan order) matching ``target`` whose count of unharmed matching
        writes has reached its ``after_writes``.  A firing event
        consumes one of its ``times`` (so a repeating ``enospc`` keeps
        refiring — the disk stays full — while every other kind is
        one-shot).  Only when *no* event fires does the attempt count as
        an unharmed write for the remaining live events.
        """
        target = str(target)
        if target not in STORAGE_TARGETS:
            raise FaultSpecError(
                f"unknown storage target {target!r}; known: "
                f"{STORAGE_TARGETS}"
            )
        for entry in self._storage:
            ev = entry["ev"]
            if ev.target not in ("any", target):
                continue
            if entry["seen"] >= ev.after_writes:
                entry["remaining"] -= 1
                if entry["remaining"] <= 0:
                    self._storage.remove(entry)
                return ev
        for entry in self._storage:
            if entry["ev"].target in ("any", target):
                entry["seen"] += 1
        return None

    @property
    def storage_events_pending(self) -> int:
        """How many storage-fault firings remain unconsumed."""
        return sum(entry["remaining"] for entry in self._storage)


class FaultyComm(SimComm):
    """A :class:`SimComm` whose collectives kill planned ranks.

    Before performing a collective, every *live* rank scheduled to
    fail-stop there raises :class:`~repro.errors.RankFailure`.  The
    driver catches it, calls :meth:`mark_dead`, and re-enters the
    collective; the event has been consumed, so the retry proceeds with
    the survivors (dead ranks' contributions are zero vectors — see
    :func:`repro.cluster.distributed.partition_roots`).
    """

    def __init__(self, size: int, faults: ActiveFaults | None = None,
                 link=None, metrics=None):
        super().__init__(size, link=link, metrics=metrics)
        self.faults = faults
        self.live = set(range(self.size))
        #: Record of every in-flight corruption this comm injected:
        #: dicts with ``rank``/``site``/``index``/``bit``.  The driver
        #: reads it to attribute a detected reduce corruption to its
        #: victim rank.
        self.corruptions: list = []

    def mark_dead(self, rank: int) -> None:
        """Remove a fail-stopped rank from the collective group."""
        self.live.discard(int(rank))

    @property
    def num_live(self) -> int:
        return len(self.live)

    def _maybe_fail(self, where: str) -> None:
        if self.faults is None:
            return
        for rank in sorted(self.live):
            if self.faults.crash_at(rank, where):
                raise RankFailure(rank, where)

    # Every collective checks for planned deaths before executing.
    def bcast(self, value, root: int = 0):
        self._maybe_fail("bcast")
        return super().bcast(value, root=root)

    def scatter(self, values, root: int = 0):
        self._maybe_fail("scatter")
        return super().scatter(values, root=root)

    def gather(self, values, root: int = 0):
        self._maybe_fail("gather")
        return super().gather(values, root=root)

    def allgather(self, values):
        self._maybe_fail("allgather")
        return super().allgather(values)

    def reduce(self, values, op=None, root: int = 0):
        self._maybe_fail("reduce")
        values = self._maybe_corrupt_reduce(values)
        return super().reduce(values, op=op, root=root)

    def _maybe_corrupt_reduce(self, values):
        """Flip one bit of a planned victim rank's in-flight reduce
        contribution.  The victim's array is copied first — the caller's
        (checkpointed) buffer stays clean, exactly like a corruption on
        the wire — so a detected-and-retried reduce sees healthy data
        once the one-shot event is consumed."""
        if self.faults is None:
            return values
        ev = self.faults.sdc_for_reduce()
        if ev is None:
            return values
        values = list(values)
        if not 0 <= ev.rank < len(values) or not isinstance(
                values[ev.rank], np.ndarray):
            return values
        victim = np.array(values[ev.rank], copy=True)
        index = apply_sdc(ev, victim, seed=self.faults.seed)
        values[ev.rank] = victim
        self.corruptions.append(
            {"rank": ev.rank, "site": "reduce", "index": index, "bit": ev.bit}
        )
        return values

    def allreduce(self, values, op=None):
        self._maybe_fail("allreduce")
        return super().allreduce(values, op=op)

    def barrier(self) -> None:
        self._maybe_fail("barrier")
        super().barrier()


class FaultyDevice(Device):
    """A simulated GPU bound to one rank of a fault plan.

    Injects the rank's planned compute faults at the top of
    :meth:`~repro.gpusim.device.Device.run_bc` (via the base class's
    ``_inject_faults`` hook) and stretches the run's simulated cycles
    by the rank's straggler factor.
    """

    def __init__(self, rank: int, faults: ActiveFaults,
                 spec: GPUSpec = GTX_TITAN, costs: CostModel = DEFAULT_COSTS):
        super().__init__(spec, costs)
        self.rank = int(rank)
        self.faults = faults
        self.straggler_factor = faults.straggler_factor(self.rank)

    def _inject_faults(self, g, roots) -> None:
        crash = self.faults.compute_crash(self.rank)
        if crash is not None:
            raise RankFailure(self.rank, "compute",
                              roots_done=min(crash.after_roots, roots.size))
        if self.faults.oom_fires(self.rank):
            raise self.faults.injected_oom(self.rank, g.num_vertices * 8)

    # -- silent corruption (consumed by Device.run_bc's SDC hooks) -----
    def _sdc_pending(self) -> bool:
        return self.faults.sdc_pending_for(self.rank)

    def _sdc_events(self, root_pos: int) -> list:
        return self.faults.sdc_for_root(self.rank, root_pos)

    def _sdc_partial_events(self) -> list:
        return self.faults.sdc_for_partial(self.rank)

    def _sdc_seed(self) -> int:
        return self.faults.seed
