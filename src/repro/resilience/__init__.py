"""Fault tolerance for the distributed BC program (Section V-D at
real-cluster scale): deterministic fault injection, checkpointed root
recovery, and graceful degradation to sampled estimates.

Quickstart
----------
>>> import numpy as np
>>> from repro.graph.generators import figure1_graph
>>> from repro.bc.api import betweenness_centrality
>>> from repro.resilience import FaultPlan, resilient_distributed_bc
>>> g = figure1_graph()
>>> run = resilient_distributed_bc(g, 3, fault_plan=FaultPlan.fail_stop(1))
>>> bool(run.exact)
True
>>> bool(np.allclose(run.values, betweenness_centrality(g)))
True
"""

from .driver import (
    CheckpointStore,
    RankIncident,
    ResilientRun,
    estimate_per_root_seconds,
    resilient_distributed_bc,
)
from .faults import (
    COLLECTIVES,
    ENOSPC,
    FAIL_STOP,
    FSYNC_LIE,
    OOM,
    ROT,
    SDC,
    SDC_SITES,
    STORAGE_KINDS,
    STORAGE_TARGETS,
    STRAGGLER,
    TORN,
    ActiveFaults,
    FaultEvent,
    FaultPlan,
    FaultyComm,
    FaultyDevice,
    apply_sdc,
    flip_bit,
)

__all__ = [
    "FAIL_STOP",
    "OOM",
    "STRAGGLER",
    "SDC",
    "SDC_SITES",
    "COLLECTIVES",
    "ENOSPC",
    "TORN",
    "FSYNC_LIE",
    "ROT",
    "STORAGE_KINDS",
    "STORAGE_TARGETS",
    "apply_sdc",
    "flip_bit",
    "FaultEvent",
    "FaultPlan",
    "ActiveFaults",
    "FaultyComm",
    "FaultyDevice",
    "CheckpointStore",
    "RankIncident",
    "ResilientRun",
    "estimate_per_root_seconds",
    "resilient_distributed_bc",
]
