"""Content-addressed, checksum-verified result cache.

Results are keyed by what *determines* them — the graph's content
digest, the strategy, the exact root set, the seed, and the degradation
state — so repeated queries are free and recomputation after a crash is
idempotent: the same job always lands on the same path with the same
bytes.

Every entry (schema ``repro.result/v1``) embeds a SHA-256 checksum of
its canonical body.  :meth:`ResultCache.get` re-verifies it on every
read: an entry that rotted at rest (bit-flip, partial write outside the
atomic rename path, manual tampering) is **evicted and recomputed**,
never served — the same never-silently-wrong contract the ABFT layer
gives in-flight data.  Writes go through a temp file + ``os.replace``
so a crash can leave at most a stray temp file, never a half-written
entry at the final path.
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np

from ..observability.registry import NULL_REGISTRY

__all__ = ["RESULT_SCHEMA", "ResultCache", "result_key"]

RESULT_SCHEMA = "repro.result/v1"


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def result_key(graph_digest: str, strategy: str, roots, seed: int,
               *, degraded: str | None = None,
               fold_digest: str | None = None) -> str:
    """SHA-256 key of one result's full determinants.

    ``degraded`` distinguishes a flagged sampled estimate from the exact
    result of the same query — they are different artifacts and must
    never collide.  ``fold_digest`` (the
    :meth:`~repro.bc.preprocess.FoldResult.digest` of the degree-1
    preprocess, ``None`` when the job runs unfolded) is a determinant
    for the same reason: folded and unfolded runs of one query produce
    equal values by different computations, and a change to the
    preprocessing must miss, never serve stale bytes.
    """
    roots = np.asarray(roots, dtype=np.int64)
    h = hashlib.sha256()
    h.update(_canonical({
        "graph": str(graph_digest),
        "strategy": str(strategy),
        "seed": int(seed),
        "degraded": degraded,
        "fold": fold_digest,
        "num_roots": int(roots.size),
    }).encode("utf-8"))
    h.update(roots.tobytes())
    return h.hexdigest()


class ResultCache:
    """Directory of checksummed ``repro.result/v1`` entries."""

    def __init__(self, root, metrics=None):
        self.root = str(root)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        os.makedirs(self.root, exist_ok=True)

    def path(self, key: str) -> str:
        """Entry path; two-char fan-out keeps directories small."""
        return os.path.join(self.root, key[:2], f"{key}.json")

    @staticmethod
    def _checksum(body: dict) -> str:
        return hashlib.sha256(_canonical(body).encode("utf-8")).hexdigest()

    def put(self, key: str, values: np.ndarray, meta: dict) -> str:
        """Atomically materialise one result; returns its path.

        Writing the same key again (crash-recovery recomputation) is a
        no-op overwrite with identical bytes — exactly-once semantics by
        content addressing rather than by locking.
        """
        body = {
            "schema": RESULT_SCHEMA,
            "key": str(key),
            "meta": dict(meta),
            "values": [float(v) for v in np.asarray(values, dtype=np.float64)],
        }
        doc = dict(body)
        doc["checksum"] = self._checksum(body)
        path = self.path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(_canonical(doc) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self.metrics.inc("service.cache.writes")
        return path

    def get(self, key: str):
        """Verified read: ``(values, meta)`` or ``None``.

        ``None`` means *recompute* — either the entry does not exist or
        it failed verification and was evicted (counted under
        ``service.cache.corrupt_evicted``).
        """
        path = self.path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            self.metrics.inc("service.cache.misses")
            return None
        except (OSError, json.JSONDecodeError):
            self._evict(path, "unreadable")
            return None
        if not self._intact(doc, key):
            self._evict(path, "checksum")
            return None
        values = np.asarray(doc["values"], dtype=np.float64)
        self.metrics.inc("service.cache.hits")
        return values, dict(doc["meta"])

    def verify(self, key: str) -> bool:
        """Whether the entry exists and passes its checksum (no evict)."""
        path = self.path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return False
        return self._intact(doc, key)

    def _intact(self, doc, key: str) -> bool:
        if not isinstance(doc, dict) or doc.get("schema") != RESULT_SCHEMA:
            return False
        if doc.get("key") != key or "checksum" not in doc:
            return False
        body = {k: v for k, v in doc.items() if k != "checksum"}
        try:
            return self._checksum(body) == doc["checksum"]
        except (TypeError, ValueError):
            return False

    def _evict(self, path: str, reason: str) -> None:
        try:
            os.remove(path)
        except OSError:
            pass
        self.metrics.inc("service.cache.corrupt_evicted", reason=reason)
