"""Content-addressed, checksum-verified, byte-budgeted result cache.

Results are keyed by what *determines* them — the graph's content
digest, the strategy, the exact root set, the seed, and the degradation
state — so repeated queries are free and recomputation after a crash is
idempotent: the same job always lands on the same path with the same
bytes.

Every entry (schema ``repro.result/v1``) embeds a SHA-256 checksum of
its canonical body.  :meth:`ResultCache.get` re-verifies it on every
read: an entry that rotted at rest (bit-flip, partial write outside the
atomic rename path, manual tampering) is **evicted and recomputed**,
never served — the same never-silently-wrong contract the ABFT layer
gives in-flight data.  Writes go through a temp file + ``os.replace``
(via :class:`~repro.service.storage.ServiceStorage`, so injected disk
faults and simulated crashes strike them) so a crash can leave at most
a stray temp file, never a half-written entry at the final path.

With ``max_bytes`` set the cache is an **LRU under a byte budget**:

* every put/get refreshes the entry's recency; on restart the order is
  rebuilt from file mtimes (approximate recency is fine — eviction
  only affects *cost*, never correctness, because every entry is
  recomputable from its journal record);
* :meth:`pin`/:meth:`unpin` protect entries eviction must not touch —
  the daemon pins a key while its job is in flight or its ``done``
  record still needs the bytes for recovery verification;
* eviction deletes least-recently-used **unpinned** entries until the
  budget holds, and doubles as the ``ENOSPC`` reclaim path: a put that
  hits a full disk evicts and retries once before raising the typed
  :class:`~repro.errors.StorageFullError`.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os

import numpy as np

from ..errors import StorageFullError
from ..observability.registry import NULL_REGISTRY
from .storage import ServiceStorage

__all__ = ["RESULT_SCHEMA", "ResultCache", "result_key"]

RESULT_SCHEMA = "repro.result/v1"


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def result_key(graph_digest: str, strategy: str, roots, seed: int,
               *, degraded: str | None = None,
               fold_digest: str | None = None) -> str:
    """SHA-256 key of one result's full determinants.

    ``degraded`` distinguishes a flagged sampled estimate from the exact
    result of the same query — they are different artifacts and must
    never collide.  ``fold_digest`` (the
    :meth:`~repro.bc.preprocess.FoldResult.digest` of the degree-1
    preprocess, ``None`` when the job runs unfolded) is a determinant
    for the same reason: folded and unfolded runs of one query produce
    equal values by different computations, and a change to the
    preprocessing must miss, never serve stale bytes.
    """
    roots = np.asarray(roots, dtype=np.int64)
    h = hashlib.sha256()
    h.update(_canonical({
        "graph": str(graph_digest),
        "strategy": str(strategy),
        "seed": int(seed),
        "degraded": degraded,
        "fold": fold_digest,
        "num_roots": int(roots.size),
    }).encode("utf-8"))
    h.update(roots.tobytes())
    return h.hexdigest()


class ResultCache:
    """Directory of checksummed ``repro.result/v1`` entries.

    ``max_bytes=None`` (default) disables the budget — the cache only
    grows, exactly the original behaviour.
    """

    def __init__(self, root, metrics=None, storage=None,
                 max_bytes: int | None = None):
        self.root = str(root)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.storage = storage if storage is not None else ServiceStorage()
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        os.makedirs(self.root, exist_ok=True)
        self._pinned: set = set()
        # key -> bytes, in recency order (oldest first).  Python dicts
        # preserve insertion order; refreshing = delete + reinsert.
        self._sizes: dict = {}
        self._scan()

    def _scan(self) -> None:
        """Rebuild sizes + approximate recency (mtime) after restart."""
        found = []
        for fan in sorted(os.listdir(self.root)):
            sub = os.path.join(self.root, fan)
            if not os.path.isdir(sub):
                continue
            for name in sorted(os.listdir(sub)):
                if not name.endswith(".json"):
                    continue
                full = os.path.join(sub, name)
                try:
                    st = os.stat(full)
                except OSError:
                    continue
                found.append((st.st_mtime, name[:-5], st.st_size))
        for _mtime, key, size in sorted(found):
            self._sizes[key] = size

    def path(self, key: str) -> str:
        """Entry path; two-char fan-out keeps directories small."""
        return os.path.join(self.root, key[:2], f"{key}.json")

    @staticmethod
    def _checksum(body: dict) -> str:
        return hashlib.sha256(_canonical(body).encode("utf-8")).hexdigest()

    # -- budget accounting ---------------------------------------------
    @property
    def total_bytes(self) -> int:
        """Bytes currently accounted to cache entries."""
        return sum(self._sizes.values())

    def __len__(self) -> int:
        return len(self._sizes)

    def __contains__(self, key: str) -> bool:
        return key in self._sizes

    def _touch(self, key: str) -> None:
        if key in self._sizes:
            self._sizes[key] = self._sizes.pop(key)

    def pin(self, key: str) -> None:
        """Protect ``key`` from eviction (in-flight / recovery-needed)."""
        self._pinned.add(str(key))

    def unpin(self, key: str) -> None:
        self._pinned.discard(str(key))

    @property
    def pinned(self) -> frozenset:
        return frozenset(self._pinned)

    def evict_lru(self, want_free: int | None = None) -> int:
        """Delete least-recently-used unpinned entries; returns bytes
        freed.

        With ``want_free`` set, frees at least that many bytes (or
        every unpinned entry trying); otherwise frees until the byte
        budget holds.  Deletions go through the storage layer so the
        crash grid can kill the process mid-evict — a half-finished
        eviction just leaves fewer entries, all of them still intact.
        """
        freed = 0
        for key in list(self._sizes):
            if want_free is not None:
                if freed >= want_free:
                    break
            elif self.max_bytes is None or self.total_bytes <= self.max_bytes:
                break
            if key in self._pinned:
                continue
            size = self._sizes[key]
            self.storage.remove(self.path(key), "cache")
            del self._sizes[key]
            freed += size
            self.metrics.inc("service.cache.evicted", reason="budget")
        return freed

    # -- entries -------------------------------------------------------
    def put(self, key: str, values: np.ndarray, meta: dict) -> str:
        """Atomically materialise one result; returns its path.

        Writing the same key again (crash-recovery recomputation) is a
        no-op overwrite with identical bytes — exactly-once semantics by
        content addressing rather than by locking.  On ``ENOSPC`` the
        cache evicts LRU unpinned entries and retries once, then raises
        :class:`StorageFullError` with nothing half-written.
        """
        body = {
            "schema": RESULT_SCHEMA,
            "key": str(key),
            "meta": dict(meta),
            "values": [float(v) for v in np.asarray(values, dtype=np.float64)],
        }
        doc = dict(body)
        doc["checksum"] = self._checksum(body)
        text = _canonical(doc) + "\n"
        path = self.path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        try:
            self.storage.replace_atomic(path, text, "cache")
        except OSError as exc:
            if exc.errno != errno.ENOSPC:
                raise
            self.metrics.inc("service.cache.enospc")
            self.evict_lru(want_free=len(text.encode("utf-8")))
            try:
                self.storage.replace_atomic(path, text, "cache")
            except OSError as exc2:
                if exc2.errno != errno.ENOSPC:
                    raise
                raise StorageFullError(path, "cache put",
                                       attempts=2) from exc2
        if key in self._sizes:
            del self._sizes[key]
        self._sizes[key] = len(text.encode("utf-8"))
        self.metrics.inc("service.cache.writes")
        if self.max_bytes is not None:
            self.evict_lru()
        return path

    def get(self, key: str):
        """Verified read: ``(values, meta)`` or ``None``.

        ``None`` means *recompute* — the entry does not exist, was
        evicted under the byte budget, or failed verification and was
        evicted (counted under ``service.cache.corrupt_evicted``).
        """
        path = self.path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except FileNotFoundError:
            self.metrics.inc("service.cache.misses")
            self._sizes.pop(key, None)
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            # UnicodeDecodeError: a flipped bit can land mid-multibyte
            # sequence, so the blob dies before JSON even sees it.
            self._evict(key, "unreadable")
            return None
        if not self._intact(doc, key):
            self._evict(key, "checksum")
            return None
        values = np.asarray(doc["values"], dtype=np.float64)
        self._touch(key)
        self.metrics.inc("service.cache.hits")
        return values, dict(doc["meta"])

    def verify(self, key: str) -> bool:
        """Whether the entry exists and passes its checksum (no evict)."""
        path = self.path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return False
        return self._intact(doc, key)

    def _intact(self, doc, key: str) -> bool:
        if not isinstance(doc, dict) or doc.get("schema") != RESULT_SCHEMA:
            return False
        if doc.get("key") != key or "checksum" not in doc:
            return False
        body = {k: v for k, v in doc.items() if k != "checksum"}
        try:
            return self._checksum(body) == doc["checksum"]
        except (TypeError, ValueError):
            return False

    def _evict(self, key: str, reason: str) -> None:
        try:
            os.remove(self.path(key))
        except OSError:
            pass
        self._sizes.pop(key, None)
        self.metrics.inc("service.cache.corrupt_evicted", reason=reason)
