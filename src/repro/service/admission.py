"""Admission control: bounded queue, per-tenant quotas, load shedding.

Every submission passes through :meth:`AdmissionController.decide`
before it may touch the journal.  Three outcomes:

* ``"admit"`` — queue it for an exact run.
* ``"degrade"`` — queue it, but downgraded to a sampled estimate
  (**overload mode**): the queue is beyond its soft threshold, the job
  allows degradation, and a cheap flagged answer now beats an exact
  answer after the backlog.  The result carries ``exact=False`` and
  ``degraded_reason="overload"`` — degradation is never silent.
* shed — raise :class:`~repro.errors.ServiceOverloadError` (typed, with
  the limit that tripped): the queue is full, or the tenant is over
  quota.  Nothing is queued; the client owns the retry.

The controller is pure bookkeeping over counts supplied by the caller,
so the daemon, the load generator, and the unit tests all exercise the
identical policy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import JobSpecError, ServiceOverloadError
from ..observability.registry import NULL_REGISTRY

__all__ = ["AdmissionPolicy", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Tunables for one service instance.

    Parameters
    ----------
    max_queue:
        Hard bound on queued (pending) jobs; submissions beyond it are
        shed with backpressure.
    degrade_threshold:
        Soft bound at which overload mode begins: exact jobs that allow
        it are admitted as flagged sampled estimates.  Defaults to half
        of ``max_queue``; set equal to ``max_queue`` to disable.
    tenant_quota:
        Maximum live (pending + running) jobs per tenant.
    """

    max_queue: int = 64
    degrade_threshold: int | None = None
    tenant_quota: int = 16

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise JobSpecError("max_queue must be >= 1")
        if self.tenant_quota < 1:
            raise JobSpecError("tenant_quota must be >= 1")
        if self.degrade_threshold is None:
            object.__setattr__(self, "degrade_threshold",
                               max(1, self.max_queue // 2))
        if not 0 <= self.degrade_threshold <= self.max_queue:
            raise JobSpecError(
                "degrade_threshold must be in [0, max_queue]")


class AdmissionController:
    """Applies one :class:`AdmissionPolicy`; counts what it decides."""

    def __init__(self, policy: AdmissionPolicy | None = None, metrics=None):
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY

    def decide(self, spec, queue_depth: int, tenant_live: int) -> str:
        """``"admit"`` | ``"degrade"``, or raise ``ServiceOverloadError``.

        Parameters
        ----------
        spec:
            The :class:`~repro.service.jobs.JobSpec` being submitted.
        queue_depth:
            Current pending-queue depth (before this job).
        tenant_live:
            The submitting tenant's pending + running job count.
        """
        pol = self.policy
        if queue_depth >= pol.max_queue:
            self.metrics.inc("service.shed", reason="queue-full")
            # Deterministic retry-after hint, proportional to how far
            # over the bound we are: deeper backlog, longer wait.  The
            # client SDK uses it as the floor of its backoff.
            raise ServiceOverloadError(
                "queue full", tenant=spec.tenant, depth=queue_depth,
                limit=pol.max_queue,
                retry_after=0.1 * (1 + queue_depth - pol.max_queue))
        if tenant_live >= pol.tenant_quota:
            self.metrics.inc("service.shed", reason="tenant-quota")
            raise ServiceOverloadError(
                "tenant quota exhausted", tenant=spec.tenant,
                depth=tenant_live, limit=pol.tenant_quota,
                retry_after=0.1 * (1 + tenant_live - pol.tenant_quota))
        if queue_depth >= pol.degrade_threshold and spec.allow_degrade:
            self.metrics.inc("service.admitted", mode="degraded")
            return "degrade"
        self.metrics.inc("service.admitted", mode="exact")
        return "admit"
