"""Seeded chaos soak for the BC service: kills, disk faults, retry storms.

``run_soak(root, seed=7)`` drives one service root through a schedule of
rounds derived deterministically from the seed.  Each round:

1. opens the service with *small* disk budgets (journal segments rotate,
   the cache evicts) and a seeded storage-fault plan — ``enospc``,
   ``torn``, ``fsync-lie`` anywhere; ``rot`` only at the cache and the
   spool (journal rot is deliberately unsurvivable: the journal detects
   it and refuses to guess, so the soak never injects it);
2. may arm a **kill**: after a seeded number of storage operations the
   next one raises :class:`~repro.service.storage.SimulatedCrash` and
   the harness abandons the instance and reopens it cold — the
   SIGKILL-at-any-write model;
3. throws a **retry storm** at it: several :class:`~repro.client.BCClient`
   instances (distinct backoff seeds) submitting overlapping specs into
   a deliberately tiny admission queue, so sheds, ``retry_after`` hints,
   and content-dedupe all fire;
4. drains on a healthy reopen and asserts the standing invariants.

Invariants checked after **every** round (any failure is recorded as a
violation, and ``report["ok"]`` is False):

* **terminal exactly-once** — every submitted piece of content maps to
  exactly one job, and every job is terminal after the drain;
* **never silently wrong** — every inexact DONE result carries a
  ``degraded_reason``; every DONE result's blob passes its content
  hash; a sampled job's values match an independent recompute in a
  pristine service;
* **bounded disk** — journal + cache + spool bytes stay under their
  budgets (with the documented slack for the active segment);
* **no starvation** — every job reaches a terminal state within the
  round's poll budget (``wait`` timing out is a violation, not a wait);
* **honest journal** — ``verify_journal`` reports ok and a full replay
  sees zero illegal transitions.

The report is JSON-serialisable; the CLI (``repro service soak``) prints
it and exits non-zero on any violation.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass

from ..errors import ServiceOverloadError, StorageFullError
from ..observability.registry import NULL_REGISTRY
from ..resilience.faults import ActiveFaults, FaultPlan
from .admission import AdmissionPolicy
from .daemon import BCService
from .jobs import DONE, TERMINAL_STATES, JobSpec
from .journal import read_journal_chain, replay_state, verify_journal
from .storage import ServiceStorage, SimulatedCrash

__all__ = ["SoakConfig", "run_soak"]

#: Storage-fault spec templates the schedule draws from.  ``{n}`` is the
#: unharmed-write count before the event fires.  Journal rot is absent
#: by design (see module docstring).
_FAULT_MENU = (
    "enospc:{n}@journal",
    "enospc:{n}@journalx2",
    "enospc:{n}@cache",
    "torn:{n}@journal",
    "fsync-lie:{n}@journal",
    "fsync-lie:{n}@any",
    "rot:{n}@cache",
    "rot:{n}@spool",
)


@dataclass(frozen=True)
class SoakConfig:
    """Soak tunables; the defaults are the CI profile."""

    rounds: int = 4
    jobs_per_round: int = 7
    clients: int = 3
    scale_factor: int = 256
    max_queue: int = 3
    tenant_quota: int = 8
    journal_max_segment_bytes: int = 4096
    journal_keep_terminal: int = 4
    cache_max_bytes: int = 65536
    max_retries: int = 6
    kill_every_round: bool = False

    def __post_init__(self) -> None:
        if self.rounds < 1 or self.jobs_per_round < 1 or self.clients < 1:
            raise ValueError("rounds, jobs_per_round, clients must be >= 1")


def _spec(seed: int, cfg: SoakConfig, *, strategy: str = "sampling",
          tenant: str = "soak") -> JobSpec:
    return JobSpec(graph="smallworld", scale_factor=cfg.scale_factor,
                   strategy=strategy, roots=4, seed=seed, tenant=tenant)


def _fault_plan(rng: random.Random) -> FaultPlan | None:
    """0–2 storage events drawn from the menu, seeded."""
    picks = rng.randint(0, 2)
    if not picks:
        return None
    specs = [rng.choice(_FAULT_MENU).format(n=rng.randint(0, 8))
             for _ in range(picks)]
    return FaultPlan.parse(";".join(specs))


def _open(root, cfg: SoakConfig, storage: ServiceStorage | None,
          metrics) -> BCService:
    return BCService(
        root,
        policy=AdmissionPolicy(max_queue=cfg.max_queue,
                               tenant_quota=cfg.tenant_quota),
        metrics=metrics,
        storage=storage,
        journal_max_segment_bytes=cfg.journal_max_segment_bytes,
        journal_keep_terminal=cfg.journal_keep_terminal,
        cache_max_bytes=cfg.cache_max_bytes,
    )


def run_soak(root, seed: int = 7, config: SoakConfig | None = None,
             metrics=None, log=None) -> dict:
    """Run the full soak; returns the (JSON-serialisable) report."""
    # Imported here, not at module top: repro.client itself imports
    # repro.service, and this module is part of repro.service's public
    # surface — a top-level import would be circular.
    from ..client import (BCClient, InProcessTransport, RetryPolicy,
                          SpoolTransport)

    cfg = config if config is not None else SoakConfig()
    metrics = metrics if metrics is not None else NULL_REGISTRY
    say = log if log is not None else (lambda msg: None)
    root = str(root)
    os.makedirs(root, exist_ok=True)

    report = {
        "seed": int(seed),
        "rounds": [],
        "violations": [],
        "kills": 0,
        "faults_injected": 0,
        "client_retries": 0,
        "deduped": 0,
        "shed_gave_up": 0,
        "ok": True,
    }

    def violate(round_no, what):
        report["violations"].append({"round": round_no, "invariant": what})
        report["ok"] = False

    # Cumulative content pool for duplicate-submit pressure.  Jobs from
    # old rounds may be GC'd from the journal (that is the point of
    # `keep_terminal`), so liveness is only asserted per round.
    spec_pool: list[JobSpec] = []

    for round_no in range(1, cfg.rounds + 1):
        rng = random.Random((int(seed) << 8) ^ round_no)
        plan = _fault_plan(rng)
        # A kill strikes after a seeded number of storage ops.  The op
        # counter starts at this instance's open, so small numbers land
        # inside recovery/submit paths and larger ones mid-execution.
        kill_at = None
        if cfg.kill_every_round or rng.random() < 0.5:
            kill_at = rng.randint(3, 60)
        faults = ActiveFaults(plan, seed=seed) if plan is not None else None
        storage = ServiceStorage(faults=faults, metrics=metrics,
                                 crash_after=kill_at)
        if plan is not None:
            report["faults_injected"] += len(plan.events)
        say(f"round {round_no}: faults={str(plan) if plan else '-'} "
            f"kill_at={kill_at if kill_at is not None else '-'}")

        round_row = {
            "round": round_no,
            "faults": str(plan) if plan is not None else None,
            "kill_at": kill_at,
            "killed": False,
            "submits": 0,
            "sheds": 0,
        }

        # Seeded workload: fresh specs plus deliberate duplicates of
        # earlier content (idempotency pressure) and one spool ticket.
        specs = []
        for j in range(cfg.jobs_per_round):
            if spec_pool and rng.random() < 0.3:
                specs.append(rng.choice(spec_pool))
            else:
                job_seed = rng.randint(0, 2 ** 16)
                strategy = rng.choice(("sampling", "sampling", "hybrid"))
                specs.append(_spec(job_seed, cfg, strategy=strategy))

        svc = None
        try:
            svc = _open(root, cfg, storage, metrics)
            clients = [BCClient(InProcessTransport(svc),
                                policy=RetryPolicy(
                                    max_retries=cfg.max_retries),
                                seed=seed * 100 + c, metrics=metrics)
                       for c in range(cfg.clients)]
            spool_cli = BCClient(SpoolTransport(root, storage=storage),
                                 policy=RetryPolicy(
                                     max_retries=cfg.max_retries),
                                 seed=seed * 100 + 99, metrics=metrics)
            for j, spec in enumerate(specs):
                if j == 0:
                    # One submission per round goes through the spool,
                    # so spool-targeted faults (rot, enospc) strike a
                    # real ticket.  A corrupt ticket is dropped by the
                    # daemon; the drain below resubmits the content.
                    try:
                        spool_cli.submit(spec)
                    except StorageFullError:
                        pass
                    continue
                cli = clients[j % len(clients)]
                try:
                    cli.submit(spec)
                    round_row["submits"] += 1
                except ServiceOverloadError:
                    # The storm lost: queue never drained under it.
                    # The spec is resubmitted after the drain below —
                    # idempotently, so nothing is ever double-run.
                    report["shed_gave_up"] += 1
                    round_row["sheds"] += 1
                except StorageFullError:
                    pass
                # Interleave a little execution so the storm sees a
                # moving queue (and storage faults strike mid-run
                # writes) — but not enough to relieve the pressure that
                # makes sheds and retries fire.
                if rng.random() < 0.25:
                    svc.run_pending(max_jobs=1)
            for cli in clients:
                report["client_retries"] += cli.report["retries"]
            svc.run_pending()
            svc.poll_spool()
            svc.run_pending()
        except SimulatedCrash:
            report["kills"] += 1
            round_row["killed"] = True
            if svc is not None:
                svc.abandon()
        finally:
            if svc is not None and not svc._stop:
                svc.close()

        # Healthy reopen: recovery + drain.  Everything the round ever
        # wanted is (re)submitted here — content dedupe folds the ones
        # that already landed.
        with _open(root, cfg, ServiceStorage(metrics=metrics),
                   metrics) as svc:
            cli = BCClient(InProcessTransport(svc),
                           policy=RetryPolicy(max_retries=cfg.max_retries),
                           seed=seed, metrics=metrics)
            svc.run_pending()
            svc.poll_spool()
            round_ids: dict[str, JobSpec] = {}
            for spec in specs:
                try:
                    round_ids[cli.submit(spec)] = spec
                except ServiceOverloadError:
                    violate(round_no, "drain submit shed")
                    continue
                svc.run_pending()
            svc.run_pending()
            spec_pool.extend(s for s in specs if s not in spec_pool)

            _check_round(svc, cli, round_ids, cfg, round_no, violate, rng)
            round_row["jobs_total"] = len(svc.jobs)
            round_row["disk"] = svc.disk_usage()

        report["deduped"] = _deduped_total(metrics)
        report["rounds"].append(round_row)
        say(f"round {round_no}: jobs={round_row.get('jobs_total')} "
            f"violations={len(report['violations'])}")

    # Final honesty pass over the whole root.
    verify = verify_journal(os.path.join(root, "journal.jsonl"))
    report["journal"] = {"ok": verify["ok"], "records":
                         verify["total_records"],
                         "problems": verify["problems"]}
    if not verify["ok"]:
        violate(cfg.rounds, "journal verify failed")
    return report


def _deduped_total(metrics) -> int:
    counters = getattr(metrics, "counters", None)
    if counters is None:
        return 0
    return int(sum(c.value for c in counters()
                   if c.name == "service.deduped"))


def _check_round(svc: BCService, cli: BCClient, round_ids, cfg: SoakConfig,
                 round_no: int, violate, rng: random.Random) -> None:
    """The standing invariants, asserted on a drained healthy service."""
    # terminal exactly-once: every job terminal, one job per content key
    content_seen: dict[str, str] = {}
    for job_id, rec in svc.jobs.items():
        if rec.state not in TERMINAL_STATES:
            violate(round_no, f"job {job_id} not terminal ({rec.state})")
        ck = rec.spec.content_key()
        if ck in content_seen:
            violate(round_no,
                    f"content duplicated: {content_seen[ck]} vs {job_id}")
        content_seen[ck] = job_id

    # no starvation: every job this round submitted answers `wait` at once
    for job_id in round_ids:
        if job_id not in svc.jobs:
            violate(round_no, f"submitted job {job_id} vanished")
            continue
        try:
            cli.wait(job_id, max_polls=4)
        except TimeoutError:
            violate(round_no, f"job {job_id} starved")

    # never silently wrong: blobs verify, inexact results are flagged
    done = [j for j, r in svc.jobs.items() if r.state == DONE]
    for job_id in done:
        rec = svc.jobs[job_id]
        try:
            values, meta = svc.result(job_id)
        except Exception as exc:  # noqa: BLE001 - any failure is a finding
            violate(round_no, f"result({job_id}) raised {exc!r}")
            continue
        if not svc.cache.verify(rec.result_key):
            violate(round_no, f"cache blob for {job_id} fails its hash")
        if not meta["exact"] and not meta["degraded_reason"]:
            violate(round_no, f"job {job_id} inexact but unflagged")

    # sampled recompute, two flavours:
    # (a) evict one DONE job's blob and read through `result()` — the
    #     self-heal must *recompute* the identical values from the
    #     journalled determinants, never resurrect corrupt bytes;
    # (b) if the probe ran exact, re-run it in a pristine service (no
    #     overload, no faults) and demand byte-identical values — an
    #     end-to-end independence check on the whole storage stack.
    if done:
        probe_id = rng.choice(sorted(done))
        probe = svc.jobs[probe_id]
        values, meta = svc.result(probe_id)
        try:
            os.remove(svc.cache.path(probe.result_key))
        except OSError:
            pass
        svc.cache._sizes.pop(probe.result_key, None)
        healed, healed_meta = svc.result(probe_id)
        if (healed.tolist() != values.tolist()
                or healed_meta["exact"] != meta["exact"]):
            violate(round_no,
                    f"evicted {probe_id} recomputed to different bytes")
        if meta["exact"]:
            import tempfile

            with tempfile.TemporaryDirectory() as tmp:
                with BCService(os.path.join(tmp, "ref")) as ref:
                    ref_rec = ref.submit(probe.spec.with_id(""))
                    ref.run_pending()
                    if ref.jobs[ref_rec.job_id].state != DONE:
                        violate(round_no,
                                f"recompute of {probe_id} diverged in state")
                    else:
                        ref_values, ref_meta = ref.result(ref_rec.job_id)
                        if (ref_values.tolist() != values.tolist()
                                or ref_meta["exact"] is not True):
                            violate(round_no,
                                    f"recompute of {probe_id} diverged")

    # bounded disk: cache under budget, journal within segment slack
    usage = svc.disk_usage()
    if cfg.cache_max_bytes and usage["cache"] > cfg.cache_max_bytes:
        violate(round_no,
                f"cache over budget ({usage['cache']} > "
                f"{cfg.cache_max_bytes})")
    journal_cap = 6 * cfg.journal_max_segment_bytes
    if usage["journal"] > journal_cap:
        violate(round_no,
                f"journal over budget ({usage['journal']} > {journal_cap})")
    if usage["spool"]:
        violate(round_no, f"spool not drained ({usage['spool']} bytes)")

    # honest journal: verify + replay with zero illegal transitions
    verify = verify_journal(svc.journal.path)
    if not verify["ok"]:
        violate(round_no, f"journal verify: {verify['problems']}")
    records, _ = read_journal_chain(svc.journal.path)
    state = replay_state(records, svc.journal.path)
    if state.illegal_transitions:
        violate(round_no,
                f"illegal transitions: {state.illegal_transitions}")
