"""The BC service daemon: load graphs once, serve many jobs, survive
``kill -9``.

:class:`BCService` ties the service layers together around one service
directory::

    <root>/journal.jsonl   write-ahead job journal (repro.job/v1)
    <root>/results/        content-addressed result cache (repro.result/v1)
    <root>/spool/          cross-process submission/cancel drop box

**Durability contract.**  Every externally visible state change is
journalled (fsynced) *before* it is acknowledged, and results are
materialised into the cache *before* their ``done`` record is written.
So after a crash at any instant, replaying the journal reconstructs a
state from which re-running the pending queue converges to exactly the
terminal states a crash-free run reaches:

* crash before ``submit`` landed — the client never got an ack, the job
  does not exist;
* crash while ``RUNNING`` — replay requeues the job (attempt count
  preserved, so the retry budget is not reset);
* crash after the cache write but before ``done`` — the job is requeued
  and its first scheduling step hits the cache (content-addressed keys
  make recomputation idempotent), so the result is never computed twice
  *observably* and never lost.

**Cross-process protocol.**  Clients never talk to the daemon directly:
``repro service submit`` drops an atomically-renamed ticket into the
spool, the daemon folds it in on its next poll, and ``repro service
status`` reads the journal — which is valid at every instant — without
coordinating with the daemon at all.
"""

from __future__ import annotations

import json
import os
import signal
import time
from collections import deque

from ..errors import (
    JobNotFoundError,
    JobSpecError,
    ServiceOverloadError,
    StorageFullError,
)
from ..graph.generators import make_dataset
from ..observability.registry import MetricsRegistry
from ..telemetry import TelemetryLog, trace_id_for
from .admission import AdmissionController, AdmissionPolicy
from .cache import ResultCache, result_key
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    SHED,
    JobRecord,
    JobSpec,
)
from .journal import JobJournal, replay_state
from .scheduler import Scheduler, sample_roots
from .storage import ServiceStorage

__all__ = ["BCService"]


class BCService:
    """One service instance rooted at a directory (see module docs).

    Storage-hardening knobs (all optional, defaults = unbounded and
    healthy, the original behaviour):

    ``storage``
        A :class:`~repro.service.storage.ServiceStorage` every durable
        write routes through — the soak harness hands one wired with
        injected disk faults and/or a ``crash_after`` op counter.
    ``journal_max_segment_bytes`` / ``journal_keep_terminal``
        Journal rotation + compaction budget (see
        :class:`~repro.service.journal.JobJournal`).
    ``cache_max_bytes``
        LRU byte budget for the result cache; in-flight entries are
        pinned, evicted ones are recomputed on demand.
    """

    def __init__(self, root, *, policy: AdmissionPolicy | None = None,
                 scheduler: Scheduler | None = None, metrics=None,
                 storage: ServiceStorage | None = None,
                 journal_max_segment_bytes: int | None = None,
                 journal_keep_terminal: int = 8,
                 cache_max_bytes: int | None = None):
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        # A real registry by default: admission/scheduler/journal/cache
        # counters are cheap, and `serve --metrics-out` should export
        # real numbers without the caller having to wire anything.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.storage = (storage if storage is not None
                        else ServiceStorage(metrics=self.metrics))
        self.journal = JobJournal(os.path.join(self.root, "journal.jsonl"),
                                  metrics=self.metrics, storage=self.storage,
                                  max_segment_bytes=journal_max_segment_bytes,
                                  keep_terminal=journal_keep_terminal)
        self.cache = ResultCache(os.path.join(self.root, "results"),
                                 metrics=self.metrics, storage=self.storage,
                                 max_bytes=cache_max_bytes)
        # Journal ENOSPC reclaim may also free cache space (eviction
        # deletes, so it works even when no write can).
        self.journal.on_reclaim = lambda: self.cache.evict_lru(
            want_free=max(4096, self.cache.total_bytes // 2))
        self.spool_dir = os.path.join(self.root, "spool")
        os.makedirs(self.spool_dir, exist_ok=True)
        self.admission = AdmissionController(policy, metrics=self.metrics)
        self.scheduler = (scheduler if scheduler is not None
                          else Scheduler(metrics=self.metrics))
        # Quarantine decisions survive restarts via `breaker` records.
        self.scheduler.breaker.on_transition = self._journal_breaker
        self._stop = False

        state = replay_state(self.journal.records, self.journal.path)
        self.jobs = state.jobs
        self.queue = deque(state.pending_ids())
        #: Jobs found RUNNING in the journal and requeued at startup.
        self.recovered_ids = list(state.interrupted)
        self.scheduler.breaker.restore(state.breakers)
        if self.recovered_ids:
            self.metrics.inc("service.jobs_recovered",
                             float(len(self.recovered_ids)))
            # Make the recovery requeue explicit in the journal: the
            # prior process died after `start`, so without this record
            # the re-run's own `start` would read as an illegal
            # running->running transition on the *next* replay.
            for job_id in self.recovered_ids:
                self.journal.append("requeue", job_id=job_id,
                                    reason="recovered")
        self._graphs: dict = {}
        self._fold_digests: dict = {}
        self._next_id = 1 + max(
            (int(j[1:]) for j in self.jobs if j.startswith("j")
             and j[1:].isdigit()), default=0)
        # Content-hash dedupe index (submit idempotency): latest job id
        # per content key, rebuilt from the replayed journal so retried
        # submits after a crash still land on the original job.
        self._by_content: dict = {}
        for job in sorted(self.jobs.values(), key=lambda j: j.submit_seq):
            self._by_content[job.spec.content_key()] = job.job_id
        #: Storage-full requeues per job (bounded; then the job fails).
        self._storage_requeues: dict = {}

        # Lifecycle event stream (repro.events/v1) next to the journal.
        # Constructed *after* replay so reconcile can back-fill events
        # for everything journalled before the hook existed — this
        # open's `open` record, recovery requeues, and any record whose
        # event died with the previous process.
        self.telemetry = TelemetryLog(
            os.path.join(self.root, "events.jsonl"),
            storage=self.storage, clock=self.scheduler.clock,
            metrics=self.metrics)
        self.telemetry.reconcile(self.journal.records)
        self.journal.on_append = self.telemetry.on_journal_record
        self.scheduler.on_decision = self._on_decision

    # -- infrastructure ------------------------------------------------
    def _on_decision(self, decision: dict) -> None:
        """Mirror one scheduler decision as a ``sched.*`` event."""
        fields = {k: v for k, v in decision.items() if k != "decision"}
        job_id = fields.get("job_id")
        trace = self.telemetry.trace_for(job_id) if job_id else None
        if trace:
            fields["trace_id"] = trace
        self.telemetry.emit(f"sched.{decision['decision']}", **fields)

    def _journal_breaker(self, key, state, failures) -> None:
        graph_key, strategy = key
        self.journal.append("breaker", graph_key=graph_key,
                            strategy=strategy, state=state,
                            failures=int(failures))

    def _graph(self, spec: JobSpec):
        gkey = (spec.graph, int(spec.scale_factor), int(spec.graph_seed))
        g = self._graphs.get(gkey)
        if g is None:
            with self.metrics.span("service.load_graph", graph=spec.graph):
                g = make_dataset(spec.graph, scale_factor=spec.scale_factor,
                                 seed=spec.graph_seed)
            self._graphs[gkey] = g
            self.metrics.inc("service.graphs_loaded")
        return g

    def _fold_digest(self, g, spec: JobSpec) -> str | None:
        """The job's fold digest (a result-key determinant), or ``None``
        for unfolded jobs; computed once per distinct graph."""
        if not spec.fold:
            return None
        gd = g.digest()
        d = self._fold_digests.get(gd)
        if d is None:
            from ..bc.preprocess import fold_degree_one

            d = fold_degree_one(g).digest()
            self._fold_digests[gd] = d
        return d

    def _tenant_live(self, tenant: str) -> int:
        return sum(1 for j in self.jobs.values()
                   if j.spec.tenant == tenant
                   and j.state in (PENDING, RUNNING))

    #: States under which a content-identical resubmit is folded into
    #: the existing job rather than enqueued again.  Terminal failures
    #: (FAILED/CANCELLED/SHED) do *not* dedupe — resubmitting is the
    #: client's way of asking for another attempt.
    _DEDUPE_STATES = (PENDING, RUNNING, DONE)

    # -- client surface ------------------------------------------------
    def submit(self, spec) -> JobRecord:
        """Admit one job (or shed it with ``ServiceOverloadError``).

        Returns the queued :class:`JobRecord`; its ``submit`` journal
        record is durable before this method returns.

        **Idempotency.**  A submission whose
        :meth:`~repro.service.jobs.JobSpec.content_key` matches a job
        that is pending, running, or done returns that existing record
        — no new journal record, no second execution — so a client
        retrying a lost ack can never duplicate work.  Reusing a job id
        for *different* content is still an error.
        """
        if isinstance(spec, dict):
            spec = JobSpec.from_dict(spec)
        ck = spec.content_key()
        if spec.job_id and spec.job_id in self.jobs:
            existing = self.jobs[spec.job_id]
            if existing.spec.content_key() != ck:
                raise JobSpecError(f"duplicate job id {spec.job_id!r}")
            if existing.state in self._DEDUPE_STATES:
                self.metrics.inc("service.deduped", by="job-id")
                self.telemetry.emit("dedupe", trace_id=trace_id_for(spec),
                                    job_id=existing.job_id, by="job-id",
                                    state=existing.state)
                return existing
            # Identical content whose prior run ended in a terminal
            # failure (failed/cancelled/shed): resubmission is the
            # client asking for another attempt.  Fall through to
            # admission under the same id — replay honours the later
            # submit record.
        prior_id = self._by_content.get(ck)
        if prior_id is not None:
            prior = self.jobs.get(prior_id)
            if prior is not None and prior.state in self._DEDUPE_STATES:
                self.metrics.inc("service.deduped", by="content")
                self.telemetry.emit("dedupe", trace_id=trace_id_for(spec),
                                    job_id=prior.job_id, by="content",
                                    state=prior.state)
                return prior
        if not spec.job_id:
            spec = spec.with_id(f"j{self._next_id:06d}")
            self._next_id += 1
        try:
            mode = self.admission.decide(spec, len(self.queue),
                                         self._tenant_live(spec.tenant))
        except ServiceOverloadError as exc:
            # Shedding is journalled too: a shed job has a queryable
            # terminal state instead of silently vanishing.
            rec = self.journal.append("shed", job=spec.to_dict(),
                                      reason=str(exc))
            self.jobs[spec.job_id] = JobRecord(
                spec=spec, state=SHED, submit_seq=rec["seq"],
                error=str(exc))
            raise
        rec = self.journal.append("submit", job=spec.to_dict(), mode=mode)
        job = JobRecord(spec=spec, state=PENDING, submit_seq=rec["seq"],
                        admit_degraded=(mode == "degrade"))
        self.jobs[spec.job_id] = job
        self._by_content[ck] = spec.job_id
        self.queue.append(spec.job_id)
        return job

    def status(self, job_id: str | None = None):
        """One job's status dict, or every job's (submit order)."""
        if job_id is not None:
            job = self.jobs.get(job_id)
            if job is None:
                raise JobNotFoundError(job_id)
            return job.status_dict()
        ordered = sorted(self.jobs.values(), key=lambda j: j.submit_seq)
        return [j.status_dict() for j in ordered]

    def service_status(self) -> dict:
        """Aggregate health row (what ``service status`` prints first)."""
        counts: dict = {}
        for job in self.jobs.values():
            counts[job.state] = counts.get(job.state, 0) + 1
        return {
            "queue_depth": len(self.queue),
            "max_queue": self.admission.policy.max_queue,
            "overloaded": len(self.queue)
            >= self.admission.policy.degrade_threshold,
            "jobs": counts,
            "graphs_loaded": len(self._graphs),
            "recovered": list(self.recovered_ids),
            "breakers": {
                "/".join(k): dict(v) for k, v in
                self.scheduler.breaker.snapshot().items()
                if v["state"] != "closed" or v["failures"]
            },
        }

    def cancel(self, job_id: str) -> bool:
        """Cancel a PENDING job; ``False`` if it already left the queue."""
        job = self.jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(job_id)
        if job.state != PENDING:
            return False
        self.journal.append("cancel", job_id=job_id, reason="client cancel")
        job.state = CANCELLED
        job.error = "client cancel"
        try:
            self.queue.remove(job_id)
        except ValueError:
            pass
        self.metrics.inc("service.jobs_cancelled")
        return True

    def result(self, job_id: str):
        """A DONE job's ``(values, meta)``, self-healing on cache rot.

        A corrupt cache entry is evicted by the verified read and the
        result recomputed from the job's determinants — same key, same
        bytes — so corruption at rest is repaired, never served.
        """
        job = self.jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(job_id)
        if job.state != DONE or job.result_key is None:
            raise JobSpecError(
                f"job {job_id!r} has no result (state={job.state})")
        hit = self.cache.get(job.result_key)
        if hit is not None:
            return hit
        self.metrics.inc("service.results_healed")
        return self._recompute(job)

    def _recompute(self, job: JobRecord):
        """Re-materialise a DONE job's result (idempotent by keying).

        The ``done`` journal record carries everything the result is a
        function of — for degraded jobs that includes the sample count —
        so the healed entry lands on the same key with the same values.
        """
        spec = job.spec
        g = self._graph(spec)
        roots = sample_roots(g, spec)
        dev = self.scheduler._pick_device()
        if job.degraded_reason is not None:
            k = (int(job.samples) if job.samples
                 else max(1, int(roots.size
                                 * self.scheduler.overload_sample_fraction)))
            values, _ = self.scheduler._sampled_estimate(dev, g, spec,
                                                         roots, k)
        else:
            run = dev.device.run_bc(g, strategy=spec.strategy, roots=roots,
                                    metrics=self.metrics, fold=spec.fold)
            values = run.bc
        meta = {"job_id": spec.job_id, "exact": bool(job.exact),
                "degraded_reason": job.degraded_reason,
                "device": job.device, "attempts": int(job.attempt),
                "sim_seconds": float(job.sim_seconds),
                "samples": job.samples}
        self.cache.pin(job.result_key)
        try:
            self.cache.put(job.result_key, values, meta)
            return self.cache.get(job.result_key)
        finally:
            self.cache.unpin(job.result_key)

    # -- execution -----------------------------------------------------
    def _candidate_keys(self, job: JobRecord, g, roots) -> list:
        """Result keys this job could already have materialised.

        Covers the crash window between ``cache.put`` and the ``done``
        record: the admitted mode's key, plus the deadline-degraded key
        when the job could have taken that path.
        """
        spec = job.spec
        fd = self._fold_digest(g, spec)
        degraded = "overload" if job.admit_degraded else None
        keys = [(result_key(g.digest(), spec.strategy, roots, spec.seed,
                            degraded=degraded, fold_digest=fd), degraded)]
        if (degraded is None and spec.deadline_seconds is not None
                and spec.allow_degrade):
            keys.append((result_key(g.digest(), spec.strategy, roots,
                                    spec.seed, degraded="deadline",
                                    fold_digest=fd),
                         "deadline"))
        return keys

    def process_next(self) -> JobRecord | None:
        """Run the queue head to a terminal state; ``None`` if idle."""
        while self.queue:
            job_id = self.queue.popleft()
            job = self.jobs.get(job_id)
            if job is not None and job.state == PENDING:
                return self._execute(job)
        return None

    def _execute(self, job: JobRecord) -> JobRecord:
        spec = job.spec
        g = self._graph(spec)
        roots = sample_roots(g, spec)

        # Exactly-once fast path: a recovered job whose crash fell
        # between the cache write and the `done` record finds its result
        # already materialised and intact — acknowledge, don't recompute.
        for key, degraded in self._candidate_keys(job, g, roots):
            hit = self.cache.get(key)
            if hit is None:
                continue
            _, meta = hit
            self.journal.append(
                "start", job_id=spec.job_id, attempt=job.attempt + 1,
                device=meta.get("device"))
            job.attempt += 1
            self._finish_done(job, key, exact=bool(meta.get("exact",
                                                            degraded is None)),
                              degraded_reason=meta.get("degraded_reason",
                                                       degraded),
                              device=meta.get("device"),
                              sim_seconds=float(meta.get("sim_seconds", 0.0)),
                              samples=meta.get("samples"))
            self.metrics.inc("service.cache.replayed")
            return job

        def on_start(attempt: int, device: str) -> None:
            self.journal.append("start", job_id=spec.job_id,
                                attempt=attempt, device=device)
            job.state = RUNNING
            job.attempt = attempt
            job.device = device

        def on_requeue(attempt: int, delay: float, reason: str) -> None:
            self.journal.append("requeue", job_id=spec.job_id,
                                attempt=attempt, delay=delay, reason=reason)
            job.state = PENDING
            job.backoff_delays.append(delay)

        degrade_reason = "overload" if job.admit_degraded else None
        outcome = self.scheduler.execute(
            spec, g, prior_attempts=job.attempt,
            degrade_reason=degrade_reason,
            on_start=on_start, on_requeue=on_requeue)

        if outcome.ok:
            key = result_key(g.digest(), spec.strategy, roots, spec.seed,
                             degraded=outcome.degraded_reason,
                             fold_digest=self._fold_digest(g, spec))
            # Materialise BEFORE acknowledging: the `done` record must
            # never point at a result that might not exist.  The key is
            # pinned across the put→done window so eviction (budget or
            # ENOSPC reclaim — including the reclaim triggered by the
            # `done` append itself) can't delete the bytes the pending
            # acknowledgement is about to promise.
            self.cache.pin(key)
            try:
                self.cache.put(key, outcome.values, {
                    "job_id": spec.job_id, "exact": outcome.exact,
                    "degraded_reason": outcome.degraded_reason,
                    "device": outcome.device, "attempts": outcome.attempts,
                    "sim_seconds": outcome.sim_seconds,
                    "samples": outcome.samples})
            except StorageFullError as exc:
                self.cache.unpin(key)
                return self._storage_full_requeue(job, outcome.attempts, exc)
            try:
                job.attempt = outcome.attempts
                job.device = outcome.device
                self._finish_done(job, key, exact=outcome.exact,
                                  degraded_reason=outcome.degraded_reason,
                                  device=outcome.device,
                                  sim_seconds=outcome.sim_seconds,
                                  samples=outcome.samples)
            finally:
                self.cache.unpin(key)
        else:
            self.journal.append("fail", job_id=spec.job_id,
                                error=outcome.error,
                                error_kind=outcome.error_kind)
            job.state = FAILED
            job.attempt = max(job.attempt, outcome.attempts)
            job.error = outcome.error
            self.metrics.inc("service.jobs_failed",
                             kind=outcome.error_kind or "error")
        return job

    def _storage_full_requeue(self, job: JobRecord, attempts: int,
                              exc) -> JobRecord:
        """The disk stayed full through reclaim: park the job instead
        of losing its work, fail it after repeated strikes.

        The requeue is journalled when the journal can still take a
        record (its appends have their own reclaim path); if even that
        fails the job stays RUNNING in the journal and crash recovery
        requeues it — the same convergence, one restart later."""
        spec = job.spec
        strikes = self._storage_requeues.get(spec.job_id, 0) + 1
        self._storage_requeues[spec.job_id] = strikes
        self.metrics.inc("service.storage_full_requeues")
        if strikes > 3:
            self.journal.append("fail", job_id=spec.job_id,
                                error=str(exc), error_kind="storage-full")
            job.state = FAILED
            job.attempt = max(job.attempt, attempts)
            job.error = str(exc)
            self.metrics.inc("service.jobs_failed", kind="storage-full")
            return job
        self.journal.append("requeue", job_id=spec.job_id,
                            attempt=attempts, delay=0.0,
                            reason="storage-full")
        job.state = PENDING
        job.attempt = max(job.attempt, attempts)
        self.queue.append(spec.job_id)
        return job

    def _finish_done(self, job: JobRecord, key: str, *, exact: bool,
                     degraded_reason, device, sim_seconds: float,
                     samples=None) -> None:
        self.journal.append("done", job_id=job.job_id, result_key=key,
                            exact=bool(exact),
                            degraded_reason=degraded_reason,
                            sim_seconds=float(sim_seconds), device=device,
                            samples=samples)
        job.state = DONE
        job.result_key = key
        job.exact = bool(exact)
        job.degraded_reason = degraded_reason
        job.device = device
        job.sim_seconds = float(sim_seconds)
        job.samples = samples
        self.metrics.inc("service.jobs_done",
                         exact="true" if exact else "false")

    def run_pending(self, max_jobs: int | None = None) -> int:
        """Drain the queue (or ``max_jobs`` of it); returns jobs run."""
        done = 0
        while self.queue and (max_jobs is None or done < max_jobs):
            if self.process_next() is not None:
                done += 1
        return done

    # -- spool (cross-process submissions) -----------------------------
    def poll_spool(self) -> int:
        """Fold spool tickets in (oldest first); returns tickets taken."""
        try:
            names = sorted(n for n in os.listdir(self.spool_dir)
                           if n.endswith(".json"))
        except FileNotFoundError:
            return 0
        taken = 0
        for name in names:
            path = os.path.join(self.spool_dir, name)
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    ticket = json.load(fh)
            except (OSError, json.JSONDecodeError):
                # Torn or foreign file: leave it one poll (the writer may
                # still be renaming), then drop it.
                self.metrics.inc("service.spool.unreadable")
                try:
                    os.remove(path)
                except OSError:
                    pass
                continue
            try:
                os.remove(path)
            except OSError:
                pass
            taken += 1
            op = ticket.get("op") if isinstance(ticket, dict) else None
            try:
                if op == "submit":
                    self.submit(ticket.get("job", {}))
                elif op == "cancel":
                    self.cancel(str(ticket.get("job_id", "")))
                else:
                    self.metrics.inc("service.spool.bad_op")
            except (JobSpecError, JobNotFoundError, ServiceOverloadError):
                # Already journalled (shed) or inherently a client error;
                # the client sees it via `status`.
                pass
            except StorageFullError:
                # The ticket is consumed but nothing was journalled —
                # the client's poll finds the job unknown and its
                # idempotent (content-derived) job id makes the
                # resubmit safe.
                self.metrics.inc("service.spool.storage_full")
        return taken

    # -- accounting ----------------------------------------------------
    def spool_bytes(self) -> int:
        total = 0
        try:
            for name in os.listdir(self.spool_dir):
                try:
                    total += os.path.getsize(
                        os.path.join(self.spool_dir, name))
                except OSError:
                    pass
        except FileNotFoundError:
            pass
        return total

    def disk_usage(self) -> dict:
        """Bytes on disk per component (the soak harness's budget
        invariant reads this)."""
        return {
            "journal": self.journal.total_bytes(),
            "cache": self.cache.total_bytes,
            "spool": self.spool_bytes(),
            "events": self.telemetry.total_bytes(),
        }

    # -- lifecycle -----------------------------------------------------
    def drain(self) -> int:
        """Graceful shutdown: take spooled work, finish the queue."""
        self.poll_spool()
        n = self.run_pending()
        self.metrics.inc("service.drained", float(n))
        return n

    def close(self) -> None:
        self.journal.close()

    def abandon(self) -> None:
        """Walk away without drain or close — the in-process equivalent
        of the process dying.  The instance must not be used again; the
        next :class:`BCService` on the same root recovers from the
        journal exactly as it would after SIGKILL."""
        self._stop = True
        self.journal._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def serve_forever(self, *, poll_interval: float = 0.05,
                      throttle: float = 0.0,
                      idle_exit: float | None = None,
                      install_signals: bool = True) -> None:
        """Serve until SIGTERM/SIGINT (graceful drain) or ``idle_exit``
        seconds with no work.

        ``throttle`` sleeps (wall-clock) between jobs — the CI smoke
        test uses it to widen the window for its mid-run ``SIGKILL``.
        """
        if install_signals:
            def _request_stop(signum, frame):
                self._stop = True

            signal.signal(signal.SIGTERM, _request_stop)
            signal.signal(signal.SIGINT, _request_stop)
        idle_since = time.monotonic()
        while not self._stop:
            took = self.poll_spool()
            ran = self.run_pending(max_jobs=1)
            if throttle and ran:
                time.sleep(throttle)
            if took or ran or self.queue:
                idle_since = time.monotonic()
                continue
            if (idle_exit is not None
                    and time.monotonic() - idle_since >= idle_exit):
                break
            time.sleep(poll_interval)
        self.drain()
        self.close()
