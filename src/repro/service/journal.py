"""Durable job journal: an append-only, checksummed write-ahead log.

Format (``repro.job/v1``) — one record per line::

    <crc32 hex, 8 chars> <canonical single-line JSON body>\\n

The body always carries ``kind`` (record type) and ``seq`` (strictly
increasing).  Appends are flushed **and fsynced** before the caller
proceeds, so a record returned from :meth:`JobJournal.append` survives
``kill -9`` of the daemon and the journal is the single source of truth
for job state: ``status`` reads it, recovery replays it, and the CI
smoke job uploads it as an artifact.

Crash semantics on read:

* A corrupt or incomplete **last** line is a *torn write* — exactly what
  a SIGKILL mid-``write(2)`` leaves behind.  It is dropped, reported via
  ``torn_tail``, and truncated away when the journal is reopened for
  appending (the record was never acknowledged, so dropping it loses
  nothing).
* A corrupt line anywhere **else** raises
  :class:`~repro.errors.JournalCorruptionError`: the file was damaged at
  rest and recovery must not guess around the hole.

:func:`replay_state` folds a record list into per-job
:class:`~repro.service.jobs.JobRecord` state: jobs found ``RUNNING``
(a ``start`` with no terminal record — the daemon died mid-job) are
requeued as ``PENDING`` with their attempt count preserved, which is
what makes restart-after-crash converge to the same terminal states a
crash-free run reaches.
"""

from __future__ import annotations

import json
import os
import zlib

from ..errors import JournalCorruptionError
from ..observability.registry import NULL_REGISTRY
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    SHED,
    JobRecord,
    JobSpec,
    legal_transition,
)

__all__ = [
    "JOURNAL_SCHEMA",
    "RECORD_KINDS",
    "JobJournal",
    "ReplayedState",
    "encode_record",
    "decode_line",
    "read_journal",
    "replay_state",
]

JOURNAL_SCHEMA = "repro.job/v1"

#: Record kinds the replayer understands.  ``open`` marks (re)openings
#: of the journal, ``breaker`` persists circuit-breaker transitions so a
#: quarantined (graph, strategy) pair stays quarantined across restarts.
RECORD_KINDS = ("open", "submit", "start", "requeue", "done", "fail",
                "cancel", "shed", "breaker")


def encode_record(record: dict) -> str:
    """One journal line: crc32 of the canonical JSON body, then the body."""
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    if "\n" in body:
        raise ValueError("journal record bodies must be single-line")
    return f"{zlib.crc32(body.encode('utf-8')) & 0xFFFFFFFF:08x} {body}\n"


def decode_line(line: str) -> dict:
    """Inverse of :func:`encode_record`; raises ``ValueError`` on any
    checksum/framing problem (the caller decides torn-tail vs corrupt)."""
    if not line.endswith("\n"):
        raise ValueError("record not newline-terminated (torn write)")
    raw = line[:-1]
    if len(raw) < 10 or raw[8] != " ":
        raise ValueError("bad framing: expected '<crc8> <json>'")
    crc_hex, body = raw[:8], raw[9:]
    try:
        crc = int(crc_hex, 16)
    except ValueError:
        raise ValueError(f"bad checksum field {crc_hex!r}")
    actual = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    if crc != actual:
        raise ValueError(
            f"checksum mismatch: recorded {crc_hex}, actual {actual:08x}"
        )
    try:
        record = json.loads(body)
    except json.JSONDecodeError as exc:
        raise ValueError(f"checksummed body is not JSON: {exc}")
    if not isinstance(record, dict) or "kind" not in record:
        raise ValueError("record body must be an object with a 'kind'")
    return record


def read_journal(path):
    """Read every intact record; returns ``(records, torn_tail)``.

    A corrupt tail line is dropped (``torn_tail=True``); corruption
    before the tail raises :class:`JournalCorruptionError`.  A missing
    file reads as empty.
    """
    if not os.path.exists(path):
        return [], False
    with open(path, "r", encoding="utf-8", newline="") as fh:
        lines = fh.readlines()
    records = []
    for i, line in enumerate(lines):
        try:
            records.append(decode_line(line))
        except ValueError as exc:
            if i == len(lines) - 1:
                return records, True
            raise JournalCorruptionError(path, i + 1, str(exc)) from exc
    return records, False


class JobJournal:
    """Append-side handle on one journal file.

    Opening replays the existing file (validating it), truncates a torn
    tail, and appends an ``open`` record — so every daemon start is
    itself journalled and the sequence counter continues from the last
    durable record.
    """

    def __init__(self, path, metrics=None):
        self.path = str(path)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self.records, torn = read_journal(self.path)
        self.torn_tail_truncated = torn
        if torn:
            # Drop the unacknowledged torn record so the next append
            # starts on a clean line boundary.
            good = "".join(encode_record(r) for r in self.records)
            with open(self.path, "w", encoding="utf-8", newline="") as fh:
                fh.write(good)
                fh.flush()
                os.fsync(fh.fileno())
            self.metrics.inc("service.journal.torn_tail_truncated")
        self._seq = max((r.get("seq", 0) for r in self.records), default=0)
        self._fh = open(self.path, "a", encoding="utf-8", newline="")
        self.append("open", schema=JOURNAL_SCHEMA)

    @property
    def next_seq(self) -> int:
        return self._seq + 1

    def append(self, kind: str, **fields) -> dict:
        """Durably append one record; returns it (with its ``seq``)."""
        if kind not in RECORD_KINDS:
            raise ValueError(f"unknown journal record kind {kind!r}")
        self._seq += 1
        record = {"kind": kind, "seq": self._seq, **fields}
        self._fh.write(encode_record(record))
        self._fh.flush()
        os.fsync(self._fh.fileno())
        self.records.append(record)
        self.metrics.inc("service.journal.records", kind=kind)
        return record

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class ReplayedState:
    """Outcome of folding a journal: jobs, breaker state, statistics."""

    def __init__(self):
        self.jobs: dict = {}            # job_id -> JobRecord
        #: (graph_key, strategy) -> last journalled breaker snapshot.
        self.breakers: dict = {}
        #: Jobs found RUNNING and requeued (daemon died mid-job).
        self.interrupted: list = []
        self.illegal_transitions: list = []

    def pending_ids(self) -> list:
        """PENDING job ids in submit order (the recovered queue)."""
        pend = [j for j in self.jobs.values() if j.state == PENDING]
        return [j.job_id for j in sorted(pend, key=lambda j: j.submit_seq)]


def replay_state(records, path: str = "<journal>") -> ReplayedState:
    """Fold journal ``records`` into the service state they describe."""
    state = ReplayedState()
    for record in records:
        kind = record.get("kind")
        if kind in ("open", None):
            continue
        if kind == "breaker":
            key = (record.get("graph_key", ""), record.get("strategy", ""))
            state.breakers[key] = {
                "state": record.get("state", "closed"),
                "failures": int(record.get("failures", 0)),
            }
            continue
        if kind == "submit":
            spec = JobSpec.from_dict(record["job"])
            job = JobRecord(spec=spec, state=PENDING,
                            submit_seq=int(record.get("seq", 0)),
                            admit_degraded=(record.get("mode")
                                            == "degrade"))
            state.jobs[spec.job_id] = job
            continue
        if kind == "shed":
            spec = JobSpec.from_dict(record["job"])
            job = JobRecord(spec=spec, state=SHED,
                            submit_seq=int(record.get("seq", 0)),
                            error=record.get("reason"))
            state.jobs[spec.job_id] = job
            continue
        job = state.jobs.get(record.get("job_id"))
        if job is None:
            raise JournalCorruptionError(
                path, int(record.get("seq", 0)),
                f"{kind} record for never-submitted job "
                f"{record.get('job_id')!r}",
            )
        new_state = {"start": RUNNING, "requeue": PENDING, "done": DONE,
                     "fail": FAILED, "cancel": CANCELLED}[kind]
        if not legal_transition(job.state, new_state):
            state.illegal_transitions.append(
                (job.job_id, job.state, new_state))
            continue
        job.state = new_state
        if kind == "start":
            job.attempt = int(record.get("attempt", job.attempt + 1))
            job.device = record.get("device")
        elif kind == "requeue":
            if "delay" in record:
                job.backoff_delays.append(float(record["delay"]))
        elif kind == "done":
            job.result_key = record.get("result_key")
            job.exact = bool(record.get("exact", True))
            job.degraded_reason = record.get("degraded_reason")
            job.sim_seconds = float(record.get("sim_seconds", 0.0))
            job.device = record.get("device", job.device)
            if record.get("samples") is not None:
                job.samples = int(record["samples"])
        elif kind == "fail":
            job.error = record.get("error")
        elif kind == "cancel":
            job.error = record.get("reason")
    # A job still RUNNING after the fold means the daemon died mid-job:
    # its done/fail record never made it to stable storage, so the only
    # correct recovery is to run it again (results are content-addressed
    # and written before `done`, so recomputation is idempotent).
    for job in state.jobs.values():
        if job.state == RUNNING:
            job.state = PENDING
            job.recovered = True
            state.interrupted.append(job.job_id)
    return state
