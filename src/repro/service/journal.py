"""Durable job journal: a segmented, checksummed write-ahead log.

Format (``repro.job/v1``) — one record per line::

    <crc32 hex, 8 chars> <canonical single-line JSON body>\\n

The body always carries ``kind`` (record type) and ``seq`` (strictly
increasing **across every file** of the journal).  Appends are flushed
and fsynced before the caller proceeds, so a record returned from
:meth:`JobJournal.append` survives ``kill -9`` of the daemon and the
journal is the single source of truth for job state: ``status`` reads
it, recovery replays it, and the CI smoke job uploads it as an
artifact.

Disk layout (all next to each other; ``journal.jsonl`` is the path the
daemon is given)::

    journal.jsonl                     active segment (append target)
    journal-<firstseq:08d>.jsonl      sealed segments (read-only)
    journal-<through:08d>.compact.jsonl   compaction output

* **Rotation** seals the active segment by atomically renaming it to
  ``journal-<first seq it holds>.jsonl`` — the next append recreates a
  fresh active file.  A crash between the two steps is recoverable:
  opening with no active file just starts a new one.
* **Compaction** folds the sealed segments (and any previous compact
  output) into one ``.compact`` file named by the highest sequence
  number it *covers* — not necessarily one it contains, since covered
  records may have been dropped.  On read, the compact file with the
  largest ``through`` wins; sealed segments whose first seq is within
  its coverage are superseded (crash debris from an interrupted
  cleanup) and deleted at next open.  Compaction only ever **drops**
  records, never rewrites them, and preserves original seqs, so replay
  after compaction is replay of a sub-history:

  - terminal jobs wholly inside the sealed range are slimmed to a
    minimal legal chain (``submit`` + last ``start`` + terminal record)
    and, beyond the ``keep_terminal`` most recent, garbage-collected
    entirely;
  - jobs that are live — or have *any* record newer than the sealed
    range — keep every sealed record, so no replay transition is ever
    made illegal by compaction;
  - only the last ``breaker`` record per (graph, strategy) survives,
    and ``open`` markers are dropped.

* **Reclaim** is the ``ENOSPC`` path: rotate, compact with
  ``keep_terminal=0``, run the owner's ``on_reclaim`` hook (the daemon
  wires cache eviction here), retry the append once — and only then
  raise a typed :class:`~repro.errors.StorageFullError`, with the
  journal exactly as it was before the failed append.

Crash semantics on read:

* A corrupt or incomplete **last** line of the **active** segment is a
  *torn write* — exactly what a SIGKILL mid-``write(2)`` leaves
  behind.  It is dropped, reported via ``torn_tail``, and truncated
  away when the journal is reopened for appending (the record was
  never acknowledged, so dropping it loses nothing).
* A corrupt line anywhere else — interior of any file, or *any* line
  of a sealed/compact file — raises
  :class:`~repro.errors.JournalCorruptionError`: the file was damaged
  at rest and recovery must not guess around the hole.
  ``repro service journal verify`` classifies the two cases offline.

:func:`replay_state` folds a record list into per-job
:class:`~repro.service.jobs.JobRecord` state: jobs found ``RUNNING``
(a ``start`` with no terminal record — the daemon died mid-job) are
requeued as ``PENDING`` with their attempt count preserved, which is
what makes restart-after-crash converge to the same terminal states a
crash-free run reaches.
"""

from __future__ import annotations

import errno
import json
import os
import re
import zlib

from ..errors import JournalCorruptionError, StorageFullError
from ..observability.registry import NULL_REGISTRY
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    SHED,
    JobRecord,
    JobSpec,
    legal_transition,
)
from .storage import ServiceStorage

__all__ = [
    "JOURNAL_SCHEMA",
    "RECORD_KINDS",
    "TERMINAL_STATES",
    "JobJournal",
    "ReplayedState",
    "encode_record",
    "decode_line",
    "read_journal",
    "journal_inventory",
    "read_journal_chain",
    "verify_journal",
    "replay_state",
]

JOURNAL_SCHEMA = "repro.job/v1"

#: Record kinds the replayer understands.  ``open`` marks (re)openings
#: of the journal, ``breaker`` persists circuit-breaker transitions so a
#: quarantined (graph, strategy) pair stays quarantined across restarts.
RECORD_KINDS = ("open", "submit", "start", "requeue", "done", "fail",
                "cancel", "shed", "breaker")

#: Job states compaction may garbage-collect (nothing further can
#: happen to these jobs).
TERMINAL_STATES = (DONE, FAILED, CANCELLED, SHED)


def encode_record(record: dict) -> str:
    """One journal line: crc32 of the canonical JSON body, then the body."""
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    if "\n" in body:
        raise ValueError("journal record bodies must be single-line")
    return f"{zlib.crc32(body.encode('utf-8')) & 0xFFFFFFFF:08x} {body}\n"


def decode_line(line: str) -> dict:
    """Inverse of :func:`encode_record`; raises ``ValueError`` on any
    checksum/framing problem (the caller decides torn-tail vs corrupt)."""
    if not line.endswith("\n"):
        raise ValueError("record not newline-terminated (torn write)")
    raw = line[:-1]
    if len(raw) < 10 or raw[8] != " ":
        raise ValueError("bad framing: expected '<crc8> <json>'")
    crc_hex, body = raw[:8], raw[9:]
    try:
        crc = int(crc_hex, 16)
    except ValueError:
        raise ValueError(f"bad checksum field {crc_hex!r}")
    actual = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    if crc != actual:
        raise ValueError(
            f"checksum mismatch: recorded {crc_hex}, actual {actual:08x}"
        )
    try:
        record = json.loads(body)
    except json.JSONDecodeError as exc:
        raise ValueError(f"checksummed body is not JSON: {exc}")
    if not isinstance(record, dict) or "kind" not in record:
        raise ValueError("record body must be an object with a 'kind'")
    return record


def read_journal(path):
    """Read every intact record of **one** journal file; returns
    ``(records, torn_tail)``.

    A corrupt tail line is dropped (``torn_tail=True``); corruption
    before the tail raises :class:`JournalCorruptionError`.  A missing
    file reads as empty.  For the full multi-segment history use
    :func:`read_journal_chain`.
    """
    if not os.path.exists(path):
        return [], False
    with open(path, "r", encoding="utf-8", newline="") as fh:
        lines = fh.readlines()
    records = []
    for i, line in enumerate(lines):
        try:
            records.append(decode_line(line))
        except ValueError as exc:
            if i == len(lines) - 1:
                return records, True
            raise JournalCorruptionError(path, i + 1, str(exc)) from exc
    return records, False


# ----------------------------------------------------------------------
# Segment layout
# ----------------------------------------------------------------------

def _stem(path: str) -> str:
    base = os.path.basename(str(path))
    return base[:-6] if base.endswith(".jsonl") else base


def journal_inventory(path) -> dict:
    """Enumerate every file of the journal rooted at ``path``.

    Returns ``{"active", "segments", "compacts", "through",
    "superseded", "strays"}`` where ``segments`` is ``[(first_seq,
    path)]`` sorted, ``compacts`` is ``[(through, path)]`` sorted,
    ``through`` is the best compact's coverage (0 if none), and
    ``superseded``/``strays`` are crash debris a clean open deletes
    (segments covered by the best compact, older compacts, ``.tmp``
    files).
    """
    path = str(path)
    parent = os.path.dirname(path) or "."
    stem = _stem(path)
    seg_re = re.compile(re.escape(stem) + r"-(\d{8})\.jsonl$")
    com_re = re.compile(re.escape(stem) + r"-(\d{8})\.compact\.jsonl$")
    segments, compacts, strays = [], [], []
    if os.path.isdir(parent):
        for name in sorted(os.listdir(parent)):
            full = os.path.join(parent, name)
            if name.endswith(".tmp") and name.startswith(stem):
                strays.append(full)
                continue
            m = com_re.match(name)
            if m:
                compacts.append((int(m.group(1)), full))
                continue
            m = seg_re.match(name)
            if m:
                segments.append((int(m.group(1)), full))
    segments.sort()
    compacts.sort()
    through = compacts[-1][0] if compacts else 0
    superseded = [p for _, p in compacts[:-1]]
    superseded += [p for first, p in segments if first <= through]
    return {
        "active": path,
        "segments": segments,
        "compacts": compacts,
        "through": through,
        "superseded": superseded,
        "strays": strays,
    }


def _chain_files(inv: dict) -> list:
    """The ``(role, path)`` list whose concatenation is the history."""
    files = []
    if inv["compacts"]:
        files.append(("compact", inv["compacts"][-1][1]))
    files += [("segment", p) for first, p in inv["segments"]
              if first > inv["through"]]
    files.append(("active", inv["active"]))
    return files


def read_journal_chain(path):
    """Read the full multi-segment history; returns ``(records,
    torn_tail)``.

    Concatenates best compact + uncovered sealed segments + active.  A
    torn tail is only tolerated on the active segment; any damage to a
    sealed or compact file raises :class:`JournalCorruptionError`.
    """
    inv = journal_inventory(path)
    records, torn = [], False
    for role, fpath in _chain_files(inv):
        recs, file_torn = read_journal(fpath)
        if file_torn and role != "active":
            raise JournalCorruptionError(
                fpath, len(recs) + 1,
                f"torn tail in sealed {role} file (only the active "
                f"segment may be torn)")
        records += recs
        torn = torn or file_torn
    return records, torn


def verify_journal(path) -> dict:
    """Offline integrity scan of every journal file (never mutates).

    Returns a report dict: ``files`` (one entry per file with
    ``role``/``records``/``first_seq``/``last_seq``/``bytes``/
    ``status`` of ``ok``|``torn-tail``|``corrupt`` and a one-line
    ``error``), ``problems`` (fatal findings), ``notes`` (benign crash
    debris), and ``ok``.  A torn tail on the active segment is a note —
    it is what SIGKILL mid-append leaves and the next open truncates
    it; the same damage anywhere else, or an interior checksum
    mismatch, is classified as at-rest corruption and fails the scan.
    """
    inv = journal_inventory(path)
    report = {"root": os.path.dirname(str(path)) or ".", "files": [],
              "problems": [], "notes": [], "ok": True, "total_records": 0}
    last_seq = 0
    for role, fpath in _chain_files(inv):
        entry = {"path": fpath, "role": role, "records": 0,
                 "first_seq": None, "last_seq": None, "bytes": 0,
                 "status": "ok", "error": None}
        if not os.path.exists(fpath):
            if role == "active":
                entry["status"] = "missing"
                entry["error"] = "no active segment (fresh after rotation)"
                report["files"].append(entry)
            continue
        entry["bytes"] = os.path.getsize(fpath)
        with open(fpath, "r", encoding="utf-8", newline="") as fh:
            lines = fh.readlines()
        for i, line in enumerate(lines):
            try:
                record = decode_line(line)
            except ValueError as exc:
                if i == len(lines) - 1 and role == "active":
                    entry["status"] = "torn-tail"
                    entry["error"] = (f"line {i + 1}: {exc} — crash "
                                      f"debris; truncated at next open")
                    report["notes"].append(
                        f"{fpath}: torn tail at line {i + 1} (safe)")
                else:
                    entry["status"] = "corrupt"
                    entry["error"] = (f"line {i + 1}: {exc} — at-rest "
                                      f"corruption; recovery will not "
                                      f"guess, restore this file")
                    report["problems"].append(
                        f"{fpath}:{i + 1}: {exc}")
                break
            seq = int(record.get("seq", 0))
            if entry["first_seq"] is None:
                entry["first_seq"] = seq
            if seq <= last_seq:
                entry["status"] = "corrupt"
                entry["error"] = (f"line {i + 1}: seq {seq} not above "
                                  f"previous {last_seq} — mixed or "
                                  f"rewound history")
                report["problems"].append(
                    f"{fpath}:{i + 1}: non-monotonic seq {seq}")
                break
            last_seq = seq
            entry["last_seq"] = seq
            entry["records"] += 1
        report["total_records"] += entry["records"]
        report["files"].append(entry)
    for p in inv["superseded"]:
        report["notes"].append(f"{p}: superseded by newer compact (crash "
                               f"debris; deleted at next open)")
    for p in inv["strays"]:
        report["notes"].append(f"{p}: stray temp file (deleted at next open)")
    report["ok"] = not report["problems"]
    return report


class JobJournal:
    """Append-side handle on one (possibly segmented) journal.

    Opening replays the existing history (validating it), deletes
    crash debris from interrupted rotations/compactions, truncates a
    torn tail on the active segment, and appends an ``open`` record —
    so every daemon start is itself journalled and the sequence counter
    continues from the last durable record.

    ``max_segment_bytes=None`` (the default) disables rotation — the
    journal behaves exactly like the original single-file log.  With a
    budget set, every append that leaves the active segment over the
    limit rotates and compacts, so total disk stays bounded as terminal
    jobs age out.
    """

    def __init__(self, path, metrics=None, storage=None,
                 max_segment_bytes: int | None = None,
                 keep_terminal: int = 8, on_reclaim=None):
        self.path = str(path)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.storage = storage if storage is not None else ServiceStorage()
        self.max_segment_bytes = (None if max_segment_bytes is None
                                  else int(max_segment_bytes))
        self.keep_terminal = int(keep_terminal)
        #: Called during :meth:`reclaim` so the owner can free space
        #: outside the journal (the daemon hooks cache eviction here).
        self.on_reclaim = on_reclaim
        #: Called with each record *after* it is durably appended (the
        #: telemetry event stream mirrors the journal through this
        #: single chokepoint).  Records appended before the hook is set
        #: — the ``open`` record, recovery requeues — are back-filled
        #: by :meth:`repro.telemetry.TelemetryLog.reconcile`.
        self.on_append = None
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._closed = False

        # Clean up crash debris from an interrupted rotate/compact and
        # validate + load the full history.
        inv = journal_inventory(self.path)
        for stray in inv["superseded"] + inv["strays"]:
            try:
                os.remove(stray)
            except OSError:
                pass
        self.records = []
        self._active_records = 0
        self.torn_tail_truncated = False
        for role, fpath in _chain_files(inv):
            recs, torn = read_journal(fpath)
            if torn and role != "active":
                raise JournalCorruptionError(
                    fpath, len(recs) + 1,
                    f"torn tail in sealed {role} file (only the active "
                    f"segment may be torn)")
            self.records += recs
            if role == "active":
                self._active_records = len(recs)
                if torn:
                    self._truncate_torn(fpath, recs)
                    self.torn_tail_truncated = True
                    self.metrics.inc("service.journal.torn_tail_truncated")
        self._seq = max((r.get("seq", 0) for r in self.records), default=0)
        self._seq = max(self._seq, inv["through"])
        self._active_first_seq = (
            self.records[-self._active_records]["seq"]
            if self._active_records else None)
        self.append("open", schema=JOURNAL_SCHEMA)

    @staticmethod
    def _truncate_torn(path: str, good_records: list) -> None:
        """Drop the unacknowledged torn record so the next append
        starts on a clean line boundary.  The good lines are kept
        byte-for-byte (a truncate, not a rewrite — this must succeed
        even on a full disk)."""
        good_bytes = sum(
            len(encode_record(r).encode("utf-8")) for r in good_records)
        with open(path, "r+b") as fh:
            fh.truncate(good_bytes)
            fh.flush()
            os.fsync(fh.fileno())

    @property
    def next_seq(self) -> int:
        return self._seq + 1

    def append(self, kind: str, **fields) -> dict:
        """Durably append one record; returns it (with its ``seq``).

        On ``ENOSPC`` the journal reclaims space (rotate + aggressive
        compact + the owner's ``on_reclaim`` hook) and retries once;
        if the disk is still full it raises
        :class:`~repro.errors.StorageFullError` with nothing appended.
        """
        if kind not in RECORD_KINDS:
            raise ValueError(f"unknown journal record kind {kind!r}")
        if self._closed:
            raise ValueError("journal is closed")
        record = {"kind": kind, "seq": self._seq + 1, **fields}
        line = encode_record(record)
        try:
            self.storage.append_line(self.path, line, "journal")
        except OSError as exc:
            if exc.errno != errno.ENOSPC:
                raise
            self.metrics.inc("service.journal.enospc")
            self.reclaim()
            try:
                self.storage.append_line(self.path, line, "journal")
            except OSError as exc2:
                if exc2.errno != errno.ENOSPC:
                    raise
                raise StorageFullError(self.path, f"append {kind!r}",
                                       attempts=2) from exc2
        self._seq += 1
        self.records.append(record)
        self._active_records += 1
        if self._active_first_seq is None:
            self._active_first_seq = record["seq"]
        self.metrics.inc("service.journal.records", kind=kind)
        if self.on_append is not None:
            self.on_append(record)
        if (self.max_segment_bytes is not None
                and os.path.getsize(self.path) >= self.max_segment_bytes):
            # Opportunistic: the record above is already durable, so a
            # full disk here is not this append's failure — the next
            # ENOSPC append will reclaim harder.
            self.rotate()
            try:
                self.compact()
            except OSError as exc:
                if exc.errno != errno.ENOSPC:
                    raise
                self.metrics.inc("service.journal.enospc")
        return record

    # -- rotation / compaction -----------------------------------------
    def rotate(self) -> str | None:
        """Seal the active segment; returns the sealed path (or
        ``None`` if the active segment is empty).

        One atomic rename: a crash before it changes nothing, a crash
        after it leaves no active file — which the next open treats as
        an empty active segment."""
        if self._active_first_seq is None or not os.path.exists(self.path):
            return None
        sealed = os.path.join(
            os.path.dirname(self.path) or ".",
            f"{_stem(self.path)}-{self._active_first_seq:08d}.jsonl")
        self.storage.rename(self.path, sealed, "journal")
        self._active_first_seq = None
        self._active_records = 0
        self.metrics.inc("service.journal.rotations")
        return sealed

    def compact(self, keep_terminal: int | None = None) -> dict:
        """Fold sealed segments (+ any previous compact) into one file,
        dropping what replay no longer needs; returns stats.

        Never touches the active segment.  Crash-safe at every step:
        the new compact lands by atomic replace *before* superseded
        files are deleted, and open() finishes an interrupted cleanup.
        """
        keep = self.keep_terminal if keep_terminal is None else int(
            keep_terminal)
        inv = journal_inventory(self.path)
        plain = [(first, p) for first, p in inv["segments"]
                 if first > inv["through"]]
        if not plain and not inv["compacts"]:
            return {"retained": 0, "dropped": 0, "gc_jobs": 0, "through": 0}
        sealed_max = inv["through"]
        sealed_records = []
        if inv["compacts"]:
            recs, _ = read_journal(inv["compacts"][-1][1])
            sealed_records += recs
        for _first, p in plain:
            recs, torn = read_journal(p)
            if torn:
                raise JournalCorruptionError(
                    p, len(recs) + 1, "torn tail in sealed segment")
            sealed_records += recs
            if recs:
                sealed_max = max(sealed_max, recs[-1].get("seq", 0))
        retained, gc_jobs = self._retain(sealed_records, sealed_max, keep)
        new_path = os.path.join(
            os.path.dirname(self.path) or ".",
            f"{_stem(self.path)}-{sealed_max:08d}.compact.jsonl")
        body = "".join(encode_record(r) for r in retained)
        self.storage.replace_atomic(new_path, body, "journal")
        # New compact is durable; everything it covers is now debris.
        for _first, p in plain:
            if os.path.abspath(p) != os.path.abspath(new_path):
                self.storage.remove(p, "journal")
        for _through, p in inv["compacts"]:
            if os.path.abspath(p) != os.path.abspath(new_path):
                self.storage.remove(p, "journal")
        self.metrics.inc("service.journal.compactions")
        stats = {"retained": len(retained),
                 "dropped": len(sealed_records) - len(retained),
                 "gc_jobs": gc_jobs, "through": sealed_max}
        return stats

    def _retain(self, sealed_records: list, sealed_max: int,
                keep_terminal: int):
        """Pick which sealed records survive compaction.

        The rule that keeps replay legal: a job may only be slimmed or
        dropped if **every** one of its records is inside the sealed
        range — a job with newer records (in the active segment) keeps
        all its sealed history, because those newer records' legality
        depends on it.
        """
        per_job = {}       # job_id -> [records, any file]
        breaker_last = {}  # (graph_key, strategy) -> last sealed record
        for r in self.records:
            kind = r.get("kind")
            if kind in ("open", None):
                continue
            if kind == "breaker":
                if r.get("seq", 0) <= sealed_max:
                    breaker_last[(r.get("graph_key", ""),
                                  r.get("strategy", ""))] = r
                continue
            jid = (r["job"]["job_id"] if kind in ("submit", "shed")
                   else r.get("job_id"))
            per_job.setdefault(jid, []).append(r)
        state = replay_state(self.records, self.path)
        fully_sealed = {
            jid: all(r.get("seq", 0) <= sealed_max for r in recs)
            for jid, recs in per_job.items()}
        collectable = sorted(
            (max(r.get("seq", 0) for r in per_job[jid]), jid)
            for jid, job in ((j, state.jobs[j]) for j in per_job)
            if job.state in TERMINAL_STATES and fully_sealed[jid])
        drop = {jid for _seq, jid in
                collectable[:max(0, len(collectable) - keep_terminal)]}
        slim = {jid for _seq, jid in collectable} - drop

        # Minimal legal chain for each slimmed job, identified by seq
        # (the disk copies in sealed_records are distinct dict objects
        # from the in-memory ones in per_job).
        keep_seqs = set()
        for jid in slim:
            recs = per_job[jid]
            final_state = state.jobs[jid].state
            # Chain head: the *last* submit/shed record — a job that was
            # shed (or failed) and then resubmitted is governed by its
            # newest admission, and replaying the stale one first would
            # make the final run's records illegal.
            chain = [r for r in recs if r["kind"] in ("submit", "shed")][-1:]
            if final_state in (DONE, FAILED):
                starts = [r for r in recs if r["kind"] == "start"]
                if starts:
                    chain.append(starts[-1])
            chain.append(recs[-1])
            keep_seqs.update(r["seq"] for r in chain)
        breaker_seqs = {r.get("seq") for r in breaker_last.values()}

        retained, gc = [], len(drop)
        for r in sealed_records:
            kind = r.get("kind")
            if kind in ("open", None):
                continue
            if kind == "breaker":
                if r.get("seq") in breaker_seqs:
                    retained.append(r)
                continue
            jid = (r["job"]["job_id"] if kind in ("submit", "shed")
                   else r.get("job_id"))
            if jid in drop:
                continue
            if jid in slim and r["seq"] not in keep_seqs:
                continue
            retained.append(r)
        return retained, gc

    def reclaim(self) -> None:
        """Free disk space: rotate, compact aggressively (GC every
        fully-sealed terminal job), then let the owner free more.

        Each step is best-effort under ``ENOSPC`` — compaction itself
        needs room for its output, so a still-full disk skips it and
        relies on the owner's hook (cache eviction frees space without
        writing)."""
        self.rotate()
        try:
            self.compact(keep_terminal=0)
        except OSError as exc:
            if exc.errno != errno.ENOSPC:
                raise
        if self.on_reclaim is not None:
            self.on_reclaim()
        self.metrics.inc("service.journal.reclaims")

    def total_bytes(self) -> int:
        """Bytes on disk across every journal file."""
        inv = journal_inventory(self.path)
        total = 0
        for _role, p in _chain_files(inv):
            if os.path.exists(p):
                total += os.path.getsize(p)
        return total

    def close(self) -> None:
        self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class ReplayedState:
    """Outcome of folding a journal: jobs, breaker state, statistics."""

    def __init__(self):
        self.jobs: dict = {}            # job_id -> JobRecord
        #: (graph_key, strategy) -> last journalled breaker snapshot.
        self.breakers: dict = {}
        #: Jobs found RUNNING and requeued (daemon died mid-job).
        self.interrupted: list = []
        self.illegal_transitions: list = []

    def pending_ids(self) -> list:
        """PENDING job ids in submit order (the recovered queue)."""
        pend = [j for j in self.jobs.values() if j.state == PENDING]
        return [j.job_id for j in sorted(pend, key=lambda j: j.submit_seq)]


def replay_state(records, path: str = "<journal>") -> ReplayedState:
    """Fold journal ``records`` into the service state they describe."""
    state = ReplayedState()
    for record in records:
        kind = record.get("kind")
        if kind in ("open", None):
            continue
        if kind == "breaker":
            key = (record.get("graph_key", ""), record.get("strategy", ""))
            state.breakers[key] = {
                "state": record.get("state", "closed"),
                "failures": int(record.get("failures", 0)),
            }
            continue
        if kind == "submit":
            spec = JobSpec.from_dict(record["job"])
            job = JobRecord(spec=spec, state=PENDING,
                            submit_seq=int(record.get("seq", 0)),
                            admit_degraded=(record.get("mode")
                                            == "degrade"))
            state.jobs[spec.job_id] = job
            continue
        if kind == "shed":
            spec = JobSpec.from_dict(record["job"])
            job = JobRecord(spec=spec, state=SHED,
                            submit_seq=int(record.get("seq", 0)),
                            error=record.get("reason"))
            state.jobs[spec.job_id] = job
            continue
        job = state.jobs.get(record.get("job_id"))
        if job is None:
            raise JournalCorruptionError(
                path, int(record.get("seq", 0)),
                f"{kind} record for never-submitted job "
                f"{record.get('job_id')!r}",
            )
        new_state = {"start": RUNNING, "requeue": PENDING, "done": DONE,
                     "fail": FAILED, "cancel": CANCELLED}[kind]
        if not legal_transition(job.state, new_state):
            state.illegal_transitions.append(
                (job.job_id, job.state, new_state))
            continue
        job.state = new_state
        if kind == "start":
            job.attempt = int(record.get("attempt", job.attempt + 1))
            job.device = record.get("device")
        elif kind == "requeue":
            if "delay" in record:
                job.backoff_delays.append(float(record["delay"]))
        elif kind == "done":
            job.result_key = record.get("result_key")
            job.exact = bool(record.get("exact", True))
            job.degraded_reason = record.get("degraded_reason")
            job.sim_seconds = float(record.get("sim_seconds", 0.0))
            job.device = record.get("device", job.device)
            if record.get("samples") is not None:
                job.samples = int(record["samples"])
        elif kind == "fail":
            job.error = record.get("error")
        elif kind == "cancel":
            job.error = record.get("reason")
    # A job still RUNNING after the fold means the daemon died mid-job:
    # its done/fail record never made it to stable storage, so the only
    # correct recovery is to run it again (results are content-addressed
    # and written before `done`, so recomputation is idempotent).
    for job in state.jobs.values():
        if job.state == RUNNING:
            job.state = PENDING
            job.recovered = True
            state.interrupted.append(job.job_id)
    return state
