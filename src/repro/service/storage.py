"""The single chokepoint for every durable service write.

:class:`ServiceStorage` is how the journal, the result cache, and the
spool touch the disk.  Routing all mutations through one object buys
three things:

* **Fault injection** — storage :class:`~repro.resilience.faults.
  FaultEvent` kinds (``enospc``/``torn``/``fsync-lie``/``rot``) fire
  here, per write site, exactly as planned.  The semantics mirror the
  real failure each models:

  - ``enospc``: the write raises ``OSError(ENOSPC)`` and **nothing**
    lands — callers see the same pre-write state they started from and
    decide whether to reclaim space and retry.
  - ``torn``: a prefix of the bytes lands, then the write raises
    ``OSError`` — but the writer *knows*, so storage repairs by
    truncating back and retrying.  A crash in the window between the
    partial write and the repair leaves a torn tail for recovery to
    truncate, which is precisely the case the journal's torn-tail
    handling exists for.
  - ``fsync-lie``: write/flush/fsync all report success but the bytes
    are silently dropped.  Storage catches it with a length read-back
    (did the file actually grow by what we wrote?) and retries.  The
    read-back deliberately checks **length only** — content integrity
    is the application checksum's job, so a ``rot`` flip is *not*
    papered over here.
  - ``rot``: the write fully succeeds, then one bit of the
    just-written region flips at rest.  Detection is downstream: the
    cache's SHA-256 verify evicts-and-recomputes, the journal's crc32
    classifies it on replay/verify.

* **Crash simulation** — ``crash_after=k`` makes the ``k+1``-th
  storage operation raise :class:`SimulatedCrash` *before* it runs.
  Walking ``k`` across a workload's full operation count visits every
  durability boundary — mid-append, mid-evict, mid-compact,
  tmp-written-but-not-renamed — exactly like SIGKILL at that instant.
  ``SimulatedCrash`` derives from ``BaseException`` so no recovery
  handler inside the service can accidentally swallow the "process
  died" signal.

* **Accounting** — every operation is counted in metrics and in
  ``ops``, giving the crash grid its coordinate system.
"""

from __future__ import annotations

import errno
import os

from ..observability.registry import NULL_REGISTRY
from ..resilience.faults import ENOSPC, FSYNC_LIE, ROT, STORAGE_TARGETS, TORN

__all__ = ["ServiceStorage", "SimulatedCrash"]


class SimulatedCrash(BaseException):
    """The simulated process died (SIGKILL) at storage operation
    ``op_index``.  Deliberately **not** an ``Exception``: nothing inside
    the service may catch and survive its own death."""

    def __init__(self, op_index: int, op: str, path: str):
        self.op_index = int(op_index)
        self.op = str(op)
        self.path = str(path)
        super().__init__(
            f"simulated crash at storage op #{self.op_index} "
            f"({self.op} {self.path!r})"
        )


class ServiceStorage:
    """Fault-injectable, crash-simulable durable writes.

    Parameters
    ----------
    faults:
        An :class:`~repro.resilience.faults.ActiveFaults` whose storage
        events strike writes routed through this object (``None`` = a
        healthy disk).
    crash_after:
        If set, the operation after ``crash_after`` completed ones
        raises :class:`SimulatedCrash` (``0`` = die on the very first).
    """

    def __init__(self, faults=None, metrics=None,
                 crash_after: int | None = None):
        self.faults = faults
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.crash_after = None if crash_after is None else int(crash_after)
        #: Completed storage operations (the crash grid's coordinate).
        self.ops = 0

    # -- internals -----------------------------------------------------
    def _tick(self, op: str, path: str) -> None:
        if self.crash_after is not None and self.ops >= self.crash_after:
            raise SimulatedCrash(self.ops, op, path)
        self.ops += 1
        self.metrics.inc("service.storage.ops", op=op)

    def _fire(self, target: str):
        if self.faults is None:
            return None
        if target not in STORAGE_TARGETS:
            raise ValueError(f"unknown storage target {target!r}")
        ev = self.faults.storage_fire(target)
        if ev is not None:
            self.metrics.inc("service.storage.faults", kind=ev.kind,
                             target=target)
        return ev

    @staticmethod
    def _enospc(path: str) -> OSError:
        return OSError(errno.ENOSPC, "No space left on device (injected)",
                       path)

    @staticmethod
    def _rot_file(path: str, offset: int, length: int, bit: int) -> None:
        """Flip one bit of the byte in the middle of ``[offset,
        offset+length)`` — the at-rest corruption the checksums exist
        to catch."""
        if length <= 0:
            return
        pos = offset + length // 2
        with open(path, "r+b") as fh:
            fh.seek(pos)
            victim = fh.read(1)
            if not victim:
                return
            fh.seek(pos)
            fh.write(bytes([victim[0] ^ (1 << (bit % 8))]))
            fh.flush()
            os.fsync(fh.fileno())

    # -- durable operations --------------------------------------------
    def append_line(self, path: str, text: str, target: str = "any") -> int:
        """Durably append ``text`` (fsynced); returns attempts used.

        Raises ``OSError(ENOSPC)`` with the file unchanged when an
        injected disk-full strikes; silently-dropped and torn writes
        are detected and retried here (each physical attempt consumes
        at most one fault event, so injected faults cannot retry
        forever)."""
        path = str(path)
        data = text.encode("utf-8")
        pre = os.path.getsize(path) if os.path.exists(path) else 0
        attempts = 0
        while True:
            attempts += 1
            self._tick("append", path)
            ev = self._fire(target)
            kind = ev.kind if ev is not None else None
            if kind == ENOSPC:
                raise self._enospc(path)
            if kind == TORN:
                with open(path, "ab") as fh:
                    fh.write(data[: len(data) // 2])
                    fh.flush()
                    os.fsync(fh.fileno())
                # The writer was told (EIO): repair by truncating back.
                # A crash landing on this tick leaves the torn tail on
                # disk for recovery — the SIGKILL-mid-write(2) case.
                self._tick("truncate", path)
                with open(path, "r+b") as fh:
                    fh.truncate(pre)
                self.metrics.inc("service.storage.torn_repaired")
                continue
            if kind != FSYNC_LIE:
                with open(path, "ab") as fh:
                    fh.write(data)
                    fh.flush()
                    os.fsync(fh.fileno())
            size = os.path.getsize(path) if os.path.exists(path) else 0
            if size != pre + len(data):
                # The "successful" write never landed: the fsync lied.
                self.metrics.inc("service.storage.lies_detected")
                pre = size
                continue
            if kind == ROT:
                self._rot_file(path, pre, len(data), ev.bit)
            return attempts

    def replace_atomic(self, path: str, text: str,
                       target: str = "any") -> int:
        """Durably write ``text`` to ``path`` via tmp + ``os.replace``;
        returns attempts used.

        A crash leaves either the old content or the new — never a
        mix; at worst a stray ``.tmp`` survives.  ``OSError(ENOSPC)``
        propagates with the final path untouched."""
        path = str(path)
        data = text.encode("utf-8")
        tmp = path + ".tmp"
        attempts = 0
        while True:
            attempts += 1
            self._tick("write", tmp)
            ev = self._fire(target)
            kind = ev.kind if ev is not None else None
            if kind == ENOSPC:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                raise self._enospc(path)
            if kind == TORN:
                with open(tmp, "wb") as fh:
                    fh.write(data[: len(data) // 2])
                    fh.flush()
                    os.fsync(fh.fileno())
                self._tick("remove", tmp)
                os.remove(tmp)
                self.metrics.inc("service.storage.torn_repaired")
                continue
            if kind == FSYNC_LIE:
                with open(tmp, "wb"):
                    pass
            else:
                with open(tmp, "wb") as fh:
                    fh.write(data)
                    fh.flush()
                    os.fsync(fh.fileno())
            if os.path.getsize(tmp) != len(data):
                self.metrics.inc("service.storage.lies_detected")
                continue
            # Crash landing here: tmp fully written, final path not yet
            # switched — recovery must ignore/clean the stray tmp.
            self._tick("rename", path)
            os.replace(tmp, path)
            if kind == ROT:
                self._rot_file(path, 0, len(data), ev.bit)
            return attempts

    def remove(self, path: str, target: str = "any") -> bool:
        """Remove ``path`` (idempotent); returns whether it existed.

        Deletions free space, so no storage fault strikes them — but
        they are crash boundaries (kill mid-evict/mid-GC) and count as
        operations."""
        path = str(path)
        self._tick("remove", path)
        try:
            os.remove(path)
        except FileNotFoundError:
            return False
        return True

    def rename(self, src: str, dst: str, target: str = "any") -> None:
        """Atomic ``os.replace`` of an existing file (idempotent-style
        crash boundary: either wholly old name or wholly new)."""
        self._tick("rename", str(dst))
        os.replace(str(src), str(dst))
