"""Fault-hardened job scheduler over a pool of simulated devices.

:class:`Scheduler.execute` owns one job's whole life after admission:

* **Placement** — jobs go to the device with the earliest simulated
  availability (FIFO per device, deterministic tie-break by name).
* **Straggler-aware re-dispatch** — a run whose effective slowdown
  factor reaches ``redispatch_factor`` is speculatively re-executed on
  the fastest healthy device and the earlier completion wins (the
  classic backup-task defence; Vella et al.'s multi-GPU scheduling
  concern).
* **Bounded retries with exponential backoff + jitter** — transient
  faults (fail-stop, simulated OOM, detected silent corruption) retry
  up to ``max_retries`` times; delays are ``base * 2**(attempt-1)``
  with deterministic jitter drawn from ``(seed, job_id, attempt)`` via
  :func:`backoff_delay`, so the same seed and the same
  :class:`~repro.resilience.FaultPlan` replay byte-identically — the
  property the determinism suite locks down.
* **Per-job deadlines** — a run needing more simulated compute than
  ``deadline_seconds`` degrades to a root-sampled Brandes–Pich estimate
  (scaled, flagged ``exact=False``) when the job allows it, else fails
  with a typed deadline error.
* **Circuit breaker** — ``threshold`` consecutive job failures on one
  ``(graph digest, strategy)`` pair open the breaker: further jobs on
  the pair fail fast (no retries burned) until ``cooldown`` sheds have
  passed and a half-open probe succeeds.

Chaos testing plugs in through :attr:`JobSpec.faults`: a standard
``FaultPlan`` spec whose events are consumed across the job's attempts,
exactly like the resilient driver consumes them across recovery rounds.

Every decision is appended to :attr:`Scheduler.decisions` (and mirrored
as ``service.decision`` events on the metrics registry) with simulated
values only — the decision log of two identical runs is byte-identical
under canonical JSON.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import (
    DeviceOutOfMemoryError,
    RankFailure,
    SilentCorruptionError,
)
from ..gpusim import GTX_TITAN, Device
from ..observability.clock import SpanClock
from ..observability.registry import NULL_REGISTRY
from ..resilience import FaultPlan, FaultyDevice
from .jobs import JobSpec

__all__ = [
    "DEFAULT_BACKOFF_BASE",
    "DEFAULT_BACKOFF_CAP",
    "backoff_delay",
    "CircuitBreaker",
    "SimDevice",
    "JobOutcome",
    "Scheduler",
    "sample_roots",
]

DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 2.0

#: Exceptions the scheduler treats as retryable attempt failures.
_RETRYABLE = (RankFailure, DeviceOutOfMemoryError, SilentCorruptionError)


def backoff_delay(attempt: int, *, base: float = DEFAULT_BACKOFF_BASE,
                  cap: float = DEFAULT_BACKOFF_CAP, seed: int = 0,
                  token: str = "") -> float:
    """Deterministic exponential backoff with jitter for retry ``attempt``.

    ``attempt`` counts from 1 (the delay before the first retry).  The
    raw delay ``base * 2**(attempt-1)`` is capped at ``cap`` and
    jittered into ``[raw/2, raw)`` — decorrelating retries across jobs —
    with the jitter drawn from ``(seed, crc32(token), attempt)``, so the
    full delay sequence is a pure function of the seed and the job id.
    """
    if attempt < 1:
        raise ValueError("attempt must be >= 1")
    raw = min(float(cap), float(base) * 2.0 ** (attempt - 1))
    rng = np.random.default_rng(
        [int(seed), zlib.crc32(str(token).encode("utf-8")), int(attempt)]
    )
    return raw * (0.5 + 0.5 * float(rng.random()))


def sample_roots(g, spec: JobSpec) -> np.ndarray:
    """The job's root set: ``spec.roots`` vertices drawn without
    replacement from ``spec.seed`` (sorted, capped at the graph order)."""
    rng = np.random.default_rng(int(spec.seed))
    k = min(int(spec.roots), g.num_vertices)
    return np.sort(rng.choice(g.num_vertices, size=k, replace=False))


class CircuitBreaker:
    """Per-(graph, strategy) quarantine of repeatedly-failing inputs."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, threshold: int = 3, cooldown: int = 4,
                 metrics=None, on_transition=None):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown < 1:
            raise ValueError("cooldown must be >= 1")
        self.threshold = int(threshold)
        self.cooldown = int(cooldown)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        #: Optional hook ``(key, state, failures)`` fired on every state
        #: transition — the daemon journals these so quarantine survives
        #: restarts.
        self.on_transition = on_transition
        self._slots: dict = {}

    def _slot(self, key) -> dict:
        return self._slots.setdefault(
            tuple(key), {"state": self.CLOSED, "failures": 0, "shed": 0})

    def state(self, key) -> str:
        return self._slot(key)["state"]

    def _transition(self, key, slot, state: str) -> None:
        slot["state"] = state
        self.metrics.inc("service.breaker.transitions", state=state)
        if self.on_transition is not None:
            self.on_transition(tuple(key), state, slot["failures"])

    def allow(self, key) -> bool:
        """May a job on ``key`` run?  An open breaker sheds ``cooldown``
        jobs fast, then half-opens to let one probe through."""
        slot = self._slot(key)
        if slot["state"] != self.OPEN:
            return True
        slot["shed"] += 1
        if slot["shed"] >= self.cooldown:
            slot["shed"] = 0
            self._transition(key, slot, self.HALF_OPEN)
            return True
        self.metrics.inc("service.breaker.fast_failed")
        return False

    def success(self, key) -> None:
        slot = self._slot(key)
        if slot["state"] != self.CLOSED or slot["failures"]:
            slot["failures"] = 0
            slot["shed"] = 0
            self._transition(key, slot, self.CLOSED)

    def failure(self, key) -> int:
        """Record one job-level failure; returns the consecutive count."""
        slot = self._slot(key)
        slot["failures"] += 1
        if slot["state"] == self.HALF_OPEN or (
                slot["state"] == self.CLOSED
                and slot["failures"] >= self.threshold):
            slot["shed"] = 0
            self._transition(key, slot, self.OPEN)
        return slot["failures"]

    def snapshot(self) -> dict:
        return {k: dict(v) for k, v in self._slots.items()}

    def restore(self, states: dict) -> None:
        """Re-arm breakers from journal-replayed state (no hooks fired)."""
        for key, st in states.items():
            slot = self._slot(key)
            slot["state"] = st.get("state", self.CLOSED)
            slot["failures"] = int(st.get("failures", 0))
            slot["shed"] = 0


@dataclass
class SimDevice:
    """One simulated GPU in the service pool."""

    name: str
    device: Device = field(default_factory=lambda: Device(GTX_TITAN))
    #: Simulated second at which the device next becomes free.
    busy_until: float = 0.0

    @property
    def straggler_factor(self) -> float:
        return float(getattr(self.device, "straggler_factor", 1.0))


@dataclass
class JobOutcome:
    """What one :meth:`Scheduler.execute` call produced."""

    ok: bool
    values: np.ndarray | None
    exact: bool
    degraded_reason: str | None
    attempts: int
    device: str | None
    sim_seconds: float
    error: str | None = None
    error_kind: str | None = None
    redispatched: bool = False
    backoff_delays: list = field(default_factory=list)
    #: Roots actually computed (the sample size when degraded).
    samples: int | None = None


class Scheduler:
    """Executes admitted jobs on a :class:`SimDevice` pool."""

    def __init__(self, devices=None, *, max_retries: int = 3,
                 backoff_base: float = DEFAULT_BACKOFF_BASE,
                 backoff_cap: float = DEFAULT_BACKOFF_CAP,
                 redispatch_factor: float = 4.0,
                 overload_sample_fraction: float = 0.25,
                 breaker: CircuitBreaker | None = None,
                 seed: int = 0, metrics=None, clock: SpanClock | None = None):
        if devices is None:
            devices = [SimDevice("dev0"), SimDevice("dev1")]
        if not devices:
            raise ValueError("scheduler needs at least one device")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if redispatch_factor < 1.0:
            raise ValueError("redispatch_factor must be >= 1")
        if not 0.0 < overload_sample_fraction <= 1.0:
            raise ValueError("overload_sample_fraction must be in (0, 1]")
        self.devices = list(devices)
        self.max_retries = int(max_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.redispatch_factor = float(redispatch_factor)
        self.overload_sample_fraction = float(overload_sample_fraction)
        self.seed = int(seed)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self.clock = (clock if clock is not None
                      else (self.metrics.clock if self.metrics.enabled
                            else SpanClock()))
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            metrics=self.metrics)
        #: Deterministic decision log (simulated values only): two runs
        #: with the same seed and fault plans serialise byte-identically.
        self.decisions: list = []
        #: Called with each decision dict as it is made (the telemetry
        #: event stream mirrors scheduler decisions through this hook).
        self.on_decision = None

    # ------------------------------------------------------------------
    def _decide(self, kind: str, **fields) -> None:
        decision = {"decision": kind, **fields}
        self.decisions.append(decision)
        self.metrics.record("service.decision", kind=kind, **fields)
        if self.on_decision is not None:
            self.on_decision(decision)

    def _pick_device(self) -> SimDevice:
        """Earliest-available device; name breaks ties deterministically."""
        return min(self.devices, key=lambda d: (d.busy_until, d.name))

    def _healthy_alternative(self, worse_than: float) -> SimDevice | None:
        """Fastest device strictly healthier than ``worse_than``."""
        healthy = [d for d in self.devices
                   if d.straggler_factor < worse_than]
        if not healthy:
            return None
        return min(healthy, key=lambda d: (d.straggler_factor,
                                           d.busy_until, d.name))

    def _run_once(self, dev: SimDevice, g, spec: JobSpec, roots, faults):
        """One device attempt; returns the :class:`DeviceRun`.

        With a pending fault plan the run goes through a
        :class:`~repro.resilience.FaultyDevice` bound to rank 0, with
        paranoid verification when the plan carries SDC events — a
        detected bit-flip surfaces as ``SilentCorruptionError`` and is
        retried like any other transient."""
        if faults is not None:
            fd = FaultyDevice(0, faults, spec=dev.device.spec,
                              costs=dev.device.costs)
            # The plan's straggler factor compounds the pool device's own.
            fd.straggler_factor *= dev.straggler_factor
            verify = "paranoid" if faults.sdc_pending_for(0) else "off"
            return fd.run_bc(g, strategy=spec.strategy, roots=roots,
                             metrics=self.metrics, verify=verify,
                             fold=spec.fold)
        runner = dev.device
        return runner.run_bc(g, strategy=spec.strategy, roots=roots,
                             metrics=self.metrics, fold=spec.fold)

    def _sampled_estimate(self, dev: SimDevice, g, spec: JobSpec, roots,
                          k: int):
        """Brandes–Pich estimate from ``k`` of the job's roots, rescaled
        by ``len(roots)/k`` (the resilient driver's degradation path)."""
        rng = np.random.default_rng([int(spec.seed), 0x5E44])
        sample = np.sort(rng.choice(roots, size=int(k), replace=False))
        run = dev.device.run_bc(g, strategy=spec.strategy, roots=sample,
                                metrics=self.metrics, fold=spec.fold)
        return run.bc * (float(roots.size) / float(k)), run.seconds

    def _charge(self, dev: SimDevice, seconds: float) -> None:
        dev.busy_until += float(seconds)
        self.clock.advance(float(seconds), "compute")
        self.metrics.inc("service.device_seconds", float(seconds),
                         device=dev.name)

    # ------------------------------------------------------------------
    def execute(self, spec: JobSpec, g, *, prior_attempts: int = 0,
                degrade_reason: str | None = None,
                on_start=None, on_requeue=None) -> JobOutcome:
        """Run one admitted job to a terminal outcome.

        Parameters
        ----------
        prior_attempts:
            Attempts already charged against the job (crash recovery
            resumes the retry budget, it does not reset it).
        degrade_reason:
            Non-``None`` when admission downgraded the job (overload
            mode): the job runs as a flagged sampled estimate directly.
        on_start, on_requeue:
            Journalling hooks: ``on_start(attempt, device_name)`` fires
            before compute, ``on_requeue(attempt, delay, reason)`` after
            a failed attempt that will be retried.  The daemon threads
            its WAL appends through these so every scheduler state is
            crash-recoverable.
        """
        graph_key = g.digest()[:12]
        breaker_key = (graph_key, spec.strategy)
        roots = sample_roots(g, spec)
        delays: list = []

        if not self.breaker.allow(breaker_key):
            slot_failures = self.breaker._slot(breaker_key)["failures"]
            self._decide("circuit-open", job_id=spec.job_id,
                         graph_key=graph_key, strategy=spec.strategy,
                         failures=slot_failures)
            return JobOutcome(
                ok=False, values=None, exact=False, degraded_reason=None,
                attempts=prior_attempts, device=None, sim_seconds=0.0,
                error=f"circuit open for ({graph_key}, {spec.strategy}) "
                      f"after {slot_failures} consecutive failures",
                error_kind="circuit-open")

        faults = (FaultPlan.parse(spec.faults).start(seed=spec.seed)
                  if spec.faults else None)

        # Overload mode decided at admission: cheap flagged answer now.
        if degrade_reason is not None:
            with self.metrics.span("service.job", job_id=spec.job_id,
                                   mode="degraded"):
                dev = self._pick_device()
                attempt = prior_attempts + 1
                if on_start is not None:
                    on_start(attempt, dev.name)
                k = max(1, int(roots.size * self.overload_sample_fraction))
                values, seconds = self._sampled_estimate(dev, g, spec,
                                                         roots, k)
                self._charge(dev, seconds)
                self._decide("overload-degrade", job_id=spec.job_id,
                             device=dev.name, samples=int(k),
                             roots=int(roots.size))
                self.breaker.success(breaker_key)
                return JobOutcome(
                    ok=True, values=values, exact=False,
                    degraded_reason=degrade_reason, attempts=attempt,
                    device=dev.name, sim_seconds=float(seconds),
                    backoff_delays=delays, samples=int(k))

        attempt = prior_attempts
        last_error: Exception | None = None
        max_attempts = self.max_retries + 1
        while attempt < max_attempts:
            attempt += 1
            dev = self._pick_device()
            self._decide("dispatch", job_id=spec.job_id, attempt=attempt,
                         device=dev.name,
                         busy_until=float(dev.busy_until))
            if on_start is not None:
                on_start(attempt, dev.name)
            try:
                with self.metrics.span("service.attempt",
                                       job_id=spec.job_id, attempt=attempt):
                    run = self._run_once(dev, g, spec, roots, faults)
            except _RETRYABLE as exc:
                last_error = exc
                kind = type(exc).__name__
                self.metrics.inc("service.attempt_failures", kind=kind)
                self._decide("attempt-failed", job_id=spec.job_id,
                             attempt=attempt, device=dev.name, error=kind)
                if attempt >= max_attempts:
                    break
                delay = backoff_delay(attempt, base=self.backoff_base,
                                      cap=self.backoff_cap, seed=self.seed,
                                      token=spec.job_id)
                delays.append(delay)
                self.clock.advance(delay, "backoff")
                self.metrics.inc("service.retries")
                self._decide("retry", job_id=spec.job_id, attempt=attempt,
                             delay=delay)
                if on_requeue is not None:
                    on_requeue(attempt, delay, kind)
                continue

            seconds = float(run.seconds)
            device_name = dev.name
            redispatched = False
            # Straggler defence: a run slowed by >= redispatch_factor is
            # speculatively re-executed on the fastest healthy device;
            # the backup's completion wins, the original's work is sunk.
            fault_straggle = faults.straggler_factor(0) if faults else 1.0
            effective = dev.straggler_factor * fault_straggle
            if effective >= self.redispatch_factor:
                alt = self._healthy_alternative(effective)
                if alt is not None:
                    self._decide("redispatch", job_id=spec.job_id,
                                 attempt=attempt, slow_device=dev.name,
                                 device=alt.name,
                                 factor=float(effective))
                    self._charge(dev, seconds)  # sunk speculative work
                    run = alt.device.run_bc(g, strategy=spec.strategy,
                                            roots=roots,
                                            metrics=self.metrics,
                                            fold=spec.fold)
                    seconds = float(run.seconds)
                    device_name = alt.name
                    dev = alt
                    redispatched = True
                    self.metrics.inc("service.redispatched")

            deadline = spec.deadline_seconds
            if deadline is not None and seconds > deadline:
                if spec.allow_degrade and roots.size > 1:
                    k = max(1, min(roots.size - 1,
                                   int(roots.size * deadline / seconds)))
                    values, est_seconds = self._sampled_estimate(
                        dev, g, spec, roots, k)
                    # The exact attempt is aborted at the deadline; the
                    # estimate's own cost is charged on top.
                    self._charge(dev, float(deadline) + est_seconds)
                    self._decide("deadline-degrade", job_id=spec.job_id,
                                 attempt=attempt, device=device_name,
                                 needed=seconds, deadline=float(deadline),
                                 samples=int(k))
                    self.metrics.inc("service.deadline_degraded")
                    self.breaker.success(breaker_key)
                    return JobOutcome(
                        ok=True, values=values, exact=False,
                        degraded_reason="deadline", attempts=attempt,
                        device=device_name,
                        sim_seconds=float(deadline) + float(est_seconds),
                        redispatched=redispatched, backoff_delays=delays,
                        samples=int(k))
                self._charge(dev, float(deadline))
                self._decide("deadline-exceeded", job_id=spec.job_id,
                             attempt=attempt, device=device_name,
                             needed=seconds, deadline=float(deadline))
                self.metrics.inc("service.deadline_failures")
                self.breaker.failure(breaker_key)
                return JobOutcome(
                    ok=False, values=None, exact=False,
                    degraded_reason=None, attempts=attempt,
                    device=device_name, sim_seconds=float(deadline),
                    error=f"job {spec.job_id!r} needs {seconds:.4f}s "
                          f"simulated compute but its deadline is "
                          f"{float(deadline):.4f}s",
                    error_kind="deadline",
                    redispatched=redispatched, backoff_delays=delays)

            self._charge(dev, seconds)
            self._decide("done", job_id=spec.job_id, attempt=attempt,
                         device=device_name, sim_seconds=seconds)
            self.breaker.success(breaker_key)
            return JobOutcome(
                ok=True, values=run.bc, exact=True, degraded_reason=None,
                attempts=attempt, device=device_name,
                sim_seconds=seconds, redispatched=redispatched,
                backoff_delays=delays, samples=int(roots.size))

        # Retries exhausted.
        failures = self.breaker.failure(breaker_key)
        self.metrics.inc("service.jobs_failed", kind="retries-exhausted")
        self._decide("fail", job_id=spec.job_id, attempts=attempt,
                     error=type(last_error).__name__,
                     consecutive_failures=failures)
        return JobOutcome(
            ok=False, values=None, exact=False, degraded_reason=None,
            attempts=attempt, device=None, sim_seconds=0.0,
            error=f"{attempt} attempt(s) failed; last: {last_error}",
            error_kind="retries-exhausted", backoff_delays=delays)
