"""Job model for the BC service: specs, states, and legal transitions.

A **job** is one BC query: a named dataset (generated deterministically
from ``(graph, scale_factor, graph_seed)``), a device strategy, and a
root sample drawn from ``seed``.  The service executes it on a simulated
device and materialises the values into the content-addressed result
cache.

States form a small machine (``repro.job/v1`` journal semantics)::

    PENDING ──start──▶ RUNNING ──done──▶ DONE
       ▲                  │ │
       └────requeue───────┘ └──fail──▶ FAILED
    PENDING ──cancel──▶ CANCELLED
    (admission) ──shed──▶ SHED          # never entered the queue

``DONE``/``FAILED``/``CANCELLED``/``SHED`` are terminal.  A crash while
``RUNNING`` is repaired at replay time: the journal shows a ``start``
with no terminal record, so the job is requeued (its ``done`` record was
never written, hence its result was never *observed* — the cache write
may or may not have landed, and either way recomputation is idempotent
because results are content-addressed).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from ..errors import FaultSpecError, JobSpecError

__all__ = [
    "PENDING",
    "RUNNING",
    "DONE",
    "FAILED",
    "CANCELLED",
    "SHED",
    "STATES",
    "TERMINAL_STATES",
    "JobSpec",
    "JobRecord",
    "legal_transition",
]

PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
SHED = "shed"
STATES = (PENDING, RUNNING, DONE, FAILED, CANCELLED, SHED)
TERMINAL_STATES = (DONE, FAILED, CANCELLED, SHED)

#: Legal state transitions (from -> allowed targets).  ``SHED`` has no
#: incoming edge here because shed jobs are refused at admission and
#: journalled directly in that state.
_TRANSITIONS = {
    PENDING: (RUNNING, CANCELLED, FAILED),
    RUNNING: (PENDING, DONE, FAILED),  # PENDING = requeue (crash/retry)
    DONE: (),
    FAILED: (),
    CANCELLED: (),
    SHED: (),
}


def legal_transition(old: str, new: str) -> bool:
    """Whether ``old -> new`` is a legal job-state transition."""
    return new in _TRANSITIONS.get(old, ())


@dataclass(frozen=True)
class JobSpec:
    """One submitted BC query (immutable, JSON-round-trippable).

    Parameters
    ----------
    job_id:
        Unique id; the daemon assigns ``j%06d`` ids when empty.
    graph:
        Table II dataset name (``repro.graph.generators.make_dataset``).
    scale_factor, graph_seed:
        Dataset sizing/seed — together with ``graph`` they identify the
        input graph; the service loads each distinct triple once.
    strategy:
        Device strategy (``work-efficient``/``edge-parallel``/
        ``vertex-parallel``/``hybrid``/``sampling``).
    roots:
        How many BC roots to run (sampled without replacement from
        ``seed``; capped at the graph order).
    seed:
        Seed for the root sample, fault-injection salt, and the
        degraded-estimate sampler.
    tenant:
        Quota bucket for admission control.
    deadline_seconds:
        Cap on the job's *simulated* compute seconds; a run that needs
        more either degrades to a sampled estimate (when
        ``allow_degrade``) or fails with a deadline error.
    allow_degrade:
        Whether the service may return a flagged (``exact=False``)
        sampled estimate under deadline pressure or overload.
    fold:
        Degree-1 folding (:mod:`repro.bc.preprocess`; default on).  A
        folded job traverses the reduced core; its result values are
        identical to the unfolded job's, but the two are **distinct
        cache artifacts** — the result key includes the fold digest so
        a preprocessing change can never serve stale bytes.
    faults:
        Optional :class:`repro.resilience.FaultPlan` spec string — the
        deterministic chaos hook the scheduler tests (and the CI smoke
        job) inject fail-stop/OOM/straggler/SDC faults through.
    """

    job_id: str = ""
    graph: str = "smallworld"
    scale_factor: int = 1024
    graph_seed: int = 0
    strategy: str = "sampling"
    roots: int = 8
    seed: int = 0
    tenant: str = "default"
    deadline_seconds: float | None = None
    allow_degrade: bool = True
    fold: bool = True
    faults: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.graph, str) or not self.graph:
            raise JobSpecError("graph must be a non-empty dataset name")
        if int(self.scale_factor) < 1:
            raise JobSpecError("scale_factor must be >= 1")
        if int(self.roots) < 1:
            raise JobSpecError("roots must be >= 1")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise JobSpecError("deadline_seconds must be positive")
        if not isinstance(self.tenant, str) or not self.tenant:
            raise JobSpecError("tenant must be a non-empty string")
        if self.faults:
            # Validate eagerly so a bad chaos spec is rejected at submit
            # time, not mid-run.
            from ..resilience import FaultPlan

            try:
                FaultPlan.parse(self.faults)
            except FaultSpecError as exc:
                raise JobSpecError(f"bad faults spec: {exc}") from exc

    def with_id(self, job_id: str) -> "JobSpec":
        return replace(self, job_id=str(job_id))

    def content_key(self) -> str:
        """SHA-256 of the fields that determine what the job *computes*.

        Excludes ``job_id`` (an alias, not a determinant) and ``tenant``
        (a billing label).  Two submissions with equal content keys
        would run the identical query and materialise the identical
        result bytes — which is why admission dedupes on this key and
        the client derives idempotent job ids from it: a retried submit
        can never enqueue the same work twice.
        """
        import hashlib
        import json

        payload = {k: v for k, v in self.to_dict().items()
                   if k not in ("job_id", "tenant")}
        body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(body.encode("utf-8")).hexdigest()

    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "graph": self.graph,
            "scale_factor": int(self.scale_factor),
            "graph_seed": int(self.graph_seed),
            "strategy": self.strategy,
            "roots": int(self.roots),
            "seed": int(self.seed),
            "tenant": self.tenant,
            "deadline_seconds": self.deadline_seconds,
            "allow_degrade": bool(self.allow_degrade),
            "fold": bool(self.fold),
            "faults": self.faults,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "JobSpec":
        if not isinstance(d, dict):
            raise JobSpecError(f"job spec must be a dict, got {type(d).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(d) - known)
        if unknown:
            raise JobSpecError(f"unknown job spec field(s): {unknown}")
        try:
            return cls(**d)
        except TypeError as exc:
            raise JobSpecError(str(exc)) from exc


@dataclass
class JobRecord:
    """Mutable service-side view of one job's progress."""

    spec: JobSpec
    state: str = PENDING
    #: Completed execution attempts (incremented at each ``start``).
    attempt: int = 0
    #: Journal sequence number of the ``submit`` record (FIFO order key).
    submit_seq: int = 0
    #: True when admission downgraded the job to a sampled estimate
    #: (overload mode) — recorded at submit so the decision survives a
    #: crash between admission and execution.
    admit_degraded: bool = False
    device: str | None = None
    result_key: str | None = None
    #: True when the result covers every requested root exactly.
    exact: bool | None = None
    #: Why the result is inexact (``"overload"``/``"deadline"``/
    #: ``"retries-exhausted"``) — never unset when ``exact`` is False.
    degraded_reason: str | None = None
    error: str | None = None
    #: Simulated compute seconds charged to the job (set at ``done``).
    sim_seconds: float = 0.0
    #: Roots actually computed (the sample size when degraded); lets a
    #: lost result be re-materialised byte-identically.
    samples: int | None = None
    #: Set during replay when the job was found RUNNING (daemon crashed
    #: mid-job) and had to be requeued.
    recovered: bool = False
    #: Backoff delays charged so far (deterministic; audit trail).
    backoff_delays: list = field(default_factory=list)

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def status_dict(self) -> dict:
        """JSON-ready status row (what ``repro service status`` prints)."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "tenant": self.spec.tenant,
            "graph": self.spec.graph,
            "strategy": self.spec.strategy,
            "roots": int(self.spec.roots),
            "attempt": int(self.attempt),
            "device": self.device,
            "exact": self.exact,
            "degraded_reason": self.degraded_reason,
            "error": self.error,
            "result_key": self.result_key,
            "sim_seconds": self.sim_seconds,
            "recovered": self.recovered,
        }
