"""Deterministic load generator for the BC service.

Simulates a Poisson arrival process against the service's admission
policy and a small device pool, entirely in *simulated* time — the same
trick the gpusim makes with kernels — so every scenario is a pure
function of its seed and its rows are byte-stable bench-grid citizens.

Two committed scenarios:

* ``steady`` — arrivals comfortably under capacity: nothing shed,
  nothing degraded; the row pins the service's base overhead.
* ``overload`` — arrivals past the queue bound: the row pins how the
  admission policy behaves at saturation (shed rate, degraded share)
  and that p99 latency stays bounded *because* load is shed rather than
  queued without limit.

Each scenario produces one ``repro.bench/v1`` result row keyed
``(dataset="service-load", strategy=<scenario>)`` carrying
``makespan_cycles`` (so the default perf-diff metric ratchets it) plus
service-level fields: ``p50_latency``/``p99_latency`` and
``p50_queue_wait``/``p99_queue_wait`` (simulated seconds),
``jobs_per_sec``, ``shed_rate``, ``degraded_rate``, and a
``per_tenant`` breakdown (jobs, p99 latency, p99 queue wait) — the
same decomposition ``repro service top`` reports from the live event
stream, so bench rows and SLO dashboards speak one vocabulary.
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass

import numpy as np

from ..errors import ServiceOverloadError
from ..graph.generators import make_dataset
from ..gpusim import GTX_TITAN, Device
from ..observability.registry import NULL_REGISTRY
from .admission import AdmissionController, AdmissionPolicy
from .jobs import JobSpec
from .scheduler import backoff_delay

__all__ = ["LoadScenario", "RETRY_STORM", "SCENARIOS",
           "run_load_scenario", "service_bench_rows"]


@dataclass(frozen=True)
class LoadScenario:
    """One arrival pattern against one admission policy."""

    name: str
    jobs: int = 24
    #: Mean arrivals per simulated second.
    arrival_rate: float = 2.0
    graph: str = "smallworld"
    scale_factor: int = 256
    roots: int = 8
    strategies: tuple = ("sampling", "edge-parallel")
    tenants: int = 3
    devices: int = 2
    max_queue: int = 16
    degrade_threshold: int | None = None
    tenant_quota: int = 16
    #: Root fraction a degraded job runs (mirrors the scheduler's
    #: overload sampling).
    sample_fraction: float = 0.25
    #: Shed arrivals re-offer themselves up to this many times, after
    #: the client SDK's deterministic jittered backoff floored at the
    #: server's ``retry_after`` hint.  0 (the committed default) keeps
    #: the scenario's rows byte-identical to the pre-retry model.
    client_retries: int = 0
    client_backoff_base: float = 0.05
    client_backoff_cap: float = 2.0


#: The committed bench scenarios (kept cheap: one 256-scale graph).
SCENARIOS = (
    LoadScenario("steady", jobs=24, arrival_rate=0.5,
                 max_queue=16, tenant_quota=16),
    LoadScenario("overload", jobs=40, arrival_rate=50_000.0,
                 max_queue=8, degrade_threshold=3, tenant_quota=8),
)

#: The chaos scenario the soak CI job runs: overload arrivals whose
#: clients retry on shed, honouring ``retry_after`` hints.  Deliberately
#: NOT in :data:`SCENARIOS` — its rows never enter the committed bench
#: baseline, so the retry model can evolve without perf-gate churn.
RETRY_STORM = LoadScenario("retry-storm", jobs=40, arrival_rate=50_000.0,
                           max_queue=8, degrade_threshold=3,
                           tenant_quota=8, client_retries=4)


def _service_times(scenario: LoadScenario, metrics) -> dict:
    """Simulated seconds per (strategy, degraded) job class.

    Measured by actually running the device simulator once per class on
    the scenario graph — the load model and the bench grid share one
    cost model, so a kernel change moves these rows too.
    """
    g = make_dataset(scenario.graph, scale_factor=scenario.scale_factor,
                     seed=0)
    dev = Device(GTX_TITAN)
    rng = np.random.default_rng(0)
    roots = np.sort(rng.choice(g.num_vertices,
                               size=min(scenario.roots, g.num_vertices),
                               replace=False))
    k = max(1, int(roots.size * scenario.sample_fraction))
    times = {}
    for strategy in scenario.strategies:
        exact = dev.run_bc(g, strategy=strategy, roots=roots,
                           metrics=metrics)
        sampled = dev.run_bc(g, strategy=strategy, roots=roots[:k],
                             metrics=metrics)
        times[(strategy, False)] = float(exact.seconds)
        times[(strategy, True)] = float(sampled.seconds)
    times["graph"] = g
    return times


def run_load_scenario(scenario: LoadScenario, *, seed: int = 0,
                      metrics=None) -> dict:
    """Simulate one scenario; returns its bench result row."""
    metrics = metrics if metrics is not None else NULL_REGISTRY
    policy = AdmissionPolicy(max_queue=scenario.max_queue,
                             degrade_threshold=scenario.degrade_threshold,
                             tenant_quota=scenario.tenant_quota)
    admission = AdmissionController(policy, metrics=metrics)
    times = _service_times(scenario, metrics)
    g = times["graph"]

    rng = np.random.default_rng(
        [int(seed), zlib.crc32(scenario.name.encode("utf-8"))])
    arrivals = np.cumsum(rng.exponential(1.0 / scenario.arrival_rate,
                                         size=scenario.jobs))

    devices = [0.0] * scenario.devices
    # (arrival, start, completion, tenant, degraded) per admitted job.
    admitted: list = []
    shed = 0
    degraded = 0
    latencies: list = []

    retries = 0
    gave_up = 0
    # Offer events in simulated-time order; a retrying client re-offers
    # its shed arrival later.  With client_retries=0 this is exactly the
    # original in-order arrival walk (rows stay byte-identical).
    events = [(float(t), i, 0) for i, t in enumerate(arrivals)]
    heapq.heapify(events)
    while events:
        t, i, attempt = heapq.heappop(events)
        tenant = f"t{i % scenario.tenants}"
        strategy = scenario.strategies[i % len(scenario.strategies)]
        spec = JobSpec(job_id=f"load{i:04d}", graph=scenario.graph,
                       scale_factor=scenario.scale_factor,
                       strategy=strategy, roots=scenario.roots,
                       seed=seed, tenant=tenant)
        # Queue state as of this arrival, from the simulated timeline:
        # admitted-but-not-started jobs are the queue, started-but-not-
        # finished ones are the tenant's running share.
        depth = sum(1 for a in admitted if a["start"] > t)
        live = sum(1 for a in admitted
                   if a["tenant"] == tenant and a["completion"] > t)
        try:
            mode = admission.decide(spec, depth, live)
        except ServiceOverloadError as exc:
            if attempt < scenario.client_retries:
                retries += 1
                delay = backoff_delay(attempt + 1,
                                      base=scenario.client_backoff_base,
                                      cap=scenario.client_backoff_cap,
                                      seed=seed, token=spec.job_id)
                hint = getattr(exc, "retry_after", None)
                if hint is not None:
                    delay = max(delay, float(hint))
                heapq.heappush(events, (t + delay, i, attempt + 1))
                continue
            shed += 1
            if scenario.client_retries:
                gave_up += 1
            continue
        is_degraded = mode == "degrade"
        if is_degraded:
            degraded += 1
        service = times[(strategy, is_degraded)]
        d = min(range(len(devices)), key=lambda j: devices[j])
        start = max(float(t), devices[d])
        completion = start + service
        devices[d] = completion
        admitted.append({"arrival": float(t), "start": start,
                         "completion": completion, "tenant": tenant})
        latencies.append(completion - float(t))

    lat = np.asarray(latencies, dtype=np.float64)
    makespan = (max(a["completion"] for a in admitted) - float(arrivals[0])
                if admitted else 0.0)
    queue_waits = np.asarray([a["start"] - a["arrival"] for a in admitted],
                             dtype=np.float64)
    per_tenant = {}
    for tenant in sorted({a["tenant"] for a in admitted}):
        t_lat = np.asarray([a["completion"] - a["arrival"]
                            for a in admitted if a["tenant"] == tenant])
        t_qw = np.asarray([a["start"] - a["arrival"]
                           for a in admitted if a["tenant"] == tenant])
        per_tenant[tenant] = {
            "jobs": int(t_lat.size),
            "p99_latency": float(np.percentile(t_lat, 99)),
            "p99_queue_wait": float(np.percentile(t_qw, 99)),
        }
    clock_hz = GTX_TITAN.clock_hz
    row = {
        "dataset": "service-load",
        "strategy": scenario.name,
        "num_vertices": int(g.num_vertices),
        "num_edges": int(g.num_edges),
        "num_roots": int(scenario.roots),
        "jobs_offered": int(scenario.jobs),
        "jobs_completed": int(len(admitted)),
        "makespan_cycles": float(makespan * clock_hz),
        "sim_seconds": float(makespan),
        "p50_latency": float(np.percentile(lat, 50)) if lat.size else None,
        "p99_latency": float(np.percentile(lat, 99)) if lat.size else None,
        "p50_queue_wait": (float(np.percentile(queue_waits, 50))
                           if queue_waits.size else None),
        "p99_queue_wait": (float(np.percentile(queue_waits, 99))
                           if queue_waits.size else None),
        "jobs_per_sec": (float(len(admitted) / makespan)
                         if makespan > 0 else None),
        "shed_rate": float(shed / scenario.jobs),
        "degraded_rate": float(degraded / scenario.jobs),
        "per_tenant": per_tenant,
    }
    if scenario.client_retries:
        # Retry fields appear only for retry-modelled scenarios so the
        # committed SCENARIOS rows stay byte-identical.
        row["client_retries"] = int(scenario.client_retries)
        row["retries"] = int(retries)
        row["gave_up"] = int(gave_up)
    metrics.record("service.loadgen", scenario=scenario.name,
                   completed=len(admitted), shed=shed, degraded=degraded)
    return row


def service_bench_rows(seed: int = 0, scenarios=SCENARIOS,
                       metrics=None) -> list:
    """The load-generator rows the bench grid appends."""
    return [run_load_scenario(s, seed=seed, metrics=metrics)
            for s in scenarios]
