"""BC-as-a-service: a crash-safe daemon over the simulated device pool.

The paper's harness answers one query per process; this package turns
it into a *service*: graphs load once, jobs arrive continuously, and
the process is allowed to die at any instant without losing or
duplicating work.  Layers, bottom up:

* :mod:`~repro.service.jobs` — job specs and the PENDING→…→terminal
  state machine;
* :mod:`~repro.service.journal` — the checksummed write-ahead journal
  (``repro.job/v1``) and its crash-replay semantics;
* :mod:`~repro.service.cache` — content-addressed, checksum-verified
  result materialisation (``repro.result/v1``);
* :mod:`~repro.service.admission` — bounded queue, tenant quotas,
  load-shedding and overload degradation policy;
* :mod:`~repro.service.scheduler` — fault-hardened execution: retries
  with deterministic backoff, circuit breaker, straggler re-dispatch,
  deadlines, and :class:`~repro.resilience.FaultPlan` chaos injection;
* :mod:`~repro.service.daemon` — :class:`BCService`, tying the above
  into the ``repro service`` CLI verbs;
* :mod:`~repro.service.loadgen` — deterministic Poisson load scenarios
  whose latency/shed-rate rows ride the bench grid's perf gate.
"""

from .admission import AdmissionController, AdmissionPolicy
from .cache import RESULT_SCHEMA, ResultCache, result_key
from .daemon import BCService
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    PENDING,
    RUNNING,
    SHED,
    STATES,
    TERMINAL_STATES,
    JobRecord,
    JobSpec,
    legal_transition,
)
from .journal import (
    JOURNAL_SCHEMA,
    RECORD_KINDS,
    JobJournal,
    ReplayedState,
    decode_line,
    encode_record,
    journal_inventory,
    read_journal,
    read_journal_chain,
    replay_state,
    verify_journal,
)
from .loadgen import (
    SCENARIOS,
    LoadScenario,
    run_load_scenario,
    service_bench_rows,
)
from .soak import SoakConfig, run_soak
from .storage import ServiceStorage, SimulatedCrash
from .scheduler import (
    CircuitBreaker,
    JobOutcome,
    Scheduler,
    SimDevice,
    backoff_delay,
    sample_roots,
)

__all__ = [
    "PENDING", "RUNNING", "DONE", "FAILED", "CANCELLED", "SHED",
    "STATES", "TERMINAL_STATES",
    "JobSpec", "JobRecord", "legal_transition",
    "JOURNAL_SCHEMA", "RECORD_KINDS", "JobJournal", "ReplayedState",
    "encode_record", "decode_line", "read_journal", "replay_state",
    "journal_inventory", "read_journal_chain", "verify_journal",
    "ServiceStorage", "SimulatedCrash",
    "SoakConfig", "run_soak",
    "RESULT_SCHEMA", "ResultCache", "result_key",
    "AdmissionPolicy", "AdmissionController",
    "CircuitBreaker", "SimDevice", "JobOutcome", "Scheduler",
    "backoff_delay", "sample_roots",
    "BCService",
    "LoadScenario", "SCENARIOS", "run_load_scenario",
    "service_bench_rows",
]
