"""Simulated GPU specifications.

Two presets mirror the paper's hardware (Section V-A):

* **GeForce GTX Titan** — 14 SMs, 837 MHz base clock, 6 GB GDDR5,
  compute capability 3.5 (single-node experiments);
* **Tesla M2090** — 16 SMs, 1.3 GHz, 6 GB GDDR5, compute capability 2.0
  (three per node on the Keeneland KIDS cluster).

``concurrent_threads_per_sm`` is the *effective* execution width the
cost model serialises chunks against — the number of threads an SM
retires concurrently, not the number resident.  The paper launches one
thread block per SM (Jia et al. showed this is optimal), so coarse
parallelism equals ``num_sms`` roots in flight.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeviceConfigurationError

__all__ = ["GPUSpec", "GTX_TITAN", "TESLA_M2090"]


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a simulated GPU."""

    name: str
    num_sms: int
    clock_hz: float
    memory_bytes: int
    concurrent_threads_per_sm: int = 256
    compute_capability: str = ""

    def __post_init__(self) -> None:
        if self.num_sms <= 0:
            raise DeviceConfigurationError("num_sms must be positive")
        if self.clock_hz <= 0:
            raise DeviceConfigurationError("clock_hz must be positive")
        if self.memory_bytes <= 0:
            raise DeviceConfigurationError("memory_bytes must be positive")
        if self.concurrent_threads_per_sm <= 0:
            raise DeviceConfigurationError(
                "concurrent_threads_per_sm must be positive"
            )

    @property
    def total_threads(self) -> int:
        """Device-wide effective concurrency (all SMs cooperating)."""
        return self.num_sms * self.concurrent_threads_per_sm

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count into simulated wall-clock seconds."""
        return float(cycles) / self.clock_hz


#: Single-node GPU of Section V-A.
GTX_TITAN = GPUSpec(
    name="GeForce GTX Titan",
    num_sms=14,
    clock_hz=837e6,
    memory_bytes=6 * 1024**3,
    concurrent_threads_per_sm=256,
    compute_capability="3.5",
)

#: Cluster GPU of Section V-A (three per KIDS node).
TESLA_M2090 = GPUSpec(
    name="Tesla M2090",
    num_sms=16,
    clock_hz=1.3e9,
    memory_bytes=6 * 1024**3,
    concurrent_threads_per_sm=256,
    compute_capability="2.0",
)
