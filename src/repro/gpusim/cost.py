"""Kernel cost model: cycles charged per BFS/accumulation iteration.

The model charges exactly the quantities the paper's analysis reasons
about (Sections III and IV):

* **Edge-parallel** kernels touch *every* directed edge on *every*
  iteration with perfectly coalesced, perfectly balanced accesses —
  cheap per edge, but the work is O(m) per level regardless of how few
  edges actually matter.
* **Work-efficient** kernels touch only the frontier's edges, but the
  per-thread work equals the vertex's out-degree, so a chunk of ``T``
  concurrent threads is as slow as its highest-degree member
  (warp/block serialisation); accesses are queue-driven gathers
  (scattered), and queue insertion costs an atomic CAS + append
  (Algorithm 2, lines 5-7).
* **Vertex-parallel** kernels additionally pay a per-vertex depth check
  on all n vertices every level (the O(n^2 + m) traversal).
* Every level costs one kernel launch / device-wide barrier.

All methods return cycles for ONE thread block (one SM) processing one
level of one root, except the GPU-FAN variant, which cooperates across
the whole device (``device_chunk``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

import numpy as np

from .._util import chunk_max_sum

__all__ = ["CostModel", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class CostModel:
    """Cycle charges for the kernel primitives.

    Attributes
    ----------
    edge_coalesced:
        Cycles per edge inspection in the edge-parallel layout
        (streaming, fully coalesced).
    edge_scattered:
        Cycles per edge traversal through a queue-driven gather
        (uncoalesced neighbour list access), including the atomic
        traffic of discovery/path-counting.  Applies to the first
        ``stream_threshold`` edges of a thread's row.
    edge_streamed:
        Cycles per edge beyond ``stream_threshold`` in one thread's
        row: a long adjacency list is contiguous in CSR, so a single
        thread walking it hits full cache lines and pipelines its loads
        — hubs are slow, but not ``edge_scattered``-per-edge slow.
    stream_threshold:
        Row length beyond which a thread's traversal reaches streaming
        throughput.
    atomic:
        Cycles per atomic operation (CAS on ``d``, atomicAdd on sigma or
        the queue tail) in the *edge-parallel* layout, where colliding
        updates from many threads are the norm.
    queue_op:
        Cycles per queue element copy (Q_next -> Q_curr, S append).
    enqueue:
        How discovered vertices enter Q_next: ``"cas"`` (the paper's
        choice — an atomicAdd on the queue tail per discovery, folded
        into the scattered per-edge charge) or ``"prefix-sum"``
        (Merrill et al.'s cooperative enqueue).  The paper rejects the
        prefix sum because at per-SM granularity *every* SM must scan
        its whole candidate set independently (Section IV-A); the
        ``prefix-sum`` variant charges exactly that scan so the
        trade-off can be reproduced (benchmarks/test_ablation.py).
    prefix_scan_factor:
        Cycles per scanned element per scan pass in prefix-sum mode.
    vertex_check:
        Cycles per per-vertex "is it in this depth?" check
        (vertex-parallel only).
    launch:
        Fixed cycles per iteration.  The per-SM methods run one
        persistent block per SM, so an iteration boundary is only a
        block-level ``__syncthreads()`` plus loop bookkeeping — tens of
        cycles, not a kernel launch.
    gpu_fan_sync_multiplier:
        GPU-FAN synchronises *all* thread blocks between iterations
        (fine-grained-only parallelism requires a device-wide barrier,
        i.e. a kernel relaunch costing microseconds), which is orders
        of magnitude costlier than the single-block sync above.
    imbalance:
        If False, chunk serialisation is disabled (each chunk charged
        its mean instead of its max) — the ablation knob showing why
        scale-free graphs punish the work-efficient method.
    cycle_scale:
        Uniform multiplier applied to every per-iteration cost.  The
        structural model above counts work units; real irregular
        kernels are additionally DRAM-latency- and occupancy-bound
        (hundreds of cycles per dependent gather that 256 resident
        threads only partially hide).  A uniform factor leaves every
        ratio the paper reports untouched while bringing absolute
        simulated times within the right order of magnitude, which
        matters wherever simulated kernel time is balanced against
        real-world fixed costs (the cluster model's setup and
        communication terms, Figure 6 / Table IV).
    """

    edge_coalesced: float = 2.0
    edge_scattered: float = 16.0
    edge_streamed: float = 4.0
    stream_threshold: int = 32
    atomic: float = 6.0
    queue_op: float = 4.0
    enqueue: str = "cas"
    prefix_scan_factor: float = 3.0
    vertex_check: float = 1.0
    launch: float = 50.0
    gpu_fan_sync_multiplier: float = 60.0
    imbalance: bool = True
    cycle_scale: float = 100.0

    # -- helpers ------------------------------------------------------
    def _row_cycles(self, degrees: np.ndarray) -> np.ndarray:
        """Per-thread cycles to traverse a row of each given length:
        scattered cost up to ``stream_threshold`` edges, streaming cost
        beyond (long CSR rows are contiguous)."""
        deg = np.asarray(degrees, dtype=np.float64)
        short = np.minimum(deg, self.stream_threshold)
        long = deg - short
        return short * self.edge_scattered + long * self.edge_streamed

    def _serialized(self, row_cycles: np.ndarray, chunk: int) -> float:
        """Chunked execution time of per-thread costs (see module doc)."""
        row_cycles = np.asarray(row_cycles)
        if row_cycles.size == 0:
            return 0.0
        if self.imbalance:
            return float(chunk_max_sum(row_cycles, chunk))
        return float(row_cycles.sum()) / chunk

    # -- work-efficient (Algorithms 2 and 3) --------------------------
    def we_forward(self, frontier_degrees: np.ndarray, chunk: int) -> float:
        """One shortest-path-calculation level, work-efficient kernel."""
        fdeg = np.asarray(frontier_degrees)
        f = int(fdeg.size)
        cycles = self._serialized(self._row_cycles(fdeg), chunk)
        cycles += math.ceil(f / chunk) * self.queue_op * 2  # Q_next->Q_curr, S append
        if self.enqueue == "prefix-sum":
            # Cooperative enqueue: this SM alone scans every candidate
            # edge of the level (one flag per inspected edge), paying
            # O(edge_frontier / chunk) scan passes — the overhead the
            # paper measured and rejected.
            ef = float(fdeg.sum())
            passes = math.log2(max(ef, 2.0))
            cycles += ef / chunk * self.prefix_scan_factor * passes
        elif self.enqueue != "cas":
            raise ValueError(f"unknown enqueue mode {self.enqueue!r}")
        return (cycles + self.launch) * self.cycle_scale

    def we_backward(self, level_degrees: np.ndarray, chunk: int) -> float:
        """One dependency-accumulation level (atomic-free successor scan)."""
        f = int(np.asarray(level_degrees).size)
        cycles = self._serialized(self._row_cycles(level_degrees), chunk) * 0.8
        cycles += math.ceil(f / chunk) * self.queue_op  # read S segment
        return (cycles + self.launch) * self.cycle_scale

    # -- edge-parallel (Jia et al. / GPU-FAN layout) -------------------
    def ep_forward(self, num_directed_edges: int, useful_edges: int,
                   chunk: int) -> float:
        """One forward level: scan all edges, relax the useful ones."""
        cycles = math.ceil(num_directed_edges / chunk) * self.edge_coalesced
        cycles += useful_edges / chunk * self.atomic
        return (cycles + self.launch) * self.cycle_scale

    def ep_backward(self, num_directed_edges: int, useful_edges: int,
                    chunk: int) -> float:
        """One backward level: scan all edges; predecessor updates are
        atomic in the edge-parallel layout (Section IV-A)."""
        cycles = math.ceil(num_directed_edges / chunk) * self.edge_coalesced
        cycles += useful_edges / chunk * self.atomic
        return (cycles + self.launch) * self.cycle_scale

    # -- vertex-parallel (Jia et al.) ----------------------------------
    def vp_forward(self, num_vertices: int, masked_degrees: np.ndarray,
                   chunk: int) -> float:
        """One forward level: every vertex checked, frontier vertices
        traverse their edges in-place (no queue)."""
        cycles = math.ceil(num_vertices / chunk) * self.vertex_check
        cycles += self._serialized(self._row_cycles(masked_degrees), chunk)
        return (cycles + self.launch) * self.cycle_scale

    def vp_backward(self, num_vertices: int, masked_degrees: np.ndarray,
                    chunk: int) -> float:
        """One backward level of the vertex-parallel kernel."""
        cycles = math.ceil(num_vertices / chunk) * self.vertex_check
        cycles += self._serialized(self._row_cycles(masked_degrees), chunk) * 0.8
        return (cycles + self.launch) * self.cycle_scale

    # -- GPU-FAN -------------------------------------------------------
    def gpu_fan_forward(self, num_directed_edges: int, useful_edges: int,
                        device_chunk: int) -> float:
        """GPU-FAN forward level: whole device on one root, global sync."""
        cycles = math.ceil(num_directed_edges / device_chunk) * self.edge_coalesced
        cycles += useful_edges / device_chunk * self.atomic
        cycles += self.launch * self.gpu_fan_sync_multiplier
        return cycles * self.cycle_scale

    def gpu_fan_backward(self, num_directed_edges: int, useful_edges: int,
                         device_chunk: int) -> float:
        """GPU-FAN backward level."""
        return self.gpu_fan_forward(num_directed_edges, useful_edges, device_chunk)

    # -- batched multi-source (Sarıyüce et al., reference [33]) --------
    def batched_forward(self, edge_pairs: int, device_chunk: int) -> float:
        """One frontier-matrix level for a whole root batch.

        The ``(k, n) x (n, n)`` product streams each active row's edges
        exactly once — fully coalesced, BLAS-shaped, no queues and no
        atomics (path counts accumulate inside the product) — and the
        whole device cooperates, so one launch covers every root in the
        batch.  ``edge_pairs`` is the summed edge frontier across the
        batch's rows at this level.
        """
        cycles = math.ceil(edge_pairs / device_chunk) * self.edge_coalesced
        return (cycles + self.launch) * self.cycle_scale

    def batched_backward(self, edge_pairs: int, device_chunk: int) -> float:
        """One batched dependency-accumulation level (same regular
        streamed product, transposed)."""
        cycles = math.ceil(edge_pairs / device_chunk) * self.edge_coalesced
        return (cycles + self.launch) * self.cycle_scale

    # -- variants ------------------------------------------------------
    def without_imbalance(self) -> "CostModel":
        """Ablation variant with chunk serialisation disabled."""
        return replace(self, imbalance=False)


#: Default constants, calibrated so the paper's cross-over shapes hold
#: (see benchmarks/test_ablation.py and EXPERIMENTS.md).
DEFAULT_COSTS = CostModel()
