"""Simulated GPU device: scheduling, memory checking, BC runs.

The device reproduces the execution structure of the paper's CUDA
implementations:

* **Coarse + fine parallelism** (Jia et al. layout, used by the
  vertex-/edge-parallel baselines and all of the paper's methods): one
  thread block per SM, each block processing BC roots one at a time and
  pulling the next root when it finishes — modelled as greedy list
  scheduling of per-root cycle costs onto ``num_sms`` SMs; the run's
  simulated time is the makespan.
* **Fine-grained only** (GPU-FAN): the whole device cooperates on one
  root at a time, so the simulated time is the *sum* of per-root costs
  (with device-wide concurrency per level and costlier global sync).

Before running, the device "allocates" every data structure the chosen
strategy needs; GPU-FAN's O(n^2) predecessor matrix therefore raises
:class:`~repro.errors.DeviceOutOfMemoryError` at the same scales the
paper reports it failing (Figure 5).
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field

import numpy as np

from ..bc.policies import (
    EDGE_PARALLEL,
    GPU_FAN,
    VERTEX_PARALLEL,
    WORK_EFFICIENT,
    FixedPolicy,
    FrontierGuardPolicy,
    HybridPolicy,
)
from ..bc.preprocess import FoldResult, fold_degree_one, per_root_correction
from ..bc.sampling import (
    DEFAULT_GAMMA,
    DEFAULT_MIN_FRONTIER,
    DEFAULT_N_SAMPS,
    classification_record,
)
from ..errors import GraphFormatError, SilentCorruptionError, StrategyError
from ..graph.csr import CSRGraph
from ..observability.registry import NULL_REGISTRY
from ..verify import RootChecker, VerificationPolicy
from .cost import DEFAULT_COSTS, CostModel
from .memory import DeviceMemoryModel, strategy_footprint
from .spec import GTX_TITAN, GPUSpec
from .trace import LevelTrace, RootTrace, RunTrace

__all__ = ["Device", "DeviceRun", "STRATEGIES"]

#: Strategy names accepted by :meth:`Device.run_bc`.
STRATEGIES = (
    WORK_EFFICIENT,
    EDGE_PARALLEL,
    VERTEX_PARALLEL,
    "hybrid",
    "sampling",
    "batched",
    GPU_FAN,
)


@dataclass
class DeviceRun:
    """Result of one simulated BC run."""

    bc: np.ndarray
    trace: RunTrace
    cycles: float
    seconds: float
    strategy: str
    spec: GPUSpec
    num_vertices: int
    num_edges: int
    roots: np.ndarray
    memory_report: dict = field(default_factory=dict)
    sampling_chose_edge_parallel: bool | None = None
    #: Cycles that do NOT scale with the root count when extrapolating
    #: (the sampling method's fixed classification phase).
    fixed_cycles: float = 0.0
    #: How many of ``roots`` were consumed by that fixed phase.
    fixed_roots: int = 0
    #: Roots each steady-state trace entry covers: 1 everywhere except
    #: the ``batched`` strategy, whose trace entries are whole batches.
    roots_per_trace: int = 1
    #: Degree-1 fold applied to this run (None when folding was off or
    #: the fold was the identity) — carries the digest the service
    #: layer keys results under.
    fold: FoldResult | None = None

    @property
    def num_roots(self) -> int:
        return int(self.roots.size)

    def teps(self) -> float:
        """Traversed edges per second for the roots actually run:
        ``m * k / t`` (Eq. 4 restricted to k sources)."""
        if self.seconds <= 0:
            return float("inf")
        return self.num_edges * self.num_roots / self.seconds

    def mteps(self) -> float:
        """:meth:`teps` in millions."""
        return self.teps() / 1e6

    def extrapolated_seconds(self, total_roots: int | None = None) -> float:
        """Estimated time for a run over ``total_roots`` sources
        (default: all n).

        Steady-state roots scale by their measured per-root mean over
        the device's SMs — valid because per-root cost is near-uniform
        within one component (paper Sections IV-C, V-D) — while the
        sampling method's classification phase is charged once as a
        fixed cost, exactly as in a real full-n run.
        """
        total = self.num_vertices if total_roots is None else int(total_roots)
        steady = [rt.cycles for rt in self.trace.roots[self.fixed_roots:]]
        if not steady:
            # Everything ran in the fixed phase; fall back to makespan
            # scaling over the whole sample.
            if self.num_roots == 0:
                return 0.0
            return self.seconds * total / self.num_roots
        mean = float(np.mean(steady))
        remaining = max(0, total - self.fixed_roots)
        # GPU-FAN dedicates the whole device to each root, so roots do
        # not overlap across SMs, and a batched trace entry is a whole
        # device-cooperative batch; every other layout processes
        # num_sms roots concurrently.
        if self.strategy in ("gpu-fan", "batched"):
            concurrency = max(1, int(self.roots_per_trace))
        else:
            concurrency = self.spec.num_sms
        cycles = self.fixed_cycles + remaining * mean / concurrency
        return self.spec.seconds(cycles)

    def extrapolated_teps(self, total_roots: int | None = None) -> float:
        """TEPS (Eq. 4) of the extrapolated ``total_roots``-source run."""
        t = self.extrapolated_seconds(total_roots)
        total = self.num_vertices if total_roots is None else int(total_roots)
        if t <= 0:
            return float("inf")
        return self.num_edges * total / t

    def extrapolated_mteps(self, total_roots: int | None = None) -> float:
        """:meth:`extrapolated_teps` in millions (Table III units)."""
        return self.extrapolated_teps(total_roots) / 1e6


def _run_root(*args, **kwargs):
    """Deferred import of the per-root engine (breaks the bc <-> gpusim
    import cycle: the engine needs the cost model's types, the device
    needs the engine's entry point)."""
    from ..bc.engine import run_root

    return run_root(*args, **kwargs)


class _RunObserver:
    """Threads SDC injection and ABFT verification through one run.

    Implements the engine's observer protocol (``after_forward`` /
    ``after_accumulation``): immediately after the forward sweep it
    fires any planned ``sigma``/``dist`` bit-flips for the current root
    position, after accumulation any ``delta`` flips — corruption
    strikes the *intermediate* arrays, exactly where a resident-memory
    upset would — then runs the policy's per-root invariant suite.  On
    the bare device path a violation raises
    :class:`~repro.errors.SilentCorruptionError`; there is no recovery
    story below the resilient driver, so a poisoned result must not be
    returned as healthy.
    """

    def __init__(self, device: "Device", g: CSRGraph,
                 policy: VerificationPolicy, metrics):
        self.device = device
        self.g = g
        self.policy = policy
        self.checker = RootChecker(policy, metrics) if policy.enabled else None
        self.metrics = metrics
        #: Sum of every accepted root's dependencies — the reference the
        #: final partial-BC checksum is validated against.
        self.expected_sum = 0.0
        #: Weighted-traversal context for degree-1 folded runs: the
        #: core's target-weight vector and (full runs only) the
        #: per-core-root source weights the engine pre-scales delta by.
        self.target_weights: np.ndarray | None = None
        self.source_weights: np.ndarray | None = None
        self._pos = 0
        self._events: list = []

    def _apply(self, events, site: str, arr: np.ndarray) -> None:
        hits = [ev for ev in events if ev.site == site]
        if not hits:
            return
        from ..resilience.faults import apply_sdc

        for ev in hits:
            apply_sdc(ev, arr, seed=self.device._sdc_seed())
            self.metrics.inc("verify.faults_injected", site=site)

    def after_forward(self, fwd) -> None:
        self._events = list(self.device._sdc_events(self._pos))
        self._apply(self._events, "sigma", fwd.sigma)
        self._apply(self._events, "dist", fwd.distances)

    def after_accumulation(self, fwd, delta: np.ndarray) -> None:
        self._apply(self._events, "delta", delta)
        self._events = []
        self._pos += 1
        if self.checker is not None and self.policy.checks_root(fwd.source):
            sw = (1.0 if self.source_weights is None
                  else float(self.source_weights[fwd.source]))
            t0 = time.perf_counter()
            violations = self.checker.check_root(
                self.g, fwd, delta, target_weights=self.target_weights,
                source_weight=sw)
            self.metrics.inc("verify.overhead_seconds",
                             time.perf_counter() - t0)
            if violations:
                self.metrics.inc("verify.corruption_detected", layer="device")
                raise SilentCorruptionError(violations, root=fwd.source)
        self.expected_sum += float(delta.sum())

    def finish(self, bc: np.ndarray) -> None:
        """Partial-BC injection + unit checksum, once per run (called
        before the undirected halving so the checksum reference and the
        vector are in the same units)."""
        self._apply(self.device._sdc_partial_events(), "partial", bc)
        if self.checker is not None:
            t0 = time.perf_counter()
            violations = self.checker.check_partial(bc, self.expected_sum)
            self.metrics.inc("verify.overhead_seconds",
                             time.perf_counter() - t0)
            if violations:
                self.metrics.inc("verify.corruption_detected", layer="device")
                raise SilentCorruptionError(violations)


def _list_schedule(costs_per_root, num_workers: int):
    """Greedy in-order list scheduling; returns (makespan, per-worker)."""
    workers = [0.0] * max(1, int(num_workers))
    heap = [(0.0, i) for i in range(len(workers))]
    heapq.heapify(heap)
    for c in costs_per_root:
        load, i = heapq.heappop(heap)
        load += float(c)
        workers[i] = load
        heapq.heappush(heap, (load, i))
    return max(workers), np.asarray(workers)


class Device:
    """A simulated GPU executing betweenness-centrality runs."""

    #: Multiplier on the run's simulated cycles; ``1.0`` on a healthy
    #: device.  :class:`repro.resilience.FaultyDevice` sets it per rank
    #: to model stragglers.
    straggler_factor: float = 1.0

    def __init__(self, spec: GPUSpec = GTX_TITAN, costs: CostModel = DEFAULT_COSTS):
        self.spec = spec
        self.costs = costs

    def _inject_faults(self, g: CSRGraph, roots: np.ndarray) -> None:
        """Fault-injection hook called at the top of :meth:`run_bc`.

        No-op on a healthy device; :class:`repro.resilience.FaultyDevice`
        overrides it to raise planned :class:`~repro.errors.RankFailure`
        or :class:`~repro.errors.DeviceOutOfMemoryError` faults."""

    # -- silent-corruption hooks (overridden by FaultyDevice) ----------
    def _sdc_pending(self) -> bool:
        """Whether any planned ``sdc`` events target this device."""
        return False

    def _sdc_events(self, root_pos: int) -> list:
        """Planned per-root bit-flips for the ``root_pos``-th root of
        this run (consumed on return)."""
        return []

    def _sdc_partial_events(self) -> list:
        """Planned bit-flips against this device's partial BC vector."""
        return []

    def _sdc_seed(self) -> int:
        """Seed the SDC victim-selection RNG derives from."""
        return 0

    # ------------------------------------------------------------------
    def run_bc(
        self,
        g: CSRGraph,
        strategy: str = "sampling",
        roots=None,
        *,
        alpha: int | None = None,
        beta: int | None = None,
        n_samps: int = DEFAULT_N_SAMPS,
        gamma: float = DEFAULT_GAMMA,
        min_frontier: int = DEFAULT_MIN_FRONTIER,
        batch_size: int = 64,
        strict_reader: bool = False,
        check_memory: bool = True,
        metrics=None,
        verify="off",
        fold: bool | FoldResult = True,
    ) -> DeviceRun:
        """Run BC on the device under ``strategy``.

        Parameters
        ----------
        roots:
            Sources to process (all vertices by default).  Experiments
            on large graphs pass a sample and extrapolate via
            :meth:`DeviceRun.extrapolated_seconds`.
        alpha, beta:
            Hybrid thresholds (Algorithm 4); defaults 768 / 512.
        n_samps, gamma, min_frontier:
            Sampling parameters (Algorithm 5); defaults 512 / 4 / 512.
        batch_size:
            Roots per frontier-matrix step of the ``batched`` strategy
            (Sarıyüce-style multi-source traversal; reference [33]).
            The strategy classifies depth with its first ``n_samps``
            roots exactly like Algorithm 5 and routes the remainder
            through whole-device batch traversals only when the sampled
            median depth is below the ``gamma`` cutoff (small-diameter
            graphs — dense frontiers, BLAS-shaped work); deep graphs
            fall back to per-root work-efficient traversal.
        fold:
            Apply the degree-1 folding preprocess before traversal (on
            by default; exact — see :mod:`repro.bc.preprocess`).  Pass
            ``False`` for the original graph, or a precomputed
            :class:`~repro.bc.preprocess.FoldResult` to skip
            re-folding.  Identity folds (directed or pendant-free
            graphs) take the legacy path unchanged.  When a non-trivial
            fold is active every strategy traverses the residual core
            (weighted traversals; per-root host traversals for explicit
            ``roots``), trace entries are in core vertex ids, and
            :meth:`DeviceRun.extrapolated_seconds` extrapolates in
            core-traversal units.
        strict_reader:
            Model the Jia et al. reference reader, which rejects graphs
            containing isolated vertices (Section V-B) — only honoured
            for the vertex-/edge-parallel baselines.
        check_memory:
            Allocate all device structures first and raise
            :class:`DeviceOutOfMemoryError` if they exceed capacity.
        metrics:
            Optional :class:`~repro.observability.MetricsRegistry`.
            Records ``device.*`` series (roots, cycles, makespan, bytes
            allocated) plus the per-level ``engine.*`` series of every
            root, inside a ``device.run_bc`` span, and the run's
            decision-trace events (``run.params``, per-level
            ``decision.*``, the sampling classification).  Export the
            finished trace with :func:`repro.observability.run_profile`
            (kernel profile) or
            :func:`repro.observability.trace_document` (decision audit)
            — one run, two exporters.
        verify:
            A :class:`~repro.verify.VerificationPolicy`, a mode string
            (``"off"``/``"sampled"``/``"paranoid"``), or ``None``.
            When enabled, each root's forward/accumulation state passes
            the ABFT invariant suite and the final partial BC vector is
            checksummed; a violation raises
            :class:`~repro.errors.SilentCorruptionError`.
        """
        if metrics is None:
            metrics = NULL_REGISTRY
        if strategy not in STRATEGIES:
            raise StrategyError(
                f"unknown strategy {strategy!r}; known: {STRATEGIES}"
            )
        n = g.num_vertices
        full_run = roots is None
        if roots is None:
            roots = np.arange(n, dtype=np.int64)
        else:
            roots = np.asarray(roots, dtype=np.int64).ravel()
            if roots.size and (roots.min() < 0 or roots.max() >= n):
                raise IndexError("roots out of range")

        self._inject_faults(g, roots)

        if strict_reader and strategy in (EDGE_PARALLEL, VERTEX_PARALLEL):
            isolated = g.isolated_vertices()
            if isolated.size:
                raise GraphFormatError(
                    f"reference reader cannot load graphs with isolated "
                    f"vertices ({isolated.size} present)"
                )

        # -- degree-1 folding: pick the graph the kernels traverse -----
        fold_result: FoldResult | None = None
        if isinstance(fold, FoldResult):
            fold_result = fold
        elif fold:
            fold_result = fold_degree_one(g)
        folded = fold_result is not None and not fold_result.is_identity
        if folded:
            run_g = fold_result.core
            target_weights = fold_result.core_weights
            if full_run:
                # Every core root once, weighted by its absorbed
                # subtree; credits close the folded vertices' scores.
                run_roots = np.arange(run_g.num_vertices, dtype=np.int64)
                source_weights = target_weights
                post_extra = fold_result.credit
            else:
                # Explicit roots: one weighted traversal from each
                # root's residual host plus its closed-form correction.
                run_roots = np.empty(roots.size, dtype=np.int64)
                post_extra = np.zeros(n, dtype=np.float64)
                for i, a in enumerate(roots):
                    cr, corr = per_root_correction(fold_result, int(a))
                    run_roots[i] = cr
                    post_extra += corr
                source_weights = None
        else:
            run_g = g
            run_roots = roots
            target_weights = None
            source_weights = None
            post_extra = None

        memory_report: dict = {}
        if check_memory:
            mem = DeviceMemoryModel(capacity=self.spec.memory_bytes)
            footprint = strategy_footprint(
                run_g, self._memory_strategy(strategy),
                num_blocks=self.spec.num_sms, batch_size=batch_size,
            )
            for what, nbytes in footprint.items():
                mem.alloc(nbytes, what)
            memory_report = mem.report()

        bc = np.zeros(run_g.num_vertices, dtype=np.float64)
        chunk = self.spec.concurrent_threads_per_sm

        verify_policy = VerificationPolicy.coerce(verify)
        observer = None
        if verify_policy.enabled or self._sdc_pending():
            observer = _RunObserver(self, run_g, verify_policy, metrics)
            observer.target_weights = target_weights
            observer.source_weights = source_weights

        params = {"strategy": strategy, "device": self.spec.name,
                  "num_vertices": int(n), "num_edges": int(g.num_edges),
                  "num_roots": int(roots.size)}
        if strategy == "hybrid":
            params["alpha"] = int(alpha if alpha is not None
                                  else HybridPolicy().alpha)
            params["beta"] = int(beta if beta is not None
                                 else HybridPolicy().beta)
        elif strategy == "sampling":
            params.update(n_samps=int(n_samps), gamma=float(gamma),
                          min_frontier=int(min_frontier))
        elif strategy == "batched":
            params.update(n_samps=int(n_samps), gamma=float(gamma),
                          batch_size=int(batch_size))
        if folded:
            params.update(folded=True,
                          core_vertices=int(run_g.num_vertices),
                          folded_vertices=int(fold_result.num_folded),
                          fold_rounds=int(fold_result.rounds),
                          fold_digest=fold_result.digest(),
                          core_traversals=int(run_roots.size))
        metrics.record("run.params", **params)

        fixed_cycles = 0.0
        fixed_roots = 0
        roots_per_trace = 1
        with metrics.span("device.run_bc", strategy=strategy,
                          device=self.spec.name):
            if strategy == GPU_FAN:
                run = self._run_gpu_fan(run_g, run_roots, bc, chunk, metrics,
                                        observer=observer,
                                        target_weights=target_weights,
                                        source_weights=source_weights)
            elif strategy == "sampling":
                run = self._run_sampling(run_g, run_roots, bc, chunk, n_samps,
                                         gamma, min_frontier, metrics,
                                         observer=observer,
                                         target_weights=target_weights,
                                         source_weights=source_weights)
                fixed_cycles = run[3]
                fixed_roots = run[4]
                run = run[:3]
            elif strategy == "batched":
                run = self._run_batched(run_g, run_roots, bc, chunk, n_samps,
                                        gamma, batch_size, metrics,
                                        observer=observer,
                                        target_weights=target_weights,
                                        source_weights=source_weights)
                fixed_cycles = run[3]
                fixed_roots = run[4]
                run = run[:3]
                roots_per_trace = int(batch_size)
            else:
                policy_factory = self._policy_factory(strategy, alpha, beta)
                run = self._run_coarse(run_g, run_roots, bc, chunk,
                                       policy_factory, metrics,
                                       observer=observer,
                                       target_weights=target_weights,
                                       source_weights=source_weights)
            if observer is not None:
                observer.finish(bc)

        trace, makespan, extra = run
        if folded:
            bc = fold_result.expand(bc) + post_extra
        slow = float(self.straggler_factor)
        if slow != 1.0:
            makespan *= slow
            fixed_cycles *= slow
            trace.makespan_cycles = makespan
        if g.undirected:
            bc /= 2.0
        metrics.inc("device.runs", strategy=strategy)
        metrics.inc("device.roots", roots.size, strategy=strategy)
        metrics.inc("device.cycles", makespan, strategy=strategy)
        metrics.inc("device.bytes_allocated",
                    sum(memory_report.values()), strategy=strategy)
        metrics.set_gauge("device.makespan_cycles", makespan, strategy=strategy)
        metrics.set_gauge("device.sim_seconds", self.spec.seconds(makespan),
                          strategy=strategy)
        for rt in trace.roots:
            metrics.observe("device.root_cycles", rt.cycles, strategy=strategy)
        return DeviceRun(
            bc=bc,
            trace=trace,
            cycles=makespan,
            seconds=self.spec.seconds(makespan),
            strategy=strategy,
            spec=self.spec,
            num_vertices=n,
            num_edges=g.num_edges,
            roots=roots,
            memory_report=memory_report,
            sampling_chose_edge_parallel=extra,
            fixed_cycles=fixed_cycles,
            fixed_roots=fixed_roots,
            roots_per_trace=roots_per_trace,
            fold=fold_result if folded else None,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _memory_strategy(strategy: str) -> str:
        """Map run strategies to memory-footprint classes."""
        if strategy in ("hybrid", "sampling"):
            return WORK_EFFICIENT
        return strategy

    @staticmethod
    def _source_weight(source_weights, s) -> float:
        return (1.0 if source_weights is None
                else float(source_weights[int(s)]))

    @staticmethod
    def _policy_factory(strategy: str, alpha, beta):
        if strategy == WORK_EFFICIENT:
            return lambda: FixedPolicy(WORK_EFFICIENT)
        if strategy == EDGE_PARALLEL:
            return lambda: FixedPolicy(EDGE_PARALLEL)
        if strategy == VERTEX_PARALLEL:
            return lambda: FixedPolicy(VERTEX_PARALLEL)
        if strategy == "hybrid":
            kw = {}
            if alpha is not None:
                kw["alpha"] = alpha
            if beta is not None:
                kw["beta"] = beta
            return lambda: HybridPolicy(**kw)
        raise StrategyError(f"no policy for {strategy!r}")

    def _run_coarse(self, g, roots, bc, chunk, policy_factory,
                    metrics=NULL_REGISTRY, observer=None,
                    target_weights=None, source_weights=None):
        """Jia-style layout: blocks pull roots; makespan scheduling."""
        trace = RunTrace()
        for s in roots:
            trace.roots.append(
                _run_root(g, int(s), bc, policy_factory(), self.costs, chunk,
                          metrics=metrics, observer=observer,
                          source_weight=self._source_weight(source_weights, s),
                          target_weights=target_weights)
            )
        makespan, per_sm = _list_schedule(
            [rt.cycles for rt in trace.roots], self.spec.num_sms
        )
        trace.makespan_cycles = makespan
        trace.sm_cycles = per_sm
        return trace, makespan, None

    def _run_gpu_fan(self, g, roots, bc, chunk, metrics=NULL_REGISTRY,
                     observer=None, target_weights=None, source_weights=None):
        """GPU-FAN layout: whole device per root, roots sequential."""
        trace = RunTrace()
        device_chunk = self.spec.total_threads
        policy = FixedPolicy(GPU_FAN)
        for s in roots:
            trace.roots.append(
                _run_root(g, int(s), bc, policy, self.costs, chunk,
                         device_chunk=device_chunk, metrics=metrics,
                         observer=observer,
                         source_weight=self._source_weight(source_weights, s),
                         target_weights=target_weights)
            )
        makespan = trace.total_root_cycles
        trace.makespan_cycles = makespan
        trace.sm_cycles = np.full(self.spec.num_sms, makespan)
        return trace, makespan, None

    def _run_sampling(self, g, roots, bc, chunk, n_samps, gamma, min_frontier,
                      metrics=NULL_REGISTRY, observer=None,
                      target_weights=None, source_weights=None):
        """Algorithm 5: classify with the first ``n_samps`` roots, then
        finish with the selected method."""
        trace = RunTrace()
        k = min(int(n_samps), roots.size)
        phase1 = roots[:k]
        phase2 = roots[k:]
        we = FixedPolicy(WORK_EFFICIENT)
        for s in phase1:
            trace.roots.append(_run_root(
                g, int(s), bc, we, self.costs, chunk,
                metrics=metrics, observer=observer,
                source_weight=self._source_weight(source_weights, s),
                target_weights=target_weights))
        makespan1, _ = _list_schedule(
            [rt.cycles for rt in trace.roots], self.spec.num_sms
        )
        depths = [rt.max_depth for rt in trace.roots]
        classification = classification_record(depths, g.num_vertices,
                                               gamma=gamma)
        use_ep = classification["chose_edge_parallel"]
        metrics.inc("device.sampling_classifications",
                    chose="edge-parallel" if use_ep else "work-efficient")
        metrics.record("decision.sampling", min_frontier=int(min_frontier),
                       **classification)
        phase2_start = len(trace.roots)
        for s in phase2:
            policy = (FrontierGuardPolicy(min_frontier) if use_ep
                      else FixedPolicy(WORK_EFFICIENT))
            trace.roots.append(_run_root(
                g, int(s), bc, policy, self.costs, chunk,
                metrics=metrics, observer=observer,
                source_weight=self._source_weight(source_weights, s),
                target_weights=target_weights))
        makespan2, per_sm = _list_schedule(
            [rt.cycles for rt in trace.roots[phase2_start:]], self.spec.num_sms
        )
        makespan = makespan1 + makespan2
        trace.makespan_cycles = makespan
        trace.sm_cycles = per_sm
        return trace, makespan, use_ep, makespan1, int(phase1.size)

    def _run_batched(self, g, roots, bc, chunk, n_samps, gamma, batch_size,
                     metrics=NULL_REGISTRY, observer=None,
                     target_weights=None, source_weights=None):
        """Sarıyüce-style multi-source strategy (reference [33]).

        Classification mirrors Algorithm 5: the first ``n_samps`` roots
        run work-efficient and their median BFS depth decides.  A
        *small* sampled diameter (the same γ-cutoff that would pick the
        edge-parallel kernel) means dense frontiers and few steps —
        ideal for routing the remaining roots through whole-device
        frontier-matrix traversals, ``batch_size`` roots per step.
        Deep graphs, and runs carrying an SDC/verification observer
        (whose ABFT suite is per-root by construction), finish
        per-root work-efficient instead; both the classification and
        that fallback are recorded in the ``repro.trace/v1`` stream.
        """
        trace = RunTrace()
        k = min(int(n_samps), roots.size)
        phase1 = roots[:k]
        phase2 = roots[k:]
        we = FixedPolicy(WORK_EFFICIENT)
        for s in phase1:
            trace.roots.append(_run_root(
                g, int(s), bc, we, self.costs, chunk,
                metrics=metrics, observer=observer,
                source_weight=self._source_weight(source_weights, s),
                target_weights=target_weights))
        makespan1, _ = _list_schedule(
            [rt.cycles for rt in trace.roots], self.spec.num_sms
        )
        depths = [rt.max_depth for rt in trace.roots]
        classification = classification_record(depths, g.num_vertices,
                                               gamma=gamma)
        use_batched = bool(classification["chose_edge_parallel"])
        per_root_fallback = observer is not None
        metrics.inc("device.batched_classifications",
                    chose="batched" if use_batched and not per_root_fallback
                    else "work-efficient")
        metrics.record("decision.batched", batch_size=int(batch_size),
                       verified_per_root=bool(per_root_fallback),
                       **classification)
        phase2_start = len(trace.roots)
        device_chunk = self.spec.total_threads
        makespan2 = 0.0
        if use_batched and not per_root_fallback and phase2.size:
            from ..bc.batched import _adjacency, batched_dependencies

            A = _adjacency(g)
            serial_cycles = 0.0
            fallback_cycles: list = []
            for lo in range(0, phase2.size, int(batch_size)):
                batch = phase2[lo:lo + int(batch_size)]
                rep = int(batch[0])
                rt = RootTrace(root=rep)

                def on_level(depth, pairs, epairs, rt=rt):
                    cycles = self.costs.batched_forward(epairs, device_chunk)
                    rt.add(LevelTrace(depth=depth, stage="forward",
                                      strategy="batched",
                                      frontier_size=int(pairs),
                                      edge_frontier=int(epairs),
                                      cycles=cycles))
                    metrics.inc("engine.levels", stage="forward",
                                strategy="batched")
                    metrics.inc("engine.frontier_vertices", pairs,
                                stage="forward")
                    metrics.inc("engine.frontier_edges", epairs,
                                stage="forward")
                    metrics.inc("engine.cycles", cycles, stage="forward",
                                strategy="batched")
                    metrics.observe("engine.frontier_size", pairs,
                                    stage="forward")

                try:
                    delta = batched_dependencies(
                        g, batch, A=A, target_weights=target_weights,
                        on_level=on_level)
                except FloatingPointError:
                    # Deep traversal overflowed the dense path counts;
                    # the per-root engine rescales sigma per level.
                    metrics.inc("batched.overflow_retries")
                    for s in batch:
                        sub = _run_root(
                            g, int(s), bc, FixedPolicy(WORK_EFFICIENT),
                            self.costs, chunk, metrics=metrics,
                            observer=observer,
                            source_weight=self._source_weight(
                                source_weights, s),
                            target_weights=target_weights)
                        trace.roots.append(sub)
                        fallback_cycles.append(sub.cycles)
                    continue
                # Decision audit: one record per executed forward level
                # (the batch's representative root carries the trace).
                metrics.record("decision.initial", root=rep,
                               applies_to_depth=0, strategy="batched",
                               policy="batched",
                               rule=f"sampled median depth "
                                    f"{classification['median_depth']} <= "
                                    f"cutoff — {int(batch.size)} roots per "
                                    f"frontier-matrix step",
                               batch_roots=int(batch.size),
                               median_depth=classification["median_depth"],
                               depth_cutoff=classification["depth_cutoff"])
                fls = rt.forward_levels()
                for lv in fls:
                    if lv.depth >= 1:
                        metrics.record("decision.step", root=rep,
                                       depth=int(lv.depth) - 1,
                                       applies_to_depth=int(lv.depth),
                                       previous="batched",
                                       strategy="batched", policy="batched",
                                       rule="batch advances one "
                                            "frontier-matrix step",
                                       batch_roots=int(batch.size))
                # Backward levels mirror the forward ones (each level
                # scans its own rows' edges, transposed product).
                by_depth = {lv.depth: lv for lv in fls}
                for depth in range(max(by_depth) - 1, 0, -1):
                    lv = by_depth[depth]
                    cycles = self.costs.batched_backward(lv.edge_frontier,
                                                         device_chunk)
                    rt.add(LevelTrace(depth=depth, stage="backward",
                                      strategy="batched",
                                      frontier_size=lv.frontier_size,
                                      edge_frontier=lv.edge_frontier,
                                      cycles=cycles))
                    metrics.inc("engine.levels", stage="backward",
                                strategy="batched")
                    metrics.inc("engine.cycles", cycles, stage="backward",
                                strategy="batched")
                trace.roots.append(rt)
                serial_cycles += rt.cycles
                metrics.inc("engine.roots", batch.size)
                if source_weights is None:
                    bc += delta.sum(axis=0)
                else:
                    bc += (np.asarray(source_weights)[batch][:, None]
                           * delta).sum(axis=0)
            # Batches own the whole device sequentially; any overflow
            # retries run per-SM alongside.
            retry_makespan, _ = _list_schedule(fallback_cycles,
                                               self.spec.num_sms)
            makespan2 = serial_cycles + retry_makespan
            per_sm = np.full(self.spec.num_sms, makespan2)
        else:
            for s in phase2:
                trace.roots.append(_run_root(
                    g, int(s), bc, FixedPolicy(WORK_EFFICIENT), self.costs,
                    chunk, metrics=metrics, observer=observer,
                    source_weight=self._source_weight(source_weights, s),
                    target_weights=target_weights))
            makespan2, per_sm = _list_schedule(
                [rt.cycles for rt in trace.roots[phase2_start:]],
                self.spec.num_sms
            )
        makespan = makespan1 + makespan2
        trace.makespan_cycles = makespan
        trace.sm_cycles = per_sm
        chose = use_batched and not per_root_fallback
        return trace, makespan, chose, makespan1, int(phase1.size)
