"""Simulated GPU substrate: specs, cost model, memory ledger, device."""

from .cost import DEFAULT_COSTS, CostModel
from .device import STRATEGIES, Device, DeviceRun
from .memory import (
    FLOAT_BYTES,
    INT_BYTES,
    DeviceMemoryModel,
    graph_footprint,
    strategy_footprint,
)
from .spec import GTX_TITAN, TESLA_M2090, GPUSpec
from .trace import LevelTrace, RootTrace, RunTrace

__all__ = [
    "CostModel",
    "DEFAULT_COSTS",
    "Device",
    "DeviceRun",
    "STRATEGIES",
    "DeviceMemoryModel",
    "graph_footprint",
    "strategy_footprint",
    "INT_BYTES",
    "FLOAT_BYTES",
    "GPUSpec",
    "GTX_TITAN",
    "TESLA_M2090",
    "LevelTrace",
    "RootTrace",
    "RunTrace",
]
