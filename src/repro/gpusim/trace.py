"""Execution traces produced by the simulated kernels.

Traces carry, per BFS level: the vertex-frontier size (Figure 3), the
edge-frontier size (Table I), the strategy that processed the level
(hybrid switching behaviour), and the cycles charged — which is what
Table I correlates frontier sizes against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LevelTrace", "RootTrace", "RunTrace"]


@dataclass(frozen=True)
class LevelTrace:
    """One kernel iteration (one BFS level, one stage)."""

    depth: int
    stage: str  # "forward" or "backward"
    strategy: str  # "work-efficient" | "edge-parallel" | "vertex-parallel" | "gpu-fan"
    frontier_size: int
    edge_frontier: int
    cycles: float


@dataclass
class RootTrace:
    """All iterations of one BC root (shortest paths + accumulation)."""

    root: int
    levels: list = field(default_factory=list)

    def add(self, level: LevelTrace) -> None:
        self.levels.append(level)

    @property
    def cycles(self) -> float:
        """Total cycles this root cost on its SM."""
        return float(sum(lv.cycles for lv in self.levels))

    @property
    def max_depth(self) -> int:
        """Deepest forward level (the BFS depth Algorithm 5 samples)."""
        forward = [lv.depth for lv in self.levels if lv.stage == "forward"]
        return max(forward, default=0)

    def forward_levels(self) -> list:
        return [lv for lv in self.levels if lv.stage == "forward"]

    def vertex_frontier_sizes(self) -> np.ndarray:
        """Vertex-frontier series for this root (Figure 3)."""
        return np.array([lv.frontier_size for lv in self.forward_levels()],
                        dtype=np.int64)

    def edge_frontier_sizes(self) -> np.ndarray:
        """Edge-frontier series for this root (Table I)."""
        return np.array([lv.edge_frontier for lv in self.forward_levels()],
                        dtype=np.int64)

    def forward_cycles(self) -> np.ndarray:
        """Per-forward-level cycle series (Table I's elapsed times)."""
        return np.array([lv.cycles for lv in self.forward_levels()], dtype=np.float64)

    def strategies_used(self) -> list:
        """Distinct strategies across levels, in first-use order."""
        seen: list = []
        for lv in self.levels:
            if lv.strategy not in seen:
                seen.append(lv.strategy)
        return seen

    def strategy_by_depth(self) -> dict:
        """``{depth: strategy}`` over the forward sweep — the recorded
        strategy sequence the decision-trace audit is verified against
        (backward levels reuse the forward level's strategy by
        construction, so the forward map is the whole story)."""
        return {int(lv.depth): lv.strategy for lv in self.forward_levels()}


@dataclass
class RunTrace:
    """A whole device run: per-root traces plus schedule outcome."""

    roots: list = field(default_factory=list)  # list[RootTrace]
    makespan_cycles: float = 0.0
    sm_cycles: np.ndarray | None = None  # per-SM busy cycles

    @property
    def total_root_cycles(self) -> float:
        """Sum of per-root costs (ignores scheduling; = serial time)."""
        return float(sum(rt.cycles for rt in self.roots))

    def max_depths(self) -> np.ndarray:
        """Per-root max BFS depths (what Algorithm 5's median inspects)."""
        return np.array([rt.max_depth for rt in self.roots], dtype=np.int64)
