"""Device memory ledger.

Models the 6 GB GDDR5 of the paper's GPUs so the scalability
differences of Section III-B / Figure 5 fall out naturally:

* **GPU-FAN** keeps an O(n^2) predecessor matrix -> out-of-memory well
  below a million vertices;
* **Jia et al.** keep an O(m) predecessor array per thread block;
* **the paper's approach** keeps only O(n) per block, so the graph
  itself becomes the limit.

Element widths mirror the CUDA implementations (32-bit ints/floats).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DeviceOutOfMemoryError
from ..graph.csr import CSRGraph

__all__ = [
    "DeviceMemoryModel",
    "INT_BYTES",
    "FLOAT_BYTES",
    "graph_footprint",
    "strategy_footprint",
]

INT_BYTES = 4
FLOAT_BYTES = 4


@dataclass
class DeviceMemoryModel:
    """Tracks simulated device allocations against a fixed capacity."""

    capacity: int
    allocations: dict = field(default_factory=dict)

    @property
    def in_use(self) -> int:
        """Total bytes currently allocated."""
        return sum(self.allocations.values())

    @property
    def free(self) -> int:
        """Remaining capacity in bytes."""
        return self.capacity - self.in_use

    def alloc(self, nbytes: int, what: str) -> None:
        """Record an allocation, raising :class:`DeviceOutOfMemoryError`
        when the capacity would be exceeded."""
        nbytes = int(nbytes)
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if nbytes > self.free:
            raise DeviceOutOfMemoryError(nbytes, self.in_use, self.capacity, what)
        self.allocations[what] = self.allocations.get(what, 0) + nbytes

    def free_all(self) -> None:
        """Release every allocation (end of a run)."""
        self.allocations.clear()

    def report(self) -> dict:
        """Snapshot of the allocation ledger (bytes by label)."""
        return dict(self.allocations)


def graph_footprint(g: CSRGraph) -> int:
    """Bytes for the CSR arrays on the device (32-bit entries)."""
    return (g.num_vertices + 1) * INT_BYTES + g.num_directed_edges * INT_BYTES


def strategy_footprint(g: CSRGraph, strategy: str, num_blocks: int,
                       batch_size: int = 64) -> dict:
    """Per-label device bytes required by a BC strategy.

    ``strategy`` is one of ``work-efficient``, ``hybrid``, ``sampling``,
    ``edge-parallel``, ``vertex-parallel`` (all Jia-style: coarse
    parallelism with ``num_blocks`` concurrent roots), ``gpu-fan``
    (fine-grained only: one root at a time, O(n^2) predecessors) or
    ``batched`` (Sarıyüce-style multi-source: dense ``(batch_size, n)``
    frontier matrices shared by the whole device).
    """
    n, m_dir = g.num_vertices, g.num_directed_edges
    out = {"graph CSR": graph_footprint(g),
           "bc scores": n * FLOAT_BYTES}
    # d, sigma, delta are needed by every method, per concurrent root.
    per_root_core = 3 * n * (INT_BYTES + FLOAT_BYTES) // 2  # d int + sigma/delta float
    if strategy in ("work-efficient", "hybrid", "sampling"):
        # + Q_curr, Q_next, S, ends: all O(n) ints (Algorithm 1).
        per_root = per_root_core + 4 * n * INT_BYTES
        out["per-block locals (O(n))"] = per_root * num_blocks
    elif strategy in ("edge-parallel", "vertex-parallel"):
        # + O(m) boolean predecessor array per block (Jia et al.).
        per_root = per_root_core + m_dir * 1
        out["per-block locals (O(m) preds)"] = per_root * num_blocks
    elif strategy == "batched":
        # Dense multi-source state: d int + sigma/delta floats per
        # (root, vertex) pair, plus one product buffer, device-wide.
        out["batched frontier matrices (O(k n))"] = (
            batch_size * n * (INT_BYTES + 3 * FLOAT_BYTES)
        )
        # Classification phase runs per-block work-efficient roots.
        out["per-block locals (O(n))"] = (
            (per_root_core + 4 * n * INT_BYTES) * num_blocks
        )
    elif strategy == "gpu-fan":
        # Single root at a time, but an O(n^2) predecessor matrix
        # (1 byte per entry; the cliff of Figure 5).
        out["gpu-fan predecessor matrix (O(n^2))"] = n * n
        out["per-root locals"] = per_root_core
    else:
        raise ValueError(f"unknown strategy {strategy!r}")
    return out
