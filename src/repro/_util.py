"""Small vectorised helpers shared across the package.

These are the NumPy idioms that replace the inner loops a CUDA kernel
would run: gathering the concatenated adjacency lists of a vertex
frontier, and computing per-chunk maxima used by the load-imbalance
(warp/block serialisation) cost model.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "concat_ranges",
    "chunk_max_sum",
    "chunk_sum_of_max",
    "as_index_array",
    "check_nonnegative_int",
]


def concat_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Return ``concatenate([arange(s, s+c) for s, c in zip(starts, counts)])``.

    This is the standard cumulative-sum trick for expanding CSR row slices
    without a Python-level loop; it is the workhorse of the frontier
    expansion step (gathering all neighbours of all frontier vertices at
    once).

    Parameters
    ----------
    starts, counts:
        Equal-length integer arrays. ``counts`` entries may be zero.

    Returns
    -------
    numpy.ndarray of int64 with ``counts.sum()`` elements.
    """
    starts = np.asarray(starts, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    if starts.shape != counts.shape:
        raise ValueError("starts and counts must have the same shape")
    if counts.size == 0:
        return np.empty(0, dtype=np.int64)
    if np.any(counts < 0):
        raise ValueError("counts must be non-negative")
    nz = counts > 0
    if not np.any(nz):
        return np.empty(0, dtype=np.int64)
    starts = starts[nz]
    counts = counts[nz]
    total = int(counts.sum())
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    cum = np.cumsum(counts)
    # At each range boundary, jump from the end of the previous range to
    # the start of the next one.
    out[cum[:-1]] = starts[1:] - (starts[:-1] + counts[:-1] - 1)
    return np.cumsum(out)


def chunk_max_sum(weights: np.ndarray, chunk: int) -> int:
    """Sum of per-chunk maxima of ``weights`` split into chunks of ``chunk``.

    Models serialised execution of a group of ``chunk`` concurrent threads
    where each thread performs ``weights[i]`` sequential units of work:
    the group finishes when its slowest thread does, so the total time of
    all groups is the sum of per-group maxima.  An empty ``weights`` costs
    zero.
    """
    weights = np.asarray(weights)
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    k = weights.size
    if k == 0:
        return 0
    pad = (-k) % chunk
    if pad:
        weights = np.concatenate([weights, np.zeros(pad, dtype=weights.dtype)])
    return int(weights.reshape(-1, chunk).max(axis=1).sum())


def chunk_sum_of_max(weights: np.ndarray, chunk: int) -> int:
    """Alias kept for readability at call sites (same as :func:`chunk_max_sum`)."""
    return chunk_max_sum(weights, chunk)


def as_index_array(x, n: int, name: str = "indices") -> np.ndarray:
    """Validate and convert ``x`` to an int64 array of vertex ids < ``n``."""
    arr = np.asarray(x, dtype=np.int64).ravel()
    if arr.size and (arr.min() < 0 or arr.max() >= n):
        raise IndexError(f"{name} out of range [0, {n})")
    return arr


def check_nonnegative_int(value, name: str) -> int:
    """Return ``value`` as a non-negative ``int`` or raise ``ValueError``."""
    iv = int(value)
    if iv < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")
    return iv
