"""Per-root execution engine: values + cost charging + tracing.

One call to :func:`run_root` performs the full Brandes computation for
one source (shortest-path stage then dependency accumulation),
accumulates the dependencies into a shared ``bc`` array, and returns a
:class:`~repro.gpusim.trace.RootTrace` whose per-level cycle charges
come from the cost model under the strategy the policy selected for
each iteration.

Every strategy computes identical values — the strategies differ only
in the thread-to-work assignment being costed — so correctness is
verified once against the serial reference and literal kernel
re-implementations, while performance comparisons come from the
charged cycles.
"""

from __future__ import annotations

import numpy as np

from ..errors import StrategyError
from ..graph.csr import CSRGraph
from ..gpusim.cost import CostModel
from ..gpusim.trace import LevelTrace, RootTrace
from ..observability.registry import NULL_REGISTRY
from .accumulation import accumulate_level
from .frontier import forward_sweep
from .policies import (
    EDGE_PARALLEL,
    GPU_FAN,
    VERTEX_PARALLEL,
    WORK_EFFICIENT,
    Policy,
)

__all__ = ["run_root"]


def run_root(
    g: CSRGraph,
    source: int,
    bc: np.ndarray,
    policy: Policy,
    costs: CostModel,
    chunk: int,
    device_chunk: int | None = None,
    metrics=None,
    observer=None,
    source_weight: float = 1.0,
    target_weights: np.ndarray | None = None,
) -> RootTrace:
    """Process one BC root under ``policy``, charging ``costs``.

    Parameters
    ----------
    bc:
        Shared accumulator; this root's dependencies are added in place
        (the per-GPU partial score vector of Section V-D).
    chunk:
        Effective concurrent threads of one SM (thread block width the
        serialisation model chunks against).
    device_chunk:
        Device-wide concurrency, required for the ``gpu-fan`` strategy
        (all SMs cooperate on a single root).
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`; records
        per-level ``engine.*`` counters (frontier/edge counts, cycles,
        strategy chosen per level) and ``decision.*`` trace events (the
        policy's per-iteration strategy selections with their full α/β
        inputs, consumed by :mod:`repro.observability.trace`).  Defaults
        to the no-op registry, so uninstrumented runs pay nothing.
    observer:
        Optional hook with ``after_forward(fwd)`` and
        ``after_accumulation(fwd, delta)`` methods, called after the
        forward sweep and after dependency accumulation (before the
        dependencies are folded into ``bc``).  Used by the SDC
        verification layer to inject faults into, and run ABFT checks
        over, this root's intermediate state.
    source_weight / target_weights:
        Weighted-traversal parameters for degree-1 folded cores (see
        :mod:`repro.bc.preprocess`): each target vertex counts
        ``target_weights[t]`` times during accumulation, and the whole
        dependency vector is scaled by ``source_weight`` (the root's
        absorbed subtree weight) before it is folded into ``bc``.  The
        defaults reproduce the classic unweighted traversal exactly.
    """
    if metrics is None:
        metrics = NULL_REGISTRY
    n = g.num_vertices
    m_dir = g.num_directed_edges
    deg = g.degrees
    trace = RootTrace(root=int(source))
    strategy_by_depth: dict[int, str] = {}

    def _forward_cost(strategy: str, frontier: np.ndarray, ef: int) -> float:
        fdeg = deg[frontier]
        if strategy == WORK_EFFICIENT:
            return costs.we_forward(fdeg, chunk)
        if strategy == EDGE_PARALLEL:
            return costs.ep_forward(m_dir, ef, chunk)
        if strategy == VERTEX_PARALLEL:
            masked = np.zeros(n, dtype=np.int64)
            masked[frontier] = fdeg
            return costs.vp_forward(n, masked, chunk)
        if strategy == GPU_FAN:
            if device_chunk is None:
                raise StrategyError("gpu-fan strategy requires device_chunk")
            return costs.gpu_fan_forward(m_dir, ef, device_chunk)
        raise StrategyError(f"unknown strategy {strategy!r}")

    def _backward_cost(strategy: str, level: np.ndarray, ef: int) -> float:
        ldeg = deg[level]
        if strategy == WORK_EFFICIENT:
            return costs.we_backward(ldeg, chunk)
        if strategy == EDGE_PARALLEL:
            return costs.ep_backward(m_dir, ef, chunk)
        if strategy == VERTEX_PARALLEL:
            masked = np.zeros(n, dtype=np.int64)
            masked[level] = ldeg
            return costs.vp_backward(n, masked, chunk)
        if strategy == GPU_FAN:
            return costs.gpu_fan_backward(m_dir, ef, device_chunk)
        raise StrategyError(f"unknown strategy {strategy!r}")

    initial = policy.initial_decision()
    state = {"strategy": initial.strategy}
    metrics.record("decision.initial", root=int(source),
                   applies_to_depth=0, strategy=initial.strategy,
                   policy=initial.policy, rule=initial.rule,
                   **initial.inputs)

    def on_forward_level(depth: int, frontier: np.ndarray, q_next_len: int) -> None:
        strategy = state["strategy"]
        ef = int(deg[frontier].sum())
        cycles = _forward_cost(strategy, frontier, ef)
        trace.add(LevelTrace(depth=depth, stage="forward", strategy=strategy,
                             frontier_size=int(frontier.size),
                             edge_frontier=ef, cycles=cycles))
        metrics.inc("engine.levels", stage="forward", strategy=strategy)
        metrics.inc("engine.frontier_vertices", frontier.size, stage="forward")
        metrics.inc("engine.frontier_edges", ef, stage="forward")
        metrics.inc("engine.cycles", cycles, stage="forward", strategy=strategy)
        metrics.observe("engine.frontier_size", frontier.size, stage="forward")
        strategy_by_depth[depth] = strategy
        decision = policy.decide(strategy, int(frontier.size), int(q_next_len))
        if q_next_len > 0:
            # The decision taken after level `depth` governs level
            # `depth + 1`; an empty next frontier ends the sweep, so
            # that final (never-applied) evaluation is not recorded.
            metrics.record("decision.step", root=int(source), depth=int(depth),
                           applies_to_depth=int(depth) + 1,
                           previous=strategy, strategy=decision.strategy,
                           policy=decision.policy, rule=decision.rule,
                           **decision.inputs)
        state["strategy"] = decision.strategy

    fwd = forward_sweep(g, source, on_level=on_forward_level)
    if observer is not None:
        observer.after_forward(fwd)

    # Stage 2 — dependency accumulation, deepest-but-one level first,
    # each level charged under the strategy that produced it.
    delta = np.zeros(n, dtype=np.float64)
    scales = fwd.level_scales
    for depth in range(len(fwd.levels) - 2, 0, -1):
        level = fwd.levels[depth]
        ratio_scale = 1.0
        if scales is not None and depth + 1 < scales.size:
            ratio_scale = 1.0 / scales[depth + 1]
        accumulate_level(g, level, fwd.distances, fwd.sigma, delta,
                         sigma_ratio_scale=ratio_scale,
                         target_weights=target_weights)
        strategy = strategy_by_depth[depth]
        ef = int(deg[level].sum())
        cycles = _backward_cost(strategy, level, ef)
        trace.add(LevelTrace(depth=depth, stage="backward", strategy=strategy,
                             frontier_size=int(level.size),
                             edge_frontier=ef, cycles=cycles))
        metrics.inc("engine.levels", stage="backward", strategy=strategy)
        metrics.inc("engine.frontier_vertices", level.size, stage="backward")
        metrics.inc("engine.frontier_edges", ef, stage="backward")
        metrics.inc("engine.cycles", cycles, stage="backward", strategy=strategy)
    if source_weight != 1.0:
        delta *= source_weight
    if observer is not None:
        observer.after_accumulation(fwd, delta)
    bc += delta
    metrics.inc("engine.roots")
    metrics.observe("engine.root_cycles", trace.cycles)
    return trace
