"""Literal transcription of the paper's work-efficient kernel
(Algorithms 1, 2 and 3).

This module exists for auditability and testing: it mirrors the
pseudocode line by line — explicit ``Q_curr`` / ``Q_next`` queues, the
``S`` visit array, the ``ends`` per-depth offsets, the CAS-style
first-touch discovery, and the atomic-free successor-based dependency
accumulation.  The production path (:mod:`repro.bc.engine`) computes
the same values with vectorised level operations; equality of the two
is asserted by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["WorkEfficientState", "work_efficient_root", "bc_work_efficient"]

INF = np.iinfo(np.int64).max


@dataclass
class WorkEfficientState:
    """The local variables of Algorithm 1 after a root's two stages."""

    d: np.ndarray
    sigma: np.ndarray
    delta: np.ndarray
    S: np.ndarray
    ends: np.ndarray

    @property
    def max_depth(self) -> int:
        """``ends_len - 2`` == max over v of d[v] (Algorithm 1 invariant)."""
        return self.ends.size - 2


def work_efficient_root(g: CSRGraph, s: int) -> WorkEfficientState:
    """Run Algorithms 1-3 for source ``s`` and return the final state."""
    n = g.num_vertices
    s = int(s)
    if not 0 <= s < n:
        raise IndexError(f"source {s} out of range [0, {n})")

    # --- Algorithm 1: local variable initialisation -------------------
    d = np.full(n, INF, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    delta = np.zeros(n, dtype=np.float64)
    d[s] = 0
    sigma[s] = 1.0
    q_curr = [s]
    S = [s]
    ends = [0, 1]

    # --- Algorithm 2: shortest path calculation -----------------------
    while True:
        q_next: list[int] = []
        for v in q_curr:
            dv = d[v]
            for w in g.neighbors(v):
                w = int(w)
                # atomicCAS(d[w], inf, d[v] + 1): only the first toucher
                # enqueues w (lines 5-7).
                if d[w] == INF:
                    d[w] = dv + 1
                    q_next.append(w)
                # Path counting over all depth-(d[v]+1) neighbours (8-9).
                if d[w] == dv + 1:
                    sigma[w] += sigma[v]
        if not q_next:
            depth = int(d[S[-1]]) - 1  # line 12
            break
        S.extend(q_next)
        ends.append(ends[-1] + len(q_next))
        q_curr = q_next

    S_arr = np.asarray(S, dtype=np.int64)
    ends_arr = np.asarray(ends, dtype=np.int64)

    # --- Algorithm 3: dependency accumulation -------------------------
    while depth > 0:
        for tid in range(int(ends_arr[depth]), int(ends_arr[depth + 1])):
            w = int(S_arr[tid])
            dsw = 0.0
            sw = sigma[w]
            for v in g.neighbors(w):
                v = int(v)
                if d[v] == d[w] + 1:  # v is a successor of w
                    dsw += sw / sigma[v] * (1.0 + delta[v])
            delta[w] = dsw
        depth -= 1

    return WorkEfficientState(d=d, sigma=sigma, delta=delta, S=S_arr, ends=ends_arr)


def bc_work_efficient(g: CSRGraph, sources=None) -> np.ndarray:
    """Exact BC computed with the literal work-efficient kernel."""
    n = g.num_vertices
    bc = np.zeros(n, dtype=np.float64)
    for s in (range(n) if sources is None else sources):
        state = work_efficient_root(g, int(s))
        state.delta[int(s)] = 0.0
        bc += state.delta
    if g.undirected:
        bc /= 2.0
    return bc
