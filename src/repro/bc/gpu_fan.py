"""GPU-FAN baseline model (Shi & Zhang, Section III-B).

GPU-FAN differs from the Jia et al. implementation (and from ours) in
two ways the paper analyses:

1. **Fine-grained parallelism only** — all thread blocks of the device
   cooperate on the edge-parallel traversal of a *single* root at a
   time, requiring device-wide synchronisation between iterations.
   Roots are therefore processed sequentially.
2. **O(n^2) predecessor storage** — a dense predecessor matrix instead
   of Jia's O(m) boolean array, which "severely limits the scalability
   of this algorithm": on a 6 GB card it exhausts device memory at
   modest vertex counts, reproduced by the memory ledger in
   :mod:`repro.gpusim.memory` (Figure 5's missing data points).

Values are identical to every other strategy; only cost and memory
differ, so the model reuses the shared engine with the ``gpu-fan``
strategy label.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["predecessor_matrix_bytes", "supports_graph"]


def predecessor_matrix_bytes(num_vertices: int) -> int:
    """Bytes of GPU-FAN's dense predecessor matrix (1 byte per entry)."""
    n = int(num_vertices)
    return n * n


def supports_graph(g: CSRGraph, device_memory_bytes: int) -> bool:
    """Whether GPU-FAN's data structures fit on a device of the given
    capacity (the scalability cliff of Figure 5)."""
    from ..gpusim.memory import strategy_footprint

    need = sum(strategy_footprint(g, "gpu-fan", num_blocks=1).values())
    return need <= int(device_memory_bytes)
