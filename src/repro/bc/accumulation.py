"""Vectorised dependency accumulation (Stage 2, Algorithm 3).

Implements the atomic-free successor-checking scheme: each vertex ``w``
at depth ``depth`` scans its *neighbours* (there is no predecessor
array — the space/recompute trade-off of Green & Bader adopted by the
paper) and sums contributions from those at ``depth + 1``:

    delta[w] = sum_{v in nbrs(w), d[v] = d[w]+1} sigma[w]/sigma[v] * (1 + delta[v])

Levels are processed deepest-first; vertices on the deepest level have
no successors, so the sweep starts one level up (Algorithm 2, line 12),
and depth 0 (the root) is skipped since a root never contributes to its
own score.
"""

from __future__ import annotations

import numpy as np

from .._util import concat_ranges
from ..graph.csr import CSRGraph
from .frontier import ForwardResult

__all__ = ["dependency_accumulation", "accumulate_level"]


def accumulate_level(
    g: CSRGraph,
    level: np.ndarray,
    distances: np.ndarray,
    sigma: np.ndarray,
    delta: np.ndarray,
    sigma_ratio_scale: float = 1.0,
    target_weights: np.ndarray | None = None,
) -> None:
    """Compute ``delta`` for all vertices of one level, in place.

    ``sigma_ratio_scale`` corrects for per-level sigma rescaling: when
    the successors' stored sigmas were divided by ``f`` during the
    forward sweep, the true ratio ``sigma_w / sigma_v`` equals the
    stored ratio divided by ``f`` (pass ``1 / f``).

    ``target_weights`` generalises the ``1 +`` endpoint term: vertex
    ``v`` counts as ``target_weights[v]`` targets instead of one.  The
    degree-1 folding transform (:mod:`repro.bc.preprocess`) uses this
    to make one core vertex stand for its whole absorbed subtree;
    ``None`` keeps the classic unit-weight accumulation.
    """
    if level.size == 0:
        return
    indptr, adj = g.indptr, g.adj
    starts = indptr[level]
    counts = indptr[level + 1] - starts
    nbrs = adj[concat_ranges(starts, counts)]
    owner = np.repeat(np.arange(level.size, dtype=np.int64), counts)
    depth_here = distances[level[0]]
    succ = distances[nbrs] == depth_here + 1
    if not np.any(succ):
        return
    nbrs = nbrs[succ]
    owner = owner[succ]
    endpoint = 1.0 if target_weights is None else target_weights[nbrs]
    contrib = (endpoint + delta[nbrs]) / sigma[nbrs]
    acc = np.zeros(level.size, dtype=np.float64)
    np.add.at(acc, owner, contrib)
    delta[level] = sigma[level] * acc * sigma_ratio_scale


def dependency_accumulation(
    g: CSRGraph,
    fwd: ForwardResult,
    on_level=None,
    target_weights: np.ndarray | None = None,
) -> np.ndarray:
    """Run Stage 2 for one root; returns the ``delta`` array.

    The caller accumulates ``bc += delta`` (``delta[source]`` is always
    zero because depth 0 is never processed).

    Parameters
    ----------
    on_level:
        Optional callback ``on_level(depth, level)`` invoked per level,
        mirroring the forward sweep's hook (used for cost charging).
    target_weights:
        Optional per-vertex target multiplicities (see
        :func:`accumulate_level`); ``None`` means unit weights.
    """
    n = g.num_vertices
    delta = np.zeros(n, dtype=np.float64)
    scales = fwd.level_scales
    # Start one level above the deepest (its vertices have no successors).
    for depth in range(len(fwd.levels) - 2, 0, -1):
        level = fwd.levels[depth]
        ratio_scale = 1.0
        if scales is not None and depth + 1 < scales.size:
            ratio_scale = 1.0 / scales[depth + 1]
        accumulate_level(g, level, fwd.distances, fwd.sigma, delta,
                         sigma_ratio_scale=ratio_scale,
                         target_weights=target_weights)
        if on_level is not None:
            on_level(depth, level)
    return delta
