"""Hybrid strategy selection (Algorithm 4).

The hybrid method keeps whatever strategy is in force until the vertex
frontier *changes* by more than ``alpha`` elements between iterations;
at that point it re-selects: edge-parallel when the upcoming frontier
exceeds ``beta`` vertices, work-efficient otherwise.  See
:class:`repro.bc.policies.HybridPolicy` for the decision rule itself;
this module adds the paper's defaults and a standalone helper mirroring
the pseudocode for testability.
"""

from __future__ import annotations

from .policies import EDGE_PARALLEL, WORK_EFFICIENT, Decision, HybridPolicy

__all__ = ["DEFAULT_ALPHA", "DEFAULT_BETA", "select_strategy",
           "explain_strategy", "HybridPolicy"]

#: Paper Section IV-B: "we found the values of 768 and 512 were the best
#: choices for alpha and beta".
DEFAULT_ALPHA = 768
DEFAULT_BETA = 512


def select_strategy(
    current: str,
    q_curr_len: int,
    q_next_len: int,
    alpha: int = DEFAULT_ALPHA,
    beta: int = DEFAULT_BETA,
) -> str:
    """Algorithm 4 as a pure function.

    >>> select_strategy("work-efficient", 10, 20)
    'work-efficient'
    >>> select_strategy("work-efficient", 10, 2000)
    'edge-parallel'
    >>> select_strategy("edge-parallel", 5000, 100)
    'work-efficient'
    """
    q_change = abs(int(q_next_len) - int(q_curr_len))
    if q_change <= alpha:
        return current
    return EDGE_PARALLEL if int(q_next_len) > beta else WORK_EFFICIENT


def explain_strategy(
    current: str,
    q_curr_len: int,
    q_next_len: int,
    alpha: int = DEFAULT_ALPHA,
    beta: int = DEFAULT_BETA,
) -> Decision:
    """Algorithm 4 with its audit trail: the same selection as
    :func:`select_strategy`, returned as a
    :class:`~repro.bc.policies.Decision` whose ``rule`` spells out the
    exact α/β comparison taken.

    >>> explain_strategy("work-efficient", 10, 2000).rule
    '|Δfrontier|=1990 > alpha=768 and q_next=2000 > beta=512: edge-parallel'
    """
    return HybridPolicy(alpha=alpha, beta=beta).decide(
        current, q_curr_len, q_next_len
    )
