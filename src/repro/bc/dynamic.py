"""Incremental betweenness centrality under edge updates.

The authors' companion work (McLaughlin & Bader, "Revisiting Edge and
Node Parallelism for Dynamic GPU Graph Analytics", IPDPSW 2014 — the
paper's reference [27]) motivates exactly this: maintaining BC scores
of a network "that changes over time" without recomputing all n roots.

The classic *source-filtering* observation makes updates exact and
often cheap: for an undirected edge {u, v},

* if ``d(s, u) == d(s, v)`` the edge joins two vertices on the same BFS
  level of root ``s``, so it lies on **no** shortest path from ``s`` —
  neither inserting nor deleting it can change ``delta_s``;
* otherwise root ``s`` is *affected* and its dependency contribution
  must be swapped (subtract the old graph's ``delta_s``, add the new
  one).

Two BFS runs (from ``u`` and from ``v``) identify the affected set, so
an update costs ``O((|affected| + 2) * m)`` instead of ``O(n * m)``.
For localised edits on high-diameter graphs the affected set is a small
fraction of the roots; the :class:`UpdateStats` returned with every
update reports the realised saving.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GraphStructureError
from ..graph.build import from_edges
from ..graph.csr import CSRGraph
from ..graph.traversal import bfs_distances
from .api import bc_single_source_dependencies

__all__ = ["UpdateStats", "affected_sources", "insert_edge", "delete_edge"]


@dataclass(frozen=True)
class UpdateStats:
    """Cost accounting for one incremental update."""

    num_sources: int
    num_affected: int
    edge: tuple

    @property
    def affected_fraction(self) -> float:
        """Fraction of roots that had to be recomputed."""
        if self.num_sources == 0:
            return 0.0
        return self.num_affected / self.num_sources

    @property
    def savings_fraction(self) -> float:
        """Fraction of the full recomputation that was skipped."""
        return 1.0 - self.affected_fraction


def _has_edge(g: CSRGraph, u: int, v: int) -> bool:
    return bool(np.any(g.neighbors(u) == v))


def affected_sources(g: CSRGraph, u: int, v: int) -> np.ndarray:
    """Roots whose dependency vector can change when {u, v} is toggled.

    A root ``s`` is affected iff ``d(s, u) != d(s, v)`` (with
    unreachable treated as infinity).  Exactness follows from the
    level-equality argument in the module docstring.
    """
    n = g.num_vertices
    du = bfs_distances(g, u).astype(np.float64)
    dv = bfs_distances(g, v).astype(np.float64)
    du[du < 0] = np.inf
    dv[dv < 0] = np.inf
    # d(s, x) == d(x, s) on an undirected graph.
    both_inf = np.isinf(du) & np.isinf(dv)
    differ = du != dv
    return np.flatnonzero(differ & ~both_inf)


def _swap_contributions(g_old: CSRGraph, g_new: CSRGraph, bc: np.ndarray,
                        sources: np.ndarray) -> np.ndarray:
    out = np.array(bc, dtype=np.float64, copy=True)
    half = 0.5 if g_old.undirected else 1.0
    for s in sources:
        out -= half * bc_single_source_dependencies(g_old, int(s))
        out += half * bc_single_source_dependencies(g_new, int(s))
    return out


def _edit_graph(g: CSRGraph, u: int, v: int, insert: bool) -> CSRGraph:
    src = g.edge_sources()
    mask = src < g.adj
    edges = np.column_stack([src[mask], g.adj[mask]])
    if insert:
        edges = np.concatenate([edges, [[min(u, v), max(u, v)]]], axis=0)
    else:
        a, b = min(u, v), max(u, v)
        keep = ~((edges[:, 0] == a) & (edges[:, 1] == b))
        edges = edges[keep]
    return from_edges(edges, num_vertices=g.num_vertices, undirected=True,
                      name=g.name)


def _validated(g: CSRGraph, u: int, v: int) -> tuple:
    if not g.undirected:
        raise GraphStructureError("incremental updates require an "
                                  "undirected graph")
    u, v = int(u), int(v)
    n = g.num_vertices
    if not (0 <= u < n and 0 <= v < n):
        raise IndexError(f"endpoints ({u}, {v}) out of range [0, {n})")
    if u == v:
        raise GraphStructureError("self loops are not supported")
    return u, v


def insert_edge(g: CSRGraph, bc: np.ndarray, u: int, v: int):
    """Insert undirected edge {u, v} and update ``bc`` exactly.

    Parameters
    ----------
    bc:
        The current exact BC vector of ``g`` (unnormalised, undirected
        halved — i.e. what :func:`repro.bc.betweenness_centrality`
        returns).

    Returns
    -------
    ``(new_graph, new_bc, stats)``.
    """
    u, v = _validated(g, u, v)
    if _has_edge(g, u, v):
        raise GraphStructureError(f"edge ({u}, {v}) already present")
    sources = affected_sources(g, u, v)
    g_new = _edit_graph(g, u, v, insert=True)
    bc_new = _swap_contributions(g, g_new, bc, sources)
    return g_new, bc_new, UpdateStats(num_sources=g.num_vertices,
                                      num_affected=int(sources.size),
                                      edge=(u, v))


def delete_edge(g: CSRGraph, bc: np.ndarray, u: int, v: int):
    """Delete undirected edge {u, v} and update ``bc`` exactly.

    For an existing edge the BFS distance constraint guarantees
    ``|d(s,u) - d(s,v)| <= 1``; only the ``== 1`` roots (where the edge
    sits inside the shortest-path DAG) are affected.
    """
    u, v = _validated(g, u, v)
    if not _has_edge(g, u, v):
        raise GraphStructureError(f"edge ({u}, {v}) not present")
    sources = affected_sources(g, u, v)
    g_new = _edit_graph(g, u, v, insert=False)
    bc_new = _swap_contributions(g, g_new, bc, sources)
    return g_new, bc_new, UpdateStats(num_sources=g.num_vertices,
                                      num_affected=int(sources.size),
                                      edge=(u, v))
