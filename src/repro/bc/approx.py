"""Source-sampled approximate betweenness centrality.

The paper focuses on exact BC but notes (Section V-A) that its
techniques "can be trivially adjusted for approximation".  This module
is that trivial adjustment: accumulate dependencies from ``k`` sampled
roots and rescale by ``n / k`` (the Brandes-Pich estimator), reusing
whichever traversal strategy the caller picks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph.csr import CSRGraph

__all__ = [
    "approximate_bc",
    "sample_sources",
    "AdaptiveEstimate",
    "adaptive_vertex_bc",
]


def sample_sources(g: CSRGraph, k: int, seed: int = 0,
                   method: str = "uniform") -> np.ndarray:
    """Pick ``k`` distinct BC roots.

    ``method="uniform"`` samples uniformly (the unbiased estimator);
    ``method="degree"`` biases toward high-degree vertices, which
    empirically lowers variance on scale-free graphs.
    """
    n = g.num_vertices
    k = min(int(k), n)
    if k < 0:
        raise ValueError("k must be non-negative")
    rng = np.random.default_rng(seed)
    if method == "uniform":
        return rng.choice(n, size=k, replace=False).astype(np.int64)
    if method == "degree":
        deg = g.degrees.astype(np.float64)
        total = deg.sum()
        if total == 0:
            return rng.choice(n, size=k, replace=False).astype(np.int64)
        p = deg / total
        return rng.choice(n, size=k, replace=False, p=p).astype(np.int64)
    raise ValueError(f"unknown sampling method {method!r}")


def approximate_bc(
    g: CSRGraph,
    k: int,
    seed: int = 0,
    method: str = "uniform",
) -> np.ndarray:
    """Unbiased estimate of BC from ``k`` uniformly sampled roots.

    The estimate is exact when ``k == n`` (it degenerates to the full
    computation over a random root order).
    """
    from .api import betweenness_centrality

    sources = sample_sources(g, k, seed=seed, method=method)
    if sources.size == 0:
        return np.zeros(g.num_vertices, dtype=np.float64)
    partial = betweenness_centrality(g, sources=sources)
    if method != "uniform":
        # Importance-sampling correction is out of scope for the biased
        # picker; report the raw partial sums rescaled by count.
        return partial * (g.num_vertices / sources.size)
    return partial * (g.num_vertices / sources.size)


@dataclass(frozen=True)
class AdaptiveEstimate:
    """Result of the adaptive single-vertex estimator."""

    vertex: int
    estimate: float
    samples_used: int
    converged: bool  # stopping rule fired before the sample cap


def adaptive_vertex_bc(
    g: CSRGraph,
    vertex: int,
    c: float = 5.0,
    max_samples: int | None = None,
    seed: int = 0,
) -> AdaptiveEstimate:
    """Adaptive-sampling BC estimate for a single vertex.

    The scheme of Bader, Kintali, Madduri & Mihail (the paper's
    reference [3] for approximation): sample roots one at a time,
    accumulate ``S += delta_s(vertex)``, and stop as soon as
    ``S >= c * n`` — high-centrality vertices converge after very few
    samples, and the estimate ``n * S / (2k)`` (undirected) is within a
    constant factor with high probability.

    Parameters
    ----------
    c:
        Stopping constant; smaller stops earlier with wider error bars.
    max_samples:
        Cap on sampled roots (default ``n``); low-centrality vertices
        never trip the stopping rule and run to the cap.
    """
    from .api import bc_single_source_dependencies

    n = g.num_vertices
    vertex = int(vertex)
    if not 0 <= vertex < n:
        raise IndexError(f"vertex {vertex} out of range [0, {n})")
    if c <= 0:
        raise ValueError("stopping constant c must be positive")
    cap = n if max_samples is None else min(int(max_samples), n)
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    total = 0.0
    k = 0
    converged = False
    for s in order[:cap]:
        total += float(bc_single_source_dependencies(g, int(s))[vertex])
        k += 1
        if total >= c * n:
            converged = True
            break
    scale = 0.5 if g.undirected else 1.0
    estimate = scale * n * total / k if k else 0.0
    return AdaptiveEstimate(vertex=vertex, estimate=estimate,
                            samples_used=k, converged=converged)
