"""Vectorised forward sweep: level-synchronous BFS with path counting.

This is Stage 1 of the paper (Algorithm 2) expressed as NumPy array
operations.  One call to :func:`forward_sweep` performs what the CUDA
kernel does across its while-loop: per level, gather the concatenated
adjacency lists of the frontier, discover unvisited vertices (the
atomicCAS of line 5 collapses to a mask + unique), and accumulate
shortest-path counts into successors (the atomicAdd of line 9 collapses
to ``np.add.at``).

All strategy variants produce *identical* values — they differ in how
threads are assigned to this work, which is what the cost model (in
:mod:`repro.gpusim.cost`) charges for.  Literal re-implementations of
the edge-parallel and vertex-parallel traversal orders live in their
strategy modules and are tested for value-equality against this engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import concat_ranges
from ..graph.csr import CSRGraph
from ..observability.registry import NULL_REGISTRY

__all__ = ["ForwardResult", "forward_sweep", "SIGMA_RESCALE_LIMIT"]

UNREACHED = -1

#: Per-level sigma magnitudes beyond this trigger rescaling.  Path
#: counts grow combinatorially with BFS depth (a 500-level mesh easily
#: exceeds float64 range), but Brandes's dependency formula only ever
#: uses ratios of sigmas on *adjacent* levels, so each level can be
#: renormalised independently as long as the scale factor is recorded.
SIGMA_RESCALE_LIMIT = 1e100


@dataclass
class ForwardResult:
    """Stage-1 output for one root.

    Attributes
    ----------
    source: root vertex.
    distances: BFS depth per vertex (-1 if unreachable) — the ``d`` array.
    sigma: shortest-path counts from the root — the ``sigma`` array.
        Stored per-level *rescaled*: the true count of a vertex at depth
        k is ``sigma[v] * prod(level_scales[:k + 1])``.  For shallow
        traversals every scale is 1.0 and ``sigma`` is exact.
    levels: frontier per depth; concatenated they form the paper's ``S``
        array and their offsets the ``ends`` array.
    level_scales: rescaling factor applied at each depth (>= 1.0).
    """

    source: int
    distances: np.ndarray
    sigma: np.ndarray
    levels: list
    level_scales: np.ndarray = None

    @property
    def max_depth(self) -> int:
        return len(self.levels) - 1

    def ends(self) -> np.ndarray:
        """The paper's ``ends`` array: CSR-style offsets of each depth's
        segment within the concatenated visit order ``S``."""
        sizes = [lv.size for lv in self.levels]
        return np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)

    def s_array(self) -> np.ndarray:
        """The paper's ``S`` array: all visited vertices in depth order."""
        if not self.levels:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(self.levels)


def forward_sweep(g: CSRGraph, source: int,
                  on_level=None, metrics=None) -> ForwardResult:
    """Run the shortest-path calculation stage from ``source``.

    Parameters
    ----------
    on_level:
        Optional callback ``on_level(depth, frontier, q_next_len)``
        invoked after each level is processed, *before* the next one
        begins — this is the hook the hybrid policy (Algorithm 4) uses
        to reconsider its parallelisation strategy between iterations.
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`; records
        per-level frontier counters (``frontier.*`` series).  Defaults
        to the process-wide no-op registry.
    """
    if metrics is None:
        metrics = NULL_REGISTRY
    n = g.num_vertices
    source = int(source)
    if not 0 <= source < n:
        raise IndexError(f"source {source} out of range [0, {n})")
    indptr, adj = g.indptr, g.adj
    d = np.full(n, UNREACHED, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    d[source] = 0
    sigma[source] = 1.0
    frontier = np.array([source], dtype=np.int64)
    levels = [frontier]
    scales = [1.0]
    depth = 0
    while True:
        starts = indptr[frontier]
        counts = indptr[frontier + 1] - starts
        nbr_idx = concat_ranges(starts, counts)
        nbrs = adj[nbr_idx]
        srcs = np.repeat(frontier, counts)
        # Discovery: first touch sets the depth (atomicCAS, line 5).
        fresh = nbrs[d[nbrs] == UNREACHED]
        q_next = np.unique(fresh) if fresh.size else fresh
        if q_next.size:
            d[q_next] = depth + 1
        # Path counting: every tree/cross edge into depth+1 contributes
        # (atomicAdd, line 9).  Runs after discovery so the mask sees
        # the final depths, exactly like the level-synchronous kernel.
        if nbrs.size:
            useful = d[nbrs] == depth + 1
            if np.any(useful):
                np.add.at(sigma, nbrs[useful], sigma[srcs[useful]])
        if q_next.size:
            # Level-synchronous => sigma of depth+1 is final here; keep
            # magnitudes inside float64 range (see SIGMA_RESCALE_LIMIT).
            mx = float(sigma[q_next].max())
            if mx > SIGMA_RESCALE_LIMIT:
                sigma[q_next] /= mx
                scales.append(mx)
            else:
                scales.append(1.0)
        metrics.inc("frontier.levels")
        metrics.inc("frontier.frontier_vertices", frontier.size)
        metrics.inc("frontier.edges_inspected", nbrs.size)
        metrics.inc("frontier.discovered", q_next.size)
        if on_level is not None:
            on_level(depth, frontier, int(q_next.size))
        if q_next.size == 0:
            break
        frontier = q_next
        depth += 1
        levels.append(frontier)
    metrics.inc("frontier.sweeps")
    metrics.observe("frontier.max_depth", depth)
    return ForwardResult(source=source, distances=d, sigma=sigma, levels=levels,
                         level_scales=np.asarray(scales, dtype=np.float64))
