"""Public betweenness-centrality entry point.

:func:`betweenness_centrality` computes exact (or source-subset) BC
values with the vectorised level-synchronous engine — no cost model,
no simulated device — and is the API example applications build on.
For simulated-GPU performance experiments use
:meth:`repro.gpusim.Device.run_bc`, which returns the same values plus
timing/traces.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from .accumulation import dependency_accumulation
from .brandes import normalize_bc
from .frontier import forward_sweep
from .preprocess import FoldResult, fold_degree_one, per_root_correction

__all__ = ["betweenness_centrality", "bc_single_source_dependencies"]


def bc_single_source_dependencies(g: CSRGraph, source: int) -> np.ndarray:
    """Dependency vector ``delta_s`` for one root (Eq. 2 summed over
    successors); ``BC = sum over roots of delta_s`` (Eq. 3)."""
    fwd = forward_sweep(g, int(source))
    return dependency_accumulation(g, fwd)


def _core_dependencies(fold: FoldResult, core_root: int) -> np.ndarray:
    """One weighted traversal on the folded core."""
    fwd = forward_sweep(fold.core, int(core_root))
    return dependency_accumulation(fold.core, fwd,
                                   target_weights=fold.core_weights)


def betweenness_centrality(
    g: CSRGraph,
    sources=None,
    normalized: bool = False,
    fold: bool | FoldResult = True,
) -> np.ndarray:
    """Exact betweenness centrality of every vertex.

    Parameters
    ----------
    g:
        Input graph.  For undirected graphs each unordered pair is
        counted once (scores halved), matching NetworkX and Figure 1.
    sources:
        Iterable of roots to accumulate; defaults to all vertices (the
        exact O(mn) computation).  A subset yields the *unscaled*
        partial sum — see :func:`repro.bc.approx.approximate_bc` for
        the rescaled estimator.  An *empty* subset returns the zero
        vector: this is what a zero-root rank contributes in the
        distributed decomposition (:mod:`repro.cluster.distributed`,
        :mod:`repro.resilience`).  Out-of-range roots raise
        ``IndexError`` up front rather than failing mid-traversal.
    normalized:
        Divide by the maximum possible score (Section II-B).
    fold:
        Apply the degree-1 folding preprocess (on by default; exact to
        float round-off — see :mod:`repro.bc.preprocess`).  Pass
        ``False`` to traverse the original graph, or a precomputed
        :class:`~repro.bc.preprocess.FoldResult` for ``g`` to skip
        re-folding.  Identity folds (directed or pendant-free graphs)
        take the classic unfolded path automatically.

    Returns
    -------
    ``float64`` array of length ``g.num_vertices``.

    Examples
    --------
    >>> from repro.graph.generators import figure1_graph
    >>> bc = betweenness_centrality(figure1_graph())
    >>> int(np.argmax(bc))  # paper vertex 4 (0-indexed: 3)
    3
    """
    n = g.num_vertices
    bc = np.zeros(n, dtype=np.float64)
    if sources is None:
        roots = range(n)
    else:
        roots = np.asarray(sources, dtype=np.int64).ravel()
        if roots.size == 0:
            return bc
        if roots.min() < 0 or roots.max() >= n:
            raise IndexError(f"roots out of range [0, {n})")

    fold_result: FoldResult | None = None
    if isinstance(fold, FoldResult):
        fold_result = fold
    elif fold:
        fold_result = fold_degree_one(g)
    if fold_result is not None and not fold_result.is_identity:
        if sources is None:
            # Full BC: one weighted traversal per *core* root, each
            # counted with its absorbed subtree weight, plus the fold's
            # closed-form credits.
            tw = fold_result.core_weights
            acc = np.zeros(fold_result.core.num_vertices, dtype=np.float64)
            for cs in range(fold_result.core.num_vertices):
                acc += tw[cs] * _core_dependencies(fold_result, cs)
            bc = fold_result.expand(acc) + fold_result.credit
        else:
            # Subset roots: one weighted traversal from each root's
            # residual host plus its per-root correction — exact for
            # the unscaled partial sum, still traversing only the core.
            for a in roots:
                cr, corr = per_root_correction(fold_result, int(a))
                bc += fold_result.expand(_core_dependencies(fold_result, cr))
                bc += corr
    else:
        for s in roots:
            bc += bc_single_source_dependencies(g, int(s))
    if g.undirected:
        bc /= 2.0
    if normalized:
        bc = normalize_bc(bc, n, undirected=g.undirected, copy=False)
    return bc
