"""Betweenness-centrality algorithms: the paper's contribution and its
baselines."""

from .accumulation import accumulate_level, dependency_accumulation
from .api import bc_single_source_dependencies, betweenness_centrality
from .approx import (
    AdaptiveEstimate,
    adaptive_vertex_bc,
    approximate_bc,
    sample_sources,
)
from .batched import batched_betweenness_centrality, batched_dependencies
from .brandes import brandes_reference, brandes_single_source, normalize_bc
from .dynamic import UpdateStats, affected_sources, delete_edge, insert_edge
from .edge_parallel import bc_edge_parallel, edge_parallel_root
from .engine import run_root
from .frontier import ForwardResult, forward_sweep
from .hybrid import DEFAULT_ALPHA, DEFAULT_BETA, select_strategy
from .preprocess import (
    FOLD_SCHEMA,
    FoldResult,
    fold_degree_one,
    folded_betweenness_centrality,
    per_root_correction,
)
from .policies import (
    EDGE_PARALLEL,
    GPU_FAN,
    VERTEX_PARALLEL,
    WORK_EFFICIENT,
    FixedPolicy,
    FrontierGuardPolicy,
    HybridPolicy,
    Policy,
)
from .sampling import (
    DEFAULT_GAMMA,
    DEFAULT_MIN_FRONTIER,
    DEFAULT_N_SAMPS,
    choose_edge_parallel,
    sample_roots,
)
from .vertex_parallel import bc_vertex_parallel, vertex_parallel_root
from .work_efficient import WorkEfficientState, bc_work_efficient, work_efficient_root

__all__ = [
    "betweenness_centrality",
    "bc_single_source_dependencies",
    "approximate_bc",
    "sample_sources",
    "AdaptiveEstimate",
    "adaptive_vertex_bc",
    "UpdateStats",
    "affected_sources",
    "insert_edge",
    "delete_edge",
    "batched_betweenness_centrality",
    "batched_dependencies",
    "brandes_reference",
    "brandes_single_source",
    "normalize_bc",
    "forward_sweep",
    "ForwardResult",
    "dependency_accumulation",
    "accumulate_level",
    "run_root",
    "FOLD_SCHEMA",
    "FoldResult",
    "fold_degree_one",
    "folded_betweenness_centrality",
    "per_root_correction",
    "bc_work_efficient",
    "work_efficient_root",
    "WorkEfficientState",
    "bc_edge_parallel",
    "edge_parallel_root",
    "bc_vertex_parallel",
    "vertex_parallel_root",
    "Policy",
    "FixedPolicy",
    "HybridPolicy",
    "FrontierGuardPolicy",
    "WORK_EFFICIENT",
    "EDGE_PARALLEL",
    "VERTEX_PARALLEL",
    "GPU_FAN",
    "select_strategy",
    "DEFAULT_ALPHA",
    "DEFAULT_BETA",
    "choose_edge_parallel",
    "sample_roots",
    "DEFAULT_N_SAMPS",
    "DEFAULT_GAMMA",
    "DEFAULT_MIN_FRONTIER",
]
