"""Serial reference implementation of Brandes's algorithm.

This is the ground truth every simulated kernel is validated against:
a direct, readable transcription of Brandes (2001) using explicit
Python loops and a FIFO queue.  O(mn) for unweighted graphs.  Use
:func:`repro.bc.betweenness_centrality` for anything performance
sensitive; this module optimises for audit-ability.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["brandes_reference", "brandes_single_source", "normalize_bc"]


def brandes_single_source(g: CSRGraph, s: int):
    """One root's shortest-path DAG: ``(distances, sigma, order)``.

    ``order`` is the non-decreasing-distance visit order (the stack S of
    Brandes's algorithm, front to back).
    """
    n = g.num_vertices
    d = np.full(n, -1, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    d[s] = 0
    sigma[s] = 1.0
    order = []
    q = deque([s])
    while q:
        v = q.popleft()
        order.append(v)
        for w in g.neighbors(v):
            w = int(w)
            if d[w] < 0:
                d[w] = d[v] + 1
                q.append(w)
            if d[w] == d[v] + 1:
                sigma[w] += sigma[v]
    return d, sigma, order


def brandes_reference(
    g: CSRGraph, sources=None, normalized: bool = False
) -> np.ndarray:
    """Exact betweenness centrality by Brandes's two-stage algorithm.

    Parameters
    ----------
    sources:
        Roots to accumulate over (all vertices by default — the exact
        computation).  Passing a subset gives the unscaled sampled
        approximation the paper mentions in Section V-A.
    normalized:
        Divide by the maximum possible value (n-1)(n-2) — for
        undirected graphs the pair count is halved, matching NetworkX.

    Returns
    -------
    ``float64`` array of BC scores.  For undirected graphs each
    unordered pair is counted once (scores halved), as in Figure 1.
    """
    n = g.num_vertices
    bc = np.zeros(n, dtype=np.float64)
    if sources is None:
        sources = range(n)
    for s in sources:
        s = int(s)
        d, sigma, order = brandes_single_source(g, s)
        delta = np.zeros(n, dtype=np.float64)
        for w in reversed(order):
            # Successor formulation (Eq. 2): scan w's out-neighbours one
            # level further from the root.  Correct for directed graphs
            # too, where w's out-neighbourhood holds its successors but
            # not necessarily its predecessors.
            for v in g.neighbors(w):
                v = int(v)
                if d[v] == d[w] + 1:
                    delta[w] += sigma[w] / sigma[v] * (1.0 + delta[v])
            if w != s:
                bc[w] += delta[w]
    if g.undirected:
        bc /= 2.0
    if normalized:
        bc = normalize_bc(bc, n, undirected=g.undirected, copy=False)
    return bc


def normalize_bc(bc: np.ndarray, n: int, undirected: bool = True,
                 copy: bool = True) -> np.ndarray:
    """Scale scores by their largest possible value, (n-1)(n-2)
    [halved for undirected graphs], as in Section II-B."""
    out = np.array(bc, dtype=np.float64, copy=copy)
    if n <= 2:
        return out * 0.0
    scale = (n - 1) * (n - 2)
    if undirected:
        scale /= 2.0
    out /= scale
    return out
