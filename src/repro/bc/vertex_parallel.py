"""Literal vertex-parallel kernel (Jia et al., Section III-A).

One (virtual) thread per *vertex*; each iteration every thread checks
whether its vertex lies on the current depth and, if so, traverses all
of its outgoing edges.  Load-imbalanced on power-law graphs (a hub's
thread serialises its whole edge list) and still O(n^2 + m) per root
because all n vertices are checked every level.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["vertex_parallel_root", "bc_vertex_parallel"]

UNREACHED = -1


def vertex_parallel_root(g: CSRGraph, s: int):
    """Run both stages vertex-parallel for source ``s``.

    Returns ``(d, sigma, delta, iterations)``.
    """
    n = g.num_vertices
    s = int(s)
    if not 0 <= s < n:
        raise IndexError(f"source {s} out of range [0, {n})")
    d = np.full(n, UNREACHED, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    d[s] = 0
    sigma[s] = 1.0
    depth = 0
    iterations = 0
    indptr, adj = g.indptr, g.adj
    while True:
        iterations += 1
        frontier = np.flatnonzero(d == depth)  # every vertex checked
        advanced = False
        for v in frontier:
            v = int(v)
            for w in adj[indptr[v]:indptr[v + 1]]:
                w = int(w)
                if d[w] == UNREACHED:
                    d[w] = depth + 1
                    advanced = True
                if d[w] == depth + 1:
                    sigma[w] += sigma[v]
        if not advanced:
            break
        depth += 1
    max_depth = depth

    delta = np.zeros(n, dtype=np.float64)
    for depth in range(max_depth - 1, 0, -1):
        level = np.flatnonzero(d == depth)  # again: all n checked
        for w in level:
            w = int(w)
            acc = 0.0
            for v in adj[indptr[w]:indptr[w + 1]]:
                v = int(v)
                if d[v] == d[w] + 1:
                    acc += sigma[w] / sigma[v] * (1.0 + delta[v])
            delta[w] = acc
    return d, sigma, delta, iterations


def bc_vertex_parallel(g: CSRGraph, sources=None) -> np.ndarray:
    """Exact BC computed with the literal vertex-parallel kernel."""
    n = g.num_vertices
    bc = np.zeros(n, dtype=np.float64)
    for s in (range(n) if sources is None else sources):
        s = int(s)
        _, _, delta, _ = vertex_parallel_root(g, s)
        delta[s] = 0.0
        bc += delta
    if g.undirected:
        bc /= 2.0
    return bc
