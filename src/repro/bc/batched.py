"""Batched multi-root BC via sparse matrix products.

The paper takes its TEPS definition from Sarıyüce et al.,
"Regularizing Graph Centrality Computations" (reference [33]), whose
core idea is to batch many BFS roots into dense-matrix operations so
the traversal becomes regular, BLAS-shaped work.  This module is that
substrate: ``k`` roots are advanced simultaneously, one level per
step, with the frontier expansion expressed as a dense (k, n) x sparse
(n, n) product.

Trade-off (the same one the paper's strategies navigate): every step
touches all m edges for all k roots, so batching behaves like the
edge-parallel method — superb on small-diameter graphs (few steps,
regular memory traffic, NumPy/BLAS speed) and wasteful on high-diameter
ones, where the queue-based engine of :mod:`repro.bc.api` wins.

Values are exact and equal to every other implementation; sigma
overflow (possible on deep traversals, which are not this path's
target) is detected and transparently retried with the per-root
engine.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from .brandes import normalize_bc

__all__ = ["batched_betweenness_centrality", "batched_dependencies"]


def _adjacency(g: CSRGraph):
    import scipy.sparse as sp

    n = g.num_vertices
    data = np.ones(g.adj.size, dtype=np.float64)
    return sp.csr_matrix((data, g.adj, g.indptr), shape=(n, n))


def batched_dependencies(g: CSRGraph, roots: np.ndarray,
                         A=None) -> np.ndarray:
    """Dependency vectors for a batch of roots: ``(k, n)`` array whose
    row r is ``delta_{roots[r]}``.

    Raises ``FloatingPointError`` if path counts overflow float64 (use
    the per-root engine for very deep graphs; the public wrapper does
    that fallback automatically).
    """
    n = g.num_vertices
    roots = np.asarray(roots, dtype=np.int64).ravel()
    k = roots.size
    if k == 0:
        return np.zeros((0, n), dtype=np.float64)
    if roots.min() < 0 or roots.max() >= n:
        raise IndexError(f"roots out of range [0, {n})")
    if A is None:
        A = _adjacency(g)

    d = np.full((k, n), -1, dtype=np.int64)
    sigma = np.zeros((k, n), dtype=np.float64)
    rows = np.arange(k)
    d[rows, roots] = 0
    sigma[rows, roots] = 1.0

    # ---- forward: all roots advance one level per step --------------
    depth = 0
    with np.errstate(over="raise"):
        while True:
            active = np.where(d == depth, sigma, 0.0)
            if not active.any():
                break
            # T[r, w] = sum over in-neighbours v of w with d[r, v] == depth
            # of sigma[r, v] — the batched path-count relaxation.
            T = active @ A
            fresh = (d < 0) & (T > 0)
            if fresh.any():
                d[fresh] = depth + 1
            on_next = d == depth + 1
            sigma = np.where(on_next, T, sigma)
            depth += 1
            if not fresh.any():
                break

    max_depth = depth
    if not np.isfinite(sigma).all():
        # Deep traversals can push path counts past float64 range; the
        # per-root engine's per-level rescaling handles those.
        raise FloatingPointError("sigma overflow in batched sweep")

    # ---- backward: batched successor accumulation --------------------
    delta = np.zeros((k, n), dtype=np.float64)
    AT = A.T.tocsr()
    for depth in range(max_depth - 1, 0, -1):
        succ_mask = d == depth + 1
        with np.errstate(divide="ignore", invalid="ignore"):
            X = np.where(succ_mask, (1.0 + delta) / sigma, 0.0)
        X[~np.isfinite(X)] = 0.0
        # Y[r, w] = sum over out-neighbours v of w of X[r, v].
        Y = X @ AT
        on_level = d == depth
        delta = np.where(on_level, sigma * Y, delta)
    if not np.isfinite(delta).all():
        raise FloatingPointError("sigma overflow in batched sweep")
    return delta


def batched_betweenness_centrality(
    g: CSRGraph,
    sources=None,
    batch_size: int = 64,
    normalized: bool = False,
) -> np.ndarray:
    """Exact BC computed in root batches of ``batch_size``.

    Returns exactly what :func:`repro.bc.betweenness_centrality`
    returns.  Prefer this on small-diameter graphs with many roots;
    prefer the queue-based engine on high-diameter graphs.
    """
    n = g.num_vertices
    if sources is None:
        roots = np.arange(n, dtype=np.int64)
    else:
        roots = np.asarray(sources, dtype=np.int64).ravel()
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    A = _adjacency(g) if roots.size else None
    bc = np.zeros(n, dtype=np.float64)
    for lo in range(0, roots.size, batch_size):
        batch = roots[lo:lo + batch_size]
        try:
            delta = batched_dependencies(g, batch, A=A)
            contrib = delta.sum(axis=0)
        except FloatingPointError:
            # Deep traversal overflowed the batched float64 counts; the
            # per-root engine rescales sigma per level and is exact.
            from .api import bc_single_source_dependencies

            contrib = np.zeros(n, dtype=np.float64)
            for s in batch:
                contrib += bc_single_source_dependencies(g, int(s))
        bc += contrib
    if g.undirected:
        bc /= 2.0
    if normalized:
        bc = normalize_bc(bc, n, undirected=g.undirected, copy=False)
    return bc
