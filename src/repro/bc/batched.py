"""Batched multi-root BC via sparse matrix products.

The paper takes its TEPS definition from Sarıyüce et al.,
"Regularizing Graph Centrality Computations" (reference [33]), whose
core idea is to batch many BFS roots into dense-matrix operations so
the traversal becomes regular, BLAS-shaped work.  This module is that
substrate: ``k`` roots are advanced simultaneously, one level per
step, with the frontier expansion expressed as a dense (k, n) x sparse
(n, n) product.

Trade-off (the same one the paper's strategies navigate): every step
touches all m edges for all k roots, so batching behaves like the
edge-parallel method — superb on small-diameter graphs (few steps,
regular memory traffic, NumPy/BLAS speed) and wasteful on high-diameter
ones, where the queue-based engine of :mod:`repro.bc.api` wins.  The
simulated device exposes this trade-off as the first-class ``batched``
strategy (:meth:`repro.gpusim.Device.run_bc`), gated by the same
depth-classification rule as Algorithm 5.

Values are exact and equal to every other implementation; sigma
overflow (possible on deep traversals, which are not this path's
target) is detected and transparently retried with the per-root
engine.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph
from ..observability.registry import NULL_REGISTRY
from .brandes import normalize_bc
from .preprocess import FoldResult, fold_degree_one, per_root_correction

__all__ = ["batched_betweenness_centrality", "batched_dependencies"]


def _adjacency(g: CSRGraph):
    import scipy.sparse as sp

    n = g.num_vertices
    data = np.ones(g.adj.size, dtype=np.float64)
    return sp.csr_matrix((data, g.adj, g.indptr), shape=(n, n))


def batched_dependencies(g: CSRGraph, roots: np.ndarray,
                         A=None,
                         target_weights: np.ndarray | None = None,
                         on_level=None) -> np.ndarray:
    """Dependency vectors for a batch of roots: ``(k, n)`` array whose
    row r is ``delta_{roots[r]}``.

    Parameters
    ----------
    target_weights:
        Optional per-vertex target multiplicities (degree-1 folded
        cores, :mod:`repro.bc.preprocess`): the accumulation endpoint
        term becomes ``target_weights[v] + delta`` instead of
        ``1 + delta``, exactly as in
        :func:`repro.bc.accumulation.accumulate_level`.
    on_level:
        Optional callback ``on_level(depth, frontier_pairs,
        edge_pairs)`` fired once per forward step with the number of
        active (root, vertex) pairs and their summed degrees — the
        device charges its batched kernel costs from these.

    Raises ``FloatingPointError`` if path counts overflow float64 (use
    the per-root engine for very deep graphs; the public wrapper does
    that fallback automatically).
    """
    n = g.num_vertices
    roots = np.asarray(roots, dtype=np.int64).ravel()
    k = roots.size
    if k == 0:
        return np.zeros((0, n), dtype=np.float64)
    if roots.min() < 0 or roots.max() >= n:
        raise IndexError(f"roots out of range [0, {n})")
    if A is None:
        A = _adjacency(g)

    d = np.full((k, n), -1, dtype=np.int64)
    sigma = np.zeros((k, n), dtype=np.float64)
    rows = np.arange(k)
    d[rows, roots] = 0
    sigma[rows, roots] = 1.0
    deg = g.degrees

    # ---- forward: all roots advance one level per step --------------
    depth = 0
    with np.errstate(over="raise"):
        while True:
            active = np.where(d == depth, sigma, 0.0)
            if not active.any():
                break
            if on_level is not None:
                mask = d == depth
                per_vertex = mask.sum(axis=0)
                on_level(depth, int(per_vertex.sum()),
                         int(per_vertex @ deg))
            # T[r, w] = sum over in-neighbours v of w with d[r, v] == depth
            # of sigma[r, v] — the batched path-count relaxation.
            T = active @ A
            fresh = (d < 0) & (T > 0)
            if fresh.any():
                d[fresh] = depth + 1
            on_next = d == depth + 1
            sigma = np.where(on_next, T, sigma)
            depth += 1
            if not fresh.any():
                break

    max_depth = depth
    if not np.isfinite(sigma).all():
        # Deep traversals can push path counts past float64 range; the
        # per-root engine's per-level rescaling handles those.
        raise FloatingPointError("sigma overflow in batched sweep")

    # ---- backward: batched successor accumulation --------------------
    endpoint = 1.0 if target_weights is None \
        else np.asarray(target_weights, dtype=np.float64)
    delta = np.zeros((k, n), dtype=np.float64)
    AT = A.T.tocsr()
    for depth in range(max_depth - 1, 0, -1):
        succ_mask = d == depth + 1
        with np.errstate(divide="ignore", invalid="ignore"):
            X = np.where(succ_mask, (endpoint + delta) / sigma, 0.0)
        X[~np.isfinite(X)] = 0.0
        # Y[r, w] = sum over out-neighbours v of w of X[r, v].
        Y = X @ AT
        on_level_mask = d == depth
        delta = np.where(on_level_mask, sigma * Y, delta)
    if not np.isfinite(delta).all():
        raise FloatingPointError("sigma overflow in batched sweep")
    return delta


def _engine_retry(g: CSRGraph, batch: np.ndarray, metrics,
                  target_weights: np.ndarray | None = None,
                  row_weights: np.ndarray | None = None) -> np.ndarray:
    """Per-root-engine fallback for one overflowed batch; the caller's
    metrics registry sees both the retry counter and the traversals."""
    from .accumulation import dependency_accumulation
    from .frontier import forward_sweep

    metrics.inc("batched.overflow_retries")
    contrib = np.zeros(g.num_vertices, dtype=np.float64)
    for j, s in enumerate(batch):
        fwd = forward_sweep(g, int(s), metrics=metrics)
        delta = dependency_accumulation(g, fwd,
                                        target_weights=target_weights)
        contrib += delta if row_weights is None else row_weights[j] * delta
    return contrib


def batched_betweenness_centrality(
    g: CSRGraph,
    sources=None,
    batch_size: int = 64,
    normalized: bool = False,
    metrics=None,
    fold: bool | FoldResult = True,
) -> np.ndarray:
    """Exact BC computed in root batches of ``batch_size``.

    Returns exactly what :func:`repro.bc.betweenness_centrality`
    returns.  Prefer this on small-diameter graphs with many roots;
    prefer the queue-based engine on high-diameter graphs.

    ``metrics`` (an optional
    :class:`~repro.observability.MetricsRegistry`) is threaded through
    the sigma-overflow fallback too, counting ``batched.overflow_retries``
    per retried batch.  ``fold`` applies the degree-1 preprocess
    (default on; identity folds take the unfolded path).
    """
    n = g.num_vertices
    if metrics is None:
        metrics = NULL_REGISTRY
    if sources is None:
        roots = np.arange(n, dtype=np.int64)
    else:
        roots = np.asarray(sources, dtype=np.int64).ravel()
        if roots.size and (roots.min() < 0 or roots.max() >= n):
            raise IndexError(f"roots out of range [0, {n})")
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")

    fold_result: FoldResult | None = None
    if isinstance(fold, FoldResult):
        fold_result = fold
    elif fold:
        fold_result = fold_degree_one(g)

    if fold_result is not None and not fold_result.is_identity:
        core = fold_result.core
        tw = fold_result.core_weights
        if sources is None:
            run_roots = np.arange(core.num_vertices, dtype=np.int64)
            row_weights = tw
            extra = fold_result.credit
        else:
            if roots.size == 0:
                return np.zeros(n, dtype=np.float64)
            run_roots = np.empty(roots.size, dtype=np.int64)
            extra = np.zeros(n, dtype=np.float64)
            for i, a in enumerate(roots):
                cr, corr = per_root_correction(fold_result, int(a))
                run_roots[i] = cr
                extra += corr
            row_weights = np.ones(run_roots.size, dtype=np.float64)
        A = _adjacency(core) if run_roots.size else None
        acc = np.zeros(core.num_vertices, dtype=np.float64)
        for lo in range(0, run_roots.size, batch_size):
            batch = run_roots[lo:lo + batch_size]
            w_rows = row_weights[lo:lo + batch_size]
            try:
                delta = batched_dependencies(core, batch, A=A,
                                             target_weights=tw)
                acc += (w_rows[:, None] * delta).sum(axis=0)
            except FloatingPointError:
                acc += _engine_retry(core, batch, metrics,
                                     target_weights=tw, row_weights=w_rows)
        bc = fold_result.expand(acc) + extra
    else:
        A = _adjacency(g) if roots.size else None
        bc = np.zeros(n, dtype=np.float64)
        for lo in range(0, roots.size, batch_size):
            batch = roots[lo:lo + batch_size]
            try:
                delta = batched_dependencies(g, batch, A=A)
                contrib = delta.sum(axis=0)
            except FloatingPointError:
                # Deep traversal overflowed the batched float64 counts;
                # the per-root engine rescales sigma per level and is
                # exact — and keeps charging the same registry.
                contrib = _engine_retry(g, batch, metrics)
            bc += contrib
    if g.undirected:
        bc /= 2.0
    if normalized:
        bc = normalize_bc(bc, n, undirected=g.undirected, copy=False)
    return bc
