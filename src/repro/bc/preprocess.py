"""Degree-1 folding: peel pendant vertices before any traversal runs.

Scale-free and road graphs carry large pendant fringes (degree-1
vertices and the trees hanging off them).  Every shortest path through
such a tree is forced — there is nothing to search — so the traversal
work they cost can be replaced by a closed-form correction, as in
Vella et al. (arXiv:1602.00963).  This module implements the iterative
peel: each round removes every current-degree-1 vertex, folding its
accumulated subtree weight into its sole surviving neighbour, until the
residual **core** has no pendant vertices left.  Every strategy then
traverses the (often dramatically smaller) core.

Exactness is restored with two ingredients, both in *ordered-pair*
units (the Brandes sum over ordered ``(s, t)`` pairs; callers halve for
undirected graphs exactly as they do today):

* **Peel credits.**  When pendant ``u`` carrying subtree weight ``w``
  is peeled into neighbour ``v`` inside a component of ``N`` vertices,
  every path between the ``w`` vertices behind ``u`` and the ``N - w``
  vertices beyond runs through ``u`` and ``v``::

      credit[u] += (w - 1) * (N - w)        # u interior: behind-u <-> beyond
      credit[v] += w * (N - w - 1)          # v interior: subtree <-> beyond-v

  After the peel converges, each residual vertex ``r`` that absorbed a
  subtree settles the same identity once more::

      credit[r] += (w[r] - 1) * (N - w[r])

* **Weighted core traversal.**  A core vertex stands for itself plus
  its absorbed subtree, so dependency accumulation must weight each
  *target* by its absorbed count: ``delta_s(x) = sum over successors t
  of sigma_sx / sigma_st * (w[t] + delta_s(t))`` — and each *source*
  contributes ``w[s]`` traversals' worth, so the full-graph sum is
  ``sum over core s of w[s] * delta^w_s``.  Then::

      BC_ordered = expand(sum_s w[s] * delta^w_s) + credit

  where ``expand`` scatters a core-space vector back to original ids
  (folded vertices receive only their credit).

For a *single* original root ``a`` (subset-roots runs, the resilient
driver's per-root checkpoints), one weighted traversal from ``a``'s
residual host plus a per-vertex correction reproduces ``delta_a``
exactly — see :func:`per_root_correction`.

Directed graphs fold to the identity (pendant peeling is only exact
under the undirected path symmetry), as do graphs with no pendant
vertices; identity folds let callers keep their legacy code path
byte-for-byte.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from .._util import concat_ranges
from ..graph.csr import CSRGraph

__all__ = [
    "FOLD_SCHEMA",
    "FoldResult",
    "fold_degree_one",
    "per_root_correction",
    "folded_betweenness_centrality",
]

FOLD_SCHEMA = "repro.fold/v1"


@dataclass(frozen=True)
class FoldResult:
    """Outcome of one degree-1 folding pass.

    All arrays are indexed by *original* vertex id unless noted.

    Attributes
    ----------
    original: the graph that was folded.
    core: residual graph (original ids relabelled to ``0..k-1`` in
        sorted order); equal to ``original`` for identity folds.
    core_vertices: original ids of the residual vertices (sorted).
    core_index: original-id -> core-id map (-1 for folded vertices).
    weights: subtree weight each vertex carried when it left the peel —
        for residual vertices the final absorbed count (>= 1), for
        folded vertices their weight at peel time.
    parent: the neighbour each folded vertex was peeled into (-1 for
        residual vertices).
    host: residual representative of every vertex (original id); a
        residual vertex hosts itself.
    comp_label: connected-component label per vertex (original graph).
    comp_size: size of each vertex's connected component in the
        original graph (float64, ready for the credit formulas).
    credit: closed-form ordered-pair BC contributions restored by the
        fold (includes the residual settlement term).
    rounds: peel rounds until convergence.
    """

    original: CSRGraph
    core: CSRGraph
    core_vertices: np.ndarray
    core_index: np.ndarray
    weights: np.ndarray
    parent: np.ndarray
    host: np.ndarray
    comp_label: np.ndarray
    comp_size: np.ndarray
    credit: np.ndarray
    rounds: int = 0
    _digest: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def num_folded(self) -> int:
        return int(self.original.num_vertices - self.core_vertices.size)

    @property
    def is_identity(self) -> bool:
        """True when folding removed nothing — callers should take
        their unfolded code path (identical work, zero overhead)."""
        return self.num_folded == 0

    @property
    def core_weights(self) -> np.ndarray:
        """Per-core-vertex absorbed weights — the target-weight vector
        handed to weighted dependency accumulation."""
        return self.weights[self.core_vertices]

    def expand(self, core_values: np.ndarray) -> np.ndarray:
        """Scatter a core-space vector back to original vertex ids
        (folded vertices get 0)."""
        out = np.zeros(self.original.num_vertices, dtype=np.float64)
        out[self.core_vertices] = np.asarray(core_values, dtype=np.float64)
        return out

    def digest(self) -> str:
        """Byte-deterministic SHA-256 over the fold's full output.

        Two graphs fold identically iff their digests match; the
        service layer mixes this into result-cache keys so folded and
        unfolded results of the same query never collide.
        """
        cached = self._digest.get("value")
        if cached is None:
            h = hashlib.sha256()
            h.update(FOLD_SCHEMA.encode("utf-8"))
            h.update(self.original.digest().encode("utf-8"))
            h.update(self.core.digest().encode("utf-8"))
            h.update(np.ascontiguousarray(self.core_vertices,
                                          dtype=np.int64).tobytes())
            h.update(np.ascontiguousarray(self.parent,
                                          dtype=np.int64).tobytes())
            h.update(np.ascontiguousarray(self.weights,
                                          dtype=np.float64).tobytes())
            h.update(np.ascontiguousarray(self.credit,
                                          dtype=np.float64).tobytes())
            cached = self._digest["value"] = h.hexdigest()
        return cached


def _identity_fold(g: CSRGraph) -> FoldResult:
    n = g.num_vertices
    return FoldResult(
        original=g, core=g,
        core_vertices=np.arange(n, dtype=np.int64),
        core_index=np.arange(n, dtype=np.int64),
        weights=np.ones(n, dtype=np.float64),
        parent=np.full(n, -1, dtype=np.int64),
        host=np.arange(n, dtype=np.int64),
        comp_label=np.arange(n, dtype=np.int64),
        comp_size=np.ones(n, dtype=np.float64),
        credit=np.zeros(n, dtype=np.float64),
        rounds=0,
    )


def _components(g: CSRGraph) -> tuple[np.ndarray, np.ndarray]:
    """Per-vertex component label and component size (original graph)."""
    from ..graph.build import _component_labels

    labels = _component_labels(g)
    sizes = np.bincount(labels).astype(np.float64)[labels]
    return labels, sizes


def fold_degree_one(g: CSRGraph) -> FoldResult:
    """Iteratively peel pendant vertices; exact by construction.

    Each round removes every vertex with exactly one surviving
    neighbour (self-loops ignored — they never carry a shortest path).
    Two adjacent pendants (a residual ``K2``) are resolved
    deterministically: the higher id folds into the lower, which then
    stays as an isolated residual vertex.  Trees therefore fold to one
    residual vertex per component.

    Directed graphs return the identity fold.
    """
    n = g.num_vertices
    if n == 0 or not g.undirected:
        return _identity_fold(g)

    indptr, adj = g.indptr, g.adj
    # Degree excluding self-loops: a self-loop never changes distances
    # or path counts, so it must not block (or cause) a peel.
    deg = (indptr[1:] - indptr[:-1]).astype(np.int64)
    if adj.size:
        self_loops = np.bincount(
            g.edge_sources()[adj == g.edge_sources()], minlength=n)
        deg -= self_loops.astype(np.int64)

    alive = np.ones(n, dtype=bool)
    w = np.ones(n, dtype=np.float64)
    weights = np.ones(n, dtype=np.float64)
    parent = np.full(n, -1, dtype=np.int64)
    credit = np.zeros(n, dtype=np.float64)
    labels, comp = _components(g)
    rounds = 0

    while True:
        pend = np.flatnonzero(alive & (deg == 1))
        if pend.size == 0:
            break
        # Sole surviving non-self neighbour of each pendant.
        starts = indptr[pend]
        counts = indptr[pend + 1] - starts
        nbrs = adj[concat_ranges(starts, counts)]
        owner = np.repeat(pend, counts)
        keep = alive[nbrs] & (nbrs != owner)
        nbrs, owner = nbrs[keep], owner[keep]
        into = np.full(n, -1, dtype=np.int64)
        into[owner] = nbrs  # deg == 1 => exactly one survivor per pendant
        targets = into[pend]
        # K2 pairs (both endpoints pendant): peel the higher id into the
        # lower; the lower skips this round and ends as an isolated
        # residual vertex.
        is_pend = np.zeros(n, dtype=bool)
        is_pend[pend] = True
        take = ~(is_pend[targets] & (targets > pend))
        peel, hosts = pend[take], targets[take]
        if peel.size == 0:
            break
        rounds += 1
        wu = w[peel]
        N = comp[peel]
        weights[peel] = wu
        credit[peel] += (wu - 1.0) * (N - wu)
        np.add.at(credit, hosts, wu * (N - wu - 1.0))
        np.add.at(w, hosts, wu)
        parent[peel] = hosts
        alive[peel] = False
        deg[peel] = 0
        np.add.at(deg, hosts, -1)

    if rounds == 0:
        return _identity_fold(g)

    core_vertices = np.flatnonzero(alive).astype(np.int64)
    weights[core_vertices] = w[core_vertices]
    # Residual settlement: a residual vertex is interior to every path
    # between its absorbed subtree and the rest of its component.
    credit[core_vertices] += ((w[core_vertices] - 1.0)
                              * (comp[core_vertices] - w[core_vertices]))
    core_index = np.full(n, -1, dtype=np.int64)
    core_index[core_vertices] = np.arange(core_vertices.size)
    # Residual host of every vertex: follow parents until a survivor.
    host = np.arange(n, dtype=np.int64)
    folded = np.flatnonzero(~alive)
    host[folded] = parent[folded]
    while True:
        unresolved = ~alive[host]
        if not np.any(unresolved):
            break
        host[unresolved] = parent[host[unresolved]]

    from ..graph.build import induced_subgraph

    core = induced_subgraph(g, core_vertices)
    return FoldResult(
        original=g, core=core, core_vertices=core_vertices,
        core_index=core_index, weights=weights, parent=parent, host=host,
        comp_label=labels.astype(np.int64), comp_size=comp, credit=credit,
        rounds=rounds,
    )


def per_root_correction(fold: FoldResult, root: int) -> tuple[int, np.ndarray]:
    """Core root + additive correction reproducing one original root.

    Returns ``(core_root, corr)`` such that the original graph's
    dependency vector for ``root`` equals ``expand(delta^w) + corr``,
    where ``delta^w`` is one *weighted* accumulation (target weights
    :attr:`FoldResult.core_weights`) from ``core_root`` on the core.

    The correction closes the fold in ordered units: every vertex ``v``
    in the root's component is interior to the paths between its
    absorbed subtree and the root (``weights[v] - 1`` of them), except
    along the root's own peel path, where the far side of each hop —
    ``N - weights[p] - 1`` targets — is what the root's paths cross.
    """
    root = int(root)
    sub, parent, comp = fold.weights, fold.parent, fold.comp_size
    n = fold.original.num_vertices
    if not 0 <= root < n:
        raise IndexError(f"root {root} out of range [0, {n})")
    corr = np.zeros(n, dtype=np.float64)
    if fold.is_identity:
        return root, corr
    in_comp = fold.comp_label == fold.comp_label[root]
    corr[in_comp] = sub[in_comp] - 1.0
    corr[root] = 0.0
    N = comp[root]
    p = root
    while parent[p] != -1:
        q = int(parent[p])
        corr[q] = N - sub[p] - 1.0
        p = q
    core_root = int(fold.core_index[fold.host[root]])
    return core_root, corr


def folded_betweenness_centrality(fold: FoldResult,
                                  dependencies) -> np.ndarray:
    """Assemble full ordered-pair BC from weighted core traversals.

    ``dependencies(core, core_root, target_weights) -> delta`` runs one
    weighted accumulation on the core; this helper sums
    ``w[s] * delta^w_s`` over every core root, expands back to original
    ids and adds the fold credits.  The caller halves for undirected
    graphs, exactly as on the unfolded path.
    """
    tw = fold.core_weights
    acc = np.zeros(fold.core.num_vertices, dtype=np.float64)
    for cs in range(fold.core.num_vertices):
        acc += tw[cs] * dependencies(fold.core, cs, tw)
    return fold.expand(acc) + fold.credit
