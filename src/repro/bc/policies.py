"""Per-iteration parallelisation-strategy policies.

A policy decides, for every BFS iteration of every root, whether the
level is processed with the work-efficient, edge-parallel or
vertex-parallel thread assignment.  The engine asks for an initial
strategy, then calls :meth:`next_strategy` after each completed level
with the current and next frontier sizes — exactly the information
Algorithm 4 uses.

Every decision is also available as an auditable record: :meth:`decide`
returns a :class:`Decision` carrying the chosen strategy *plus* the
exact inputs and threshold comparison that produced it — what the
decision-trace subsystem (``repro.trace/v1``) serialises so a run can
later answer "why edge-parallel at depth 3?".
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..errors import StrategyError

__all__ = [
    "WORK_EFFICIENT",
    "EDGE_PARALLEL",
    "VERTEX_PARALLEL",
    "GPU_FAN",
    "Decision",
    "Policy",
    "FixedPolicy",
    "HybridPolicy",
    "FrontierGuardPolicy",
]

WORK_EFFICIENT = "work-efficient"
EDGE_PARALLEL = "edge-parallel"
VERTEX_PARALLEL = "vertex-parallel"
GPU_FAN = "gpu-fan"

_KNOWN = {WORK_EFFICIENT, EDGE_PARALLEL, VERTEX_PARALLEL, GPU_FAN}


@dataclass(frozen=True)
class Decision:
    """One strategy decision with its full audit context.

    ``inputs`` holds every quantity the rule compared (frontier
    lengths, thresholds); ``rule`` spells the comparison out in the
    exact form the ``repro trace explain`` audit prints.
    """

    strategy: str
    policy: str                      # "fixed" | "hybrid" | "frontier-guard"
    rule: str
    inputs: dict = field(default_factory=dict)


class Policy(ABC):
    """Strategy-selection protocol used by the per-root engine."""

    #: Trace label for this policy's decisions.
    kind: str = "policy"

    @abstractmethod
    def initial(self) -> str:
        """Strategy for the first iteration (frontier = the root)."""

    @abstractmethod
    def decide(self, current: str, q_curr_len: int, q_next_len: int) -> Decision:
        """The next iteration's strategy as an auditable
        :class:`Decision`, given the just-finished level's frontier
        length and the upcoming frontier length."""

    def initial_decision(self) -> Decision:
        """The first iteration's strategy as an auditable record."""
        return Decision(strategy=self.initial(), policy=self.kind,
                        rule=f"initial: {self.initial()}")

    def next_strategy(self, current: str, q_curr_len: int, q_next_len: int) -> str:
        """Strategy for the next iteration (the :class:`Decision`'s
        ``strategy`` field, for callers that don't need the audit)."""
        return self.decide(current, q_curr_len, q_next_len).strategy


class FixedPolicy(Policy):
    """Always use one strategy (the non-adaptive baselines)."""

    kind = "fixed"

    def __init__(self, strategy: str):
        if strategy not in _KNOWN:
            raise StrategyError(f"unknown strategy {strategy!r}; known: {sorted(_KNOWN)}")
        self.strategy = strategy

    def initial(self) -> str:
        return self.strategy

    def decide(self, current: str, q_curr_len: int, q_next_len: int) -> Decision:
        return Decision(
            strategy=self.strategy, policy=self.kind,
            rule=f"fixed: {self.strategy}",
            inputs={"q_curr": int(q_curr_len), "q_next": int(q_next_len)},
        )


class HybridPolicy(Policy):
    """Algorithm 4: reconsider only when the frontier size *changes*
    substantially.

    If ``|Q_next - Q_curr| <= alpha`` the current strategy is kept;
    otherwise edge-parallel is selected when the upcoming frontier
    exceeds ``beta``, else work-efficient.  The paper found
    alpha = 768, beta = 512 best on its hardware, and starts
    work-efficient because a mistaken edge-parallel start costs far
    more (>10x) than a mistaken work-efficient one (2.2x).
    """

    kind = "hybrid"

    def __init__(self, alpha: int = 768, beta: int = 512):
        if alpha < 0 or beta < 0:
            raise StrategyError("alpha and beta must be non-negative")
        self.alpha = int(alpha)
        self.beta = int(beta)

    def initial(self) -> str:
        return WORK_EFFICIENT

    def initial_decision(self) -> Decision:
        return Decision(
            strategy=WORK_EFFICIENT, policy=self.kind,
            rule="initial: work-efficient (a mistaken edge-parallel start "
                 "costs >10x, a mistaken work-efficient one 2.2x)",
            inputs={"alpha": self.alpha, "beta": self.beta},
        )

    def decide(self, current: str, q_curr_len: int, q_next_len: int) -> Decision:
        q_curr, q_next = int(q_curr_len), int(q_next_len)
        q_change = abs(q_next - q_curr)
        inputs = {"q_curr": q_curr, "q_next": q_next,
                  "delta_frontier": q_change,
                  "alpha": self.alpha, "beta": self.beta}
        if q_change <= self.alpha:
            return Decision(
                strategy=current, policy=self.kind, inputs=inputs,
                rule=f"|Δfrontier|={q_change} <= alpha={self.alpha}: "
                     f"keep {current}",
            )
        if q_next > self.beta:
            return Decision(
                strategy=EDGE_PARALLEL, policy=self.kind, inputs=inputs,
                rule=f"|Δfrontier|={q_change} > alpha={self.alpha} and "
                     f"q_next={q_next} > beta={self.beta}: edge-parallel",
            )
        return Decision(
            strategy=WORK_EFFICIENT, policy=self.kind, inputs=inputs,
            rule=f"|Δfrontier|={q_change} > alpha={self.alpha} and "
                 f"q_next={q_next} <= beta={self.beta}: work-efficient",
        )


class FrontierGuardPolicy(Policy):
    """Edge-parallel with the sampling method's per-iteration guard.

    When Algorithm 5 selects the edge-parallel method for a graph, the
    paper still refuses to use it on iterations with trivial work: the
    vertex frontier must hold at least ``min_frontier`` (512) elements,
    a parameter "designed to scale with the architecture rather than
    the size or structure of the graph".
    """

    kind = "frontier-guard"

    def __init__(self, min_frontier: int = 512):
        if min_frontier < 0:
            raise StrategyError("min_frontier must be non-negative")
        self.min_frontier = int(min_frontier)

    def initial(self) -> str:
        return WORK_EFFICIENT  # the first frontier is just the root

    def initial_decision(self) -> Decision:
        return Decision(
            strategy=WORK_EFFICIENT, policy=self.kind,
            rule="initial: work-efficient (the first frontier is just "
                 "the root)",
            inputs={"min_frontier": self.min_frontier},
        )

    def decide(self, current: str, q_curr_len: int, q_next_len: int) -> Decision:
        q_next = int(q_next_len)
        inputs = {"q_curr": int(q_curr_len), "q_next": q_next,
                  "min_frontier": self.min_frontier}
        if q_next >= self.min_frontier:
            return Decision(
                strategy=EDGE_PARALLEL, policy=self.kind, inputs=inputs,
                rule=f"q_next={q_next} >= min_frontier="
                     f"{self.min_frontier}: edge-parallel",
            )
        return Decision(
            strategy=WORK_EFFICIENT, policy=self.kind, inputs=inputs,
            rule=f"q_next={q_next} < min_frontier="
                 f"{self.min_frontier}: work-efficient",
        )
