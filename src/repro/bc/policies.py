"""Per-iteration parallelisation-strategy policies.

A policy decides, for every BFS iteration of every root, whether the
level is processed with the work-efficient, edge-parallel or
vertex-parallel thread assignment.  The engine asks for an initial
strategy, then calls :meth:`next_strategy` after each completed level
with the current and next frontier sizes — exactly the information
Algorithm 4 uses.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..errors import StrategyError

__all__ = [
    "WORK_EFFICIENT",
    "EDGE_PARALLEL",
    "VERTEX_PARALLEL",
    "GPU_FAN",
    "Policy",
    "FixedPolicy",
    "HybridPolicy",
    "FrontierGuardPolicy",
]

WORK_EFFICIENT = "work-efficient"
EDGE_PARALLEL = "edge-parallel"
VERTEX_PARALLEL = "vertex-parallel"
GPU_FAN = "gpu-fan"

_KNOWN = {WORK_EFFICIENT, EDGE_PARALLEL, VERTEX_PARALLEL, GPU_FAN}


class Policy(ABC):
    """Strategy-selection protocol used by the per-root engine."""

    @abstractmethod
    def initial(self) -> str:
        """Strategy for the first iteration (frontier = the root)."""

    @abstractmethod
    def next_strategy(self, current: str, q_curr_len: int, q_next_len: int) -> str:
        """Strategy for the next iteration, given the just-finished
        level's frontier length and the upcoming frontier length."""


class FixedPolicy(Policy):
    """Always use one strategy (the non-adaptive baselines)."""

    def __init__(self, strategy: str):
        if strategy not in _KNOWN:
            raise StrategyError(f"unknown strategy {strategy!r}; known: {sorted(_KNOWN)}")
        self.strategy = strategy

    def initial(self) -> str:
        return self.strategy

    def next_strategy(self, current: str, q_curr_len: int, q_next_len: int) -> str:
        return self.strategy


class HybridPolicy(Policy):
    """Algorithm 4: reconsider only when the frontier size *changes*
    substantially.

    If ``|Q_next - Q_curr| <= alpha`` the current strategy is kept;
    otherwise edge-parallel is selected when the upcoming frontier
    exceeds ``beta``, else work-efficient.  The paper found
    alpha = 768, beta = 512 best on its hardware, and starts
    work-efficient because a mistaken edge-parallel start costs far
    more (>10x) than a mistaken work-efficient one (2.2x).
    """

    def __init__(self, alpha: int = 768, beta: int = 512):
        if alpha < 0 or beta < 0:
            raise StrategyError("alpha and beta must be non-negative")
        self.alpha = int(alpha)
        self.beta = int(beta)

    def initial(self) -> str:
        return WORK_EFFICIENT

    def next_strategy(self, current: str, q_curr_len: int, q_next_len: int) -> str:
        q_change = abs(int(q_next_len) - int(q_curr_len))
        if q_change <= self.alpha:
            return current
        return EDGE_PARALLEL if q_next_len > self.beta else WORK_EFFICIENT


class FrontierGuardPolicy(Policy):
    """Edge-parallel with the sampling method's per-iteration guard.

    When Algorithm 5 selects the edge-parallel method for a graph, the
    paper still refuses to use it on iterations with trivial work: the
    vertex frontier must hold at least ``min_frontier`` (512) elements,
    a parameter "designed to scale with the architecture rather than
    the size or structure of the graph".
    """

    def __init__(self, min_frontier: int = 512):
        if min_frontier < 0:
            raise StrategyError("min_frontier must be non-negative")
        self.min_frontier = int(min_frontier)

    def initial(self) -> str:
        return WORK_EFFICIENT  # the first frontier is just the root

    def next_strategy(self, current: str, q_curr_len: int, q_next_len: int) -> str:
        return EDGE_PARALLEL if q_next_len >= self.min_frontier else WORK_EFFICIENT
