"""Sampling strategy selection (Algorithm 5).

The sampling method spends a little *useful* work to classify the
graph: it processes ``n_samps`` (512) source vertices with the
work-efficient method, records the maximum BFS depth of each, and takes
the **median** of those depths as an unbiased, outlier-robust estimate
of the traversal depth the remaining roots will see.  If the median is
below ``gamma * log2(n)`` (gamma = 4) the graph behaves like a
small-world / scale-free network and the edge-parallel method is used
for the remaining roots — still guarded per iteration by a minimum
frontier of 512 vertices (see
:class:`repro.bc.policies.FrontierGuardPolicy`).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "DEFAULT_N_SAMPS",
    "DEFAULT_GAMMA",
    "DEFAULT_MIN_FRONTIER",
    "choose_edge_parallel",
    "classification_record",
    "sample_roots",
]

#: Paper Section IV-C: 512 sampled roots, gamma = 4, and a 512-element
#: frontier guard "designed to scale with the architecture".
DEFAULT_N_SAMPS = 512
DEFAULT_GAMMA = 4.0
DEFAULT_MIN_FRONTIER = 512


def choose_edge_parallel(
    max_depths,
    num_vertices: int,
    gamma: float = DEFAULT_GAMMA,
) -> bool:
    """Algorithm 5's decision: is the median sampled BFS depth small
    enough that the graph is small-world/scale-free?

    ``keys[n_samps / 2] < gamma * log2(n)`` after sorting — i.e. the
    median (the pseudocode's upper median).
    """
    depths = np.sort(np.asarray(max_depths, dtype=np.float64))
    if depths.size == 0:
        return False
    if num_vertices < 2:
        return False
    median = depths[depths.size // 2]
    return bool(median < gamma * math.log2(num_vertices))


def classification_record(
    max_depths,
    num_vertices: int,
    gamma: float = DEFAULT_GAMMA,
) -> dict:
    """Algorithm 5's decision with its full audit context.

    Returns a JSON-serialisable dict carrying every input the cutoff
    comparison used — the sorted sample depths, their (upper) median,
    ``gamma`` and the ``gamma * log2(n)`` cutoff — plus the outcome and
    a human-readable ``rule`` string, mirroring
    :class:`~repro.bc.policies.Decision` for the graph-level decision.
    The decision-trace subsystem records exactly this dict, so
    ``repro trace explain`` can replay the classification.
    """
    depths = np.sort(np.asarray(max_depths, dtype=np.int64))
    chose = choose_edge_parallel(depths, num_vertices, gamma=gamma)
    record = {
        "policy": "sampling",
        "n_samps": int(depths.size),
        "gamma": float(gamma),
        "num_vertices": int(num_vertices),
        "depths": [int(d) for d in depths],
        "chose_edge_parallel": bool(chose),
    }
    if depths.size == 0 or num_vertices < 2:
        record.update({
            "median_depth": None, "depth_cutoff": None,
            "rule": "degenerate sample (no depths or n < 2): "
                    "work-efficient",
        })
        return record
    median = int(depths[depths.size // 2])
    cutoff = float(gamma) * math.log2(num_vertices)
    cmp = "<" if median < cutoff else ">="
    outcome = ("edge-parallel (small-world/scale-free)" if chose
               else "work-efficient (high diameter)")
    record.update({
        "median_depth": median,
        "depth_cutoff": cutoff,
        "rule": f"median_depth={median} {cmp} gamma*log2(n)="
                f"{gamma:g}*log2({num_vertices})={cutoff:.2f}: {outcome}",
    })
    return record


def sample_roots(num_vertices: int, n_samps: int = DEFAULT_N_SAMPS,
                 roots=None) -> np.ndarray:
    """First ``n_samps`` roots from ``roots`` (or from 0..n-1).

    The paper simply takes the first 512 sources it would process
    anyway — the samples are not wasted work, which is the method's
    selling point over preprocessing.
    """
    if roots is None:
        roots = np.arange(num_vertices, dtype=np.int64)
    else:
        roots = np.asarray(roots, dtype=np.int64)
    k = min(int(n_samps), roots.size)
    return roots[:k]
