"""Sampling strategy selection (Algorithm 5).

The sampling method spends a little *useful* work to classify the
graph: it processes ``n_samps`` (512) source vertices with the
work-efficient method, records the maximum BFS depth of each, and takes
the **median** of those depths as an unbiased, outlier-robust estimate
of the traversal depth the remaining roots will see.  If the median is
below ``gamma * log2(n)`` (gamma = 4) the graph behaves like a
small-world / scale-free network and the edge-parallel method is used
for the remaining roots — still guarded per iteration by a minimum
frontier of 512 vertices (see
:class:`repro.bc.policies.FrontierGuardPolicy`).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "DEFAULT_N_SAMPS",
    "DEFAULT_GAMMA",
    "DEFAULT_MIN_FRONTIER",
    "choose_edge_parallel",
    "sample_roots",
]

#: Paper Section IV-C: 512 sampled roots, gamma = 4, and a 512-element
#: frontier guard "designed to scale with the architecture".
DEFAULT_N_SAMPS = 512
DEFAULT_GAMMA = 4.0
DEFAULT_MIN_FRONTIER = 512


def choose_edge_parallel(
    max_depths,
    num_vertices: int,
    gamma: float = DEFAULT_GAMMA,
) -> bool:
    """Algorithm 5's decision: is the median sampled BFS depth small
    enough that the graph is small-world/scale-free?

    ``keys[n_samps / 2] < gamma * log2(n)`` after sorting — i.e. the
    median (the pseudocode's upper median).
    """
    depths = np.sort(np.asarray(max_depths, dtype=np.float64))
    if depths.size == 0:
        return False
    if num_vertices < 2:
        return False
    median = depths[depths.size // 2]
    return bool(median < gamma * math.log2(num_vertices))


def sample_roots(num_vertices: int, n_samps: int = DEFAULT_N_SAMPS,
                 roots=None) -> np.ndarray:
    """First ``n_samps`` roots from ``roots`` (or from 0..n-1).

    The paper simply takes the first 512 sources it would process
    anyway — the samples are not wasted work, which is the method's
    selling point over preprocessing.
    """
    if roots is None:
        roots = np.arange(num_vertices, dtype=np.int64)
    else:
        roots = np.asarray(roots, dtype=np.int64)
    k = min(int(n_samps), roots.size)
    return roots[:k]
