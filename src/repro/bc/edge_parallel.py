"""Literal edge-parallel kernel (Jia et al., Section III-A).

One (virtual) thread per directed edge; *every* edge is inspected on
*every* iteration of both stages — the O(n^2 + m) traversal whose
wasted inspections the paper's Table III quantifies.  Perfectly load
balanced, but asymptotically inefficient on high-diameter graphs.

The forward stage is expressed with NumPy masks over the full edge
arrays (which is faithful: the kernel's per-edge predicate *is* a mask
over all edges).  Values match the work-efficient kernel exactly; the
test suite asserts it.
"""

from __future__ import annotations

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["edge_parallel_root", "bc_edge_parallel"]

UNREACHED = -1


def edge_parallel_root(g: CSRGraph, s: int):
    """Run both stages edge-parallel for source ``s``.

    Returns ``(d, sigma, delta, iterations)`` where ``iterations`` is
    the number of full-edge-sweep iterations the forward stage used.
    """
    n = g.num_vertices
    s = int(s)
    if not 0 <= s < n:
        raise IndexError(f"source {s} out of range [0, {n})")
    esrc = g.edge_sources()
    edst = g.adj
    d = np.full(n, UNREACHED, dtype=np.int64)
    sigma = np.zeros(n, dtype=np.float64)
    d[s] = 0
    sigma[s] = 1.0
    depth = 0
    iterations = 0
    while True:
        iterations += 1
        # Each edge thread checks whether its source is in the current
        # depth; others do nothing (the wasted work).
        active = d[esrc] == depth
        if np.any(active):
            targets = edst[active]
            fresh = targets[d[targets] == UNREACHED]
            if fresh.size:
                d[np.unique(fresh)] = depth + 1
            useful = active & (d[edst] == depth + 1)
            if np.any(useful):
                np.add.at(sigma, edst[useful], sigma[esrc[useful]])
        if not np.any(d == depth + 1):
            break
        depth += 1
    max_depth = depth

    # Backward stage: every edge inspected once per level.  In the
    # edge-parallel layout multiple threads may update the same vertex's
    # dependency, hence the atomic adds the paper notes are unavoidable
    # here; np.add.at is the sequentially-consistent equivalent.
    delta = np.zeros(n, dtype=np.float64)
    for depth in range(max_depth - 1, 0, -1):
        on_level = d[esrc] == depth
        succ = on_level & (d[edst] == d[esrc] + 1)
        if np.any(succ):
            contrib = sigma[esrc[succ]] / sigma[edst[succ]] * (1.0 + delta[edst[succ]])
            np.add.at(delta, esrc[succ], contrib)
    return d, sigma, delta, iterations


def bc_edge_parallel(g: CSRGraph, sources=None) -> np.ndarray:
    """Exact BC computed with the literal edge-parallel kernel."""
    n = g.num_vertices
    bc = np.zeros(n, dtype=np.float64)
    for s in (range(n) if sources is None else sources):
        s = int(s)
        _, _, delta, _ = edge_parallel_root(g, s)
        delta[s] = 0.0
        bc += delta
    if g.undirected:
        bc /= 2.0
    return bc
