"""The ``repro.events/v1`` lifecycle event stream.

One file, ``events.jsonl``, next to the service journal, same framing
(``<crc32 hex> <canonical single-line JSON>\\n``).  Each event body
carries:

``event``
    Event kind.  Journal-derived kinds (``service-open``, ``submit``,
    ``shed``, ``attempt-start``, ``backoff``, ``done``, ``fail``,
    ``cancel``, ``breaker``) additionally carry ``jseq`` — the sequence
    number of the journal record they mirror.  Scheduler-decision kinds
    (``sched.dispatch``, ``sched.retry``, ``sched.redispatch``,
    ``sched.deadline-degrade`` …) and client-visible kinds
    (``dedupe``) have no ``jseq``: they narrate, the journal decides.
``seq``
    Strictly increasing event number across the file's whole life.
``t``
    *Simulated* seconds on the scheduler clock at emit time.  Never a
    wall-clock reading — this is what makes two identical seeded runs
    byte-identical, the property the CI telemetry job compares.
``trace_id``
    :func:`trace_id_for` of the job's spec — a pure function of the
    content key, so a ``derive_job_id``-deduped resubmit (and a client
    retry after a shed) lands on the *same* trace without any id
    riding the spool ticket or the journal.

**Exactly-once discipline.**  Events are emitted immediately *after*
their journal record is durable (via :attr:`JobJournal.on_append`), so
a crash can only ever lose the event, never duplicate it.  On reopen,
:meth:`TelemetryLog.reconcile` diffs the journal's sequence numbers
against the events' ``jseq`` set and synthesises exactly the missing
ones (their ``t`` is reopen time — occurrence time died with the
process).  Duplicates are impossible by construction: one journal
record, at most one live emit, and reconcile only fills holes.

**Telemetry never fails the service.**  An event append that hits an
injected ``ENOSPC`` is *dropped* (counted in ``telemetry.dropped``) and
repaired by the next reopen's reconcile; a
:class:`~repro.service.storage.SimulatedCrash` propagates, because
nothing may survive its own process death.
"""

from __future__ import annotations

import json
import os
import zlib

from ..observability.clock import SpanClock
from ..observability.registry import NULL_REGISTRY

# NOTE: nothing from repro.service is imported at module level — the
# daemon imports this package, so a top-level import back into
# repro.service would be circular.  JobSpec/ServiceStorage are pulled
# in lazily where needed.

__all__ = [
    "EVENTS_SCHEMA",
    "TelemetryLog",
    "decode_event_line",
    "encode_event",
    "read_events",
    "trace_id_for",
    "verify_events",
]

EVENTS_SCHEMA = "repro.events/v1"

#: Journal record kinds and the event kind each is mirrored as.
_JOURNAL_EVENTS = {
    "open": "service-open",
    "submit": "submit",
    "shed": "shed",
    "start": "attempt-start",
    "requeue": "backoff",
    "done": "done",
    "fail": "fail",
    "cancel": "cancel",
    "breaker": "breaker",
}


def trace_id_for(spec) -> str:
    """The job's trace id: ``tr`` + 16 hex chars of its content key.

    A pure function of *what the job computes* (job id and tenant are
    excluded by :meth:`~repro.service.jobs.JobSpec.content_key`), so
    every resubmission of the same query — a client retry after a shed,
    a ``derive_job_id``-deduped double-send, a recovery re-run — joins
    the one trace.  Accepts a :class:`JobSpec` or its dict form.
    """
    if isinstance(spec, dict):
        from ..service.jobs import JobSpec

        spec = JobSpec.from_dict(spec)
    return "tr" + spec.content_key()[:16]


def encode_event(event: dict) -> str:
    """One event line; same framing as the journal (crc32 + canonical
    JSON) so the two artifacts share torn-tail/rot semantics."""
    body = json.dumps(event, sort_keys=True, separators=(",", ":"))
    if "\n" in body:
        raise ValueError("event bodies must be single-line")
    return f"{zlib.crc32(body.encode('utf-8')) & 0xFFFFFFFF:08x} {body}\n"


def decode_event_line(line: str) -> dict:
    """Inverse of :func:`encode_event`; raises ``ValueError`` on any
    framing/checksum problem (caller classifies torn tail vs rot)."""
    if not line.endswith("\n"):
        raise ValueError("event not newline-terminated (torn write)")
    raw = line[:-1]
    if len(raw) < 10 or raw[8] != " ":
        raise ValueError("bad framing: expected '<crc8> <json>'")
    crc_hex, body = raw[:8], raw[9:]
    try:
        crc = int(crc_hex, 16)
    except ValueError:
        raise ValueError(f"bad checksum field {crc_hex!r}")
    actual = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    if crc != actual:
        raise ValueError(
            f"checksum mismatch: recorded {crc_hex}, actual {actual:08x}")
    try:
        event = json.loads(body)
    except json.JSONDecodeError as exc:
        raise ValueError(f"checksummed body is not JSON: {exc}")
    if not isinstance(event, dict) or "event" not in event:
        raise ValueError("event body must be an object with an 'event'")
    return event


def read_events(path):
    """Every intact event of one stream; returns ``(events, torn_tail)``.

    Mirrors :func:`~repro.service.journal.read_journal`: a broken last
    line is a torn write (dropped, flagged), broken interior lines are
    at-rest damage — but unlike the journal the stream is *advisory*,
    so interior rot skips the line (counted per caller via
    :func:`verify_events`) instead of refusing to read."""
    if not os.path.exists(path):
        return [], False
    with open(path, "r", encoding="utf-8", newline="") as fh:
        lines = fh.readlines()
    events, torn = [], False
    for i, line in enumerate(lines):
        try:
            events.append(decode_event_line(line))
        except ValueError:
            if i == len(lines) - 1:
                torn = True
    return events, torn


def verify_events(path, journal_records=None) -> dict:
    """Invariant check over one event stream.

    * event ``seq`` strictly increasing (append-only, no duplicates);
    * ``jseq`` values unique (a journal record is mirrored at most
      once — the exactly-once half the crash grid asserts);
    * with ``journal_records``: every journal sequence number has its
      event (the no-loss half; holds after any clean reopen, because
      reconcile back-fills).

    Returns ``{"ok", "events", "torn_tail", "problems"}``.
    """
    events, torn = read_events(path)
    problems = []
    last_seq = 0
    jseqs = []
    for ev in events:
        seq = ev.get("seq")
        if not isinstance(seq, int) or seq <= last_seq:
            problems.append(f"event seq not increasing at {seq!r}")
        else:
            last_seq = seq
        if "jseq" in ev:
            jseqs.append(ev["jseq"])
    if len(jseqs) != len(set(jseqs)):
        dupes = sorted({j for j in jseqs if jseqs.count(j) > 1})
        problems.append(f"duplicate jseq(s): {dupes}")
    if journal_records is not None:
        missing = [r["seq"] for r in journal_records
                   if r.get("seq") not in set(jseqs)]
        if missing:
            problems.append(f"journal seq(s) with no event: {missing}")
    return {"ok": not problems, "events": len(events),
            "torn_tail": bool(torn), "problems": problems}


class TelemetryLog:
    """Durable, deterministic lifecycle event stream (module docs).

    Parameters
    ----------
    path:
        The stream file (``<service root>/events.jsonl``).
    storage:
        The service's :class:`ServiceStorage` — event appends are
        durable writes and must share the fault/crash chokepoint.
    clock:
        The scheduler's :class:`SpanClock`; only its deterministic
        ``sim_seconds`` is ever read.
    """

    def __init__(self, path, *, storage=None,
                 clock: SpanClock | None = None, metrics=None):
        self.path = str(path)
        if storage is None:
            from ..service.storage import ServiceStorage

            storage = ServiceStorage()
        self.storage = storage
        self.clock = clock if clock is not None else SpanClock()
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        #: Events dropped because the disk refused the append (repaired
        #: by the next reopen's reconcile).
        self.dropped = 0
        self.events, torn = read_events(self.path)
        if torn:
            self._truncate_torn()
        self._seq = (self.events[-1]["seq"] + 1) if self.events else 1
        #: job id -> trace id, learned from submit/shed events/records.
        self._trace: dict = {}
        #: job id -> phase accounting (see :meth:`_job`).
        self._jobs: dict = {}
        for ev in self.events:
            self._fold(ev)

    # -- internals -----------------------------------------------------
    def _truncate_torn(self) -> None:
        """Drop the torn (never-acknowledged) tail line, exactly like
        the journal's active-segment reopen."""
        with open(self.path, "r", encoding="utf-8", newline="") as fh:
            lines = fh.readlines()
        keep = 0
        for line in lines[:-1]:
            keep += len(line.encode("utf-8"))
        with open(self.path, "r+b") as fh:
            fh.truncate(keep)
        self.metrics.inc("telemetry.torn_truncated")

    def _now(self) -> float:
        return round(float(self.clock.sim_seconds), 9)

    def _job(self, job_id: str) -> dict:
        return self._jobs.setdefault(job_id, {
            "queued": 0.0, "backoff": 0.0, "ready_t": 0.0,
            "terminal": False,
        })

    def _fold(self, ev: dict) -> None:
        """Rebuild per-job accounting from an already-durable event (on
        reopen) without re-emitting it."""
        kind = ev.get("event")
        job_id = ev.get("job_id")
        if ev.get("trace_id") and job_id:
            self._trace[job_id] = ev["trace_id"]
        if not job_id:
            return
        if kind == "submit":
            st = self._job(job_id)
            if st["terminal"]:  # resubmit after terminal failure
                st = {"queued": 0.0, "backoff": 0.0,
                      "ready_t": 0.0, "terminal": False}
                self._jobs[job_id] = st
            st["ready_t"] = float(ev.get("t", 0.0))
        elif kind == "attempt-start":
            self._job(job_id)["queued"] += float(ev.get("queue_wait", 0.0))
        elif kind == "backoff":
            st = self._job(job_id)
            st["backoff"] += float(ev.get("delay", 0.0))
            st["ready_t"] = float(ev.get("t", 0.0))
        elif kind in ("done", "fail", "cancel", "shed"):
            self._job(job_id)["terminal"] = True

    def trace_for(self, job_id) -> str | None:
        """The trace id this job's submit/shed established (if seen)."""
        return self._trace.get(job_id)

    # -- emission ------------------------------------------------------
    def emit(self, kind: str, *, jseq: int | None = None, **fields):
        """Append one event (durable, fsynced); returns it, or ``None``
        when the disk refused and the event was dropped."""
        event = {"event": str(kind), "seq": self._seq, "t": self._now()}
        if jseq is not None:
            event["jseq"] = int(jseq)
        event.update(fields)
        try:
            self.storage.append_line(self.path, encode_event(event),
                                     "journal")
        except OSError:
            # Advisory stream: never fail the service over telemetry.
            # A lost jseq event is back-filled by the next reconcile.
            self.dropped += 1
            self.metrics.inc("telemetry.dropped", kind=str(kind))
            return None
        self._seq += 1
        self.events.append(event)
        self.metrics.inc("telemetry.events", kind=str(kind))
        return event

    # -- journal mirroring ---------------------------------------------
    def on_journal_record(self, rec: dict):
        """Mirror one just-durable journal record as its lifecycle event
        (wired to :attr:`JobJournal.on_append`; also the reconcile
        path).  Returns the emitted event or ``None``."""
        kind = rec.get("kind")
        seq = rec.get("seq")
        if kind == "open":
            return self.emit("service-open", jseq=seq)
        if kind in ("submit", "shed"):
            job = rec.get("job") or {}
            job_id = str(job.get("job_id", ""))
            try:
                trace = trace_id_for(job)
            except Exception:
                trace = None
            if trace and job_id:
                self._trace[job_id] = trace
            common = {
                "trace_id": trace, "job_id": job_id,
                "tenant": job.get("tenant"), "graph": job.get("graph"),
                "strategy": job.get("strategy"),
                "roots": job.get("roots"),
            }
            if kind == "submit":
                st = self._job(job_id)
                if st["terminal"]:  # another attempt after terminal state
                    self._jobs[job_id] = st = {
                        "queued": 0.0, "backoff": 0.0,
                        "ready_t": 0.0, "terminal": False}
                st["ready_t"] = self._now()
                return self.emit("submit", jseq=seq,
                                 mode=rec.get("mode"), **common)
            self._job(job_id)["terminal"] = True
            return self.emit("shed", jseq=seq, reason=rec.get("reason"),
                             **common)
        job_id = str(rec.get("job_id", ""))
        trace = self._trace.get(job_id)
        if kind == "start":
            st = self._job(job_id)
            st["terminal"] = False
            queue_wait = round(max(0.0, self._now() - st["ready_t"]), 9)
            st["queued"] += queue_wait
            return self.emit("attempt-start", jseq=seq, trace_id=trace,
                             job_id=job_id, attempt=rec.get("attempt"),
                             device=rec.get("device"),
                             queue_wait=queue_wait)
        if kind == "requeue":
            st = self._job(job_id)
            delay = round(float(rec.get("delay") or 0.0), 9)
            st["backoff"] += delay
            st["ready_t"] = self._now()
            return self.emit("backoff", jseq=seq, trace_id=trace,
                             job_id=job_id, attempt=rec.get("attempt"),
                             delay=delay, reason=rec.get("reason"))
        if kind in ("done", "fail"):
            st = self._job(job_id)
            st["terminal"] = True
            compute = round(float(rec.get("sim_seconds") or 0.0), 9)
            phases = {"queued": round(st["queued"], 9),
                      "backoff": round(st["backoff"], 9),
                      "compute": compute}
            e2e = round(phases["queued"] + phases["backoff"] + compute, 9)
            if kind == "done":
                return self.emit("done", jseq=seq, trace_id=trace,
                                 job_id=job_id, exact=rec.get("exact"),
                                 degraded_reason=rec.get("degraded_reason"),
                                 device=rec.get("device"),
                                 samples=rec.get("samples"),
                                 phases=phases, e2e=e2e)
            return self.emit("fail", jseq=seq, trace_id=trace,
                             job_id=job_id,
                             error_kind=rec.get("error_kind"),
                             error=rec.get("error"),
                             phases=phases, e2e=e2e)
        if kind == "cancel":
            self._job(job_id)["terminal"] = True
            return self.emit("cancel", jseq=seq, trace_id=trace,
                             job_id=job_id, reason=rec.get("reason"))
        if kind == "breaker":
            return self.emit("breaker", jseq=seq,
                             graph_key=rec.get("graph_key"),
                             strategy=rec.get("strategy"),
                             state=rec.get("state"),
                             failures=rec.get("failures"))
        # Forward compatibility: an unknown journal kind still gets a
        # covering event, so the no-missing-events invariant holds.
        return self.emit("journal-record", jseq=seq, kind=kind)

    def reconcile(self, journal_records) -> int:
        """Back-fill the event for every journal record that has none
        (crash between the journal append and the event append, or an
        event dropped on a full disk).  Returns events synthesised.

        Must run at service open, *before* the live
        ``on_append`` hook is wired, with the full replayed journal
        chain — order is journal order, so per-job phase accounting
        resumes exactly where the previous process left it."""
        seen = {ev["jseq"] for ev in self.events if "jseq" in ev}
        # Learn every trace id first: a trailing `done` may need the
        # trace of a `submit` that is already event-covered.
        for rec in journal_records:
            if rec.get("kind") in ("submit", "shed"):
                job = rec.get("job") or {}
                job_id = str(job.get("job_id", ""))
                if job_id and job_id not in self._trace:
                    try:
                        self._trace[job_id] = trace_id_for(job)
                    except Exception:
                        pass
        synthesised = 0
        for rec in journal_records:
            if rec.get("seq") in seen:
                continue
            if self.on_journal_record(rec) is not None:
                synthesised += 1
        if synthesised:
            self.metrics.inc("telemetry.reconciled", float(synthesised))
        return synthesised

    # -- accounting ----------------------------------------------------
    def total_bytes(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0
