"""Chrome trace-event export of the ``repro.events/v1`` stream.

:func:`chrome_trace` converts a whole service run — or one job/trace —
into the Trace Event Format JSON object that ``chrome://tracing`` and
Perfetto load directly:

* one **process** row per tenant (named via ``M`` metadata events), one
  **thread** row per job (named with the job id);
* ``X`` complete events for the queued span, each attempt, and each
  backoff window, reconstructed from the events' simulated timestamps
  and recorded phase durations (µs scale — simulated seconds × 1e6);
* ``i`` instant events for submit/shed/done/fail/cancel;
* every slice's ``args`` carries ``trace_id``/``job_id``, and the
  document's ``otherData.slo`` embeds the
  :func:`~repro.telemetry.slo.aggregate_slo` report, whose histogram
  buckets carry exemplar job ids — so a Perfetto user can jump from a
  bad bucket straight to the offending slices.

:func:`validate_chrome_trace` is the schema check the acceptance test
and the CI telemetry job run over the export.
"""

from __future__ import annotations

import json
import os

from .slo import aggregate_slo

__all__ = ["chrome_trace", "validate_chrome_trace", "write_chrome_trace"]

#: Phase codes the validator accepts (the subset we emit plus the
#: common duration/async ones, so hand-extended traces still validate).
_PHASES = ("X", "i", "M", "B", "E", "C")

_US = 1e6  # simulated seconds -> microseconds


def _slice(name, ts, dur, pid, tid, cat, args) -> dict:
    return {"name": str(name), "ph": "X", "ts": round(float(ts) * _US, 3),
            "dur": round(max(0.0, float(dur)) * _US, 3), "pid": int(pid),
            "tid": int(tid), "cat": str(cat), "args": args}


def _instant(name, ts, pid, tid, cat, args) -> dict:
    return {"name": str(name), "ph": "i", "ts": round(float(ts) * _US, 3),
            "pid": int(pid), "tid": int(tid), "s": "t", "cat": str(cat),
            "args": args}


def chrome_trace(events, *, job_id: str | None = None,
                 trace_id: str | None = None) -> dict:
    """The Trace Event Format document for a stream (or one job/trace).

    With ``job_id``/``trace_id`` the export is restricted to that
    job's/trace's events (a trace includes deduped sibling submits)."""
    if trace_id is None and job_id is not None:
        for ev in events:
            if ev.get("job_id") == job_id and ev.get("trace_id"):
                trace_id = ev["trace_id"]
                break
    if trace_id is not None:
        events = [ev for ev in events if ev.get("trace_id") == trace_id]
    elif job_id is not None:
        events = [ev for ev in events if ev.get("job_id") == job_id]

    pids: dict = {}     # tenant -> pid
    tids: dict = {}     # job id -> (pid, tid)
    job_tenant: dict = {}
    out: list = []

    def _pid(tenant) -> int:
        tenant = str(tenant)
        if tenant not in pids:
            pids[tenant] = len(pids) + 1
            out.append({"name": "process_name", "ph": "M",
                        "pid": pids[tenant], "tid": 0,
                        "args": {"name": f"tenant {tenant}"}})
        return pids[tenant]

    def _tid(job, tenant) -> tuple:
        if job not in tids:
            pid = _pid(tenant)
            tid = sum(1 for j, (p, _) in tids.items() if p == pid) + 1
            tids[job] = (pid, tid)
            out.append({"name": "thread_name", "ph": "M", "pid": pid,
                        "tid": tid, "args": {"name": str(job)}})
        return tids[job]

    for ev in events:
        kind = ev.get("event")
        job = ev.get("job_id")
        t = float(ev.get("t", 0.0))
        args = {"trace_id": ev.get("trace_id"), "job_id": job,
                "seq": ev.get("seq")}
        if kind in ("submit", "shed"):
            job_tenant[job] = ev.get("tenant")
            pid, tid = _tid(job, ev.get("tenant"))
            if kind == "submit":
                out.append(_instant(f"submit ({ev.get('mode')})", t, pid,
                                    tid, "lifecycle", args))
            else:
                out.append(_instant("shed", t, pid, tid, "lifecycle",
                                    dict(args, reason=ev.get("reason"))))
        elif kind == "dedupe":
            pid, tid = _tid(job, job_tenant.get(job, "?"))
            out.append(_instant(f"dedupe ({ev.get('by')})", t, pid, tid,
                                "lifecycle", args))
        elif kind == "attempt-start":
            pid, tid = _tid(job, job_tenant.get(job, "?"))
            qw = float(ev.get("queue_wait") or 0.0)
            if qw > 0:
                out.append(_slice("queued", t - qw, qw, pid, tid,
                                  "queue", args))
            out.append(_instant(
                f"attempt {ev.get('attempt')} on {ev.get('device')}",
                t, pid, tid, "attempt",
                dict(args, attempt=ev.get("attempt"),
                     device=ev.get("device"))))
        elif kind == "backoff":
            pid, tid = _tid(job, job_tenant.get(job, "?"))
            delay = float(ev.get("delay") or 0.0)
            out.append(_slice(f"backoff ({ev.get('reason')})", t - delay,
                              delay, pid, tid, "backoff",
                              dict(args, reason=ev.get("reason"))))
        elif kind in ("done", "fail"):
            pid, tid = _tid(job, job_tenant.get(job, "?"))
            phases = ev.get("phases") or {}
            compute = float(phases.get("compute") or 0.0)
            if kind == "done" and compute > 0:
                out.append(_slice(
                    f"compute on {ev.get('device')}", t - compute,
                    compute, pid, tid, "compute",
                    dict(args, exact=ev.get("exact"),
                         degraded_reason=ev.get("degraded_reason"),
                         samples=ev.get("samples"))))
            name = ("done" if kind == "done" else
                    f"fail ({ev.get('error_kind')})")
            out.append(_instant(name, t, pid, tid, "lifecycle",
                                dict(args, e2e=ev.get("e2e"))))
        elif kind == "cancel":
            pid, tid = _tid(job, job_tenant.get(job, "?"))
            out.append(_instant("cancel", t, pid, tid, "lifecycle", args))

    return {
        "traceEvents": out,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": "repro.events/v1",
            "slo": aggregate_slo(events),
        },
    }


def validate_chrome_trace(doc) -> list:
    """Problems with a Trace Event Format document (empty = valid)."""
    problems = []
    if not isinstance(doc, dict):
        return ["document is not an object"]
    evs = doc.get("traceEvents")
    if not isinstance(evs, list):
        return ["traceEvents missing or not a list"]
    for i, ev in enumerate(evs):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: missing name")
        ph = ev.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where}: missing {key}")
    try:
        json.dumps(doc)
    except (TypeError, ValueError) as exc:
        problems.append(f"not JSON-serialisable: {exc}")
    return problems


def write_chrome_trace(path, doc: dict) -> None:
    """Write a trace document (parent dirs created; canonical dumps)."""
    problems = validate_chrome_trace(doc)
    if problems:
        raise ValueError(f"invalid chrome trace: {problems[:3]}")
    parent = os.path.dirname(str(path))
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps(doc, sort_keys=True, indent=2,
                            separators=(",", ": ")) + "\n")
