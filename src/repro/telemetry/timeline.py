"""Span-tree reconstruction from the ``repro.events/v1`` stream.

:func:`build_timeline` folds one job's (or one trace's) events into a
``repro.timeline/v1`` document — the submit→shed→retry→attempt→backoff→
terminal narrative with per-attempt queue-wait/backoff/compute timing —
and :func:`render_timeline` draws it as the ASCII tree ``repro trace
timeline`` prints.  :func:`attempt_rows` is the compact per-attempt
table ``repro service status <job-id>`` appends to the terminal state.

Everything here is a pure function of the event list: the CLI verbs
stay valid offline, daemon live or dead, exactly like ``status``.
"""

from __future__ import annotations

__all__ = [
    "TIMELINE_SCHEMA",
    "attempt_rows",
    "build_timeline",
    "render_timeline",
]

TIMELINE_SCHEMA = "repro.timeline/v1"

#: Event kinds that terminate one attempt (map to an outcome label).
_TERMINALS = ("done", "fail", "cancel", "shed")


def _select(events, job_id=None, trace_id=None) -> list:
    """Events belonging to one job or one trace, in stream order."""
    out = []
    for ev in events:
        if job_id is not None and ev.get("job_id") == job_id:
            out.append(ev)
        elif trace_id is not None and ev.get("trace_id") == trace_id:
            out.append(ev)
    return out


def build_timeline(events, *, job_id: str | None = None,
                   trace_id: str | None = None) -> dict:
    """Fold a job's/trace's events into a ``repro.timeline/v1`` doc.

    Pass exactly one of ``job_id``/``trace_id``; a job id resolves to
    its trace, so sibling submissions deduped onto the same trace are
    included.  Raises ``ValueError`` when nothing matches.
    """
    if (job_id is None) == (trace_id is None):
        raise ValueError("pass exactly one of job_id / trace_id")
    if trace_id is None:
        for ev in events:
            if ev.get("job_id") == job_id and ev.get("trace_id"):
                trace_id = ev["trace_id"]
                break
    mine = (_select(events, trace_id=trace_id) if trace_id is not None
            else _select(events, job_id=job_id))
    if not mine:
        raise ValueError(
            f"no events for {job_id or trace_id!r} in the stream")

    job_ids = sorted({ev["job_id"] for ev in mine if ev.get("job_id")})
    attempts: list = []
    current: dict | None = None
    state = "pending"
    phases = {"queued": 0.0, "backoff": 0.0, "compute": 0.0}
    e2e = None
    meta: dict = {}
    sheds = 0
    for ev in mine:
        kind = ev.get("event")
        if kind == "submit":
            meta.setdefault("tenant", ev.get("tenant"))
            meta.setdefault("graph", ev.get("graph"))
            meta.setdefault("strategy", ev.get("strategy"))
            meta.setdefault("roots", ev.get("roots"))
            meta.setdefault("mode", ev.get("mode"))
        elif kind == "shed":
            sheds += 1
            state = "shed"
        elif kind == "attempt-start":
            current = {"attempt": ev.get("attempt"),
                       "device": ev.get("device"),
                       "start_t": ev.get("t"),
                       "queue_wait": float(ev.get("queue_wait") or 0.0),
                       "outcome": "interrupted", "backoff_after": None,
                       "compute": None}
            attempts.append(current)
            state = "running"
        elif kind == "backoff":
            if current is not None:
                current["outcome"] = f"failed ({ev.get('reason')})"
                current["backoff_after"] = float(ev.get("delay") or 0.0)
            state = "pending"
            current = None
        elif kind in ("done", "fail"):
            p = ev.get("phases") or {}
            phases = {k: float(p.get(k, phases[k])) for k in phases}
            e2e = ev.get("e2e")
            state = "done" if kind == "done" else "failed"
            if current is not None:
                if kind == "done":
                    label = "done"
                    if ev.get("degraded_reason"):
                        label += f" (degraded: {ev['degraded_reason']})"
                    elif ev.get("exact"):
                        label += " (exact)"
                    current["outcome"] = label
                    current["compute"] = phases["compute"]
                else:
                    current["outcome"] = f"failed ({ev.get('error_kind')})"
                current = None
            meta.setdefault("device", ev.get("device"))
        elif kind == "cancel":
            state = "cancelled"
            current = None
    return {
        "schema": TIMELINE_SCHEMA,
        "trace_id": trace_id,
        "job_ids": job_ids,
        "meta": meta,
        "sheds": sheds,
        "attempts": attempts,
        "phases": phases,
        "e2e": e2e,
        "state": state,
        "events": mine,
    }


def attempt_rows(events, job_id: str) -> list:
    """Per-attempt timing rows for one job (``service status`` extra).

    Each row: ``{"attempt", "device", "queue_wait", "outcome",
    "backoff_after", "compute"}``."""
    try:
        doc = build_timeline(events, job_id=job_id)
    except ValueError:
        return []
    return [dict(a) for a in doc["attempts"]]


def _fmt_s(value) -> str:
    return "-" if value is None else f"{float(value):.6f}s"


def render_timeline(doc: dict) -> list:
    """The ASCII span tree for one ``repro.timeline/v1`` document."""
    meta = doc.get("meta", {})
    head = (f"trace {doc.get('trace_id') or '-'}  "
            f"job(s) {', '.join(doc['job_ids']) or '-'}")
    sub = (f"  {meta.get('graph')}/{meta.get('strategy')} "
           f"roots={meta.get('roots')} tenant={meta.get('tenant')} "
           f"-> {doc['state']}")
    lines = [head, sub]
    rows: list = []
    for ev in doc["events"]:
        kind = ev.get("event")
        t = float(ev.get("t", 0.0))
        if kind == "submit":
            rows.append((t, f"submit (mode={ev.get('mode')}, "
                            f"job {ev.get('job_id')})"))
        elif kind == "shed":
            rows.append((t, f"shed: {ev.get('reason')}"))
        elif kind == "dedupe":
            rows.append((t, f"resubmit deduped onto {ev.get('job_id')} "
                            f"(by {ev.get('by')})"))
        elif kind == "attempt-start":
            rows.append((t, f"attempt {ev.get('attempt')} on "
                            f"{ev.get('device')} (queued "
                            f"{_fmt_s(ev.get('queue_wait'))})"))
        elif kind == "backoff":
            rows.append((t, f"backoff {_fmt_s(ev.get('delay'))} after "
                            f"{ev.get('reason')}"))
        elif kind == "done":
            flag = ("exact" if ev.get("exact")
                    else f"degraded: {ev.get('degraded_reason')}")
            rows.append((t, f"done on {ev.get('device')} ({flag}, "
                            f"compute {_fmt_s((ev.get('phases') or {}).get('compute'))})"))
        elif kind == "fail":
            rows.append((t, f"fail: {ev.get('error_kind')}"))
        elif kind == "cancel":
            rows.append((t, f"cancel: {ev.get('reason')}"))
        elif kind and kind.startswith("sched."):
            detail = {k: v for k, v in ev.items()
                      if k not in ("event", "seq", "t", "jseq", "trace_id",
                                   "job_id")}
            rows.append((t, f"[{kind}] " + " ".join(
                f"{k}={v}" for k, v in sorted(detail.items()))))
    for i, (t, text) in enumerate(rows):
        branch = "└─" if i == len(rows) - 1 else "├─"
        lines.append(f"{branch} {t:>12.6f}s  {text}")
    p = doc["phases"]
    if doc.get("e2e") is not None:
        lines.append(f"   e2e {_fmt_s(doc['e2e'])} = "
                     f"queued {_fmt_s(p['queued'])} + "
                     f"backoff {_fmt_s(p['backoff'])} + "
                     f"compute {_fmt_s(p['compute'])}")
    return lines
