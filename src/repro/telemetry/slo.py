"""Per-tenant / per-strategy SLO accounting over the event stream.

:func:`aggregate_slo` folds a ``repro.events/v1`` stream into a
``repro.slo/v1`` report:

* per ``(tenant, strategy)`` group — job counts by terminal state,
  shed/degraded rates, the **error-budget burn** (fraction of offered
  jobs that did not complete exactly: shed + failed + cancelled +
  degraded), end-to-end latency p50/p99/mean/max and its decomposition
  into queued/backoff/compute phase totals;
* a latency histogram per group whose buckets carry **exemplar job
  ids** — the slowest job landing in each bucket — so a bad p99 is one
  ``repro trace timeline <job-id>`` away from its full lifecycle;
* service-wide totals plus stream health (events, sheds, reconciles).

:func:`render_top` draws the offline snapshot dashboard ``repro
service top`` prints.  Like every consumer here it needs only the
stream file: daemon live, dead, or mid-crash.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SLO_SCHEMA", "LATENCY_BUCKETS", "aggregate_slo", "render_top"]

SLO_SCHEMA = "repro.slo/v1"

#: Latency histogram bucket upper bounds (simulated seconds): powers of
#: four from 0.25 ms to ~17 min, plus the implicit +inf tail.
LATENCY_BUCKETS = tuple(float(4.0**k) for k in range(-6, 6))


def _percentile(values, q) -> float | None:
    if not values:
        return None
    return round(float(np.percentile(np.asarray(values, dtype=np.float64),
                                     q)), 9)


def _group(groups: dict, tenant, strategy) -> dict:
    key = (str(tenant), str(strategy))
    g = groups.get(key)
    if g is None:
        g = groups[key] = {
            "tenant": key[0], "strategy": key[1],
            "offered": 0, "done": 0, "exact": 0, "degraded": 0,
            "failed": 0, "shed": 0, "cancelled": 0,
            "latencies": [], "exemplars": {},
            "queued": 0.0, "backoff": 0.0, "compute": 0.0,
        }
    return g


def aggregate_slo(events) -> dict:
    """Fold one event stream into a ``repro.slo/v1`` report."""
    groups: dict = {}
    # job id -> its group key (set at submit; shed carries its own).
    job_group: dict = {}
    job_trace: dict = {}
    counts: dict = {}
    for ev in events:
        kind = ev.get("event")
        counts[kind] = counts.get(kind, 0) + 1
        job_id = ev.get("job_id")
        if ev.get("trace_id") and job_id:
            job_trace[job_id] = ev["trace_id"]
        if kind == "submit":
            g = _group(groups, ev.get("tenant"), ev.get("strategy"))
            g["offered"] += 1
            job_group[job_id] = (g["tenant"], g["strategy"])
        elif kind == "shed":
            g = _group(groups, ev.get("tenant"), ev.get("strategy"))
            g["offered"] += 1
            g["shed"] += 1
        elif kind in ("done", "fail", "cancel"):
            key = job_group.get(job_id)
            if key is None:
                continue
            g = groups[key]
            if kind == "cancel":
                g["cancelled"] += 1
                continue
            phases = ev.get("phases") or {}
            for ph in ("queued", "backoff", "compute"):
                g[ph] += float(phases.get(ph, 0.0))
            if kind == "fail":
                g["failed"] += 1
                continue
            g["done"] += 1
            if ev.get("exact"):
                g["exact"] += 1
            else:
                g["degraded"] += 1
            e2e = float(ev.get("e2e") or 0.0)
            g["latencies"].append(e2e)
            # Exemplar: the slowest job in each histogram bucket.
            b = next((i for i, bound in enumerate(LATENCY_BUCKETS)
                      if e2e <= bound), len(LATENCY_BUCKETS))
            prev = g["exemplars"].get(b)
            if prev is None or e2e > prev["e2e"]:
                g["exemplars"][b] = {
                    "job_id": job_id,
                    "trace_id": job_trace.get(job_id),
                    "e2e": round(e2e, 9),
                }

    rows = []
    for key in sorted(groups):
        g = groups[key]
        lat = g["latencies"]
        hist_counts = [0] * (len(LATENCY_BUCKETS) + 1)
        for e2e in lat:
            b = next((i for i, bound in enumerate(LATENCY_BUCKETS)
                      if e2e <= bound), len(LATENCY_BUCKETS))
            hist_counts[b] += 1
        offered = g["offered"]
        not_exact = g["shed"] + g["failed"] + g["cancelled"] + g["degraded"]
        rows.append({
            "tenant": g["tenant"], "strategy": g["strategy"],
            "offered": offered, "done": g["done"], "exact": g["exact"],
            "degraded": g["degraded"], "failed": g["failed"],
            "shed": g["shed"], "cancelled": g["cancelled"],
            "shed_rate": round(g["shed"] / offered, 9) if offered else 0.0,
            "degraded_rate": (round(g["degraded"] / offered, 9)
                              if offered else 0.0),
            "error_budget_burn": (round(not_exact / offered, 9)
                                  if offered else 0.0),
            "e2e": {
                "p50": _percentile(lat, 50),
                "p99": _percentile(lat, 99),
                "mean": (round(float(np.mean(lat)), 9) if lat else None),
                "max": (round(float(np.max(lat)), 9) if lat else None),
            },
            "phases": {"queued": round(g["queued"], 9),
                       "backoff": round(g["backoff"], 9),
                       "compute": round(g["compute"], 9)},
            "histogram": {
                "buckets": list(LATENCY_BUCKETS),
                "counts": hist_counts,
                "exemplars": [
                    {"bucket": ("inf" if b == len(LATENCY_BUCKETS)
                                else LATENCY_BUCKETS[b]), **ex}
                    for b, ex in sorted(g["exemplars"].items())
                ],
            },
        })
    all_lat = [e for g in groups.values() for e in g["latencies"]]
    totals = {
        "offered": sum(r["offered"] for r in rows),
        "done": sum(r["done"] for r in rows),
        "exact": sum(r["exact"] for r in rows),
        "degraded": sum(r["degraded"] for r in rows),
        "failed": sum(r["failed"] for r in rows),
        "shed": sum(r["shed"] for r in rows),
        "cancelled": sum(r["cancelled"] for r in rows),
        "e2e": {"p50": _percentile(all_lat, 50),
                "p99": _percentile(all_lat, 99)},
    }
    return {
        "schema": SLO_SCHEMA,
        "groups": rows,
        "totals": totals,
        "stream": {"events": len(list(events)),
                   "by_kind": {k: counts[k] for k in sorted(counts)
                               if k is not None}},
    }


def _fmt(value, width=9) -> str:
    if value is None:
        return "-".rjust(width)
    return f"{value:.2e}".rjust(width)


def render_top(report: dict) -> list:
    """The ``repro service top`` dashboard for one SLO report."""
    lines = [
        f"{'tenant':>10s} {'strategy':>15s} {'offered':>7s} {'done':>5s} "
        f"{'shed':>5s} {'degr':>5s} {'fail':>5s} {'p50 e2e':>9s} "
        f"{'p99 e2e':>9s} {'burn':>6s}",
    ]
    for g in report["groups"]:
        lines.append(
            f"{g['tenant']:>10s} {g['strategy']:>15s} "
            f"{g['offered']:>7d} {g['done']:>5d} {g['shed']:>5d} "
            f"{g['degraded']:>5d} {g['failed']:>5d} "
            f"{_fmt(g['e2e']['p50'])} {_fmt(g['e2e']['p99'])} "
            f"{g['error_budget_burn']:>6.1%}")
        ph = g["phases"]
        total = ph["queued"] + ph["backoff"] + ph["compute"]
        if total > 0:
            lines.append(
                f"{'':>26s} phases: queued {ph['queued'] / total:.0%} "
                f"backoff {ph['backoff'] / total:.0%} "
                f"compute {ph['compute'] / total:.0%} "
                f"(total {total:.2e}s)")
        for ex in g["histogram"]["exemplars"][-2:]:
            lines.append(
                f"{'':>26s} exemplar <= {ex['bucket']}s: "
                f"{ex['job_id']} ({ex['e2e']:.2e}s) "
                f"trace {ex['trace_id']}")
    t = report["totals"]
    lines.append(
        f"{'TOTAL':>10s} {'':>15s} {t['offered']:>7d} {t['done']:>5d} "
        f"{t['shed']:>5d} {t['degraded']:>5d} {t['failed']:>5d} "
        f"{_fmt(t['e2e']['p50'])} {_fmt(t['e2e']['p99'])}")
    lines.append(f"{report['stream']['events']} event(s) in stream")
    return lines
