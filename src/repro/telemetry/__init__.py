"""End-to-end job telemetry for the BC service.

Three layers over one durable artifact:

* :mod:`~repro.telemetry.events` — the ``repro.events/v1`` lifecycle
  event stream (:class:`TelemetryLog`): every journal record the
  service writes is mirrored as one enriched, crc-framed event next to
  the journal, written through the same
  :class:`~repro.service.storage.ServiceStorage` chokepoint, timestamped
  on the scheduler's *simulated* clock only — so two identical seeded
  runs produce byte-identical streams, and the stream survives
  ``kill -9`` with the same exactly-once discipline as the journal
  (:meth:`TelemetryLog.reconcile` back-fills any event whose journal
  record landed but whose emit did not).
* :mod:`~repro.telemetry.timeline` — per-job/per-trace span
  reconstruction (``repro trace timeline``) and the per-attempt timing
  rows ``repro service status`` surfaces.
* :mod:`~repro.telemetry.slo` — per-tenant/per-strategy SLO accounting:
  p50/p99 end-to-end latency decomposed into queued/backoff/compute,
  shed/degraded/error-budget rates, and a latency histogram whose
  buckets carry *exemplar* job ids (``repro service top``).
* :mod:`~repro.telemetry.chrome` — Chrome trace-event export
  (Perfetto-viewable) of any job or the whole service run.

The trace id is a pure function of the job's content key
(:func:`trace_id_for`), so a ``derive_job_id``-deduped resubmit joins
the existing trace by construction — no id needs to ride the wire.
"""

from .chrome import chrome_trace, validate_chrome_trace, write_chrome_trace
from .events import (
    EVENTS_SCHEMA,
    TelemetryLog,
    decode_event_line,
    encode_event,
    read_events,
    trace_id_for,
    verify_events,
)
from .slo import LATENCY_BUCKETS, SLO_SCHEMA, aggregate_slo, render_top
from .timeline import (
    TIMELINE_SCHEMA,
    attempt_rows,
    build_timeline,
    render_timeline,
)

__all__ = [
    "EVENTS_SCHEMA",
    "LATENCY_BUCKETS",
    "SLO_SCHEMA",
    "TIMELINE_SCHEMA",
    "TelemetryLog",
    "aggregate_slo",
    "attempt_rows",
    "build_timeline",
    "chrome_trace",
    "decode_event_line",
    "encode_event",
    "read_events",
    "render_timeline",
    "render_top",
    "trace_id_for",
    "validate_chrome_trace",
    "verify_events",
    "write_chrome_trace",
]
