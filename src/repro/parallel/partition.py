"""Root partitioners for parallel BC.

The BC computation is embarrassingly parallel over roots; how roots are
split across workers/GPUs determines load balance.  Block and cyclic
partitions match MPI practice; the work-aware partitioner balances by
estimated per-root cost (vertex degree is a cheap proxy for how quickly
a root's BFS ramps up, useful on graphs with many components).
"""

from __future__ import annotations

import numpy as np

__all__ = ["block_partition", "cyclic_partition", "work_balanced_partition"]


def block_partition(roots: np.ndarray, num_parts: int) -> list:
    """Contiguous blocks, sizes differing by at most one."""
    roots = np.asarray(roots, dtype=np.int64).ravel()
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    bounds = np.linspace(0, roots.size, num_parts + 1).astype(np.int64)
    return [roots[bounds[i]:bounds[i + 1]] for i in range(num_parts)]


def cyclic_partition(roots: np.ndarray, num_parts: int) -> list:
    """Round-robin assignment (part i gets roots i, i+p, i+2p, ...)."""
    roots = np.asarray(roots, dtype=np.int64).ravel()
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    return [roots[i::num_parts] for i in range(num_parts)]


def work_balanced_partition(
    roots: np.ndarray, weights: np.ndarray, num_parts: int
) -> list:
    """Greedy longest-processing-time partition by per-root weights."""
    roots = np.asarray(roots, dtype=np.int64).ravel()
    weights = np.asarray(weights, dtype=np.float64).ravel()
    if roots.shape != weights.shape:
        raise ValueError("roots and weights must align")
    if num_parts < 1:
        raise ValueError("num_parts must be >= 1")
    order = np.argsort(weights)[::-1]
    loads = np.zeros(num_parts)
    buckets: list[list[int]] = [[] for _ in range(num_parts)]
    for idx in order:
        part = int(np.argmin(loads))
        buckets[part].append(int(roots[idx]))
        loads[part] += weights[idx]
    return [np.asarray(sorted(b), dtype=np.int64) for b in buckets]
