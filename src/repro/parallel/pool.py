"""Process-pool exact BC: real coarse-grained parallelism over roots.

This is the CPU counterpart of the paper's multi-GPU decomposition
(Section V-D): the graph is replicated into every worker once (via the
pool initializer, so the CSR arrays are pickled a single time per
worker rather than per task), roots are partitioned into chunks, each
worker accumulates a partial BC vector, and the partials are summed —
the in-process equivalent of the final ``MPI_Reduce``.

Worker failures are survivable: a chunk whose worker crashes (a raw
``BrokenProcessPool``, a pickling error, or an injected fault) is
recomputed serially in the parent, so one bad worker degrades
throughput but never loses the run.  Only when that serial fallback
*also* fails does the caller see an error — and then it is a
:class:`~repro.errors.WorkerPoolError`, never a bare pool internals
exception.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..errors import WorkerPoolError
from ..graph.csr import CSRGraph
from ..observability.registry import NULL_REGISTRY
from .partition import block_partition

__all__ = ["parallel_betweenness_centrality"]

# Per-worker replicated graph (set by the pool initializer; module-level
# so forked/spawned workers can reach it without per-task pickling).
_WORKER_GRAPH: CSRGraph | None = None
# Chunk indices this worker must hard-crash on (fault injection for the
# resilience tests; empty in normal operation).
_WORKER_CRASH_CHUNKS: frozenset = frozenset()


def _init_worker(indptr: np.ndarray, adj: np.ndarray, undirected: bool,
                 crash_chunks=()) -> None:
    global _WORKER_GRAPH, _WORKER_CRASH_CHUNKS
    _WORKER_GRAPH = CSRGraph(indptr, adj, undirected=undirected)
    _WORKER_CRASH_CHUNKS = frozenset(crash_chunks)


def _chunk_partial(g: CSRGraph, roots: np.ndarray) -> np.ndarray:
    """Accumulate dependencies for one chunk of roots on ``g``."""
    from ..bc.api import bc_single_source_dependencies

    bc = np.zeros(g.num_vertices, dtype=np.float64)
    for s in roots:
        bc += bc_single_source_dependencies(g, int(s))
    return bc


def _worker_partial(task) -> np.ndarray:
    """Worker entry point: ``task`` is ``(chunk_index, roots)``."""
    index, roots = task
    if index in _WORKER_CRASH_CHUNKS:
        # Simulated fail-stop: die without cleanup, exactly like a
        # segfaulting or OOM-killed worker (surfaces to the parent as
        # BrokenProcessPool).
        os._exit(13)
    g = _WORKER_GRAPH
    assert g is not None, "worker pool not initialised"
    return _chunk_partial(g, roots)


def parallel_betweenness_centrality(
    g: CSRGraph,
    sources=None,
    num_workers: int | None = None,
    chunks_per_worker: int = 4,
    _crash_chunks=(),
    metrics=None,
) -> np.ndarray:
    """Exact BC computed across a process pool.

    Parameters
    ----------
    sources:
        Roots to accumulate (all vertices by default).
    num_workers:
        Pool size; defaults to ``os.cpu_count()``.  ``1`` short-circuits
        to the serial path (no pool spin-up).
    chunks_per_worker:
        Oversubscription factor — more, smaller chunks smooth load
        imbalance between root costs at the price of task overhead.
    _crash_chunks:
        Fault-injection hook (resilience tests): chunk indices whose
        worker hard-exits mid-task.  The run still returns the exact
        result via the serial recovery path.
    metrics:
        Optional :class:`~repro.observability.MetricsRegistry`; records
        chunk counts/latency (``pool.*`` series — chunk latencies are
        wall-clock and export under the ``timing`` key) and serial
        recoveries.  Defaults to the no-op registry.

    Returns the same values as
    :func:`repro.bc.betweenness_centrality`; the test suite asserts it,
    including under injected worker crashes.
    """
    if metrics is None:
        metrics = NULL_REGISTRY
    n = g.num_vertices
    if sources is None:
        roots = np.arange(n, dtype=np.int64)
    else:
        roots = np.asarray(sources, dtype=np.int64).ravel()
    if num_workers is None:
        num_workers = os.cpu_count() or 1
    num_workers = max(1, int(num_workers))
    if chunks_per_worker < 1:
        raise ValueError("chunks_per_worker must be >= 1")

    if num_workers == 1 or roots.size <= 1:
        from ..bc.api import betweenness_centrality

        with metrics.span("pool.run", path="serial"):
            return betweenness_centrality(g, sources=roots)

    num_chunks = min(roots.size, num_workers * chunks_per_worker)
    chunks = [c for c in block_partition(roots, num_chunks) if c.size]
    bc = np.zeros(n, dtype=np.float64)
    done = np.zeros(len(chunks), dtype=bool)
    metrics.set_gauge("pool.workers", num_workers)
    metrics.inc("pool.chunks", len(chunks))
    with metrics.span("pool.run", path="pool"):
        try:
            with ProcessPoolExecutor(
                max_workers=num_workers,
                initializer=_init_worker,
                initargs=(g.indptr, g.adj, g.undirected, tuple(_crash_chunks)),
            ) as pool:
                t_submit = time.perf_counter()
                futures = [pool.submit(_worker_partial, (i, c))
                           for i, c in enumerate(chunks)]
                for i, fut in enumerate(futures):
                    try:
                        bc += fut.result()  # the MPI_Reduce step
                        done[i] = True
                        # Latency from submission to collection: the
                        # makespan-style number the chunk-size tuning in
                        # `chunks_per_worker` trades against.
                        metrics.observe("pool.chunk_seconds",
                                        time.perf_counter() - t_submit,
                                        wall=True)
                    except Exception:
                        # A crashed worker breaks the pool, so every not-yet
                        # collected chunk lands here too; all of them are
                        # recomputed serially below.
                        metrics.inc("pool.chunk_failures")
        except Exception:
            # Pool creation / task submission itself failed (e.g. spawn or
            # pickling trouble): fall through with whatever completed.
            metrics.inc("pool.pool_failures")

        failed = [chunks[i] for i in np.flatnonzero(~done)]
        if failed:
            # The serial fallback is real compute the pool numbers would
            # otherwise hide: give it its own span and counter so a run
            # that limped home on one core is visible in the registry.
            with metrics.span("pool.recompute", chunks=len(failed)):
                try:
                    for chunk in failed:
                        t_retry = time.perf_counter()
                        bc += _chunk_partial(g, chunk)
                        metrics.inc("pool.chunks_recovered")
                        metrics.inc("pool.recomputed_chunks", path="serial")
                        metrics.observe("pool.recovery_seconds",
                                        time.perf_counter() - t_retry,
                                        wall=True)
                except Exception as exc:
                    raise WorkerPoolError(
                        f"{len(failed)} worker chunk(s) crashed and serial "
                        f"recovery failed: {exc}"
                    ) from exc
    if g.undirected:
        bc /= 2.0
    return bc
