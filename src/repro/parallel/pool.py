"""Process-pool exact BC: real coarse-grained parallelism over roots.

This is the CPU counterpart of the paper's multi-GPU decomposition
(Section V-D): the graph is replicated into every worker once (via the
pool initializer, so the CSR arrays are pickled a single time per
worker rather than per task), roots are partitioned into chunks, each
worker accumulates a partial BC vector, and the partials are summed —
the in-process equivalent of the final ``MPI_Reduce``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..graph.csr import CSRGraph
from .partition import block_partition

__all__ = ["parallel_betweenness_centrality"]

# Per-worker replicated graph (set by the pool initializer; module-level
# so forked/spawned workers can reach it without per-task pickling).
_WORKER_GRAPH: CSRGraph | None = None


def _init_worker(indptr: np.ndarray, adj: np.ndarray, undirected: bool) -> None:
    global _WORKER_GRAPH
    _WORKER_GRAPH = CSRGraph(indptr, adj, undirected=undirected)


def _worker_partial(roots: np.ndarray) -> np.ndarray:
    """Accumulate dependencies for one chunk of roots."""
    from ..bc.api import bc_single_source_dependencies

    g = _WORKER_GRAPH
    assert g is not None, "worker pool not initialised"
    bc = np.zeros(g.num_vertices, dtype=np.float64)
    for s in roots:
        bc += bc_single_source_dependencies(g, int(s))
    return bc


def parallel_betweenness_centrality(
    g: CSRGraph,
    sources=None,
    num_workers: int | None = None,
    chunks_per_worker: int = 4,
) -> np.ndarray:
    """Exact BC computed across a process pool.

    Parameters
    ----------
    sources:
        Roots to accumulate (all vertices by default).
    num_workers:
        Pool size; defaults to ``os.cpu_count()``.  ``1`` short-circuits
        to the serial path (no pool spin-up).
    chunks_per_worker:
        Oversubscription factor — more, smaller chunks smooth load
        imbalance between root costs at the price of task overhead.

    Returns the same values as
    :func:`repro.bc.betweenness_centrality`; the test suite asserts it.
    """
    n = g.num_vertices
    if sources is None:
        roots = np.arange(n, dtype=np.int64)
    else:
        roots = np.asarray(sources, dtype=np.int64).ravel()
    if num_workers is None:
        num_workers = os.cpu_count() or 1
    num_workers = max(1, int(num_workers))
    if chunks_per_worker < 1:
        raise ValueError("chunks_per_worker must be >= 1")

    if num_workers == 1 or roots.size <= 1:
        from ..bc.api import betweenness_centrality

        return betweenness_centrality(g, sources=roots)

    num_chunks = min(roots.size, num_workers * chunks_per_worker)
    chunks = [c for c in block_partition(roots, num_chunks) if c.size]
    bc = np.zeros(n, dtype=np.float64)
    with ProcessPoolExecutor(
        max_workers=num_workers,
        initializer=_init_worker,
        initargs=(g.indptr, g.adj, g.undirected),
    ) as pool:
        for partial in pool.map(_worker_partial, chunks):
            bc += partial  # the MPI_Reduce step
    if g.undirected:
        bc /= 2.0
    return bc
