"""Real (process-level) parallel execution of BC over roots."""

from .partition import block_partition, cyclic_partition, work_balanced_partition
from .pool import parallel_betweenness_centrality

__all__ = [
    "block_partition",
    "cyclic_partition",
    "work_balanced_partition",
    "parallel_betweenness_centrality",
]
