"""``BCClient``: retrying, idempotent, hedging client for the BC service.

The service side already refuses overload with a typed
:class:`~repro.errors.ServiceOverloadError` carrying a ``retry_after``
hint, and refuses a full disk with a typed
:class:`~repro.errors.StorageFullError`.  This module is the client
half of that contract:

* **Typed backoff.**  Only those two errors are retried; everything
  else is a real error and propagates immediately.  The delay before
  retry ``n`` is ``max(server hint, backoff_delay(n))`` — the same
  deterministic capped-exponential-with-jitter the scheduler uses
  (seeded per client, salted per job id), so a retry storm from many
  clients decorrelates instead of thundering back in lockstep, and a
  test can replay the exact delay sequence from the seed.

* **Idempotent submits.**  A spec submitted without a job id gets one
  *derived from its content hash* (:func:`derive_job_id`), and the
  service dedupes on content at admission — so a client that times
  out, crashes, or double-sends can never enqueue the same work twice.
  The submit that "fails" after a lost ack and the retry that follows
  land on the same job.

* **Hedged status.**  ``status()`` asks the primary transport first
  and, if that fails (daemon dead, mid-restart), falls back to reading
  the journal offline — which is valid at every instant by the
  service's durability contract.  The caller gets an answer whenever
  one is knowable.

Sleeping is injected (``sleep=`` callable) and defaults to *simulated*
time — the client just accumulates the delay into ``slept_seconds`` —
so soak schedules with hundreds of retries run in milliseconds.  Pass
``time.sleep`` for a live daemon.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from ..errors import (
    JobNotFoundError,
    ServiceOverloadError,
    StorageFullError,
)
from ..observability.registry import NULL_REGISTRY
from ..telemetry import trace_id_for
from ..service.jobs import JobSpec, TERMINAL_STATES
from ..service.journal import read_journal_chain, replay_state
from ..service.scheduler import backoff_delay
from ..service.storage import ServiceStorage

__all__ = [
    "BCClient",
    "InProcessTransport",
    "RetryPolicy",
    "SpoolTransport",
    "derive_job_id",
]

#: Errors the client treats as "try again later".  Everything else is
#: a real failure and propagates on the first throw.
RETRYABLE = (ServiceOverloadError, StorageFullError)


def derive_job_id(spec: JobSpec) -> str:
    """Deterministic job id from the spec's content hash.

    Two submissions of the same query derive the same id, which makes
    retries idempotent end-to-end: even if the service's content-dedupe
    index were lost, a duplicate id for identical content folds into
    the existing job rather than erroring.
    """
    return f"c{spec.content_key()[:12]}"


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side retry tunables.

    ``base``/``cap`` feed the shared
    :func:`~repro.service.scheduler.backoff_delay`; ``max_retries``
    bounds how many times a retryable error is absorbed before it is
    re-raised to the caller (the original typed error, not a wrapper).
    """

    max_retries: int = 8
    base: float = 0.05
    cap: float = 2.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base <= 0 or self.cap < self.base:
            raise ValueError("need 0 < base <= cap")


class InProcessTransport:
    """Direct calls into a live :class:`~repro.service.daemon.BCService`
    instance (the soak harness's transport)."""

    def __init__(self, service):
        self.service = service

    @property
    def journal_path(self) -> str:
        return self.service.journal.path

    def submit(self, spec: JobSpec) -> str:
        return self.service.submit(spec).job_id

    def status(self, job_id: str) -> dict:
        return self.service.status(job_id)

    def result(self, job_id: str):
        return self.service.result(job_id)


class SpoolTransport:
    """Cross-process transport: submits are spool tickets, status is an
    offline journal read — exactly what the CLI does, minus a process.

    ``storage`` routes the ticket write, so spool-targeted storage
    faults strike it.
    """

    def __init__(self, root, storage: ServiceStorage | None = None):
        self.root = str(root)
        self.storage = storage if storage is not None else ServiceStorage()
        self.spool_dir = os.path.join(self.root, "spool")
        self._journal = os.path.join(self.root, "journal.jsonl")
        self._ticket_n = 0

    @property
    def journal_path(self) -> str:
        return self._journal

    def submit(self, spec: JobSpec) -> str:
        os.makedirs(self.spool_dir, exist_ok=True)
        self._ticket_n += 1
        name = f"t{self._ticket_n:06d}-{spec.job_id}.json"
        body = json.dumps({"op": "submit", "job": spec.to_dict()},
                          sort_keys=True) + "\n"
        self.storage.replace_atomic(os.path.join(self.spool_dir, name),
                                    body, "spool")
        return spec.job_id

    def status(self, job_id: str) -> dict:
        records, _ = read_journal_chain(self._journal)
        state = replay_state(records, self._journal)
        job = state.jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(job_id)
        return job.status_dict()

    def result(self, job_id: str):
        raise JobNotFoundError(job_id)  # results need a live service


class BCClient:
    """See the module docstring.  ``seed`` makes every backoff sequence
    a pure function of ``(seed, job_id, attempt)``."""

    def __init__(self, transport, *, policy: RetryPolicy | None = None,
                 seed: int = 0, sleep=None, metrics=None):
        self.transport = transport
        self.policy = policy if policy is not None else RetryPolicy()
        self.seed = int(seed)
        self.metrics = metrics if metrics is not None else NULL_REGISTRY
        self._sleep_hook = sleep
        #: Simulated seconds spent backing off (when no sleep hook).
        self.slept_seconds = 0.0
        #: Client-side audit counters.
        self.report = {"submits": 0, "retries": 0, "hedged_polls": 0,
                       "delays": []}
        #: job id -> trace id, learned at submit.  The id is derived
        #: from the spec's content key (:func:`trace_id_for`), so it
        #: matches what the daemon's event stream records without any
        #: id riding the wire — a lost-ack resubmit joins the same
        #: trace by construction.
        self.traces: dict = {}

    # -- internals -----------------------------------------------------
    def _sleep(self, delay: float) -> None:
        self.report["delays"].append(float(delay))
        if self._sleep_hook is not None:
            self._sleep_hook(delay)
        else:
            self.slept_seconds += float(delay)

    def retry_delay(self, attempt: int, job_id: str,
                    hint: float | None) -> float:
        """The delay before retry ``attempt``: deterministic jittered
        backoff, floored at the server's hint (never retry sooner than
        the server asked)."""
        delay = backoff_delay(attempt, base=self.policy.base,
                              cap=self.policy.cap, seed=self.seed,
                              token=str(job_id))
        if hint is not None:
            delay = max(delay, float(hint))
        return delay

    def _with_retries(self, job_id: str, call):
        attempt = 0
        while True:
            try:
                return call()
            except RETRYABLE as exc:
                attempt += 1
                if attempt > self.policy.max_retries:
                    raise
                hint = getattr(exc, "retry_after", None)
                delay = self.retry_delay(attempt, job_id, hint)
                self.report["retries"] += 1
                self.metrics.inc("client.retries",
                                 kind=type(exc).__name__)
                self.metrics.record(
                    "client.retry", job_id=job_id,
                    trace_id=self.traces.get(job_id), attempt=attempt,
                    kind=type(exc).__name__, delay=float(delay))
                self._sleep(delay)

    # -- API -----------------------------------------------------------
    def submit(self, spec) -> str:
        """Submit (idempotently) with retries; returns the job id.

        The job's trace id — the key into the daemon's
        ``repro.events/v1`` stream — is recorded in :attr:`traces`
        (and as a ``client.submit`` metric event) before the first
        send, so the caller can follow the trace even if every send
        is shed."""
        if isinstance(spec, dict):
            spec = JobSpec.from_dict(spec)
        if not spec.job_id:
            spec = spec.with_id(derive_job_id(spec))
        trace = trace_id_for(spec)
        self.traces[spec.job_id] = trace
        self.report["submits"] += 1
        self.metrics.record("client.submit", job_id=spec.job_id,
                            trace_id=trace, tenant=spec.tenant)
        return self._with_retries(spec.job_id,
                                  lambda: self.transport.submit(spec))

    def trace_id(self, job_id: str) -> str | None:
        """The trace id of a job this client submitted (or ``None``)."""
        return self.traces.get(job_id)

    def status(self, job_id: str) -> dict:
        """Hedged status: primary transport first, offline journal
        replay when the primary cannot answer."""
        try:
            return self.transport.status(job_id)
        except JobNotFoundError:
            raise
        except Exception:
            self.report["hedged_polls"] += 1
            self.metrics.inc("client.hedged_polls")
            records, _ = read_journal_chain(self.transport.journal_path)
            state = replay_state(records, self.transport.journal_path)
            job = state.jobs.get(job_id)
            if job is None:
                raise JobNotFoundError(job_id)
            return job.status_dict()

    def result(self, job_id: str):
        """A DONE job's ``(values, meta)``, with overload retries."""
        return self._with_retries(job_id,
                                  lambda: self.transport.result(job_id))

    def wait(self, job_id: str, *, poll_delay: float = 0.05,
             max_polls: int = 200) -> dict:
        """Poll (hedged) until the job is terminal; returns its status.

        Raises ``TimeoutError`` after ``max_polls`` — a starved job is
        a bug the soak harness must see, not wait out."""
        for _ in range(int(max_polls)):
            status = self.status(job_id)
            if status["state"] in TERMINAL_STATES:
                return status
            self._sleep(float(poll_delay))
        raise TimeoutError(
            f"job {job_id!r} not terminal after {max_polls} polls")
