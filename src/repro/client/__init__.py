"""Client SDK for the BC service (:mod:`repro.service`).

:class:`BCClient` is the retry-aware, idempotent way to talk to the
service: typed exponential backoff with jitter floored at the server's
``retry_after`` hints, content-hash job ids so a retried submit can
never duplicate work, and hedged status polling that falls back to
reading the journal offline when the primary transport fails.
"""

from .sdk import (
    BCClient,
    InProcessTransport,
    RetryPolicy,
    SpoolTransport,
    derive_job_id,
)

__all__ = [
    "BCClient",
    "InProcessTransport",
    "RetryPolicy",
    "SpoolTransport",
    "derive_job_id",
]
