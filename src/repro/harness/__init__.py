"""Experiment harness: regenerate every table and figure of the paper."""

from .runner import ExperimentConfig, load_suite_graph, pick_roots, timed_run
from .tables import format_kv, format_series, format_table

__all__ = [
    "ExperimentConfig",
    "load_suite_graph",
    "pick_roots",
    "timed_run",
    "format_table",
    "format_kv",
    "format_series",
]
