"""One module per paper table/figure; each exposes ``run()`` returning a
structured result and ``render()`` producing the paper-comparable text."""

from . import figure1, figure3, figure4, figure5, figure6
from . import table1, table2, table3, table4

#: Registry used by the CLI: experiment id -> module.
EXPERIMENTS = {
    "figure1": figure1,
    "figure3": figure3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
}

__all__ = ["EXPERIMENTS", "figure1", "figure3", "figure4", "figure5",
           "figure6", "table1", "table2", "table3", "table4"]
