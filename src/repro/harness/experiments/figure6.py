"""Figure 6 — multi-GPU scaling by node count for three graph families.

For delaunay, rgg and kron at a few scales, sweep the KIDS node count
{1, 4, 16, 64} and report speedup over one node (3 GPUs).
Reproduction targets: near-linear speedup once the per-GPU root count
is large (bigger scales), visibly sub-linear speedup for the smallest
scales (fixed setup/communication overheads dominate), and denser
families reaching linearity at smaller scales than delaunay.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...cluster.distributed import scaling_sweep
from ...cluster.topology import kids
from ...graph.generators.delaunay import delaunay_n
from ...graph.generators.kronecker import kron_g500
from ...graph.generators.rgg import rgg_n_2
from ..runner import ExperimentConfig
from ..tables import format_table

__all__ = ["FAMILIES", "Figure6Curve", "Figure6Result", "run", "render"]

FAMILIES = {
    "delaunay": lambda scale, seed: delaunay_n(scale, seed=seed),
    "rgg": lambda scale, seed: rgg_n_2(scale, seed=seed),
    "kron": lambda scale, seed: kron_g500(scale, seed=seed),
}

DEFAULT_NODE_COUNTS = (1, 4, 16, 64)


@dataclass(frozen=True)
class Figure6Curve:
    family: str
    scale: int
    node_counts: tuple
    seconds: tuple

    def speedups(self) -> tuple:
        base = self.seconds[0]
        return tuple(base / s for s in self.seconds)


@dataclass(frozen=True)
class Figure6Result:
    curves: tuple

    def curve(self, family: str, scale: int) -> Figure6Curve:
        for c in self.curves:
            if c.family == family and c.scale == scale:
                return c
        raise KeyError((family, scale))


def run(cfg: ExperimentConfig | None = None,
        scales=(12, 14, 16), node_counts=DEFAULT_NODE_COUNTS,
        families=None, sample_roots: int = 16) -> Figure6Result:
    cfg = cfg or ExperimentConfig()
    curves = []
    for name in (families or FAMILIES):
        build = FAMILIES[name]
        for scale in scales:
            g = build(int(scale), cfg.seed)
            runs = scaling_sweep(g, kids(node_counts[0]), node_counts,
                                 sample_roots=sample_roots, seed=cfg.seed)
            curves.append(Figure6Curve(
                family=name, scale=int(scale),
                node_counts=tuple(int(n) for n in node_counts),
                seconds=tuple(r.seconds for r in runs),
            ))
    return Figure6Result(curves=tuple(curves))


def render(result: Figure6Result | None = None,
           cfg: ExperimentConfig | None = None, **kwargs) -> str:
    r = run(cfg, **kwargs) if result is None else result
    rows = []
    for c in sorted(r.curves, key=lambda c: (c.family, c.scale)):
        speedups = c.speedups()
        for nodes, secs, sp in zip(c.node_counts, c.seconds, speedups):
            rows.append((c.family, c.scale, nodes, nodes * 3,
                         f"{secs:.2f}", f"{sp:.1f}x"))
    return format_table(
        ["Family", "Scale", "Nodes", "GPUs", "Time (s)", "Speedup vs 1 node"],
        rows,
        title="Figure 6 — multi-GPU scaling on the simulated KIDS cluster",
    )
