"""Table IV — 64-node (192 GPU) TEPS rates and speedup over one node.

Reproduction targets: all three families close to linear speedup
(the paper reports 63.2-63.8x at its scales), and the Kronecker graph
posting a markedly higher TEPS rate than delaunay/rgg — partly because
its TEPS count is inflated by isolated vertices (the paper adjusts
18 GTEPS effective), partly because its scale-free structure runs the
edge-parallel method on the fat iterations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...cluster.distributed import scaling_sweep
from ...cluster.topology import kids
from ..runner import ExperimentConfig
from ..tables import format_table
from .figure6 import FAMILIES

__all__ = ["GRAPH_ORDER", "Table4Row", "Table4Result", "run", "render"]

GRAPH_ORDER = ("rgg", "delaunay", "kron")
PAPER_NAMES = {"rgg": "rgg_n_2_20", "delaunay": "delaunay_n20",
               "kron": "kron_g500-logn20"}


@dataclass(frozen=True)
class Table4Row:
    family: str
    scale: int
    num_vertices: int
    num_edges: int
    isolated_vertices: int
    gteps_64: float
    adjusted_gteps_64: float   # TEPS over non-isolated roots only
    speedup_over_1: float


@dataclass(frozen=True)
class Table4Result:
    rows: tuple

    def row(self, family: str) -> Table4Row:
        for r in self.rows:
            if r.family == family:
                return r
        raise KeyError(family)


def run(cfg: ExperimentConfig | None = None, scale: int = 14,
        sample_roots: int = 16) -> Table4Result:
    cfg = cfg or ExperimentConfig()
    rows = []
    for family in GRAPH_ORDER:
        g = FAMILIES[family](int(scale), cfg.seed)
        runs = scaling_sweep(g, kids(1), (1, 64), sample_roots=sample_roots,
                             seed=cfg.seed)
        one, big = runs
        isolated = int(g.isolated_vertices().size)
        connected_fraction = 1.0 - isolated / max(g.num_vertices, 1)
        rows.append(Table4Row(
            family=family, scale=int(scale),
            num_vertices=g.num_vertices, num_edges=g.num_edges,
            isolated_vertices=isolated,
            gteps_64=big.gteps(),
            adjusted_gteps_64=big.gteps() * connected_fraction,
            speedup_over_1=one.seconds / big.seconds,
        ))
    return Table4Result(rows=tuple(rows))


def render(result: Table4Result | None = None,
           cfg: ExperimentConfig | None = None, **kwargs) -> str:
    r = run(cfg, **kwargs) if result is None else result
    rows = [
        (PAPER_NAMES[row.family], row.num_vertices, row.isolated_vertices,
         f"{row.gteps_64:.2f}", f"{row.adjusted_gteps_64:.2f}",
         f"{row.speedup_over_1:.2f}x")
        for row in r.rows
    ]
    return format_table(
        ["Graph", "Vertices", "Isolated", "64-node GTEPS",
         "Adjusted GTEPS", "Speedup over 1 node"],
        rows,
        title="Table IV — multi-node performance (simulated KIDS, 192 GPUs)",
    )
