"""Figure 5 — scaling by problem size for rgg, delaunay and kron.

For each graph family, sweep the scale (n doubles per step, and so
does m) and time: the sampling method, the edge-parallel baseline
(where the Jia et al. reader can load the graph at all — it rejects
the isolated vertices of rgg and kron), and GPU-FAN (until its O(n^2)
predecessor matrix exhausts device memory — the paper extrapolates the
missing points with dotted lines).

Reproduction targets: sampling beats GPU-FAN by an order of magnitude
on rgg at every scale; the gap grows with scale on delaunay; GPU-FAN
hits OOM while sampling keeps scaling.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...bc.gpu_fan import supports_graph
from ...errors import GraphFormatError
from ...graph.generators.delaunay import delaunay_n
from ...graph.generators.kronecker import kron_g500
from ...graph.generators.rgg import rgg_n_2
from ...gpusim.device import Device
from ..runner import ExperimentConfig, pick_roots
from ..tables import format_table

__all__ = ["FAMILIES", "Figure5Point", "Figure5Result", "run", "render"]

FAMILIES = {
    "rgg": lambda scale, seed: rgg_n_2(scale, seed=seed),
    "delaunay": lambda scale, seed: delaunay_n(scale, seed=seed),
    "kron": lambda scale, seed: kron_g500(scale, seed=seed),
}

#: Status markers for unavailable measurements.
OOM = "OOM"
READER_REJECTS = "no-reader"


@dataclass(frozen=True)
class Figure5Point:
    family: str
    scale: int
    num_vertices: int
    num_edges: int
    sampling_seconds: float
    edge_parallel_seconds: float | str   # seconds or READER_REJECTS
    gpu_fan_seconds: float | str         # seconds or OOM


@dataclass(frozen=True)
class Figure5Result:
    points: tuple

    def family(self, name: str) -> list:
        return sorted((p for p in self.points if p.family == name),
                      key=lambda p: p.scale)


def run(cfg: ExperimentConfig | None = None,
        scales=range(10, 16), families=None,
        root_sample: int | None = None) -> Figure5Result:
    cfg = cfg or ExperimentConfig()
    device = Device(cfg.gpu)
    k = root_sample or cfg.root_sample
    points = []
    for name in (families or FAMILIES):
        build = FAMILIES[name]
        for scale in scales:
            g = build(int(scale), cfg.seed)
            roots = pick_roots(g, k, seed=cfg.seed)
            samp = device.run_bc(g, strategy="sampling", roots=roots,
                                 n_samps=max(1, roots.size // 3))
            # Jia et al. baseline: the reference reader rejects graphs
            # with isolated vertices.
            try:
                ep = device.run_bc(g, strategy="edge-parallel", roots=roots,
                                   strict_reader=True)
                ep_s = ep.extrapolated_seconds()
            except GraphFormatError:
                ep_s = READER_REJECTS
            # GPU-FAN: check the O(n^2) footprint before running.
            if supports_graph(g, device.spec.memory_bytes):
                gf = device.run_bc(g, strategy="gpu-fan", roots=roots)
                gf_s = gf.extrapolated_seconds()
            else:
                gf_s = OOM
            points.append(Figure5Point(
                family=name, scale=int(scale),
                num_vertices=g.num_vertices, num_edges=g.num_edges,
                sampling_seconds=samp.extrapolated_seconds(),
                edge_parallel_seconds=ep_s,
                gpu_fan_seconds=gf_s,
            ))
    return Figure5Result(points=tuple(points))


def _fmt(v) -> str:
    return v if isinstance(v, str) else f"{v:.3f}"


def render(result: Figure5Result | None = None,
           cfg: ExperimentConfig | None = None, **kwargs) -> str:
    r = run(cfg, **kwargs) if result is None else result
    rows = [
        (p.family, p.scale, p.num_vertices, p.num_edges,
         f"{p.sampling_seconds:.3f}", _fmt(p.edge_parallel_seconds),
         _fmt(p.gpu_fan_seconds))
        for p in sorted(r.points, key=lambda p: (p.family, p.scale))
    ]
    return format_table(
        ["Family", "Scale", "Vertices", "Edges", "Sampling (s)",
         "Edge-parallel (s)", "GPU-FAN (s)"],
        rows,
        title=("Figure 5 — full-run time vs problem size "
               "(extrapolated from sampled roots; simulated seconds)"),
    )
